#!/usr/bin/env python
"""Figure 3: Cell (MGPS) vs IBM Power5 vs dual Intel Xeon.

Prices the same embarrassingly parallel workload (1..128 independent
bootstrap searches) on the three platforms of the paper's section 6
and renders the figure as a text chart.

Run:  python examples/platform_comparison.py
"""

from repro.harness import get_trace
from repro.port import PortExecutor


def main() -> None:
    executor = PortExecutor(get_trace("quick"))
    series = executor.figure3()

    bootstraps = series[0].bootstraps
    print("execution time (seconds) vs number of bootstraps:\n")
    header = f"{'platform':<22}" + "".join(f"{b:>9}" for b in bootstraps)
    print(header)
    print("-" * len(header))
    for s in series:
        row = f"{s.platform:<22}" + "".join(f"{v:>9.1f}" for v in s.seconds)
        print(row)

    # Text chart (log-ish bars) for the 128-bootstrap endpoint.
    print("\nat 128 bootstraps:")
    peak = max(s.seconds[-1] for s in series)
    for s in series:
        value = s.seconds[-1]
        bar = "#" * int(round(50 * value / peak))
        print(f"  {s.platform:<22} {bar} {value:.0f}s")

    cell, p5, xeon = (s.seconds[-1] for s in series)
    print(f"\n  Cell vs dual Xeon : {xeon / cell:.2f}x "
          "(paper: 'more than a factor of two')")
    print(f"  Cell vs Power5    : {(p5 / cell - 1) * 100:.1f}% "
          "(paper: '9%-10% better')")
    print("\nand the power footnote the paper closes on: Cell draws "
          "27-43W against a reported 150W for the Power5.")


if __name__ == "__main__":
    main()
