#!/usr/bin/env python
"""The paper's optimization story, stage by stage (Tables 1-7).

Traces one real tree search, then prices the traced workload on the
simulated Cell under each cumulative optimization stage, printing the
same rows the paper's tables report and the per-stage improvement.

Run:  python examples/cell_port_walkthrough.py
"""

from repro.harness import get_trace
from repro.port import PortExecutor, paperdata, stage

STORY = [
    ("table1a", "whole application on the PPE (baseline)"),
    ("table1b", "newview() naively offloaded to one SPE"),
    ("table2", "+ SDK exp() numerical implementation"),
    ("table3", "+ integer-cast & vectorized scaling conditional"),
    ("table4", "+ double-buffered DMA (2 KB transfers)"),
    ("table5", "+ SIMD vectorization of the likelihood loops"),
    ("table6", "+ direct memory-to-memory communication"),
    ("table7", "+ makenewz() and evaluate() offloaded too"),
]


def main() -> None:
    print("tracing one search on the synthetic 42_SC stand-in ...")
    executor = PortExecutor(get_trace("quick"))
    model = executor.model

    header = f"{'stage':<10} {'configuration':<48} {'1w/1b':>8} {'2w/32b':>9} {'step':>7}"
    print()
    print(header)
    print("-" * len(header))
    previous = None
    for table, description in STORY:
        one = model.stage_total_s(table, 1, 1)
        big = model.stage_total_s(table, 2, 32)
        if previous is None or table == "table1b":
            step = "-"
        else:
            step = f"{(1 - one / previous) * 100:+.1f}%"
        print(f"{table:<10} {description:<48} {one:>7.1f}s {big:>8.1f}s {step:>7}")
        previous = one

    print("\nderived per-task newview components (seconds, canonical task):")
    print(f"  exp():        {model.nv_exp_lib_s:6.2f} -> {model.nv_exp_sdk_s:.2f} (SDK)")
    print(f"  conditional:  {model.nv_cond_float_s:6.2f} -> {model.nv_cond_int_s:.2f} (int cast)")
    print(f"  DMA wait:     {model.nv_dma_wait_s:6.2f} -> 0.00 (double buffering)")
    print(f"  loops:        {model.nv_loops_scalar_s:6.2f} -> {model.nv_loops_vector_s:.2f} (SIMD)")
    print(f"  per-offload:  {model.comm_mailbox_per_offload * 1e6:6.2f}us -> "
          f"{model.comm_direct_per_offload * 1e6:.2f}us (direct comm)")

    print("\nthe paper's punchlines, reproduced:")
    naive = model.stage_total_s("table1b", 1, 1) / model.stage_total_s("table1a", 1, 1)
    print(f"  * naive offload makes things {naive:.1f}x WORSE")
    best = 1 - model.stage_total_s("table7", 1, 1) / model.stage_total_s("table1a", 1, 1)
    print(f"  * one fully optimized SPE beats the PPE by {best * 100:.0f}%")
    cond = 1 - model.stage_total_s("table3", 1, 1) / model.stage_total_s("table2", 1, 1)
    simd = 1 - model.stage_total_s("table5", 1, 1) / model.stage_total_s("table4", 1, 1)
    print(f"  * vectorizing the CONDITIONAL ({cond * 100:.0f}%) beats "
          f"vectorizing the FP code ({simd * 100:.0f}%)")

    print("\npaper-vs-model, all table cells:")
    for table, cells in model.paper_comparison().items():
        rows = ", ".join(
            f"{key}: {paper:.0f}/{mine:.0f}"
            for key, (paper, mine) in sorted(cells.items())
        )
        print(f"  {table}: {rows}")


if __name__ == "__main__":
    main()
