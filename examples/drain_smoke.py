"""Smoke-test graceful drain across a real SIGTERM and restart.

Unlike ``serve_smoke.py`` (in-process server), this drives the actual
CLI entry point as a subprocess — the same process boundary an
operator's init system sees:

1. start ``repro.phylo.cli serve`` on a free port and wait for
   ``/readyz``,
2. submit a job big enough to still be running when the signal lands,
3. send SIGTERM and assert the drain contract: ``/readyz`` flips to
   503, new submissions get ``503 draining`` + ``Retry-After``, and
   the process exits cleanly within the grace budget,
4. restart the server on the *same* state root and assert the drained
   job resumes to completion on its own,
5. run the identical submission in a fresh root and assert the resumed
   result is bit-identical (same digest, same payload).

Run with ``PYTHONPATH=src python examples/drain_smoke.py``.  Exits
nonzero on any contract violation; the CI ``serve`` job runs it.
"""

import http.client
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time

N_BOOTSTRAPS = 24
DRAIN_GRACE_S = 20.0


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def http_json(port, method, path, payload=None, timeout=5.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        body = json.dumps(payload).encode() if payload is not None else None
        conn.request(method, path, body=body)
        response = conn.getresponse()
        blob = response.read()
        return response.status, dict(response.getheaders()), \
            json.loads(blob) if blob else None
    finally:
        conn.close()


def start_server(root: str, port: int) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.phylo.cli", "serve",
         "--root", root, "--port", str(port), "--workers", "2",
         "--drain-grace", str(DRAIN_GRACE_S)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            out = proc.stdout.read().decode()
            raise RuntimeError(f"server died on startup:\n{out}")
        try:
            status, _, body = http_json(port, "GET", "/readyz")
            if status == 200 and body["ready"]:
                return proc
        except OSError:
            pass
        time.sleep(0.05)
    proc.kill()
    raise RuntimeError("server never became ready")


def wait_state(port, job_id, want, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, _, body = http_json(port, "GET", f"/jobs/{job_id}")
        if body["state"] in want:
            return body
        time.sleep(0.05)
    raise RuntimeError(f"job {job_id} never reached {want}")


def main() -> int:
    from repro.phylo import synthetic_dataset

    # Big enough that a replicate takes a noticeable fraction of a
    # second — the drain can only unwind at a safe point, so this sets
    # the width of the observable "draining" window.
    fasta = synthetic_dataset(n_taxa=12, n_sites=600, seed=3).to_fasta()
    submission = {
        "alignment": fasta,
        "model": {"n_inferences": 1, "n_bootstraps": N_BOOTSTRAPS,
                  "seed": 11},
        "client": "drain-smoke",
    }
    root = tempfile.mkdtemp(prefix="repro-drain-smoke-")
    port = free_port()

    server = start_server(root, port)
    print(f"server pid {server.pid} on port {port} (root {root})")

    status, _, body = http_json(port, "POST", "/jobs", submission)
    assert status == 201, (status, body)
    job_id = body["job_id"]
    print(f"submitted {job_id}")
    wait_state(port, job_id, {"running"})
    print("job running; sending SIGTERM")

    t_signal = time.monotonic()
    server.send_signal(signal.SIGTERM)

    # The drain window: readiness flips and submissions bounce while the
    # in-flight job unwinds to a checkpoint.  Each probe opens a fresh
    # connection and tolerates the listener closing under it — the two
    # observations are independent so a late OSError on one can't mask
    # the other.
    saw_not_ready = saw_rejection = False
    observations = []
    while server.poll() is None and not (saw_not_ready and saw_rejection):
        if not saw_not_ready:
            try:
                status, _, body = http_json(port, "GET", "/readyz",
                                            timeout=1.0)
                observations.append(("GET /readyz", status, body))
                if status == 503 and body.get("draining"):
                    saw_not_ready = True
            except OSError:
                pass
        if not saw_rejection:
            try:
                status, headers, body = http_json(port, "POST", "/jobs",
                                                  submission, timeout=1.0)
                observations.append(("POST /jobs", status, body))
                if status == 503 and body.get("error") == "draining":
                    saw_rejection = True
                    assert "Retry-After" in headers, headers
                    assert body["retry_after_s"] > 0, body
            except OSError:
                pass
    assert saw_not_ready, \
        f"/readyz never reported draining; saw {observations}"
    assert saw_rejection, \
        f"submission was not rejected during drain; saw {observations}"
    print("drain contract held: readyz 503, submit 503 + Retry-After")

    server.wait(timeout=DRAIN_GRACE_S + 10.0)
    elapsed = time.monotonic() - t_signal
    assert elapsed < DRAIN_GRACE_S + 5.0, \
        f"exit took {elapsed:.1f}s, grace is {DRAIN_GRACE_S}s"
    print(f"server exited cleanly in {elapsed:.1f}s")

    # Restart on the same root: the drained job resumes by itself.
    server = start_server(root, port)
    try:
        done = wait_state(port, job_id, {"done", "failed"})
        assert done["state"] == "done", done
        assert not done.get("degraded"), done
        status, _, resumed = http_json(port, "GET",
                                       f"/jobs/{job_id}/result")
        assert status == 200, (status, resumed)
        print(f"resumed to completion: digest {resumed['digest'][:12]}...")
    finally:
        server.send_signal(signal.SIGTERM)
        server.wait(timeout=DRAIN_GRACE_S + 10.0)

    # Bit-identity: the same submission in a fresh root must agree.
    baseline_root = tempfile.mkdtemp(prefix="repro-drain-baseline-")
    baseline_server = start_server(baseline_root, port)
    try:
        status, _, body = http_json(port, "POST", "/jobs", submission)
        assert status == 201, (status, body)
        done = wait_state(port, body["job_id"], {"done", "failed"})
        assert done["state"] == "done", done
        status, _, baseline = http_json(
            port, "GET", f"/jobs/{body['job_id']}/result")
        assert status == 200
    finally:
        baseline_server.send_signal(signal.SIGTERM)
        baseline_server.wait(timeout=DRAIN_GRACE_S + 10.0)

    assert resumed["digest"] == baseline["digest"], \
        (resumed["digest"], baseline["digest"])
    assert json.dumps(resumed, sort_keys=True) == \
        json.dumps(baseline, sort_keys=True)
    print("resumed result is bit-identical to the uninterrupted baseline")
    print("drain smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
