#!/usr/bin/env python
"""Quickstart: infer a maximum-likelihood tree with repro.phylo.

This is the application side of the reproduction — the RAxML-style
workflow on its own, no Cell simulation involved:

1. obtain an alignment (here: simulated, but FASTA/PHYLIP files work),
2. compress it into weighted site patterns,
3. build a randomized stepwise-addition parsimony starting tree,
4. run rapid hill climbing (lazy SPR) under GTR+Gamma,
5. print the tree and its log likelihood.

Run:  python examples/quickstart.py
"""

from repro.phylo import (
    Alignment,
    SearchConfig,
    infer_tree,
    synthetic_dataset,
)


def main() -> None:
    # --- 1. an alignment ---------------------------------------------------
    # Real data would load with Alignment.from_fasta("my.fasta") or
    # Alignment.from_phylip("my.phy"); here we simulate 12 taxa x 800
    # sites of DNA under GTR+Gamma so the example is self-contained.
    alignment = synthetic_dataset(n_taxa=12, n_sites=800, seed=7)
    print(f"alignment: {alignment.n_taxa} taxa x {alignment.n_sites} sites")

    # --- 2. pattern compression --------------------------------------------
    patterns = alignment.compress()
    print(
        f"compressed to {patterns.n_patterns} site patterns "
        f"({alignment.n_sites / patterns.n_patterns:.1f}x smaller kernels)"
    )

    # --- 3-4. one full inference -------------------------------------------
    # infer_tree = parsimony starting tree + branch smoothing + SPR hill
    # climbing.  The default model is GTR with empirical base frequencies
    # and four discrete Gamma rate categories (RAxML's defaults).
    result = infer_tree(
        patterns,
        config=SearchConfig(initial_radius=2, max_radius=4, max_rounds=4),
        seed=0,
    )

    # --- 5. results ----------------------------------------------------------
    print(f"\nlog likelihood : {result.log_likelihood:.4f}")
    print(f"SPR rounds     : {result.search.rounds}")
    print(f"moves accepted : {result.search.accepted_moves} "
          f"(of {result.search.evaluated_moves} evaluated)")
    print(f"newview calls  : {result.newview_calls}")
    print(f"\nbest tree (newick):\n{result.newick}")


if __name__ == "__main__":
    main()
