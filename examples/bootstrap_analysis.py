#!/usr/bin/env python
"""A publishable analysis: multiple inferences + bootstraps + supports.

Reproduces the paper's section 3.1 workflow — the workload whose
embarrassing parallelism the whole Cell port exploits:

* several independent tree searches from distinct randomized
  stepwise-addition starting trees (to find the best-known ML tree),
* non-parametric bootstrap replicates on re-weighted alignments,
* bootstrap support values mapped onto the best tree's branches.

Run:  python examples/bootstrap_analysis.py
"""

from repro.phylo import SearchConfig, run_full_analysis, synthetic_dataset


def main() -> None:
    alignment = synthetic_dataset(n_taxa=10, n_sites=600, seed=3)
    patterns = alignment.compress()
    print(
        f"dataset: {alignment.n_taxa} taxa x {alignment.n_sites} sites "
        f"({patterns.n_patterns} patterns)"
    )

    # A real analysis would use 20-200 inferences and 100-1,000
    # bootstraps (paper section 3.1); scaled down to stay interactive.
    analysis = run_full_analysis(
        patterns,
        n_inferences=3,
        n_bootstraps=10,
        config=SearchConfig(initial_radius=2, max_radius=3, max_rounds=3),
        seed=1,
    )

    print("\nindependent inferences (distinct starting trees):")
    for result in analysis.inferences:
        marker = "  <- best" if result is analysis.best else ""
        print(f"  inference {result.replicate}: "
              f"lnL = {result.log_likelihood:.3f}{marker}")

    print(f"\nbootstrap replicates: {len(analysis.bootstraps)}")
    spread = [round(b.log_likelihood, 1) for b in analysis.bootstraps]
    print(f"  replicate lnL spread: {min(spread)} .. {max(spread)}")

    print("\nbranch supports on the best tree:")
    for split, support in sorted(
        analysis.supports.items(), key=lambda kv: -kv[1]
    ):
        members = ",".join(sorted(split))
        print(f"  {support * 100:5.1f}%  {{{members}}}")

    print(f"\nbest tree:\n{analysis.best.newick}")


if __name__ == "__main__":
    main()
