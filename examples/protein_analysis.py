#!/usr/bin/env python
"""Amino-acid inference: the paper's "DNA or AA sequences" other half.

Simulates a small protein family under Poisson+F (equal
exchangeabilities, empirical frequencies — the 20-state Jukes-Cantor),
then runs the identical machinery used for DNA: pattern compression,
Fitch parsimony over 20-bit state sets, GTR-class eigendecomposition of
the 20x20 rate matrix, and lazy-SPR hill climbing.

Run:  python examples/protein_analysis.py
"""

import numpy as np

from repro.phylo import (
    AA_STATES,
    GammaRates,
    PoissonAA,
    ProteinAlignment,
    SearchConfig,
    Tree,
    ascii_tree,
    fitch_score,
    infer_tree,
    robinson_foulds,
    stepwise_addition_tree,
)


def simulate_family(n_taxa: int = 9, n_sites: int = 200, seed: int = 4):
    """A crude protein family: successive divergence from one ancestor."""
    rng = np.random.default_rng(seed)
    ancestor = "".join(rng.choice(list(AA_STATES), n_sites))
    sequences = {"P000": ancestor}
    names = list(sequences)
    for i in range(1, n_taxa):
        parent = sequences[names[rng.integers(len(names))]]
        mutant = list(parent)
        for k in rng.choice(n_sites, size=n_sites // 8, replace=False):
            mutant[k] = rng.choice(list(AA_STATES))
        name = f"P{i:03d}"
        sequences[name] = "".join(mutant)
        names.append(name)
    return ProteinAlignment.from_sequences(sequences)


def main() -> None:
    alignment = simulate_family()
    patterns = alignment.compress()
    print(f"protein alignment: {alignment.n_taxa} taxa x "
          f"{alignment.n_sites} sites ({patterns.n_patterns} patterns, "
          f"20-state alphabet)")

    starting = stepwise_addition_tree(patterns, np.random.default_rng(1))
    print(f"parsimony starting tree: {fitch_score(starting, patterns):.0f} "
          "changes (Fitch over 20-bit state sets)")

    result = infer_tree(
        patterns,
        model=PoissonAA(tuple(patterns.base_frequencies())),
        rate_model=GammaRates(0.9, 4),
        config=SearchConfig(initial_radius=2, max_radius=3, max_rounds=3),
        seed=0,
    )
    print(f"ML tree under Poisson+F+Gamma: lnL = {result.log_likelihood:.3f}")
    print(f"SPR moves accepted: {result.search.accepted_moves}")

    inferred = Tree.from_newick(result.newick)
    moved = robinson_foulds(starting, inferred)
    print(f"RF distance from the parsimony start: {moved:.0f}")
    print()
    print(ascii_tree(inferred))


if __name__ == "__main__":
    main()
