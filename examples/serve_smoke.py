"""Smoke-test the inference service end to end over a real socket.

Starts the asyncio HTTP server in-process on an ephemeral port, then
drives the full client workflow with raw HTTP/1.1:

1. submit a small synthetic job (``POST /jobs``),
2. stream its run journal to completion (``GET /jobs/{id}/events``),
3. fetch the finished result (``GET /jobs/{id}/result``),
4. resubmit the same alignment with shuffled taxa — and assert the
   content-addressed cache serves it without scheduling a single new
   cluster task.

Run with ``PYTHONPATH=src python examples/serve_smoke.py``.  Exits
nonzero on any contract violation; the CI ``serve`` job runs it.
"""

import asyncio
import json
import tempfile

from repro.phylo import synthetic_dataset
from repro.serve import JobService, ServeApp

N_WORKERS = 2


async def http(host, port, method, path, payload=None):
    reader, writer = await asyncio.open_connection(host, port)
    head = f"{method} {path} HTTP/1.1\r\nHost: smoke\r\n"
    if payload is not None:
        head += f"Content-Length: {len(payload)}\r\n"
    head += "\r\n"
    writer.write(head.encode() + (payload or b""))
    await writer.drain()
    raw = await reader.read()
    writer.close()
    status = int(raw.split(b" ", 2)[1])
    return status, raw.partition(b"\r\n\r\n")[2]


async def main() -> int:
    fasta = synthetic_dataset(n_taxa=6, n_sites=120, seed=3).to_fasta()
    root = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    app = ServeApp(JobService(root, n_workers=N_WORKERS), port=0)
    await app.start()
    host, port = app.host, app.port
    print(f"serving on {host}:{port} (root {root})")

    submission = json.dumps({
        "alignment": fasta,
        "model": {"n_inferences": 1, "n_bootstraps": 4, "seed": 11},
        "client": "smoke",
    }).encode()
    status, body = await http(host, port, "POST", "/jobs", submission)
    assert status == 201, (status, body)
    job = json.loads(body)
    print(f"submitted {job['job_id']} (digest {job['digest'][:12]}...)")

    status, stream = await http(host, port, "GET",
                                f"/jobs/{job['job_id']}/events")
    assert status == 200
    events = [line.split(": ", 1)[1] for line in stream.decode().splitlines()
              if line.startswith("event: ")]
    print(f"streamed {len(events)} events: "
          f"{events[0]} ... {events[-1]}")
    assert events[-1] == "run_finished", events

    status, body = await http(host, port, "GET",
                              f"/jobs/{job['job_id']}/result")
    assert status == 200, (status, body)
    result = json.loads(body)
    print(f"best lnL {result['best_log_likelihood']:.4f}, "
          f"{result['n_bootstraps_used']} bootstraps, "
          f"consensus {result['consensus_newick']}")

    # Same content, different presentation: reversed record order.
    lines = fasta.strip().split("\n")
    shuffled = "".join(
        f"{name}\n{seq}\n"
        for name, seq in reversed(list(zip(lines[::2], lines[1::2])))
    )
    duplicate = json.dumps({
        "alignment": shuffled,
        "model": {"n_inferences": 1, "n_bootstraps": 4, "seed": 11},
        "client": "smoke-2",
    }).encode()
    status, body = await http(host, port, "POST", "/jobs", duplicate)
    assert status == 200, (status, body)  # 200 = served from cache
    assert json.loads(body)["cached"] is True

    status, body = await http(host, port, "GET", "/stats")
    stats = json.loads(body)
    print(f"stats: {stats}")
    assert stats["runs_executed"] == 1, "cache hit scheduled a new run!"

    await app.stop()
    print("serve smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(asyncio.run(main()))
