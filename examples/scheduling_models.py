#!/usr/bin/env python
"""EDTLP vs LLP vs MGPS on the discrete-event Cell (Table 8).

Runs the three scheduling models of paper section 5.3 through the
event-driven simulator — master-worker MPI messages, PPE queueing with
SMT contention, switch-on-offload context switches, SPE execution —
and shows why the dynamic MGPS scheduler wins at every bootstrap count.

Run:  python examples/scheduling_models.py
"""

from repro.harness import get_trace
from repro.port import PortExecutor, paperdata, stage


def main() -> None:
    executor = PortExecutor(get_trace("quick"), devs_batches_per_task=24)
    model = executor.model

    print("Table 8 (MGPS), analytic vs discrete-event vs paper:")
    print(f"{'bootstraps':>11} {'paper':>9} {'analytic':>9} {'DEVS':>9}")
    for b, paper_value in paperdata.TABLE8.items():
        analytic = model.mgps_total_s(b)
        devs = executor.mgps_devs(b).makespan_s
        print(f"{b:>11} {paper_value:>8.1f}s {analytic:>8.1f}s {devs:>8.1f}s")

    print("\nwhy EDTLP saturates (8 bootstraps, 8 oversubscribed workers):")
    edtlp = executor.edtlp_devs(8)
    print(f"  makespan          : {edtlp.makespan_s:.1f}s")
    print(f"  PPE utilization   : {edtlp.ppe_utilization * 100:.0f}%  "
          "<- the bottleneck: 8 workers, 2 SMT threads")
    print(f"  mean SPE util     : {edtlp.mean_spe_utilization * 100:.0f}%")
    print(f"  MPI messages      : {edtlp.mpi_messages}")

    print("\nLLP speedup of one task's SPE work vs SPEs used:")
    for n in (1, 2, 4, 8):
        print(f"  {n} SPEs: {model.llp_speedup(n):.2f}x "
              f"-> task takes {model.llp_task_s(n):.1f}s")

    print("\nMGPS decisions for 11 bootstraps:")
    result = executor.mgps_devs(11)
    for phase in result.phases:
        print(f"  {phase.mode.upper():<6} consumed {phase.n_tasks} tasks "
              f"in {phase.duration_s:.1f}s")
    print(f"  total: {result.makespan_s:.1f}s")

    from repro.cell import render_timeline

    print("\nEDTLP phase timeline (note the saturated PPE row):")
    print(render_timeline(result.phases[0].detail.chip, width=64))
    print("\nLLP phase timeline (loop slices fan out across SPEs):")
    print(render_timeline(result.phases[1].detail.chip, width=64))

    static = model.run_total_s(stage("table7"), 2, 11)
    print(f"\nstatic 2-worker mapping of the same 11 tasks: {static:.1f}s "
          f"({static / result.makespan_s:.2f}x slower than MGPS)")


if __name__ == "__main__":
    main()
