#!/usr/bin/env python
"""Real parallel bootstrapping on host cores (the MPI layer, executed).

The paper's master-worker MPI scheme (section 3.1) distributes
independent tree searches across ranks; this example runs the same
workload with a process pool and shows that parallel results are
bit-identical to serial ones (deterministic per-task seeding), then
prints the best tree as an ASCII cladogram with bootstrap supports.

Run:  python examples/parallel_bootstrap.py
"""

import time

from repro.phylo import (
    SearchConfig,
    Tree,
    ascii_tree,
    newick_with_support,
    parallel_analysis,
    run_full_analysis,
    synthetic_dataset,
)


def main() -> None:
    alignment = synthetic_dataset(n_taxa=10, n_sites=500, seed=11)
    patterns = alignment.compress()
    config = SearchConfig(initial_radius=2, max_radius=3, max_rounds=2)
    jobs = dict(n_inferences=2, n_bootstraps=6, config=config, seed=3)

    t0 = time.time()
    serial = run_full_analysis(patterns, **jobs)
    t_serial = time.time() - t0

    t0 = time.time()
    parallel = parallel_analysis(patterns, n_workers=4, **jobs)
    t_parallel = time.time() - t0

    print(f"serial   : {t_serial:.1f}s")
    print(f"parallel : {t_parallel:.1f}s (4 workers)")
    identical = (
        parallel.best.newick == serial.best.newick
        and parallel.supports == serial.supports
    )
    print(f"results bit-identical to serial: {identical}")

    best_tree = Tree.from_newick(parallel.best.newick)
    print(f"\nbest tree (lnL {parallel.best.log_likelihood:.2f}):")
    print(ascii_tree(best_tree))
    print("\nwith bootstrap supports (RAxML bipartition convention):")
    print(newick_with_support(best_tree, parallel.supports))


if __name__ == "__main__":
    main()
