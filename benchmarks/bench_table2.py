"""Regenerates Table 2 of the paper (see repro.harness.experiments)."""

from repro.harness import run_experiment


def test_table2(benchmark, show):
    result = benchmark(run_experiment, "table2")
    show("table2")
    result.assert_shape()
