"""Regenerates Table 8 (MGPS dynamic scheduling) — analytic and DEVS.

The benchmarked callables are (a) the closed-form MGPS composition used
for the headline numbers and (b) the full discrete-event run (EDTLP
batches over the master-worker MPI layer + LLP tail), which exercises
the Cell component simulator end to end.
"""

from repro.harness import run_experiment
from repro.port import paperdata as P


def test_table8_analytic(benchmark, show):
    result = benchmark(run_experiment, "table8")
    show("table8")
    result.assert_shape()


def test_table8_devs_mgps_32_bootstraps(benchmark, executor):
    result = benchmark.pedantic(
        executor.mgps_devs, args=(32,), rounds=2, iterations=1
    )
    paper = P.TABLE8[32]
    assert abs(result.makespan_s - paper) / paper < 0.20
    assert result.edtlp_tasks == 32


def test_table8_devs_single_bootstrap_llp(benchmark, executor):
    result = benchmark.pedantic(
        executor.mgps_devs, args=(1,), rounds=3, iterations=1
    )
    paper = P.TABLE8[1]
    assert abs(result.makespan_s - paper) / paper < 0.20
    assert result.llp_tasks == 1
