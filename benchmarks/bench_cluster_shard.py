"""Sharded WAL append throughput vs the single-journal funnel.

The seed's cluster layer serializes every durable write through the
master's single ``RunJournal`` — workers hand results back over a pipe
and one process appends them.  That is exactly the serial section the
paper's offload pipeline removes from in front of its parallel workers,
so this benchmark measures the funnel directly:

* **funnel** — ``N_GROUPS`` producer processes build result records and
  push them through one ``multiprocessing.Queue`` to a single appender
  holding one :class:`~repro.cluster.checkpoint.RunJournal` (the seed
  architecture);
* **sharded** — the same producers each own a
  :class:`~repro.cluster.shards.ShardWriter` on their own WAL shard
  behind a manifest and append directly: no queue, no shared fd.

Both arms genuinely write ``N_GROUPS * RECORDS_PER_GROUP`` records with
representative ``replicate_done`` payloads and are timed end-to-end
(producer start to last byte appended).  Afterwards both layouts replay
to the same payload key set — the merge-replay equivalence that makes
sharding a format change, not a semantics change.

A second section measures what snapshot compaction buys at resume
time: a sharded journal with a retry-heavy history (every result
re-delivered ``DUPLICATES`` times plus scheduling chatter) is replayed
before and after :func:`~repro.cluster.shards.compact_sharded`, and the
compacted generation must hold O(live results) records, not O(history).

Claims checked:

* funnel and sharded layouts replay to identical payload key sets;
* sharded append throughput >= ``MIN_SPEEDUP`` x funnel throughput —
  asserted only on >= 4 cores (with fewer cores the producers serialize
  on the CPU and the ratio measures the scheduler, not the WAL);
* compaction shrinks the retry-heavy journal to at most
  ``live results + 3`` records and the recovered state is identical.

Wall times and throughputs are recorded unconditionally; only the
core-gated speedup claim is asserted.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_cluster_shard.py
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from pathlib import Path

from repro.cluster import RunJournal, replay
from repro.cluster.shards import ShardWriter, ShardedJournal, compact_sharded

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

N_GROUPS = 4
RECORDS_PER_GROUP = 2000
MIN_SPEEDUP = 2.0
MIN_CORES_FOR_ASSERT = 4

#: Retry-heavy history for the compaction section.
LIVE_RESULTS = 200
DUPLICATES = 5

NEWICK = ("((a:0.01,b:0.02):0.03,(c:0.01,d:0.02):0.03,"
          "(e:0.01,f:0.02):0.03);")


def _payload(group: int, index: int) -> dict:
    replicate = group * RECORDS_PER_GROUP + index
    return {
        "kind": "bootstrap",
        "replicate": replicate,
        "newick": NEWICK,
        "log_likelihood": -1234.5 - replicate,
        "perf": {"newview_calls": 17, "pmat_hits": 5},
    }


def _produce_to_queue(group: int, queue) -> None:
    for index in range(RECORDS_PER_GROUP):
        payload = _payload(group, index)
        queue.put((f"bootstrap/{payload['replicate']}", payload))
    queue.put(None)


def _run_funnel(journal_path: str) -> float:
    """The seed architecture: one appender drains every producer."""
    queue: "mp.Queue" = mp.Queue(maxsize=1024)
    producers = [
        mp.Process(target=_produce_to_queue, args=(group, queue))
        for group in range(N_GROUPS)
    ]
    start = time.perf_counter()
    for proc in producers:
        proc.start()
    finished = 0
    with RunJournal(journal_path) as journal:
        journal.append("run_started", spec={"bench": "cluster_shard"})
        while finished < N_GROUPS:
            item = queue.get()
            if item is None:
                finished += 1
                continue
            task, payload = item
            journal.append("replicate_done", task=task, attempt=1,
                           payload=payload)
        journal.append("run_finished", n_results=N_GROUPS * RECORDS_PER_GROUP)
    elapsed = time.perf_counter() - start
    for proc in producers:
        proc.join()
    return elapsed


def _produce_to_shard(path: str, group: int) -> None:
    with ShardWriter(path, group=group) as shard:
        for index in range(RECORDS_PER_GROUP):
            payload = _payload(group, index)
            shard.append("replicate_done",
                         task=f"bootstrap/{payload['replicate']}",
                         attempt=1, payload=payload)


def _run_sharded(manifest_path: str) -> float:
    """Each producer appends straight to its own WAL shard."""
    journal = ShardedJournal(manifest_path, n_shards=N_GROUPS,
                             compact_threshold=10 ** 9)
    journal.append("run_started", spec={"bench": "cluster_shard"})
    writers = [
        mp.Process(target=_produce_to_shard,
                   args=(journal.shard_path(group), group))
        for group in range(N_GROUPS)
    ]
    start = time.perf_counter()
    for proc in writers:
        proc.start()
    for proc in writers:
        proc.join()
    journal.append("run_finished", n_results=N_GROUPS * RECORDS_PER_GROUP)
    elapsed = time.perf_counter() - start
    journal.close()
    return elapsed


def _compaction_section(workdir: Path) -> dict:
    """Replay cost before/after compacting a retry-heavy history."""
    manifest = str(workdir / "history.jsonl")
    journal = ShardedJournal(manifest, n_shards=N_GROUPS,
                             compact_threshold=10 ** 9)
    journal.append("run_started", spec={"bench": "cluster_shard"})
    for replicate in range(LIVE_RESULTS):
        group = replicate % N_GROUPS
        task = f"bootstrap/{replicate}"
        payload = {"kind": "bootstrap", "replicate": replicate,
                   "newick": NEWICK, "log_likelihood": -1000.0 - replicate}
        with ShardWriter(journal.shard_path(group), group=group) as shard:
            for attempt in range(1, DUPLICATES + 1):
                shard.append("task_started", task=task, attempt=attempt)
                shard.append("replicate_done", task=task, attempt=attempt,
                             payload=payload)
                shard.append("task_finished", task=task, attempt=attempt)
    journal.close()

    history_records = journal.live_record_count()
    start = time.perf_counter()
    before = replay(manifest)
    full_replay_s = time.perf_counter() - start

    compact_sharded(manifest)
    start = time.perf_counter()
    after = replay(manifest)
    compacted_replay_s = time.perf_counter() - start
    # Everything replay still has to read: the snapshot plus whatever
    # landed in the new generation's live shards (nothing, here).
    compacted_count = (int(after.shards.get("snapshot_records") or 0)
                       + sum(after.shards["records"].values()))

    assert after.payloads == before.payloads, \
        "compaction changed the recovered results"
    assert compacted_count <= LIVE_RESULTS + 3, (
        f"compacted journal holds {compacted_count} records for "
        f"{LIVE_RESULTS} live results — replay is not O(live)"
    )
    return {
        "live_results": LIVE_RESULTS,
        "duplicates_per_result": DUPLICATES,
        "history_records": history_records,
        "compacted_records": compacted_count,
        "full_replay_seconds": full_replay_s,
        "compacted_replay_seconds": compacted_replay_s,
        "replay_speedup": (full_replay_s / compacted_replay_s
                           if compacted_replay_s > 0 else None),
    }


def main() -> int:
    import tempfile

    workdir = Path(tempfile.mkdtemp(prefix="bench-cluster-shard-"))
    total = N_GROUPS * RECORDS_PER_GROUP

    funnel_wall = _run_funnel(str(workdir / "funnel.jsonl"))
    print(f"funnel:  {total} records through 1 journal in "
          f"{funnel_wall:.2f}s ({total / funnel_wall:,.0f} rec/s)")

    sharded_wall = _run_sharded(str(workdir / "sharded.jsonl"))
    print(f"sharded: {total} records across {N_GROUPS} WAL shards in "
          f"{sharded_wall:.2f}s ({total / sharded_wall:,.0f} rec/s)")

    funnel_state = replay(str(workdir / "funnel.jsonl"))
    sharded_state = replay(str(workdir / "sharded.jsonl"))
    assert funnel_state.corrupt_records == 0
    assert sharded_state.corrupt_records == 0
    assert set(funnel_state.payloads) == set(sharded_state.payloads), \
        "layouts disagree on the recovered result set"
    assert len(funnel_state.payloads) == total

    speedup = funnel_wall / sharded_wall
    cores = os.cpu_count() or 1
    print(f"speedup: {speedup:.2f}x on {cores} core(s)")
    if cores >= MIN_CORES_FOR_ASSERT:
        assert speedup >= MIN_SPEEDUP, (
            f"sharded append only {speedup:.2f}x the funnel on "
            f"{cores} cores (need >= {MIN_SPEEDUP}x)"
        )
    else:
        print(f"speedup assertion skipped: {cores} core(s) < "
              f"{MIN_CORES_FOR_ASSERT} (ratio recorded, not gated)")

    compaction = _compaction_section(workdir)
    print(f"compaction: {compaction['history_records']} history records "
          f"-> {compaction['compacted_records']} live; replay "
          f"{compaction['full_replay_seconds']:.3f}s -> "
          f"{compaction['compacted_replay_seconds']:.3f}s")

    from repro.harness.report import merge_bench_section

    section = {
        "n_groups": N_GROUPS,
        "records_per_group": RECORDS_PER_GROUP,
        "total_records": total,
        "cores": cores,
        "funnel": {"wall_seconds": funnel_wall,
                   "records_per_second": total / funnel_wall},
        "sharded": {"wall_seconds": sharded_wall,
                    "records_per_second": total / sharded_wall},
        "append_speedup": speedup,
        "speedup_asserted": cores >= MIN_CORES_FOR_ASSERT,
        "min_speedup": MIN_SPEEDUP,
        "compaction": compaction,
    }
    merge_bench_section(RESULT_PATH, "cluster_shard", section)
    print(f"bench_cluster_shard: OK — wrote 'cluster_shard' section to "
          f"{RESULT_PATH.name} ({speedup:.2f}x append speedup, "
          f"{'asserted' if section['speedup_asserted'] else 'recorded'})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
