"""autoMRE bootstopping benchmark: early stop vs the full fixed budget.

Runs the same bootstrap job twice on a 12-taxon synthetic workload (a
scaled-down stand-in for the paper's 42_SC dataset, sized so both arms
actually execute in CI):

* **autoMRE** — requested budget of ``REQUESTED`` replicates with the
  RAxML-default convergence criterion (permuted half-split support
  agreement); the run stops at the journalled ``stop_at`` checkpoint.
* **fixed** — the full ``REQUESTED``-replicate budget executed for
  real, no stopping criterion.

Both arms are genuinely executed; no replicate count is extrapolated.
The section written to ``BENCH_engine.json`` records the wall time of
each arm, the executed replicate counts, the journalled convergence
decision, and the support agreement between the early-stopped consensus
and the full-budget consensus.

Claims checked:

* autoMRE stops strictly before the requested budget and executes
  exactly ``stop_at`` replicates;
* the early-stopped supports agree with the full-budget supports to
  within ``MAX_MEAN_SUPPORT_DIFF`` on average, and every
  majority-rule verdict (support >= 0.5) matches.

Wall times are recorded for context but not asserted on: the savings
metric that is deterministic across machines is the executed replicate
count (wall clock on a loaded CI runner is too noisy to gate on).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_bootstop.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.cluster import BootstopConfig, JobSpec, job_status, run_job
from repro.phylo import SearchConfig, synthetic_dataset

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

N_TAXA = 12
N_SITES = 300
DATA_SEED = 42
JOB_SEED = 7
REQUESTED = 200
N_WORKERS = 2
BOOTSTOP = BootstopConfig(check_every=25, n_permutations=100,
                          threshold=0.03, quorum=0.99)
CONFIG = SearchConfig(initial_radius=1, max_radius=2, max_rounds=2,
                      smoothing_passes=1, final_smoothing_passes=1)

MAX_MEAN_SUPPORT_DIFF = 0.05


def _run(spec: JobSpec, alignment, journal: Path):
    start = time.perf_counter()
    result = run_job(spec, alignment, n_workers=N_WORKERS,
                     journal_path=str(journal))
    return result, time.perf_counter() - start


def _agreement(auto_supports, fixed_supports):
    """Support agreement over the union of observed bipartitions."""
    splits = set(auto_supports) | set(fixed_supports)
    diffs = [abs(auto_supports.get(s, 0.0) - fixed_supports.get(s, 0.0))
             for s in splits]
    majority_match = sum(
        (auto_supports.get(s, 0.0) >= 0.5) == (fixed_supports.get(s, 0.0) >= 0.5)
        for s in splits
    )
    return {
        "n_bipartitions": len(splits),
        "mean_abs_support_diff": sum(diffs) / len(diffs) if diffs else 0.0,
        "max_abs_support_diff": max(diffs, default=0.0),
        "majority_verdicts_matching": majority_match,
        "majority_agreement": majority_match / len(splits) if splits else 1.0,
    }


def main() -> int:
    import tempfile

    alignment = synthetic_dataset(n_taxa=N_TAXA, n_sites=N_SITES,
                                  seed=DATA_SEED)
    workdir = Path(tempfile.mkdtemp(prefix="bench-bootstop-"))

    auto_spec = JobSpec(n_inferences=1, n_bootstraps=REQUESTED,
                        seed=JOB_SEED, batch_size=5, config=CONFIG,
                        bootstop=BOOTSTOP)
    auto, auto_wall = _run(auto_spec, alignment, workdir / "auto.jsonl")
    decision = job_status(str(workdir / "auto.jsonl"))["bootstop"]
    stop_at = decision["stop_at"]
    print(f"autoMRE:   {len(auto.bootstraps)}/{REQUESTED} replicates "
          f"in {auto_wall:.1f}s (stopped at {stop_at}, "
          f"metric {decision['metric']:.4f})")

    fixed_spec = JobSpec(n_inferences=1, n_bootstraps=REQUESTED,
                         seed=JOB_SEED, batch_size=5, config=CONFIG)
    fixed, fixed_wall = _run(fixed_spec, alignment, workdir / "fixed.jsonl")
    print(f"fixed:     {len(fixed.bootstraps)}/{REQUESTED} replicates "
          f"in {fixed_wall:.1f}s")

    agreement = _agreement(auto.supports, fixed.supports)
    print(f"agreement: mean |d| {agreement['mean_abs_support_diff']:.4f}, "
          f"max |d| {agreement['max_abs_support_diff']:.4f}, "
          f"majority {agreement['majority_verdicts_matching']}"
          f"/{agreement['n_bipartitions']}")

    assert stop_at < REQUESTED, "autoMRE never converged within the budget"
    assert len(auto.bootstraps) == stop_at
    assert len(fixed.bootstraps) == REQUESTED
    assert agreement["mean_abs_support_diff"] <= MAX_MEAN_SUPPORT_DIFF, \
        agreement
    assert agreement["majority_agreement"] == 1.0, agreement

    section = {
        "workload": {"n_taxa": N_TAXA, "n_sites": N_SITES,
                     "data_seed": DATA_SEED, "job_seed": JOB_SEED},
        "bootstop_config": BOOTSTOP.to_json(),
        "requested_replicates": REQUESTED,
        "auto": {
            "executed_replicates": len(auto.bootstraps),
            "wall_seconds": auto_wall,
            "decision": decision,
        },
        "fixed": {
            "executed_replicates": len(fixed.bootstraps),
            "wall_seconds": fixed_wall,
        },
        "replicate_savings": 1.0 - stop_at / REQUESTED,
        "wall_speedup": fixed_wall / auto_wall,
        "support_agreement": agreement,
    }
    existing = json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists() \
        else {}
    existing["bootstop"] = section
    RESULT_PATH.write_text(json.dumps(existing, indent=2) + "\n")
    print(f"bench_bootstop: OK — wrote 'bootstop' section to "
          f"{RESULT_PATH.name} ({section['replicate_savings']:.0%} fewer "
          f"replicates, {section['wall_speedup']:.2f}x faster)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
