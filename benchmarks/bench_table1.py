"""Regenerates Table 1 of the paper (see repro.harness.experiments)."""

from repro.harness import run_experiment


def test_table1(benchmark, show):
    result = benchmark(run_experiment, "table1")
    show("table1")
    result.assert_shape()
