"""Model-validation benches: bottom-up estimates and DEVS cross-checks."""

from repro.harness import run_experiment


def test_firstprinciples(benchmark, show):
    result = benchmark(run_experiment, "firstprinciples")
    show("firstprinciples")
    result.assert_shape()


def test_static_devs(benchmark, show):
    result = benchmark.pedantic(
        run_experiment, args=("static_devs",), rounds=2, iterations=1
    )
    show("static_devs")
    result.assert_shape()
