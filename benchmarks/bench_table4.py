"""Regenerates Table 4 of the paper (see repro.harness.experiments)."""

from repro.harness import run_experiment


def test_table4(benchmark, show):
    result = benchmark(run_experiment, "table4")
    show("table4")
    result.assert_shape()
