"""Bench for the paper's section 7 headline claims."""

from repro.harness import run_experiment


def test_conclusion(benchmark, show):
    result = benchmark(run_experiment, "conclusion")
    show("conclusion")
    result.assert_shape()
