"""Regenerates Table 3 of the paper (see repro.harness.experiments)."""

from repro.harness import run_experiment


def test_table3(benchmark, show):
    result = benchmark(run_experiment, "table3")
    show("table3")
    result.assert_shape()
