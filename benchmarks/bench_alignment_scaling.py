"""Bench for the alignment-length scaling projection (section 5.2.4)."""

from repro.harness import run_experiment


def test_alignment_scaling(benchmark, show):
    result = benchmark(run_experiment, "alignment_scaling")
    show("alignment_scaling")
    result.assert_shape()
