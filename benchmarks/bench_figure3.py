"""Regenerates Figure 3: Cell (MGPS) vs IBM Power5 vs 2x Intel Xeon.

Prints the three execution-time series over the paper's bootstrap
sweep (1, 8, 16, 32, 64, 128) and asserts the paper's claims: Cell
wins everywhere, by >2x over the dual Xeon and ~9-10 % over Power5.
"""

from repro.harness import run_experiment
from repro.port import paperdata as P


def test_figure3(benchmark, show):
    result = benchmark(run_experiment, "figure3")
    show("figure3")
    result.assert_shape()


def test_figure3_series_shapes(benchmark, executor):
    series = benchmark(executor.figure3)
    by_name = {s.platform: s for s in series}
    cell = by_name["Cell (MGPS)"].seconds
    p5 = by_name["IBM Power5"].seconds
    xeon = by_name["2x Intel Xeon (HT)"].seconds
    assert by_name["Cell (MGPS)"].bootstraps == tuple(P.FIGURE3_BOOTSTRAPS)
    # Each platform scales ~linearly from 32 -> 128 bootstraps.
    for seq in (cell, p5, xeon):
        assert abs(seq[-1] / seq[3] - 128 / 32) < 1e-6
    # Crossover ordering at every point.
    for c, p, x in zip(cell, p5, xeon):
        assert c < p < x
