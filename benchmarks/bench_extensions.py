"""Benches for the beyond-the-paper extension experiments.

Covers the paper's forward-looking remarks, priced by the model:
single-precision arithmetic (section 6), the code-overlay tax avoided
in section 5.2.4, the second chip of the BSC blade, and CAT-vs-Gamma
rate heterogeneity.
"""

from repro.harness import run_experiment


def test_single_precision(benchmark, show):
    result = benchmark(run_experiment, "single_precision")
    show("single_precision")
    result.assert_shape()


def test_overlays(benchmark, show):
    result = benchmark(run_experiment, "overlays")
    show("overlays")
    result.assert_shape()


def test_dual_cell(benchmark, show):
    result = benchmark(run_experiment, "dual_cell")
    show("dual_cell")
    result.assert_shape()


def test_cat_vs_gamma(benchmark, show):
    result = benchmark.pedantic(
        run_experiment, args=("cat_vs_gamma",), rounds=2, iterations=1
    )
    show("cat_vs_gamma")
    result.assert_shape()
