"""Benches for the power-efficiency and EDTLP-scaling experiments."""

from repro.harness import run_experiment


def test_power_efficiency(benchmark, show):
    result = benchmark(run_experiment, "power_efficiency")
    show("power_efficiency")
    result.assert_shape()


def test_edtlp_scaling(benchmark, show):
    result = benchmark.pedantic(
        run_experiment, args=("edtlp_scaling",), rounds=2, iterations=1
    )
    show("edtlp_scaling")
    result.assert_shape()
