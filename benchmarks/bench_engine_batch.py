"""Before/after benchmark for the batched likelihood pipeline.

Scores a fixed set of SPR neighborhoods on the synthetic 42-taxon
``42_SC`` stand-in twice — once with the serial per-candidate path (the
pre-batching behaviour: apply, three ``makenewz`` calls, ``evaluate``,
revert, for every candidate) and once with the fused multi-candidate
scorer (:meth:`LikelihoodEngine.score_spr_candidates`).  Every
neighborhood is rebuilt from the same base tree, so both paths score the
exact same candidate insertions.  Results (plus full hill-climb wall
times in both modes, for context) are written to ``BENCH_engine.json``
at the repository root so future PRs have a perf trajectory.

Claims checked:

* the batched sweep is at least ``MIN_SPEEDUP`` times faster than the
  serial sweep on the identical candidate set;
* a steady-state smoothing sweep performs zero new CLV-slot
  allocations (the arena's ``grown`` counter stays flat).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_engine_batch.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_batch.py -q -s
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.phylo import (
    GammaRates,
    LikelihoodEngine,
    SearchConfig,
    Tree,
    default_gtr,
    hill_climb,
    stepwise_addition_tree,
    synthetic_dataset,
)
from repro.phylo.search import _apply_spr, _revert_spr, spr_neighborhood

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: The fixed workload: the synthetic ``42_SC`` stand-in.
N_TAXA = 42
N_SITES = 1167
DATA_SEED = 42
TREE_SEED = 7
N_NEIGHBORHOODS = 15
RADIUS = 3
NEWTON_ITERATIONS = 8

#: Acceptance bar: the batched path must at least halve the sweep time.
MIN_SPEEDUP = 2.0


def _setup():
    patterns = synthetic_dataset(
        n_taxa=N_TAXA, n_sites=N_SITES, seed=DATA_SEED
    ).compress()
    model = default_gtr().with_frequencies(patterns.base_frequencies())
    base = stepwise_addition_tree(patterns, np.random.default_rng(TREE_SEED))
    engine = LikelihoodEngine(patterns, model, GammaRates(0.7, 4), base)
    engine.optimize_all_branches(passes=1)
    base_newick = base.to_newick()
    engine.detach()
    return patterns, model, base_newick


def _fresh_engine(patterns, model, base_newick):
    tree = Tree.from_newick(base_newick)
    engine = LikelihoodEngine(patterns, model, GammaRates(0.7, 4), tree)
    engine.evaluate()  # warm the CLV cache, like a search in flight
    return engine, tree


def _score_neighborhood_serial(engine, tree, prune, keep, targets) -> int:
    """The pre-batching hot loop: K full apply/score/revert cycles."""
    scored = 0
    for target in list(targets):
        if target.retired:
            continue
        move = _apply_spr(tree, prune, keep, target)
        for local in list(move.junction.branches):
            engine.makenewz(local, max_iterations=NEWTON_ITERATIONS)
        engine.evaluate(move.connect_branch)
        scored += 1
        prune = _revert_spr(tree, move)
        keep = prune.nodes[0]
    return scored


def _sweep(mode: str) -> dict:
    """Score ``N_NEIGHBORHOODS`` fixed SPR neighborhoods; time it."""
    patterns, model, base_newick = _setup()
    total = 0.0
    candidates = 0
    counters = {}
    for i in range(N_NEIGHBORHOODS):
        engine, tree = _fresh_engine(patterns, model, base_newick)
        inner = [b for b in tree.branches if not b.nodes[0].is_tip]
        prune = inner[i % len(inner)]
        keep = prune.nodes[0]
        targets = spr_neighborhood(tree, prune, keep, RADIUS)
        start = time.perf_counter()
        if mode == "batched":
            engine.score_spr_candidates(
                prune, keep, targets, max_iterations=NEWTON_ITERATIONS
            )
            candidates += len(targets)
        else:
            candidates += _score_neighborhood_serial(
                engine, tree, prune, keep, targets
            )
        total += time.perf_counter() - start
        counters = engine.perf_counters()
        engine.detach()
    return {
        "mode": mode,
        "wall_seconds": total,
        "candidates": candidates,
        "final_engine_counters": counters,
    }


def _full_hill_climb(batch_spr: bool) -> dict:
    """Context numbers: one bounded hill climb in each mode."""
    patterns, model, base_newick = _setup()
    tree = Tree.from_newick(base_newick)
    engine = LikelihoodEngine(patterns, model, GammaRates(0.7, 4), tree)
    try:
        # Warm caches, then verify the steady-state allocation claim.
        engine.optimize_all_branches(passes=1)
        grown_warm = engine._arena.grown
        engine.optimize_all_branches(passes=1)
        steady_state_growth = engine._arena.grown - grown_warm

        config = SearchConfig(
            initial_radius=2, max_radius=3, max_rounds=1, batch_spr=batch_spr
        )
        start = time.perf_counter()
        result = hill_climb(engine, config, np.random.default_rng(TREE_SEED))
        elapsed = time.perf_counter() - start
    finally:
        engine.detach()
    return {
        "batch_spr": batch_spr,
        "wall_seconds": elapsed,
        "log_likelihood": result.log_likelihood,
        "evaluated_moves": result.evaluated_moves,
        "accepted_moves": result.accepted_moves,
        "steady_state_arena_growth": steady_state_growth,
    }


def run_benchmark(write: bool = True, include_context: bool = True) -> dict:
    """Measure both sweep modes; optionally persist to BENCH_engine.json.

    ``write=False`` leaves the committed baseline untouched (the CI
    regression gate in ``bench_engine_regression.py`` measures against
    it and must not overwrite it); ``include_context=False`` skips the
    two full hill climbs for a faster measurement-only run.
    """
    serial = _sweep("serial")
    batched = _sweep("batched")
    speedup = serial["wall_seconds"] / batched["wall_seconds"]
    report = {
        "workload": {
            "n_taxa": N_TAXA,
            "n_sites": N_SITES,
            "data_seed": DATA_SEED,
            "tree_seed": TREE_SEED,
            "neighborhoods": N_NEIGHBORHOODS,
            "radius": RADIUS,
        },
        "neighborhood_sweep": {
            "serial": serial,
            "batched": batched,
            "speedup": speedup,
        },
    }
    if include_context:
        report["hill_climb_context"] = {
            "serial": _full_hill_climb(batch_spr=False),
            "batched": _full_hill_climb(batch_spr=True),
        }
    if write:
        # Merge: other sections (e.g. backend_scaling from
        # bench_engine_backends.py) live in the same file.
        from repro.harness.report import merge_bench_section

        for section, payload in report.items():
            merge_bench_section(RESULT_PATH, section, payload)
    return report


def test_batched_sweep_is_at_least_twice_as_fast():
    report = run_benchmark()
    sweep = report["neighborhood_sweep"]
    serial, batched = sweep["serial"], sweep["batched"]
    # Identical fixed workload on both paths.
    assert serial["candidates"] == batched["candidates"]
    print(
        f"\nserial  : {serial['wall_seconds']:.3f} s "
        f"for {serial['candidates']} candidates"
    )
    print(
        f"batched : {batched['wall_seconds']:.3f} s "
        f"for {batched['candidates']} candidates"
    )
    print(f"speedup : {sweep['speedup']:.2f}x  ->  {RESULT_PATH.name}")
    # Steady-state smoothing sweeps allocate no new CLV slots.
    context = report["hill_climb_context"]
    assert context["serial"]["steady_state_arena_growth"] == 0
    assert context["batched"]["steady_state_arena_growth"] == 0
    # The fused scorer actually ran, and the P-matrix cache pulled its
    # weight.
    final = batched["final_engine_counters"]
    assert final["spr_batch_calls"] > 0
    assert final["pmat_hits"] > 0
    # The headline claim.
    assert sweep["speedup"] >= MIN_SPEEDUP, (
        f"batched sweep only {sweep['speedup']:.2f}x faster "
        f"(need >= {MIN_SPEEDUP}x)"
    )


if __name__ == "__main__":
    test_batched_sweep_is_at_least_twice_as_fast()
