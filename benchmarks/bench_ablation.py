"""Ablation benches: each optimization's standalone contribution.

DESIGN.md calls for ablation benches beyond the paper's cumulative
staging: every Cell optimization is removed alone from the fully
optimized configuration, and each removal must hurt.
"""

from repro.harness import run_experiment


def test_ablation(benchmark, show):
    result = benchmark(run_experiment, "ablation")
    show("ablation")
    result.assert_shape()


def test_ablation_ordering(benchmark, executor):
    """The paper's surprise (section 5.2.5), as standalone deltas: the
    conditional cast matters more than FP vectorization, and the SDK
    exp() dwarfs both."""
    results = benchmark(executor.ablation)
    full = results["full"]
    delta = {k: v - full for k, v in results.items() if k != "full"}
    assert delta["without_sdk_exp"] > delta["without_int_conditionals"]
    assert delta["without_int_conditionals"] > delta["without_vectorize"]
    assert delta["without_vectorize"] > delta["without_double_buffering"]
