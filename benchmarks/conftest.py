"""Shared fixtures for the benchmark suite.

Run with::

    pytest benchmarks/ --benchmark-only

Each ``bench_table*.py`` / ``bench_figure3.py`` file regenerates one
table or figure of the paper: it benchmarks the code that produces the
numbers, prints the paper-vs-measured rows, and asserts the paper's
qualitative shape claims.  The workload trace (one instrumented tree
search) is computed once per session and cached.
"""

from __future__ import annotations

import pytest

from repro.harness import get_trace, render_experiment, run_experiment
from repro.port import PortExecutor


@pytest.fixture(scope="session")
def trace():
    return get_trace("quick")


@pytest.fixture(scope="session")
def executor(trace):
    return PortExecutor(trace, devs_batches_per_task=24)


@pytest.fixture(scope="session")
def show():
    """Print an experiment's paper-vs-measured block once per session."""
    shown = set()

    def _show(name: str):
        if name not in shown:
            shown.add(name)
            print()
            print(render_experiment(run_experiment(name)))

    return _show
