"""Component-level micro-benchmarks (paper sections 5.2.4 / 5.2.6 / 5.2.7).

These drive the discrete-event Cell components directly: PPE<->SPE
signalling round trips (mailbox vs direct memory), DMA strip-mining
with and without double buffering, and local-store footprint checks.
They are the experiments that calibrate/validate the per-offload
constants of the analytic cost model.
"""

from repro.harness import run_experiment


def test_micro_comm(benchmark, show):
    result = benchmark.pedantic(
        run_experiment, args=("micro_comm",), rounds=2, iterations=1
    )
    show("micro_comm")
    result.assert_shape()


def test_micro_dma(benchmark, show):
    result = benchmark(run_experiment, "micro_dma")
    show("micro_dma")
    result.assert_shape()


def test_micro_localstore(benchmark, show):
    result = benchmark(run_experiment, "micro_localstore")
    show("micro_localstore")
    result.assert_shape()
