"""Regenerates Table 5 of the paper (see repro.harness.experiments)."""

from repro.harness import run_experiment


def test_table5(benchmark, show):
    result = benchmark(run_experiment, "table5")
    show("table5")
    result.assert_shape()
