"""Application-side benchmarks: the phylogenetics substrate itself.

Not a paper table — these time the reproduction's real algorithm
components (parsimony starting trees, branch smoothing, SPR rounds) so
regressions in the workload generator are visible.
"""

import numpy as np
import pytest

from repro.phylo import (
    GammaRates,
    LikelihoodEngine,
    SearchConfig,
    default_gtr,
    fitch_score,
    stepwise_addition_tree,
)
from repro.harness.datasets import quick_alignment


@pytest.fixture(scope="module")
def patterns():
    return quick_alignment().compress()


def test_stepwise_addition_starting_tree(benchmark, patterns):
    tree = benchmark(
        stepwise_addition_tree, patterns, np.random.default_rng(0)
    )
    tree.validate()


def test_fitch_score(benchmark, patterns):
    tree = stepwise_addition_tree(patterns, np.random.default_rng(1))
    score = benchmark(fitch_score, tree, patterns)
    assert score > 0


def test_branch_smoothing_pass(benchmark, patterns):
    tree = stepwise_addition_tree(patterns, np.random.default_rng(2))
    model = default_gtr().with_frequencies(patterns.base_frequencies())
    engine = LikelihoodEngine(patterns, model, GammaRates(0.7, 4), tree)

    def smooth():
        return engine.optimize_all_branches(passes=1)

    lnl = benchmark.pedantic(smooth, rounds=3, iterations=1)
    assert np.isfinite(lnl)
    engine.detach()


def test_full_tree_evaluation_cold_cache(benchmark, patterns):
    tree = stepwise_addition_tree(patterns, np.random.default_rng(3))
    model = default_gtr().with_frequencies(patterns.base_frequencies())

    def evaluate_cold():
        engine = LikelihoodEngine(patterns, model, GammaRates(0.7, 4), tree)
        value = engine.evaluate()
        engine.detach()
        return value

    assert np.isfinite(benchmark(evaluate_cold))
