"""Discrete-event scheduler benchmarks (EDTLP / LLP / MGPS cross-checks).

Benchmarks the full event-driven runs — master-worker MPI messages,
PPE queueing with SMT contention, per-offload context switches, SPE
execution — and asserts they agree with the closed forms used for the
headline tables.
"""

from repro.harness import run_experiment


def test_schedulers_devs_experiment(benchmark, show):
    result = benchmark.pedantic(
        run_experiment, args=("schedulers_devs",), rounds=2, iterations=1
    )
    show("schedulers_devs")
    result.assert_shape()


def test_edtlp_devs_8_workers(benchmark, executor):
    result = benchmark.pedantic(
        executor.edtlp_devs, args=(8,), rounds=3, iterations=1
    )
    analytic = executor.model.edtlp_total_s(8)
    assert abs(result.makespan_s - analytic) / analytic < 0.15
    assert result.ppe_utilization > 0.9  # the paper's PPE bottleneck


def test_llp_devs_full_split(benchmark, executor):
    result = benchmark.pedantic(
        executor.llp_devs, args=(1, 8), rounds=3, iterations=1
    )
    analytic = executor.model.llp_task_s(8)
    assert abs(result.makespan_s - analytic) / analytic < 0.10
