"""Numpy likelihood-kernel throughput at the paper's working size.

These benchmark the *real* compute kernels on a 42_SC-shaped working
set (~240 patterns x 4 Gamma categories), i.e. the loops that the
paper's SPE port vectorizes: ``newview`` (large + small loop),
``evaluate`` and one Newton iteration of ``makenewz``.  The reported
per-call times are this machine's equivalents of the paper's 71 us
average ``newview()`` invocation.
"""

import numpy as np
import pytest

from repro.phylo import GammaRates, default_gtr
from repro.phylo import kernels

N_PATTERNS = 240
N_CATS = 4


@pytest.fixture(scope="module")
def working_set():
    rng = np.random.default_rng(0)
    model = default_gtr()
    rates = GammaRates(0.8, N_CATS).rates
    p = model.transition_matrices(0.1, rates)
    left = rng.random((N_PATTERNS, N_CATS, 4)) + 1e-3
    right = rng.random((N_PATTERNS, N_CATS, 4)) + 1e-3
    masks = rng.choice([1, 2, 4, 8], size=N_PATTERNS).astype(np.uint8)
    weights = rng.integers(1, 6, size=N_PATTERNS).astype(float)
    scale = np.zeros(N_PATTERNS, dtype=np.int64)
    return model, rates, p, left, right, masks, weights, scale


def test_newview_inner_inner(benchmark, working_set):
    _, _, p, left, right, _, _, _ = working_set

    def newview():
        terms = kernels.newview_combine(
            kernels.inner_terms(p, left), kernels.inner_terms(p, right)
        )
        counts = np.zeros(N_PATTERNS, dtype=np.int64)
        kernels.scale_clv(terms, counts)
        return terms

    result = benchmark(newview)
    assert result.shape == (N_PATTERNS, N_CATS, 4)


def test_newview_tip_tip(benchmark, working_set):
    """The specialized both-children-tips case (cheapest path)."""
    _, _, p, _, _, masks, _, _ = working_set

    def newview():
        return kernels.newview_combine(
            kernels.tip_terms(p, masks), kernels.tip_terms(p, masks)
        )

    result = benchmark(newview)
    assert result.shape == (N_PATTERNS, N_CATS, 4)


def test_transition_matrices_small_loop(benchmark, working_set):
    """The 4-25 iteration 'small loop' building P(t) per category."""
    model, rates, _, _, _, _, _, _ = working_set
    p = benchmark(model.transition_matrices, 0.123, rates)
    assert p.shape == (N_CATS, 4, 4)


def test_evaluate(benchmark, working_set):
    model, _, p, left, right, _, weights, scale = working_set
    cat_w = np.full(N_CATS, 1.0 / N_CATS)

    def evaluate():
        return kernels.evaluate_loglik(
            model.pi, cat_w, weights, left,
            kernels.inner_terms(p, right), scale,
        )

    value = benchmark(evaluate)
    assert np.isfinite(value)


def test_newview_protein_20_states(benchmark):
    """The 20-state amino-acid kernel at the same pattern count.

    The AA inner loop is (20/4)^2 = 25x the arithmetic of the DNA loop
    per pattern-category — the reason AA analyses dominate HPC
    phylogenetics budgets.
    """
    from repro.phylo import GammaRates, PoissonAA

    rng = np.random.default_rng(1)
    model = PoissonAA()
    rates = GammaRates(0.8, N_CATS).rates
    p = model.transition_matrices(0.1, rates)
    left = rng.random((N_PATTERNS, N_CATS, 20)) + 1e-3
    right = rng.random((N_PATTERNS, N_CATS, 20)) + 1e-3

    def newview():
        terms = kernels.newview_combine(
            kernels.inner_terms(p, left), kernels.inner_terms(p, right)
        )
        counts = np.zeros(N_PATTERNS, dtype=np.int64)
        kernels.scale_clv(terms, counts)
        return terms

    result = benchmark(newview)
    assert result.shape == (N_PATTERNS, N_CATS, 20)


def test_makenewz_newton_iteration(benchmark, working_set):
    model, rates, _, left, right, _, weights, scale = working_set
    cat_w = np.full(N_CATS, 1.0 / N_CATS)

    def iteration():
        terms = model.transition_derivatives(0.2, rates)
        return kernels.branch_derivatives(
            terms, model.pi, cat_w, weights, left, right, scale
        )

    lnl, d1, d2 = benchmark(iteration)
    assert np.isfinite(lnl) and np.isfinite(d1) and np.isfinite(d2)
