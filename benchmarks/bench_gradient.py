"""Smoothing-pass benchmark: fused full-tree gradient vs per-branch Newton.

Runs the ``bench_engine_backends`` workload (42 taxa, >= 1000 patterns,
GTR+Gamma) and times one *global smoothing iteration* both ways from the
identical freshly-evaluated tree state:

* ``newton_pass_seconds`` — one serial per-branch smoothing pass
  (``optimize_all_branches(passes=1, mode="newton")``): 2N-3 makenewz
  Newton loops, each invalidating and refilling CLVs along the way.
* ``gradient_sweep_seconds`` — one fused full-tree gradient
  (``branch_gradient_full()``): two traversals fill every directional
  CLV, then a single K-stacked contraction yields d1/d2 for all 2N-3
  branches at once.  This is the steady-state cost of one gradient
  smoothing step (a global step dirties every CLV, so each sweep refills
  from scratch).
* ``batch_contraction_seconds`` vs ``per_branch_contraction_seconds`` —
  the pure kernel comparison on warm CLVs: one fused K-branch
  contraction against K serial ``branch_derivatives`` calls.

On top of the per-iteration numbers the benchmark runs both smoothing
modes to convergence on the single-thread ``einsum`` backend and records
the end-to-end wall clock and final lnL.  The modes must land on the
same log likelihood within 1e-6 (the fixed point is a per-branch pass
gaining less than the tolerance, shared by construction); the
convergence-speed ratio is recorded without a directional gate — Jacobi
steps need more iterations than Gauss-Seidel passes, and which side wins
end-to-end depends on how well the host threads the batched kernels.

Results merge into the ``gradient_smoothing`` section of the committed
``BENCH_engine.json``.  Gates, mirroring the backend-scaling bench:

* always: both modes reach the same lnL within 1e-6, and the fused
  sweep's d1 agrees with the per-branch path.
* ``cpu_count >= 2``: one gradient sweep must beat one per-branch Newton
  pass on the striped backend (``partitioned:2``; also ``compiled:2``
  when a flavor is available) — the batched contraction keeps threads
  busy where 2N-3 small serial kernels cannot.  On a single-core host
  the gate is skipped (and printed as skipped).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_gradient.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_gradient.py -q -s
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from repro.phylo import Tree, create_engine, default_gtr, synthetic_dataset
from repro.phylo.engine.backends.compiled import compiled_available
from repro.phylo.rates import GammaRates

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: Same >= 1000-pattern workload as bench_engine_backends.py.
N_TAXA = 42
N_SITES = 2400
DATA_SEED = 42
TREE_SEED = 7
MEAN_BRANCH_LENGTH = 0.15
INVARIANT_FRACTION = 0.05

#: Per-iteration specs swept (reporting order); compiled:2 joins when a
#: kernel flavor loads.
BASE_SPECS = ("einsum", "partitioned:2")

#: Timed repetitions per measurement (best-of, to shed scheduler noise).
ROUNDS = 3

#: Smoothing-to-convergence budget (einsum end-to-end comparison).
CONVERGE_PASSES = 25
CONVERGE_TOLERANCE = 1e-6

#: Multicore gate: one fused sweep beats one per-branch pass.
MIN_SWEEP_SPEEDUP = 1.0


def _specs():
    if compiled_available() is not None:
        return BASE_SPECS + ("compiled:2",)
    return BASE_SPECS


def _setup():
    patterns = synthetic_dataset(
        n_taxa=N_TAXA,
        n_sites=N_SITES,
        seed=DATA_SEED,
        mean_branch_length=MEAN_BRANCH_LENGTH,
        invariant_fraction=INVARIANT_FRACTION,
    ).compress()
    assert patterns.n_patterns >= 1000, patterns.n_patterns
    model = default_gtr().with_frequencies(patterns.base_frequencies())
    tree = Tree.from_tip_names(
        patterns.taxa, np.random.default_rng(TREE_SEED)
    )
    return patterns, model, tree.to_newick(digits=17)


def _fresh_engine(spec, patterns, model, base_newick):
    tree = Tree.from_newick(base_newick)
    engine = create_engine(
        patterns, model, GammaRates(0.7, 4), tree, backend=spec
    )
    engine.evaluate()  # full bottom-up CLV traversal, shared warm state
    return engine


def _measure_iteration(spec, patterns, model, base_newick) -> dict:
    """Best-of-``ROUNDS`` timings of one smoothing iteration, each way."""
    newton_pass = gradient_sweep = float("inf")
    batch = per_branch = float("inf")
    d1_gap = 0.0
    for _ in range(ROUNDS):
        # One serial per-branch pass from the fresh base state.
        engine = _fresh_engine(spec, patterns, model, base_newick)
        try:
            start = time.perf_counter()
            engine.optimize_all_branches(passes=1, mode="newton")
            newton_pass = min(newton_pass, time.perf_counter() - start)
        finally:
            engine.detach()
        # One fused sweep from the same fresh base state (directional
        # CLVs cold — the steady-state cost of a global gradient step).
        engine = _fresh_engine(spec, patterns, model, base_newick)
        try:
            start = time.perf_counter()
            branches, _, g_d1, _ = engine.branch_gradient_full()
            gradient_sweep = min(gradient_sweep, time.perf_counter() - start)
            # Warm-CLV kernel comparison: fused contraction vs K serial
            # per-branch derivative calls on the now-cached directions.
            start = time.perf_counter()
            engine.branch_gradient_full()
            batch = min(batch, time.perf_counter() - start)
            start = time.perf_counter()
            p_d1 = [engine.branch_derivatives(b)[1] for b in branches]
            per_branch = min(per_branch, time.perf_counter() - start)
            d1_gap = max(
                d1_gap,
                float(np.max(np.abs(np.asarray(p_d1) - g_d1)
                             / np.maximum(np.abs(g_d1), 1.0))),
            )
        finally:
            engine.detach()
    return {
        "backend": spec,
        "newton_pass_seconds": newton_pass,
        "gradient_sweep_seconds": gradient_sweep,
        "sweep_speedup": newton_pass / gradient_sweep,
        "batch_contraction_seconds": batch,
        "per_branch_contraction_seconds": per_branch,
        "max_d1_rel_gap": d1_gap,
    }


def _measure_convergence(patterns, model, base_newick) -> dict:
    """Both smoothing modes to convergence on single-thread einsum."""
    out = {}
    for mode in ("newton", "gradient"):
        engine = _fresh_engine("einsum", patterns, model, base_newick)
        try:
            start = time.perf_counter()
            lnl = engine.optimize_all_branches(
                passes=CONVERGE_PASSES,
                tolerance=CONVERGE_TOLERANCE,
                mode=mode,
            )
            out[mode] = {
                "wall_seconds": time.perf_counter() - start,
                "log_likelihood": lnl,
                "gradient_sweeps": engine.gradient_sweeps,
                "gradient_traversals_saved": engine.gradient_traversals_saved,
                "gradient_fallbacks": engine.gradient_fallbacks,
                "newview_calls": engine.newview_calls,
                "makenewz_calls": engine.makenewz_calls,
            }
        finally:
            engine.detach()
    out["lnl_gap"] = abs(
        out["newton"]["log_likelihood"] - out["gradient"]["log_likelihood"]
    )
    out["convergence_speedup"] = (
        out["newton"]["wall_seconds"] / out["gradient"]["wall_seconds"]
    )
    return out


def run_benchmark(write: bool = True) -> dict:
    specs = _specs()
    patterns, model, base_newick = _setup()
    report = {
        "workload": {
            "n_taxa": N_TAXA,
            "n_sites": N_SITES,
            "n_patterns": patterns.n_patterns,
            "data_seed": DATA_SEED,
            "tree_seed": TREE_SEED,
            "mean_branch_length": MEAN_BRANCH_LENGTH,
            "invariant_fraction": INVARIANT_FRACTION,
            "n_branches": 2 * N_TAXA - 3,
        },
        "cpu_count": os.cpu_count(),
        "compiled_flavor": compiled_available(),
        "iteration": {
            spec: _measure_iteration(spec, patterns, model, base_newick)
            for spec in specs
        },
        "convergence": _measure_convergence(patterns, model, base_newick),
    }
    if write:
        from repro.harness.report import merge_bench_section

        merge_bench_section(RESULT_PATH, "gradient_smoothing", report)
    return report


def test_gradient_smoothing():
    report = run_benchmark()
    for spec, r in report["iteration"].items():
        print(
            f"\n{spec:15s}: newton pass {r['newton_pass_seconds']:.3f} s  "
            f"gradient sweep {r['gradient_sweep_seconds']:.3f} s  "
            f"({r['sweep_speedup']:.2f}x); warm contraction "
            f"{r['per_branch_contraction_seconds']:.3f} s -> "
            f"{r['batch_contraction_seconds']:.3f} s"
        )
    conv = report["convergence"]
    print(
        f"to convergence (einsum): newton "
        f"{conv['newton']['wall_seconds']:.3f} s vs gradient "
        f"{conv['gradient']['wall_seconds']:.3f} s "
        f"({conv['convergence_speedup']:.2f}x), lnL gap {conv['lnl_gap']:.2e}"
    )
    # Correctness gates, whatever the host.
    assert conv["lnl_gap"] < 1e-6, conv
    assert conv["gradient"]["gradient_sweeps"] >= 1
    for spec, r in report["iteration"].items():
        assert r["max_d1_rel_gap"] < 1e-9, (spec, r["max_d1_rel_gap"])
    # Speed gate, mirroring the backend-scaling bench: asserted only on
    # multicore hosts, where the fused sweep's batched kernels can keep
    # stripe threads busy.
    cpus = report["cpu_count"] or 1
    if cpus >= 2:
        gated = [s for s in report["iteration"] if s != "einsum"]
        for spec in gated:
            speedup = report["iteration"][spec]["sweep_speedup"]
            assert speedup >= MIN_SWEEP_SPEEDUP, (
                f"{spec}: one gradient sweep only {speedup:.2f}x vs one "
                f"per-branch Newton pass on {cpus} cores "
                f"(need >= {MIN_SWEEP_SPEEDUP}x)"
            )
    else:
        print(
            f"single-core host (cpu_count={cpus}): stripe threads cannot "
            "overlap, skipping the multicore sweep-speedup gate"
        )


if __name__ == "__main__":
    test_gradient_smoothing()
