"""Regenerates Table 6 of the paper (see repro.harness.experiments)."""

from repro.harness import run_experiment


def test_table6(benchmark, show):
    result = benchmark(run_experiment, "table6")
    show("table6")
    result.assert_shape()
