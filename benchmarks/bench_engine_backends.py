"""Thread-scaling benchmark for the striped kernel backends.

Runs the same kernel-bound workload — one full-tree CLV computation plus
one Newton branch-smoothing pass over every branch — on a >= 1000-pattern
synthetic alignment (the regime where the paper reports SPE partitioning
pays off; below ~1000 patterns the stripe fan-out overhead dominates,
exactly like the paper's loop-level parallelization overhead) through:

* the flat single-thread ``einsum`` backend (baseline),
* the ``partitioned`` backend at 1, 2 and 4 stripes/threads (einsum
  inner kernels: stripes overlap only where NumPy drops the GIL), and
* the ``compiled`` backend at 1, 2 and 4 stripes/threads (nogil
  machine-code inner kernels), when a flavor is available on the host.

Results merge into the ``backend_scaling`` section of the committed
``BENCH_engine.json`` (the batched-pipeline sections are left untouched)
together with ``os.cpu_count()`` and the compiled flavor's one-time
JIT/build warmup time (charged to ``backend_warmup_us``, never to the
timed workload).  Assertions:

* always: every backend lands on the same lnL within 1e-9 and on
  bit-identical underflow-scaling totals; ``partitioned:1/2/4`` and
  ``compiled:1/2/4`` each report **bit-identical** log likelihoods
  across thread counts (the fixed-block pairwise reduction).
* compiled available: ``compiled:1`` must beat single-thread einsum
  (the kernels win before threading even starts).
* compiled available and ``cpu_count >= 2``: ``compiled:2`` must beat
  einsum *and* run faster than ``compiled:1`` — the tentpole claim that
  multi-threaded stripes finally pay.  On a single-core container the
  stripes cannot overlap, so the multicore gates are skipped (and
  printed as skipped).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_engine_backends.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_backends.py -q -s
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.phylo import Tree, create_engine, default_gtr, synthetic_dataset
from repro.phylo.engine.backends.compiled import compiled_available
from repro.phylo.rates import GammaRates

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: The >= 1000-pattern workload: a divergent synthetic alignment (long
#: branches, almost no invariant sites) so compression keeps most columns.
N_TAXA = 42
N_SITES = 2400
DATA_SEED = 42
TREE_SEED = 7
MEAN_BRANCH_LENGTH = 0.15
INVARIANT_FRACTION = 0.05

#: Backend specs always swept, in reporting order.
BASE_SPECS = ("einsum", "partitioned:1", "partitioned:2", "partitioned:4")

#: Swept additionally when a compiled kernel flavor loads on this host.
COMPILED_SPECS = ("compiled:1", "compiled:2", "compiled:4")

#: Timed repetitions per spec (best-of, to shed scheduler noise).
ROUNDS = 3

#: Multicore gate: compiled:2 must beat single-thread einsum.
MIN_MULTICORE_SPEEDUP = 1.0


def _specs():
    if compiled_available() is not None:
        return BASE_SPECS + COMPILED_SPECS
    return BASE_SPECS


def _setup():
    patterns = synthetic_dataset(
        n_taxa=N_TAXA,
        n_sites=N_SITES,
        seed=DATA_SEED,
        mean_branch_length=MEAN_BRANCH_LENGTH,
        invariant_fraction=INVARIANT_FRACTION,
    ).compress()
    assert patterns.n_patterns >= 1000, patterns.n_patterns
    model = default_gtr().with_frequencies(patterns.base_frequencies())
    tree = Tree.from_tip_names(
        patterns.taxa, np.random.default_rng(TREE_SEED)
    )
    return patterns, model, tree.to_newick(digits=17)


def _measure(spec: str, patterns, model, base_newick: str) -> dict:
    """Best-of-``ROUNDS`` wall time for one full-likelihood workload."""
    best = float("inf")
    lnl = scale_total = counters = None
    for _ in range(ROUNDS):
        tree = Tree.from_newick(base_newick)
        engine = create_engine(
            patterns, model, GammaRates(0.7, 4), tree, backend=spec
        )
        try:
            start = time.perf_counter()
            engine.evaluate()  # full bottom-up CLV traversal
            engine.optimize_all_branches(passes=1)
            lnl = engine.evaluate()
            best = min(best, time.perf_counter() - start)
            anchor = tree.branches[0]
            inner = anchor.nodes[0] if not anchor.nodes[0].is_tip \
                else anchor.nodes[1]
            scale_total = int(engine.clv(inner, anchor).scale_counts.sum())
            counters = engine.perf_counters()
        finally:
            engine.detach()
    return {
        "backend": spec,
        "wall_seconds": best,
        "log_likelihood": lnl,
        "scale_count_total": scale_total,
        "backend_counters": {
            key: counters[key]
            for key in sorted(counters)
            if key.startswith("backend_")
        },
    }


def run_benchmark(write: bool = True) -> dict:
    specs = _specs()
    patterns, model, base_newick = _setup()
    runs = {
        spec: _measure(spec, patterns, model, base_newick) for spec in specs
    }
    baseline = runs["einsum"]["wall_seconds"]
    flavor = compiled_available()
    report = {
        "workload": {
            "n_taxa": N_TAXA,
            "n_sites": N_SITES,
            "n_patterns": patterns.n_patterns,
            "data_seed": DATA_SEED,
            "tree_seed": TREE_SEED,
            "mean_branch_length": MEAN_BRANCH_LENGTH,
            "invariant_fraction": INVARIANT_FRACTION,
        },
        "cpu_count": os.cpu_count(),
        "compiled_flavor": flavor,
        "jit_warmup_us": (
            runs["compiled:1"]["backend_counters"]["backend_warmup_us"]
            if flavor else None
        ),
        "runs": runs,
        "speedup_vs_einsum": {
            spec: baseline / runs[spec]["wall_seconds"] for spec in specs
        },
    }
    if write:
        from repro.harness.report import merge_bench_section

        merge_bench_section(RESULT_PATH, "backend_scaling", report)
    return report


def test_backend_scaling():
    report = run_benchmark()
    runs = report["runs"]
    specs = list(runs)
    for spec in specs:
        r = runs[spec]
        print(
            f"\n{spec:15s}: {r['wall_seconds']:.3f} s  "
            f"lnL {r['log_likelihood']:.6f}  "
            f"({report['speedup_vs_einsum'][spec]:.2f}x vs einsum)"
        )
    # Correctness on the big instance, whatever the host: every backend
    # lands on the same likelihood and the same underflow-scaling totals.
    base = runs["einsum"]
    for spec in specs[1:]:
        assert runs[spec]["log_likelihood"] == pytest.approx(
            base["log_likelihood"], rel=1e-9
        ), spec
        assert runs[spec]["scale_count_total"] == base["scale_count_total"]
    # Thread count must not move a single bit of the striped backends'
    # reductions (the fixed-block pairwise sum).
    for family in ("partitioned", "compiled"):
        lnls = {
            spec: runs[spec]["log_likelihood"]
            for spec in specs if spec.startswith(family)
        }
        assert len(set(lnls.values())) <= 1, (
            f"{family} lnL drifts with thread count: {lnls}"
        )
    cpus = report["cpu_count"] or 1
    if report["compiled_flavor"] is not None:
        # The kernels must win before threading even starts.
        speedup1 = report["speedup_vs_einsum"]["compiled:1"]
        assert speedup1 > 1.0, (
            f"compiled:1 only {speedup1:.2f}x vs single-thread einsum "
            f"(flavor {report['compiled_flavor']!r})"
        )
        if cpus >= 2:
            speedup2 = report["speedup_vs_einsum"]["compiled:2"]
            assert speedup2 >= MIN_MULTICORE_SPEEDUP, (
                f"compiled:2 only {speedup2:.2f}x vs single-thread einsum "
                f"on {cpus} cores (need >= {MIN_MULTICORE_SPEEDUP}x)"
            )
            assert (runs["compiled:2"]["wall_seconds"]
                    < runs["compiled:1"]["wall_seconds"]), (
                "compiled:2 is not faster than compiled:1 on "
                f"{cpus} cores: "
                f"{runs['compiled:2']['wall_seconds']:.3f}s vs "
                f"{runs['compiled:1']['wall_seconds']:.3f}s"
            )
        else:
            print(
                f"single-core host (cpu_count={cpus}): stripe threads "
                "cannot overlap, skipping the multi-thread speedup gates"
            )
    else:
        print("no compiled kernel flavor available: compiled rows and "
              "speedup gates skipped")


if __name__ == "__main__":
    test_backend_scaling()
