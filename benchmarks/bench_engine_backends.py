"""Thread-scaling benchmark for the partitioned kernel backend.

Runs the same kernel-bound workload — one full-tree CLV computation plus
one Newton branch-smoothing pass over every branch — on a >= 1000-pattern
synthetic alignment (the regime where the paper reports SPE partitioning
pays off; below ~1000 patterns the stripe fan-out overhead dominates,
exactly like the paper's loop-level parallelization overhead) through:

* the flat single-thread ``einsum`` backend (baseline), and
* the ``partitioned`` backend at 1, 2 and 4 stripes/threads.

Results merge into the ``backend_scaling`` section of the committed
``BENCH_engine.json`` (the batched-pipeline sections are left untouched)
together with ``os.cpu_count()``, because the scaling claim is only
meaningful on a multi-core host: stripes overlap via NumPy releasing the
GIL, so on a single-core container every thread count serializes and the
partitioned numbers just measure fan-out overhead.  The "4 threads beat
1 thread" assertion is therefore gated on ``cpu_count >= 2``; the
correctness assertions (identical lnL within 1e-9, bit-identical scale
totals) always run.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_engine_backends.py

or through pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_backends.py -q -s
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.phylo import Tree, create_engine, default_gtr, synthetic_dataset
from repro.phylo.rates import GammaRates

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: The >= 1000-pattern workload: a divergent synthetic alignment (long
#: branches, almost no invariant sites) so compression keeps most columns.
N_TAXA = 42
N_SITES = 2400
DATA_SEED = 42
TREE_SEED = 7
MEAN_BRANCH_LENGTH = 0.15
INVARIANT_FRACTION = 0.05

#: Backend specs swept, in reporting order.
SPECS = ("einsum", "partitioned:1", "partitioned:2", "partitioned:4")

#: Timed repetitions per spec (best-of, to shed scheduler noise).
ROUNDS = 3

#: With >= 2 cores, 4 partitioned threads must beat single-thread einsum.
MIN_MULTICORE_SPEEDUP = 1.0


def _setup():
    patterns = synthetic_dataset(
        n_taxa=N_TAXA,
        n_sites=N_SITES,
        seed=DATA_SEED,
        mean_branch_length=MEAN_BRANCH_LENGTH,
        invariant_fraction=INVARIANT_FRACTION,
    ).compress()
    assert patterns.n_patterns >= 1000, patterns.n_patterns
    model = default_gtr().with_frequencies(patterns.base_frequencies())
    tree = Tree.from_tip_names(
        patterns.taxa, np.random.default_rng(TREE_SEED)
    )
    return patterns, model, tree.to_newick(digits=17)


def _measure(spec: str, patterns, model, base_newick: str) -> dict:
    """Best-of-``ROUNDS`` wall time for one full-likelihood workload."""
    best = float("inf")
    lnl = scale_total = counters = None
    for _ in range(ROUNDS):
        tree = Tree.from_newick(base_newick)
        engine = create_engine(
            patterns, model, GammaRates(0.7, 4), tree, backend=spec
        )
        try:
            start = time.perf_counter()
            engine.evaluate()  # full bottom-up CLV traversal
            engine.optimize_all_branches(passes=1)
            lnl = engine.evaluate()
            best = min(best, time.perf_counter() - start)
            anchor = tree.branches[0]
            inner = anchor.nodes[0] if not anchor.nodes[0].is_tip \
                else anchor.nodes[1]
            scale_total = int(engine.clv(inner, anchor).scale_counts.sum())
            counters = engine.perf_counters()
        finally:
            engine.detach()
    return {
        "backend": spec,
        "wall_seconds": best,
        "log_likelihood": lnl,
        "scale_count_total": scale_total,
        "backend_counters": {
            key: counters[key]
            for key in sorted(counters)
            if key.startswith("backend_")
        },
    }


def run_benchmark(write: bool = True) -> dict:
    patterns, model, base_newick = _setup()
    runs = {
        spec: _measure(spec, patterns, model, base_newick) for spec in SPECS
    }
    baseline = runs["einsum"]["wall_seconds"]
    report = {
        "workload": {
            "n_taxa": N_TAXA,
            "n_sites": N_SITES,
            "n_patterns": patterns.n_patterns,
            "data_seed": DATA_SEED,
            "tree_seed": TREE_SEED,
            "mean_branch_length": MEAN_BRANCH_LENGTH,
            "invariant_fraction": INVARIANT_FRACTION,
        },
        "cpu_count": os.cpu_count(),
        "runs": runs,
        "speedup_vs_einsum": {
            spec: baseline / runs[spec]["wall_seconds"] for spec in SPECS
        },
    }
    if write:
        from repro.harness.report import merge_bench_section

        merge_bench_section(RESULT_PATH, "backend_scaling", report)
    return report


def test_backend_scaling():
    report = run_benchmark()
    runs = report["runs"]
    for spec in SPECS:
        r = runs[spec]
        print(
            f"\n{spec:15s}: {r['wall_seconds']:.3f} s  "
            f"lnL {r['log_likelihood']:.6f}  "
            f"({report['speedup_vs_einsum'][spec]:.2f}x vs einsum)"
        )
    # Correctness on the big instance, whatever the host: every backend
    # lands on the same likelihood and the same underflow-scaling totals.
    base = runs["einsum"]
    for spec in SPECS[1:]:
        assert runs[spec]["log_likelihood"] == pytest.approx(
            base["log_likelihood"], rel=1e-9
        ), spec
        assert runs[spec]["scale_count_total"] == base["scale_count_total"]
    # The headline scaling claim needs real cores to overlap stripes on.
    cpus = report["cpu_count"] or 1
    if cpus >= 2:
        speedup = report["speedup_vs_einsum"]["partitioned:4"]
        assert speedup >= MIN_MULTICORE_SPEEDUP, (
            f"partitioned:4 only {speedup:.2f}x vs single-thread einsum "
            f"on {cpus} cores (need >= {MIN_MULTICORE_SPEEDUP}x)"
        )
    else:
        print(
            f"single-core host (cpu_count={cpus}): stripe threads cannot "
            "overlap, skipping the multi-thread speedup assertion"
        )


if __name__ == "__main__":
    test_backend_scaling()
