"""Regenerates Table 7 of the paper (see repro.harness.experiments)."""

from repro.harness import run_experiment


def test_table7(benchmark, show):
    result = benchmark(run_experiment, "table7")
    show("table7")
    result.assert_shape()
