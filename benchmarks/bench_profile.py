"""Regenerates the section 5.2 profile: the real search workload.

Benchmarks the actual instrumented tree search (the reproduction's
equivalent of profiling RAxML with gprof) plus the trace-summary and
cost-model construction steps of the pipeline.
"""

from repro.harness import run_experiment
from repro.harness.datasets import TRACE_PROFILES, quick_alignment
from repro.phylo import infer_tree
from repro.port import CellCostModel, Tracer


def test_profile_experiment(benchmark, show):
    result = benchmark(run_experiment, "profile")
    show("profile")
    result.assert_shape()


def test_instrumented_search(benchmark):
    """One full traced tree search (the trace generator itself)."""
    patterns = quick_alignment().compress()
    config = TRACE_PROFILES["quick"]["search"]

    def run():
        tracer = Tracer()
        infer_tree(patterns, config=config, seed=0, tracer=tracer)
        return tracer.summary()

    summary = benchmark.pedantic(run, rounds=2, iterations=1)
    assert summary.newview_count > 100
    assert summary.makenewz_count > 10


def test_cost_model_construction(benchmark, trace):
    """Deriving all calibrated components from the paper tables."""
    model = benchmark(CellCostModel, trace)
    assert model.canonical.newview_count == 230_500
