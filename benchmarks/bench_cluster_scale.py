"""Thousand-replicate sharded campaign: kill it three times, lose nothing.

The acceptance bar for the sharded journal (DESIGN.md section 15): a
large bootstrap campaign on per-worker-group WAL shards, SIGKILLed and
resumed at three seeded points, must finish with aggregates
bit-identical to an uninterrupted run — and resuming it must cost
O(live results), not O(history), thanks to snapshot compaction.

Two arms, both genuinely executed:

* **baseline** — the campaign runs uninterrupted in a child process;
* **interrupted** — the same campaign in a child process group that the
  parent SIGKILLs (``os.killpg``, no cleanup handlers run) once the
  journal shows the next seeded fraction of replicates done, then
  resumes in a fresh child; three kills, then a final resume to
  completion.

The comparison reads only the journals, so it exercises exactly what an
operator has after a crash: merged shard replay.  The two journals must
agree on every result payload (a canonical digest over ``(kind,
replicate, newick, log likelihood)``), and the interrupted arm must
journal exactly ``N_KILLS`` resumes.

Claims checked:

* the interrupted campaign's payload digest equals the baseline's
  (bit-identical best tree, likelihoods, and supports follow, since
  aggregation is a pure function of the payload set);
* every kill actually interrupted the run (three ``run_resumed``
  records) and no replicate was lost or duplicated;
* after compaction the finished journal replays within
  ``REPLAY_BUDGET_S`` and holds at most ``live results + 4`` records.

``REPRO_SCALE_REPLICATES`` (default 1000) sizes the campaign so local
smoke runs can shrink it; CI runs the full thousand.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_cluster_scale.py
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO / "BENCH_engine.json"

REPLICATES = int(os.environ.get("REPRO_SCALE_REPLICATES", "1000"))
N_WORKERS = 4
N_SHARDS = 4
JOB_SEED = 17
DATA_SEED = 3
N_KILLS = 3
KILL_SEED = 2026
REPLAY_BUDGET_S = 5.0
POLL_S = 0.2
#: A kill is only interesting while work remains; keep the seeded
#: fractions away from both ends so every segment does real work.
KILL_FRACTION_RANGE = (0.15, 0.80)


def _spec():
    from repro.cluster import JobSpec
    from repro.phylo import SearchConfig

    return JobSpec(
        n_inferences=1, n_bootstraps=REPLICATES, seed=JOB_SEED,
        batch_size=10,
        config=SearchConfig(initial_radius=1, max_radius=1, max_rounds=1,
                            smoothing_passes=1, final_smoothing_passes=1),
    )


def _alignment():
    from repro.phylo import synthetic_dataset

    return synthetic_dataset(n_taxa=6, n_sites=120, seed=DATA_SEED)


def _child(mode: str, journal: str) -> int:
    """Run one campaign segment (``run`` from scratch, ``resume`` from
    the journal) in this process; the parent may SIGKILL us any time."""
    from repro.cluster import resume_job, run_job

    if mode == "run":
        run_job(_spec(), _alignment(), n_workers=N_WORKERS,
                journal_path=journal, n_shards=N_SHARDS)
    else:
        resume_job(journal, _alignment(), n_workers=N_WORKERS)
    return 0


def _spawn(mode: str, journal: str) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"),
               REPRO_SCALE_REPLICATES=str(REPLICATES))
    return subprocess.Popen(
        [sys.executable, str(Path(__file__).resolve()),
         "--child", mode, journal],
        env=env, start_new_session=True,
    )


def _done_replicates(journal: str) -> int:
    from repro.cluster import replay

    if not os.path.exists(journal):
        return 0
    state = replay(journal)
    return len(state.done_bootstraps) + len(state.done_inferences)


def _kill_at(proc: subprocess.Popen, journal: str, target: int) -> bool:
    """SIGKILL *proc*'s whole group once *target* replicates are
    journalled; False when the run finished before reaching it."""
    while True:
        if proc.poll() is not None:
            return False
        if _done_replicates(journal) >= target:
            os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
            proc.wait()
            return True
        time.sleep(POLL_S)


def _payload_digest(journal: str) -> str:
    """Canonical digest of every result payload in the journal."""
    from repro.cluster import replay

    state = replay(journal)
    blob = json.dumps(
        [(kind, replicate, payload["newick"], payload["log_likelihood"])
         for (kind, replicate), payload in sorted(state.payloads.items())],
        separators=(",", ":"),
    ).encode()
    return hashlib.sha256(blob).hexdigest()


def main() -> int:
    import tempfile

    from repro.cluster import replay
    from repro.cluster.shards import compact_sharded

    workdir = Path(tempfile.mkdtemp(prefix="bench-cluster-scale-"))
    total = REPLICATES + 1  # bootstraps + the single inference

    baseline_journal = str(workdir / "baseline.jsonl")
    start = time.perf_counter()
    proc = _spawn("run", baseline_journal)
    assert proc.wait() == 0, "baseline campaign failed"
    baseline_wall = time.perf_counter() - start
    baseline = replay(baseline_journal)
    assert baseline.finished and len(baseline.payloads) == total
    print(f"baseline:    {REPLICATES} replicates x {N_WORKERS} workers "
          f"on {N_SHARDS} shards in {baseline_wall:.1f}s")

    rng = random.Random(KILL_SEED)
    fractions = sorted(rng.uniform(*KILL_FRACTION_RANGE)
                       for _ in range(N_KILLS))
    targets = [max(1, int(f * total)) for f in fractions]
    print(f"kill plan:   seed {KILL_SEED} -> replicate targets {targets}")

    interrupted_journal = str(workdir / "interrupted.jsonl")
    start = time.perf_counter()
    kills = 0
    effective_targets = []
    proc = _spawn("run", interrupted_journal)
    for target in targets:
        # A kill can overshoot its target (a whole batch of results
        # lands between polls); the next target must demand *new*
        # progress, or we would kill the resumed child before it
        # journals anything.
        target = max(target, _done_replicates(interrupted_journal) + 1)
        effective_targets.append(target)
        if not _kill_at(proc, interrupted_journal, target):
            break
        kills += 1
        print(f"  killed at >= {target} replicates done; resuming")
        proc = _spawn("resume", interrupted_journal)
    assert proc.wait() == 0, "final resume failed"
    interrupted_wall = time.perf_counter() - start

    final = replay(interrupted_journal)
    assert kills == N_KILLS, (
        f"only {kills}/{N_KILLS} kills landed — the campaign finished "
        f"too fast for the seeded targets {effective_targets}"
    )
    assert final.resumes == N_KILLS
    assert final.finished
    assert len(final.payloads) == total, "lost or duplicated replicates"

    baseline_digest = _payload_digest(baseline_journal)
    final_digest = _payload_digest(interrupted_journal)
    assert final_digest == baseline_digest, (
        "interrupted campaign diverged from the uninterrupted baseline"
    )
    print(f"interrupted: {kills} SIGKILLs + resumes in "
          f"{interrupted_wall:.1f}s, digest matches baseline "
          f"({final_digest[:12]}...)")

    # Resume cost after compaction: O(live results), within budget.
    compact_sharded(interrupted_journal)
    start = time.perf_counter()
    compacted = replay(interrupted_journal)
    replay_s = time.perf_counter() - start
    compacted_records = (int(compacted.shards.get("snapshot_records") or 0)
                         + sum(compacted.shards["records"].values()))
    assert compacted.payloads == final.payloads
    assert compacted_records <= total + 4, (
        f"{compacted_records} records after compaction for {total} "
        f"live results"
    )
    assert replay_s <= REPLAY_BUDGET_S, (
        f"compacted replay took {replay_s:.2f}s "
        f"(budget {REPLAY_BUDGET_S}s)"
    )
    print(f"compacted:   {compacted_records} records replay in "
          f"{replay_s:.3f}s (budget {REPLAY_BUDGET_S}s)")

    from repro.harness.report import merge_bench_section

    section = {
        "replicates": REPLICATES,
        "n_workers": N_WORKERS,
        "n_shards": N_SHARDS,
        "kill_seed": KILL_SEED,
        "kill_targets": targets,
        "effective_kill_targets": effective_targets,
        "kills": kills,
        "resumes": final.resumes,
        "worker_deaths": len(final.worker_deaths),
        "baseline_wall_seconds": baseline_wall,
        "interrupted_wall_seconds": interrupted_wall,
        "payload_digest": final_digest,
        "digest_matches_baseline": final_digest == baseline_digest,
        "compacted_records": compacted_records,
        "compacted_replay_seconds": replay_s,
        "replay_budget_seconds": REPLAY_BUDGET_S,
    }
    merge_bench_section(RESULT_PATH, "cluster_scale", section)
    print(f"bench_cluster_scale: OK — wrote 'cluster_scale' section to "
          f"{RESULT_PATH.name}")
    return 0


if __name__ == "__main__":
    if len(sys.argv) >= 4 and sys.argv[1] == "--child":
        sys.exit(_child(sys.argv[2], sys.argv[3]))
    raise SystemExit(main())
