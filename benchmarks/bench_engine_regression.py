"""CI regression gate for the batched likelihood pipeline.

Two complementary checks:

* ``test_batched_neighborhood_benchmark`` is a plain pytest-benchmark
  measurement of one fused SPR-neighborhood scoring pass.  CI runs it
  with ``--benchmark-autosave --benchmark-compare
  --benchmark-compare-fail=mean:25%`` so a cached ``.benchmarks/``
  directory turns it into a hard >25%-slower gate between runs.
* ``test_speedup_no_worse_than_committed_baseline`` compares the
  serial/batched *ratio* against the speedup recorded in the committed
  ``BENCH_engine.json``.  The ratio is insensitive to absolute machine
  speed, so this works even on a cold cache or a different runner.

Run locally::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_regression.py -q \
        --benchmark-autosave --benchmark-compare \
        --benchmark-compare-fail=mean:25%
"""

from __future__ import annotations

import json

import pytest

from bench_engine_batch import (
    NEWTON_ITERATIONS,
    RADIUS,
    RESULT_PATH,
    _fresh_engine,
    _setup,
    run_benchmark,
)
from repro.phylo.search import spr_neighborhood

#: Fail if the measured sweep speedup falls more than this fraction
#: below the committed ``BENCH_engine.json`` baseline ratio.
MAX_SPEEDUP_REGRESSION = 0.25


def test_batched_neighborhood_benchmark(benchmark):
    """Time one fused scoring pass over a radius-3 SPR neighborhood."""
    patterns, model, base_newick = _setup()

    def setup():
        engine, tree = _fresh_engine(patterns, model, base_newick)
        inner = [b for b in tree.branches if not b.nodes[0].is_tip]
        prune = inner[0]
        keep = prune.nodes[0]
        targets = spr_neighborhood(tree, prune, keep, RADIUS)
        return (engine, prune, keep, targets), {}

    def run(engine, prune, keep, targets):
        try:
            engine.score_spr_candidates(
                prune, keep, targets, max_iterations=NEWTON_ITERATIONS
            )
        finally:
            engine.detach()

    benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)


def test_speedup_no_worse_than_committed_baseline():
    assert RESULT_PATH.is_file(), (
        f"{RESULT_PATH.name} missing; regenerate with "
        "`PYTHONPATH=src python benchmarks/bench_engine_batch.py`"
    )
    committed = json.loads(RESULT_PATH.read_text())
    baseline = committed["neighborhood_sweep"]["speedup"]
    # Measurement-only run: do not clobber the committed baseline.
    report = run_benchmark(write=False, include_context=False)
    measured = report["neighborhood_sweep"]["speedup"]
    floor = (1.0 - MAX_SPEEDUP_REGRESSION) * baseline
    print(
        f"\ncommitted speedup: {baseline:.2f}x, measured: {measured:.2f}x, "
        f"floor: {floor:.2f}x"
    )
    assert measured >= floor, (
        f"batched sweep speedup regressed: {measured:.2f}x measured vs "
        f"{baseline:.2f}x committed baseline (> "
        f"{MAX_SPEEDUP_REGRESSION:.0%} regression)"
    )


if __name__ == "__main__":
    pytest.main([__file__, "-q", "-s"])
