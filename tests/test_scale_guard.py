"""End-to-end regression tests for the NaN/Inf CLV guard.

``kernels.scale_clv`` refuses to rescale non-finite CLVs; these tests
prove the guard actually fires through the *public*
:class:`LikelihoodEngine` surface when a cached CLV is poisoned — not
just when the kernel is called directly — so numeric corruption can
never be silently rescaled into a plausible-looking likelihood.

Since the degradation ladder landed, a detected fault no longer
escapes the public surface: the engine drops every cache, recomputes,
and returns the clean answer while counting the event in
``numerical_faults`` / ``fault_recoveries``.  The guard firing is
therefore asserted through the counters plus bit-identity with an
unpoisoned engine; the raise-through behaviour of a *persistent* fault
is covered in ``tests/test_chaos_engine.py``.
"""

import numpy as np
import pytest

from repro.phylo import JC69, LikelihoodEngine, Tree
from tests.strategies import random_patterns


def _engine_with_poisonable_child(seed=5, poison=True):
    """An engine plus (branch, poisoned inner-child CLV entry).

    Picks a branch whose propagated side is an inner node with an inner
    child, caches that child's CLV, and poisons it in place — the next
    ``newview`` above it must consume the NaNs.
    """
    rng = np.random.default_rng(seed)
    patterns = random_patterns(rng, 7, 40)
    tree = Tree.from_tip_names(patterns.taxa, rng)
    engine = LikelihoodEngine(patterns, JC69(), None, tree)
    for branch in tree.branches:
        u, v = branch.nodes
        if v.is_tip and not u.is_tip:
            u, v = v, u  # mirror evaluate(): v is the propagated side
        if v.is_tip:
            continue
        for child_branch in v.branches:
            if child_branch is branch:
                continue
            child = child_branch.other(v)
            if child.is_tip:
                continue
            entry = engine.clv(child, child_branch)
            if poison:
                entry.clv[:] = np.nan
            return engine, branch, v
    raise AssertionError("no suitable branch in the random tree")


def _clean_value(seed, op):
    engine, branch, inner = _engine_with_poisonable_child(seed, poison=False)
    try:
        return op(engine, branch, inner)
    finally:
        engine.detach()


def test_poisoned_clv_recovers_through_evaluate():
    clean = _clean_value(5, lambda e, b, i: e.evaluate(b))
    engine, branch, _inner = _engine_with_poisonable_child()
    try:
        value = engine.evaluate(branch)
        assert engine.numerical_faults >= 1  # the guard did fire
        assert engine.fault_recoveries >= 1
        assert not engine.is_degraded
        assert value == clean  # recovery is bit-transparent
    finally:
        engine.detach()


def test_poisoned_clv_recovers_through_clv_refresh():
    engine, branch, inner = _engine_with_poisonable_child(seed=12)
    try:
        entry = engine.clv(inner, branch)
        assert engine.numerical_faults >= 1
        assert engine.fault_recoveries >= 1
        assert np.isfinite(entry.clv).all()
    finally:
        engine.detach()


def test_poisoned_clv_recovers_through_makenewz():
    clean = _clean_value(23, lambda e, b, i: e.makenewz(b))
    engine, branch, _inner = _engine_with_poisonable_child(seed=23)
    try:
        result = engine.makenewz(branch)
        assert engine.numerical_faults >= 1
        assert engine.fault_recoveries >= 1
        assert result == clean
    finally:
        engine.detach()


def test_clean_engine_does_not_trip_the_guard():
    """The guard is inert on healthy data (no false positives)."""
    rng = np.random.default_rng(99)
    patterns = random_patterns(rng, 6, 50)
    tree = Tree.from_tip_names(patterns.taxa, rng)
    engine = LikelihoodEngine(patterns, JC69(), None, tree)
    try:
        value = engine.evaluate()
        assert np.isfinite(value) and value < 0.0
        assert engine.numerical_faults == 0
        assert engine.fault_recoveries == 0
    finally:
        engine.detach()
