"""Tests for the sequence-evolution simulator (repro.phylo.simulate)."""

import numpy as np
import pytest

from repro.phylo import (
    JC69,
    Tree,
    default_gtr,
    evolve_alignment,
    random_tree,
    synthetic_dataset,
)


class TestEvolveAlignment:
    def test_dimensions(self):
        names = [f"t{i}" for i in range(6)]
        tree = random_tree(names, np.random.default_rng(0))
        aln = evolve_alignment(tree, default_gtr(), 200,
                               np.random.default_rng(1))
        assert aln.n_taxa == 6
        assert aln.n_sites == 200
        assert sorted(aln.taxa) == sorted(names)

    def test_deterministic_with_seed(self):
        names = [f"t{i}" for i in range(5)]
        tree = random_tree(names, np.random.default_rng(2))
        a = evolve_alignment(tree, default_gtr(), 100,
                             np.random.default_rng(3))
        b = evolve_alignment(tree, default_gtr(), 100,
                             np.random.default_rng(3))
        assert a.to_fasta() == b.to_fasta()

    def test_invariant_sites_are_constant(self):
        names = [f"t{i}" for i in range(6)]
        tree = random_tree(names, np.random.default_rng(4))
        aln = evolve_alignment(tree, default_gtr(), 300,
                               np.random.default_rng(5),
                               invariant_fraction=1.0)
        # All sites invariant -> every column constant -> few patterns.
        assert aln.compress().n_patterns <= 4

    def test_zero_invariant_fraction_varies(self):
        names = [f"t{i}" for i in range(6)]
        tree = random_tree(names, np.random.default_rng(6))
        aln = evolve_alignment(tree, default_gtr(), 300,
                               np.random.default_rng(7),
                               gamma_alpha=None, invariant_fraction=0.0)
        assert aln.compress().n_patterns > 20

    def test_long_branches_destroy_similarity(self):
        names = [f"t{i}" for i in range(4)]
        rng = np.random.default_rng(8)
        close = random_tree(names, rng, mean_branch_length=0.01)
        far = random_tree(names, rng, mean_branch_length=5.0)
        n = 2000
        a_close = evolve_alignment(close, JC69(), n, np.random.default_rng(9),
                                   gamma_alpha=None, invariant_fraction=0.0)
        a_far = evolve_alignment(far, JC69(), n, np.random.default_rng(9),
                                 gamma_alpha=None, invariant_fraction=0.0)

        def mismatch(aln):
            return (aln.data[0] != aln.data[1]).mean()

        assert mismatch(a_close) < 0.1
        assert mismatch(a_far) > 0.5  # ~0.75 at saturation

    def test_base_frequencies_approach_stationary(self):
        model = default_gtr()
        names = [f"t{i}" for i in range(8)]
        tree = random_tree(names, np.random.default_rng(10))
        aln = evolve_alignment(tree, model, 5000, np.random.default_rng(11),
                               gamma_alpha=None, invariant_fraction=0.0)
        freqs = aln.base_frequencies()
        assert np.abs(freqs - model.pi).max() < 0.05

    def test_needs_at_least_one_site(self):
        names = [f"t{i}" for i in range(4)]
        tree = random_tree(names, np.random.default_rng(12))
        with pytest.raises(ValueError):
            evolve_alignment(tree, JC69(), 0)


class TestSyntheticDataset:
    def test_default_matches_42sc_dimensions(self):
        aln = synthetic_dataset()
        assert aln.n_taxa == 42
        assert aln.n_sites == 1167

    def test_pattern_count_near_paper(self):
        pats = synthetic_dataset().compress()
        # The paper: "on the order of 250" distinct patterns.
        assert 180 <= pats.n_patterns <= 320

    def test_seeded_reproducibility(self):
        a = synthetic_dataset(n_taxa=10, n_sites=100, seed=5)
        b = synthetic_dataset(n_taxa=10, n_sites=100, seed=5)
        assert a.to_fasta() == b.to_fasta()

    def test_distinct_seeds_distinct_data(self):
        a = synthetic_dataset(n_taxa=10, n_sites=100, seed=5)
        b = synthetic_dataset(n_taxa=10, n_sites=100, seed=6)
        assert a.to_fasta() != b.to_fasta()

    def test_custom_dimensions(self):
        aln = synthetic_dataset(n_taxa=7, n_sites=123, seed=1)
        assert aln.n_taxa == 7
        assert aln.n_sites == 123
