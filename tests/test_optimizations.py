"""Tests for the optimization configuration (repro.port.optimizations)."""

import pytest

from repro.port import STAGES, OptimizationConfig, stage


class TestConfig:
    def test_default_is_ppe_only(self):
        config = OptimizationConfig()
        assert not config.any_offload
        assert config.describe() == "PPE-only baseline"

    def test_spe_flags_require_offload(self):
        for flag in (
            "sdk_exp",
            "int_conditionals",
            "double_buffering",
            "vectorize",
            "direct_comm",
        ):
            with pytest.raises(ValueError, match=flag):
                OptimizationConfig(**{flag: True})

    def test_flags_allowed_with_offload(self):
        config = OptimizationConfig(offload_newview=True, sdk_exp=True)
        assert config.any_offload

    def test_offload_all_implies_offload(self):
        config = OptimizationConfig(offload_all=True, vectorize=True)
        assert config.any_offload

    def test_with_flags_returns_new_instance(self):
        base = OptimizationConfig(offload_newview=True)
        derived = base.with_flags(sdk_exp=True)
        assert derived is not base
        assert derived.sdk_exp and not base.sdk_exp

    def test_describe_lists_active_flags(self):
        config = stage("table5")
        text = config.describe()
        for token in ("offload-newview", "sdk-exp", "int-cond",
                      "double-buf", "simd"):
            assert token in text
        assert "direct-comm" not in text


class TestStages:
    def test_all_tables_present(self):
        for name in (
            "table1a", "table1b", "table2", "table3", "table4",
            "table5", "table6", "table7", "table8",
        ):
            assert name in STAGES

    def test_staging_is_cumulative(self):
        order = ["table1b", "table2", "table3", "table4", "table5", "table6"]
        flags = [
            "offload_newview", "sdk_exp", "int_conditionals",
            "double_buffering", "vectorize", "direct_comm",
        ]
        for i, name in enumerate(order):
            config = stage(name)
            for flag in flags[: i + 1]:
                assert getattr(config, flag), (name, flag)
            for flag in flags[i + 1:]:
                assert not getattr(config, flag), (name, flag)

    def test_table7_adds_offload_all(self):
        assert stage("table7").offload_all
        assert not stage("table6").offload_all

    def test_table8_same_code_as_table7(self):
        assert stage("table8") == stage("table7")

    def test_unknown_stage(self):
        with pytest.raises(KeyError, match="unknown stage"):
            stage("table99")

    def test_configs_are_hashable_and_frozen(self):
        config = stage("table3")
        {config: 1}
        with pytest.raises(AttributeError):
            config.sdk_exp = False
