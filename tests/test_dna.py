"""Tests for nucleotide encoding (repro.phylo.dna)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phylo import dna


class TestEncodeSequence:
    def test_plain_bases(self):
        masks = dna.encode_sequence("ACGT")
        assert list(masks) == [1, 2, 4, 8]

    def test_lowercase_accepted(self):
        assert list(dna.encode_sequence("acgt")) == [1, 2, 4, 8]

    def test_rna_uracil_maps_to_t(self):
        assert dna.encode_sequence("U")[0] == dna.encode_sequence("T")[0]

    def test_gap_and_unknown_are_full_masks(self):
        for ch in "-?NX.":
            assert dna.encode_sequence(ch)[0] == dna.GAP_MASK

    def test_ambiguity_codes_have_expected_popcount(self):
        popcounts = {
            "R": 2, "Y": 2, "S": 2, "W": 2, "K": 2, "M": 2,
            "B": 3, "D": 3, "H": 3, "V": 3, "N": 4,
        }
        for ch, expected in popcounts.items():
            mask = int(dna.encode_sequence(ch)[0])
            assert bin(mask).count("1") == expected, ch

    def test_invalid_character_raises_with_offender(self):
        with pytest.raises(ValueError, match="Z"):
            dna.encode_sequence("ACZGT")

    def test_empty_sequence(self):
        assert dna.encode_sequence("").shape == (0,)

    def test_non_ascii_rejected(self):
        with pytest.raises(ValueError):
            dna.encode_sequence("ACéT")


class TestDecodeMask:
    def test_round_trip_of_canonical_codes(self):
        text = "ACGTRYSWKMBDHVN"
        assert dna.decode_mask(dna.encode_sequence(text)) == text

    def test_gap_decodes_to_n(self):
        assert dna.decode_mask(dna.encode_sequence("-")) == "N"

    @given(st.text(alphabet="ACGTRYSWKMBDHVN", max_size=200))
    def test_round_trip_property(self, text):
        assert dna.decode_mask(dna.encode_sequence(text)) == text


class TestValidation:
    def test_is_valid_sequence(self):
        assert dna.is_valid_sequence("ACGT-N")
        assert not dna.is_valid_sequence("ACGJ")

    def test_mask_matrix_equal_lengths(self):
        matrix = dna.mask_matrix(["ACGT", "TGCA"])
        assert matrix.shape == (2, 4)

    def test_mask_matrix_unequal_lengths_raises(self):
        with pytest.raises(ValueError, match="unequal"):
            dna.mask_matrix(["ACGT", "ACG"])

    def test_mask_matrix_empty(self):
        assert dna.mask_matrix([]).shape == (0, 0)


class TestTipPartials:
    def test_plain_base_is_unit_indicator(self):
        rows = dna.tip_partials(dna.encode_sequence("ACGT"))
        assert np.array_equal(rows, np.eye(4))

    def test_gap_allows_everything(self):
        rows = dna.tip_partials(dna.encode_sequence("N"))
        assert np.array_equal(rows[0], np.ones(4))

    def test_purine_mask(self):
        rows = dna.tip_partials(dna.encode_sequence("R"))
        assert np.array_equal(rows[0], [1.0, 0.0, 1.0, 0.0])

    def test_rows_match_mask_bits(self):
        for mask in range(1, 16):
            row = dna.TIP_PARTIAL_ROWS[mask]
            for state in range(4):
                assert row[state] == (1.0 if mask & (1 << state) else 0.0)

    def test_table_is_readonly(self):
        with pytest.raises(ValueError):
            dna.TIP_PARTIAL_ROWS[3, 2] = 5.0
