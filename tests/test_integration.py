"""Cross-layer integration tests: the full pipeline, end to end."""

import numpy as np
import pytest

from repro.harness import get_trace, run_all_experiments
from repro.phylo import (
    SearchConfig,
    Tree,
    infer_tree,
    robinson_foulds,
    synthetic_dataset,
)
from repro.port import CellCostModel, PortExecutor, Tracer, paperdata as P


class TestTraceToTables:
    """alignment -> search -> trace -> cost model -> paper tables."""

    def test_full_pipeline_from_scratch(self):
        alignment = synthetic_dataset(n_taxa=10, n_sites=400, seed=123)
        tracer = Tracer()
        result = infer_tree(
            alignment.compress(),
            config=SearchConfig(initial_radius=1, max_radius=2, max_rounds=2),
            seed=5,
            tracer=tracer,
        )
        assert np.isfinite(result.log_likelihood)
        executor = PortExecutor(tracer.summary())
        # The calibration anchor must hold no matter the input data.
        assert executor.model.stage_total_s("table1a", 1, 1) == \
            pytest.approx(36.9)
        assert executor.model.stage_total_s("table7", 1, 1) == \
            pytest.approx(27.7, rel=0.01)
        # And the scheduler composition stays near the paper.
        for b, paper_value in P.TABLE8.items():
            assert executor.model.mgps_total_s(b) == \
                pytest.approx(paper_value, rel=0.05)

    def test_bootstrap_traces_price_like_inference_traces(self):
        # Bootstraps are the same kernel mix on re-weighted data.
        alignment = synthetic_dataset(n_taxa=8, n_sites=300, seed=9)
        patterns = alignment.compress()
        config = SearchConfig(initial_radius=1, max_radius=1, max_rounds=1)
        t_inf, t_boot = Tracer(), Tracer()
        infer_tree(patterns, config=config, seed=1, tracer=t_inf)
        replicate = patterns.bootstrap_replicate(np.random.default_rng(2))
        infer_tree(replicate, config=config, seed=1, tracer=t_boot)
        a = CellCostModel(t_inf.summary())
        b = CellCostModel(t_boot.summary())
        for table in ("table2", "table7"):
            assert a.stage_total_s(table, 1, 1) == pytest.approx(
                b.stage_total_s(table, 1, 1), rel=0.02
            )


class TestEndToEndEvaluation:
    def test_all_experiments_pass_and_render(self):
        results = run_all_experiments()
        assert len(results) >= 19
        failed = [
            f"{r.experiment}: {c.claim}"
            for r in results
            for c in r.checks
            if not c.passed
        ]
        assert not failed, failed

    def test_figure3_consistent_with_table8(self):
        executor = PortExecutor(get_trace("quick"))
        series = {s.platform: s for s in executor.figure3()}
        cell = series["Cell (MGPS)"]
        for b, seconds in zip(cell.bootstraps, cell.seconds):
            if b in P.TABLE8:
                assert seconds == pytest.approx(
                    executor.model.mgps_total_s(b)
                )


class TestSearchQualityAtScale:
    def test_42sc_class_search_beats_starting_tree(self):
        # One reduced-effort search on the full-size synthetic 42_SC.
        from repro.harness.datasets import full_alignment

        patterns = full_alignment().compress()
        tracer = Tracer()
        result = infer_tree(
            patterns,
            config=SearchConfig(initial_radius=1, max_radius=1,
                                max_rounds=1),
            seed=0,
            tracer=tracer,
        )
        assert np.isfinite(result.log_likelihood)
        assert tracer.newview_count > 1000
        tree = Tree.from_newick(result.newick)
        assert tree.n_tips == 42

    def test_same_data_two_searches_similar_likelihood(self):
        alignment = synthetic_dataset(n_taxa=9, n_sites=500, seed=77)
        patterns = alignment.compress()
        config = SearchConfig(initial_radius=2, max_radius=3, max_rounds=3)
        a = infer_tree(patterns, config=config, seed=1)
        b = infer_tree(patterns, config=config, seed=2)
        # Different random starting trees must converge to similar
        # likelihood (within 1% — hill climbing is a heuristic).
        assert abs(a.log_likelihood - b.log_likelihood) < \
            0.01 * abs(a.log_likelihood)
