"""Tests for the numerical kernels (repro.phylo.kernels)."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phylo import GammaRates, JC69, default_gtr
from repro.phylo import kernels
from repro.phylo.dna import TIP_PARTIAL_ROWS


def make_pmats(n_cats=4, t=0.3):
    model = default_gtr()
    rates = GammaRates(0.7, n_cats).rates
    return model.transition_matrices(t, rates), model


def random_clv(rng, n_patterns, n_cats):
    return rng.random((n_patterns, n_cats, 4)) + 1e-3


class TestTipTerms:
    def test_matches_dense_computation(self):
        rng = np.random.default_rng(0)
        p, _ = make_pmats()
        masks = rng.choice([1, 2, 4, 8, 15], size=37).astype(np.uint8)
        terms = kernels.tip_terms(p, masks)
        dense = np.einsum("cij,sj->sci", p, TIP_PARTIAL_ROWS[masks])
        assert np.allclose(terms, dense)

    def test_persite_variant(self):
        rng = np.random.default_rng(1)
        model = default_gtr()
        site_rates = rng.random(20) + 0.1
        p = model.transition_matrices(0.2, site_rates)  # (s, 4, 4)
        masks = rng.choice([1, 2, 4, 8], size=20).astype(np.uint8)
        terms = kernels.tip_terms_persite(p, masks)
        assert terms.shape == (20, 1, 4)
        for s in range(20):
            expected = p[s] @ TIP_PARTIAL_ROWS[masks[s]]
            assert np.allclose(terms[s, 0], expected)


class TestInnerTerms:
    def test_matches_matmul(self):
        rng = np.random.default_rng(2)
        p, _ = make_pmats()
        clv = random_clv(rng, 13, 4)
        terms = kernels.inner_terms(p, clv)
        for s in range(13):
            for c in range(4):
                assert np.allclose(terms[s, c], p[c] @ clv[s, c])

    def test_persite_matches_matmul(self):
        rng = np.random.default_rng(3)
        model = default_gtr()
        site_rates = rng.random(11) + 0.1
        p = model.transition_matrices(0.15, site_rates)
        clv = random_clv(rng, 11, 1)
        terms = kernels.inner_terms_persite(p, clv)
        for s in range(11):
            assert np.allclose(terms[s, 0], p[s] @ clv[s, 0])


class TestNewviewAgainstReference:
    def test_vectorized_matches_scalar_reference(self):
        rng = np.random.default_rng(4)
        p_left, _ = make_pmats(t=0.2)
        p_right, _ = make_pmats(t=0.4)
        left = random_clv(rng, 9, 4)
        right = random_clv(rng, 9, 4)
        fast = kernels.newview_combine(
            kernels.inner_terms(p_left, left),
            kernels.inner_terms(p_right, right),
        )
        slow = kernels.newview_combine_reference(p_left, p_right, left, right)
        assert np.allclose(fast, slow, rtol=1e-12)

    @given(st.integers(0, 10_000))
    def test_reference_agreement_property(self, seed):
        rng = np.random.default_rng(seed)
        p, _ = make_pmats(n_cats=2, t=float(rng.random() + 0.01))
        left = random_clv(rng, 5, 2)
        right = random_clv(rng, 5, 2)
        fast = kernels.newview_combine(
            kernels.inner_terms(p, left), kernels.inner_terms(p, right)
        )
        slow = kernels.newview_combine_reference(p, p, left, right)
        assert np.allclose(fast, slow, rtol=1e-10)


class TestScaling:
    def test_no_scaling_above_threshold(self):
        clv = np.full((5, 2, 4), 0.5)
        counts = np.zeros(5, dtype=np.int64)
        scaled = kernels.scale_clv(clv, counts)
        assert scaled == 0
        assert (counts == 0).all()
        assert np.all(clv == 0.5)

    def test_scaling_below_threshold(self):
        clv = np.full((3, 2, 4), kernels.SCALE_THRESHOLD / 4.0)
        clv[1] = 0.5  # pattern 1 healthy
        counts = np.zeros(3, dtype=np.int64)
        scaled = kernels.scale_clv(clv, counts)
        assert scaled == 2
        assert list(counts) == [1, 0, 1]
        assert np.all(clv[0] == kernels.SCALE_THRESHOLD / 4.0 * kernels.SCALE_FACTOR)
        assert np.all(clv[1] == 0.5)

    def test_scaling_is_exactly_compensated(self):
        # log(value) must be invariant: stored * factor, count += 1.
        value = kernels.SCALE_THRESHOLD / 8.0
        clv = np.full((1, 1, 4), value)
        counts = np.zeros(1, dtype=np.int64)
        kernels.scale_clv(clv, counts)
        recovered = math.log(clv[0, 0, 0]) - counts[0] * kernels.LOG_SCALE_FACTOR
        assert abs(recovered - math.log(value)) < 1e-9

    def test_pattern_scaled_when_all_entries_small(self):
        clv = np.full((1, 2, 4), kernels.SCALE_THRESHOLD / 2)
        clv[0, 1, 3] = 1.0  # one healthy entry blocks scaling
        counts = np.zeros(1, dtype=np.int64)
        assert kernels.scale_clv(clv, counts) == 0

    def test_nan_raises_floating_point_error(self):
        # Regression: NaN compares false against the threshold, so the
        # old max()-based check silently skipped rescaling and the NaN
        # surfaced much later as an inscrutable log-likelihood failure.
        clv = np.full((4, 2, 4), 0.5)
        clv[2, 1, 0] = np.nan
        counts = np.zeros(4, dtype=np.int64)
        with pytest.raises(FloatingPointError, match="pattern 2"):
            kernels.scale_clv(clv, counts)

    def test_inf_raises_floating_point_error(self):
        clv = np.full((3, 1, 4), 0.5)
        clv[0, 0, 1] = np.inf
        counts = np.zeros(3, dtype=np.int64)
        with pytest.raises(FloatingPointError, match="non-finite"):
            kernels.scale_clv(clv, counts)

    def test_empty_clv_is_safe(self):
        # np.max with initial= must not raise on a zero-pattern CLV.
        clv = np.empty((0, 2, 4))
        counts = np.zeros(0, dtype=np.int64)
        assert kernels.scale_clv(clv, counts) == 0


class TestContractionPathCache:
    def test_paths_are_memoized_per_shape(self):
        a = np.ones((4, 4, 4))
        b = np.ones((9, 4, 4))
        path1 = kernels.contraction_path("cij,scj->sci", a, b)
        path2 = kernels.contraction_path("cij,scj->sci", a, b)
        assert path2 is path1  # same cached object, not re-derived
        # A different operand shape gets its own entry.
        c = np.ones((13, 4, 4))
        path3 = kernels.contraction_path("cij,scj->sci", a, c)
        assert path3 is not path1


class TestEvaluate:
    def test_matches_reference(self):
        rng = np.random.default_rng(5)
        p, model = make_pmats()
        u = random_clv(rng, 7, 4)
        v = random_clv(rng, 7, 4)
        weights = rng.integers(1, 5, size=7).astype(float)
        cat_w = np.full(4, 0.25)
        scale = rng.integers(0, 2, size=7).astype(np.int64)
        fast = kernels.evaluate_loglik(
            model.pi, cat_w, weights, u, kernels.inner_terms(p, v), scale
        )
        slow = kernels.evaluate_loglik_reference(
            p, model.pi, cat_w, weights, u, v, scale
        )
        assert abs(fast - slow) < 1e-8

    def test_underflow_raises(self):
        u = np.zeros((2, 1, 4))
        v = np.zeros((2, 1, 4))
        with pytest.raises(FloatingPointError):
            kernels.evaluate_loglik(
                np.full(4, 0.25), np.ones(1), np.ones(2), u, v,
                np.zeros(2, dtype=np.int64),
            )


class TestBranchDerivatives:
    def test_lnl_matches_evaluate(self):
        rng = np.random.default_rng(6)
        model = default_gtr()
        rates = GammaRates(0.7, 4).rates
        u = random_clv(rng, 8, 4)
        v = random_clv(rng, 8, 4)
        weights = np.ones(8)
        cat_w = np.full(4, 0.25)
        scale = np.zeros(8, dtype=np.int64)
        t = 0.31
        terms = model.transition_derivatives(t, rates)
        lnl, _, _ = kernels.branch_derivatives(
            terms, model.pi, cat_w, weights, u, v, scale
        )
        p = model.transition_matrices(t, rates)
        direct = kernels.evaluate_loglik(
            model.pi, cat_w, weights, u, kernels.inner_terms(p, v), scale
        )
        assert abs(lnl - direct) < 1e-9

    def test_derivatives_match_finite_differences(self):
        rng = np.random.default_rng(7)
        model = default_gtr()
        rates = GammaRates(0.7, 4).rates
        u = random_clv(rng, 10, 4)
        v = random_clv(rng, 10, 4)
        weights = rng.integers(1, 4, size=10).astype(float)
        cat_w = np.full(4, 0.25)
        scale = np.zeros(10, dtype=np.int64)
        t, h = 0.27, 1e-6

        def lnl_at(x):
            terms = model.transition_derivatives(x, rates)
            return kernels.branch_derivatives(
                terms, model.pi, cat_w, weights, u, v, scale
            )[0]

        _, d1, d2 = kernels.branch_derivatives(
            model.transition_derivatives(t, rates),
            model.pi, cat_w, weights, u, v, scale,
        )
        fd1 = (lnl_at(t + h) - lnl_at(t - h)) / (2 * h)
        fd2 = (lnl_at(t + h) - 2 * lnl_at(t) + lnl_at(t - h)) / (h * h)
        assert abs(d1 - fd1) < 1e-4 * max(1.0, abs(fd1))
        assert abs(d2 - fd2) < 1e-2 * max(1.0, abs(fd2))

    def test_batch_persite_matches_per_k_scalar(self):
        """The fused CAT-mode batch must equal K serial per-site calls.

        This pins the ``ksi,ksij,ksj->ks`` contraction (which the
        full-tree gradient rides in CAT mode) to the single-candidate
        ``si,sij,sj->s`` kernel, branch by branch.
        """
        rng = np.random.default_rng(8)
        model = default_gtr()
        n_patterns, n_k = 9, 5
        site_rates = rng.random(n_patterns) + 0.1
        weights = rng.integers(1, 4, size=n_patterns).astype(float)
        lengths = rng.uniform(0.05, 1.2, n_k)
        u = np.stack([random_clv(rng, n_patterns, 1) for _ in range(n_k)])
        v = np.stack([random_clv(rng, n_patterns, 1) for _ in range(n_k)])
        scale = rng.integers(0, 3, size=(n_k, n_patterns)).astype(np.int64)
        terms = tuple(
            np.stack([model.transition_derivatives(t, site_rates)[order]
                      for t in lengths])
            for order in range(3)
        )
        batch = kernels.branch_derivatives_batch_persite(
            terms, model.pi, weights, u, v, scale
        )
        for k in range(n_k):
            single = kernels.branch_derivatives_persite(
                tuple(part[k] for part in terms), model.pi, weights,
                u[k], v[k], scale[k],
            )
            for part in range(3):
                got, want = float(batch[part][k]), single[part]
                assert abs(got - want) <= 1e-12 * max(1.0, abs(want))

    def test_branch_gradient_full_dispatch(self):
        """``branch_gradient_full`` is exactly the batch contraction —
        integrated mode routes to ``branch_derivatives_batch``, CAT
        mode to the per-site flavor."""
        rng = np.random.default_rng(9)
        model = default_gtr()
        rates = GammaRates(0.7, 4).rates
        n_patterns, n_k = 7, 4
        weights = np.ones(n_patterns)
        cat_w = np.full(4, 0.25)
        lengths = rng.uniform(0.05, 1.0, n_k)
        u = np.stack([random_clv(rng, n_patterns, 4) for _ in range(n_k)])
        v = np.stack([random_clv(rng, n_patterns, 4) for _ in range(n_k)])
        scale = np.zeros((n_k, n_patterns), dtype=np.int64)
        terms = tuple(
            np.stack([model.transition_derivatives(t, rates)[order]
                      for t in lengths])
            for order in range(3)
        )
        grad = kernels.branch_gradient_full(
            terms, model.pi, cat_w, weights, u, v, scale
        )
        batch = kernels.branch_derivatives_batch(
            terms, model.pi, cat_w, weights, u, v, scale
        )
        for part in range(3):
            assert np.array_equal(grad[part], batch[part])

    def test_flop_constants_match_paper(self):
        assert kernels.FLOPS_LARGE_LOOP_SCALAR == 44
        assert kernels.FLOPS_LARGE_LOOP_VECTOR == 22
        assert kernels.FLOPS_SMALL_LOOP_SCALAR == 36
        assert kernels.FLOPS_SMALL_LOOP_VECTOR == 24
