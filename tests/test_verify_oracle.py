"""Unit tests of the loop-based reference engine (repro.verify.oracle)."""

import numpy as np
import pytest

from repro.phylo import JC69, GammaRates, LikelihoodEngine, Tree
from repro.phylo.models import GTR
from repro.verify import ReferenceEngine, jc69_two_taxon_closed_form, two_taxon_tree
from tests.strategies import random_patterns


@pytest.fixture()
def instance():
    rng = np.random.default_rng(17)
    patterns = random_patterns(rng, 6, 40)
    tree = Tree.from_tip_names(patterns.taxa, rng)
    model = GTR((1.2, 2.9, 0.7, 1.1, 3.4, 1.0), (0.32, 0.18, 0.24, 0.26))
    return patterns, tree, model


def test_oracle_requires_a_tree(instance):
    patterns, _tree, model = instance
    with pytest.raises(ValueError, match="tree is required"):
        ReferenceEngine(patterns, model, None, None)


def test_oracle_matches_fast_engine_loglik(instance):
    patterns, tree, model = instance
    rates = GammaRates(0.6, 4)
    oracle = ReferenceEngine(patterns, model, rates, tree)
    fast = LikelihoodEngine(patterns, model, rates, tree)
    try:
        for branch in tree.branches[:4]:
            a, b = fast.evaluate(branch), oracle.evaluate(branch)
            assert a == pytest.approx(b, rel=1e-9)
    finally:
        fast.detach()


def test_oracle_newview_shapes_and_scale_counts(instance):
    patterns, tree, model = instance
    oracle = ReferenceEngine(patterns, model, None, tree)
    fast = LikelihoodEngine(patterns, model, None, tree)
    try:
        inner = next(n for n in tree.inner_nodes)
        entry = inner.branches[0]
        clv, scale = oracle.newview(inner, entry)
        assert clv.shape == (patterns.n_patterns, 1, 4)
        assert scale.shape == (patterns.n_patterns,)
        cached = fast.clv(inner, entry)
        assert np.array_equal(scale, cached.scale_counts)
        # Error normalized by the largest element (the harness's metric):
        # tiny entries many orders below the pattern max carry round-off
        # relative to the magnitudes they were computed from.
        np.testing.assert_allclose(
            clv, cached.clv, rtol=1e-9, atol=1e-9 * float(np.abs(clv).max())
        )
    finally:
        fast.detach()


def test_oracle_newview_rejects_tips(instance):
    patterns, tree, model = instance
    oracle = ReferenceEngine(patterns, model, None, tree)
    tip = tree.tips[0]
    with pytest.raises(ValueError, match="tips have no CLV"):
        oracle.newview(tip, tip.branches[0])


def test_oracle_branch_derivatives_match_trial_length(instance):
    """At a trial length != stored length the derivative sign must point
    toward the optimum, and lnL(t) must be consistent with evaluate."""
    patterns, tree, model = instance
    oracle = ReferenceEngine(patterns, model, None, tree)
    branch = tree.branches[1]
    lnl, d1, d2 = oracle.branch_derivatives(branch)
    assert np.isfinite([lnl, d1, d2]).all()
    assert lnl == pytest.approx(oracle.evaluate(branch), rel=1e-12)
    with pytest.raises(ValueError, match="non-negative"):
        oracle.branch_derivatives(branch, length=-0.1)


def test_oracle_poisoned_by_construction_raises(instance):
    """The oracle carries the same NaN guard as the fast kernel.

    Poisoned eigenvalues are *persistent* corruption — cache drops and
    the backend fallback cannot clear them — so the degradation ladder
    must exhaust and surface the typed ``EngineNumericalError`` (still
    carrying the kernel guard's message).
    """
    from repro.phylo.engine.protocol import EngineNumericalError

    patterns, tree, model = instance
    oracle = ReferenceEngine(patterns, model, None, tree)
    oracle._eigenvalues[0] = float("nan")
    inner = next(n for n in tree.inner_nodes)
    with pytest.raises(EngineNumericalError, match="non-finite CLV"):
        oracle.newview(inner, inner.branches[0])


def test_jc69_two_taxon_closed_form_both_engines():
    """The one analytically solvable case: both engines must hit the
    textbook JC69 formula."""
    from repro.phylo import Alignment

    seq_a = "ACGTACGTACGTACGTACGT"
    seq_b = "ACGTACGTTCGAACGTATGT"
    n_same = sum(x == y for x, y in zip(seq_a, seq_b))
    n_diff = len(seq_a) - n_same
    patterns = Alignment.from_sequences({"a": seq_a, "b": seq_b}).compress()
    for length in (0.05, 0.37, 1.4):
        analytic = jc69_two_taxon_closed_form(length, n_same, n_diff)
        tree = two_taxon_tree("a", "b", length)
        oracle_value = ReferenceEngine(patterns, JC69(), None, tree).evaluate()
        fast = LikelihoodEngine(patterns, JC69(), None, tree)
        try:
            fast_value = fast.evaluate()
        finally:
            fast.detach()
        assert oracle_value == pytest.approx(analytic, rel=1e-9)
        assert fast_value == pytest.approx(analytic, rel=1e-9)
