"""server_kill chaos: the service dies mid-job, restarts, and resumes.

A forced-kill run (``trigger_at``) proves the mechanism
deterministically; a small seeded campaign exercises the public
entry point the CI chaos job uses.
"""

import pytest

from repro.chaos import SURVIVED_IDENTICAL, FaultPlan, FaultSpec
from repro.chaos.campaign import (
    _canonical_result,
    _serve_chaos_run,
    _serve_run_to_completion,
    run_serve_campaign,
)
from repro.chaos.plan import SERVE_SERVER_KILL, default_serve_plan
from repro.cluster import JobSpec
from repro.phylo import synthetic_dataset


@pytest.fixture(scope="module")
def tiny_fasta():
    return synthetic_dataset(n_taxa=6, n_sites=120, seed=3).to_fasta()


@pytest.fixture(scope="module")
def tiny_spec(fast_config):
    return JobSpec(n_inferences=1, n_bootstraps=4, seed=9, batch_size=2,
                   config=fast_config)


@pytest.fixture(scope="module")
def baseline(tiny_fasta, tiny_spec, cluster_workers, tmp_path_factory):
    root = tmp_path_factory.mktemp("serve-baseline")
    result, restarts, _service = _serve_run_to_completion(
        str(root), tiny_fasta, tiny_spec, cluster_workers, max_restarts=0,
    )
    assert restarts == 0
    return result


class TestForcedServerKill:
    def test_kill_between_journal_appends_resumes_bit_identical(
            self, tiny_fasta, tiny_spec, cluster_workers, baseline,
            tmp_path):
        # Fire unconditionally on the 6th journal append: mid-job, after
        # the header and the first few scheduling records.
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(SERVE_SERVER_KILL, trigger_at=(5,)),
        ))
        run = _serve_chaos_run(
            tiny_fasta, tiny_spec, plan, cluster_workers,
            str(tmp_path / "killed"), _canonical_result(baseline),
            max_restarts=4,
        )
        assert run.classification == SURVIVED_IDENTICAL, run.error
        assert run.resumes >= 1
        assert run.fired.get(SERVE_SERVER_KILL) == 1
        assert run.log_likelihood == baseline["best_log_likelihood"]

    def test_double_kill_also_survives(self, tiny_fasta, tiny_spec,
                                       cluster_workers, baseline,
                                       tmp_path):
        # The second kill lands in the *resumed* run: restart-of-restart.
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(SERVE_SERVER_KILL, trigger_at=(5, 9),
                      max_triggers=2),
        ))
        run = _serve_chaos_run(
            tiny_fasta, tiny_spec, plan, cluster_workers,
            str(tmp_path / "killed-twice"), _canonical_result(baseline),
            max_restarts=4,
        )
        assert run.classification == SURVIVED_IDENTICAL, run.error
        assert run.resumes == 2
        assert run.fired.get(SERVE_SERVER_KILL) == 2

    def test_restart_budget_exhaustion_is_a_typed_failure(
            self, tiny_fasta, tiny_spec, cluster_workers, baseline,
            tmp_path):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(SERVE_SERVER_KILL, probability=1.0,
                      max_triggers=1000),
        ))
        run = _serve_chaos_run(
            tiny_fasta, tiny_spec, plan, cluster_workers,
            str(tmp_path / "doomed"), _canonical_result(baseline),
            max_restarts=2,
        )
        assert run.classification == "typed_failure"
        assert "InjectedCrash" in run.error


class TestServeCampaign:
    def test_tiny_campaign_has_no_silent_corruption(self, tiny_fasta,
                                                    tiny_spec,
                                                    cluster_workers,
                                                    tmp_path):
        report = run_serve_campaign(
            n_seeds=2, n_workers=cluster_workers,
            workdir=str(tmp_path), fasta=tiny_fasta, spec=tiny_spec,
        )
        assert report.label == f"serve:{cluster_workers}w"
        assert len(report.runs) == 2
        assert report.ok, report.summary()

    def test_default_plan_round_trips_and_names_the_site(self):
        plan = default_serve_plan(3)
        assert plan.sites == (SERVE_SERVER_KILL,)
        assert FaultPlan.from_json(plan.to_json()) == plan
