"""Tests for the high-level inference API (multiple inferences, bootstrap)."""

import numpy as np
import pytest

from repro.phylo import (
    SearchConfig,
    Tree,
    bootstrap_analysis,
    infer_tree,
    multiple_inferences,
    run_full_analysis,
    support_values,
    synthetic_dataset,
)
from repro.phylo.inference import default_model_for

FAST = SearchConfig(initial_radius=1, max_radius=1, max_rounds=1,
                    smoothing_passes=1, final_smoothing_passes=1)


class TestInferTree:
    def test_basic_run(self, small_patterns):
        result = infer_tree(small_patterns, config=FAST, seed=1)
        assert np.isfinite(result.log_likelihood)
        tree = Tree.from_newick(result.newick)
        assert sorted(tree.tip_names()) == sorted(small_patterns.taxa)
        assert result.newview_calls > 0
        assert result.makenewz_calls > 0

    def test_accepts_uncompressed_alignment(self, small_alignment):
        result = infer_tree(small_alignment, config=FAST, seed=1)
        assert np.isfinite(result.log_likelihood)

    def test_deterministic_per_seed(self, small_patterns):
        a = infer_tree(small_patterns, config=FAST, seed=7)
        b = infer_tree(small_patterns, config=FAST, seed=7)
        assert a.newick == b.newick
        assert a.log_likelihood == b.log_likelihood

    def test_different_seeds_differ(self, medium_patterns):
        a = infer_tree(medium_patterns, config=FAST, seed=1)
        b = infer_tree(medium_patterns, config=FAST, seed=2)
        # Distinct randomized starting trees (the paper's multiple
        # inferences) usually land on different trees/likelihoods.
        assert a.newick != b.newick or a.log_likelihood != b.log_likelihood

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            infer_tree([1, 2, 3])

    def test_default_model_uses_empirical_frequencies(self, small_patterns):
        model = default_model_for(small_patterns)
        assert np.allclose(model.pi, small_patterns.base_frequencies())


class TestMultipleInferences:
    def test_count_and_replicates(self, small_patterns):
        results = multiple_inferences(small_patterns, 3, config=FAST, seed=2)
        assert len(results) == 3
        assert [r.replicate for r in results] == [0, 1, 2]
        assert not any(r.is_bootstrap for r in results)

    def test_distinct_starting_points(self, medium_patterns):
        results = multiple_inferences(medium_patterns, 3, config=FAST, seed=2)
        lnls = {round(r.log_likelihood, 6) for r in results}
        newicks = {r.newick for r in results}
        assert len(newicks) > 1 or len(lnls) > 1


class TestBootstrap:
    def test_runs_and_marks_replicates(self, small_patterns):
        results = bootstrap_analysis(small_patterns, 3, config=FAST, seed=3)
        assert len(results) == 3
        assert all(r.is_bootstrap for r in results)

    def test_replicates_see_different_data(self, small_patterns):
        results = bootstrap_analysis(small_patterns, 4, config=FAST, seed=4)
        lnls = {round(r.log_likelihood, 4) for r in results}
        assert len(lnls) > 1  # reweighted data -> different scores


class TestSupportValues:
    def test_range_and_keys(self, small_patterns):
        best = infer_tree(small_patterns, config=FAST, seed=5)
        boots = bootstrap_analysis(small_patterns, 3, config=FAST, seed=5)
        best_tree = Tree.from_newick(best.newick)
        supports = support_values(
            best_tree, [Tree.from_newick(b.newick) for b in boots]
        )
        assert set(supports.keys()) == best_tree.bipartitions()
        assert all(0.0 <= v <= 1.0 for v in supports.values())

    def test_identical_replicates_give_full_support(self, small_patterns):
        best = infer_tree(small_patterns, config=FAST, seed=6)
        tree = Tree.from_newick(best.newick)
        supports = support_values(tree, [tree, tree, tree])
        assert all(v == 1.0 for v in supports.values())

    def test_empty_replicates_give_zero(self, small_patterns):
        best = infer_tree(small_patterns, config=FAST, seed=6)
        tree = Tree.from_newick(best.newick)
        supports = support_values(tree, [])
        assert all(v == 0.0 for v in supports.values())


class TestFullAnalysis:
    def test_complete_workflow(self, small_patterns):
        analysis = run_full_analysis(
            small_patterns, n_inferences=2, n_bootstraps=2,
            config=FAST, seed=7,
        )
        assert len(analysis.inferences) == 2
        assert len(analysis.bootstraps) == 2
        assert analysis.best in analysis.inferences
        assert analysis.best.log_likelihood == max(
            r.log_likelihood for r in analysis.inferences
        )
        assert analysis.supports
        analysis.best_tree.validate()
