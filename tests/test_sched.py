"""Tests for the scheduling models (repro.sched)."""

import pytest

from repro.cell import Simulator, Timeout
from repro.harness import get_trace
from repro.port import PortExecutor
from repro.sched import (
    CellTask,
    MasterWorker,
    SimMPI,
    make_tasks,
    simulate_edtlp,
    simulate_llp,
    simulate_mgps,
)


@pytest.fixture(scope="module")
def executor():
    return PortExecutor(get_trace("quick"), devs_batches_per_task=24)


def simple_tasks(count, spe_s=1.0, ppe_s=0.1, offloads=100, n_batches=10):
    return make_tasks(count, spe_s=spe_s, ppe_s=ppe_s, comm_s=0.0,
                      offloads=offloads, n_batches=n_batches)


class TestTaskModel:
    def test_batching_arithmetic(self):
        task = CellTask(0, spe_s=2.0, ppe_s=0.5, comm_s=0.5, offloads=100,
                        n_batches=10)
        assert task.spe_batch_s == pytest.approx(0.2)
        assert task.ppe_batch_s == pytest.approx(0.1)
        assert task.offloads_per_batch == pytest.approx(10.0)
        assert task.serial_s == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CellTask(0, spe_s=-1, ppe_s=0, comm_s=0, offloads=0, n_batches=1)
        with pytest.raises(ValueError):
            CellTask(0, spe_s=1, ppe_s=0, comm_s=0, offloads=0, n_batches=0)
        with pytest.raises(ValueError):
            make_tasks(0, 1, 1, 0, 1)


class TestSimMPI:
    def test_send_recv_round_trip(self):
        sim = Simulator()
        mpi = SimMPI(sim, 2)
        received = []

        def rank0():
            yield from mpi.send_from(0, 1, tag=7, payload="hello")

        def rank1():
            message = yield from mpi.recv(1)
            received.append((message.source, message.tag, message.payload))

        sim.spawn(rank0())
        sim.spawn(rank1())
        sim.run()
        assert received == [(0, 7, "hello")]
        assert mpi.messages_sent == 1

    def test_message_latency_charged(self):
        sim = Simulator()
        mpi = SimMPI(sim, 2, message_latency_s=1e-3)

        def rank0():
            yield from mpi.send(1, tag=1)

        sim.spawn(rank0())
        assert sim.run() == pytest.approx(1e-3)

    def test_rank_bounds(self):
        sim = Simulator()
        mpi = SimMPI(sim, 2)
        with pytest.raises(ValueError):
            list(mpi.send(5, tag=1))

    def test_master_worker_completes_all_tasks(self):
        sim = Simulator()
        tasks = simple_tasks(7)
        executed = []

        def execute(worker, task):
            executed.append((worker, task.task_id))
            yield Timeout(task.spe_s)

        driver = MasterWorker(sim, tasks, n_workers=3, execute=execute)
        makespan = driver.run()
        assert sorted(t for _, t in executed) == list(range(7))
        assert sorted(driver.completed) == list(range(7))
        # 7 unit tasks over 3 workers: at least ceil(7/3) serial rounds.
        assert makespan >= 3 * 1.0

    def test_master_worker_balances(self):
        sim = Simulator()
        tasks = simple_tasks(8)
        per_worker = {0: 0, 1: 0, 2: 0, 3: 0}

        def execute(worker, task):
            per_worker[worker] += 1
            yield Timeout(task.spe_s)

        MasterWorker(sim, tasks, n_workers=4, execute=execute).run()
        assert all(count == 2 for count in per_worker.values())


class TestEDTLP:
    def test_more_workers_is_faster(self, executor):
        model = executor.model
        two = executor.edtlp_devs(8, n_workers=2).makespan_s
        eight = executor.edtlp_devs(8, n_workers=8).makespan_s
        assert eight < two

    def test_saturated_ppe(self, executor):
        result = executor.edtlp_devs(8, n_workers=8)
        # With 8 oversubscribed workers the PPE is the bottleneck.
        assert result.ppe_utilization > 0.9
        assert result.mean_spe_utilization < 0.9

    def test_matches_analytic_within_15pct(self, executor):
        devs = executor.edtlp_devs(8).makespan_s
        analytic = executor.model.edtlp_total_s(8)
        assert abs(devs - analytic) / analytic < 0.15

    def test_worker_limit(self):
        tasks = simple_tasks(2)
        with pytest.raises(ValueError, match="SPEs"):
            simulate_edtlp(tasks, ppe_service_s=1e-5, n_workers=9)

    def test_makespan_at_least_spe_bound(self):
        tasks = simple_tasks(8, spe_s=2.0, ppe_s=0.0, offloads=10)
        result = simulate_edtlp(tasks, ppe_service_s=1e-9, n_workers=8)
        assert result.makespan_s >= 2.0

    def test_utilizations_bounded(self, executor):
        result = executor.edtlp_devs(4, n_workers=4)
        assert 0.0 < result.ppe_utilization <= 1.0
        assert all(0.0 < u <= 1.0 for u in result.spe_utilizations)


class TestLLP:
    def test_split_beats_serial(self):
        tasks = simple_tasks(1, spe_s=10.0, ppe_s=0.0)
        serial = simulate_llp(tasks, parallel_fraction=0.6,
                              overhead_eta=0.1, spes_per_task=1)
        split = simulate_llp(simple_tasks(1, spe_s=10.0, ppe_s=0.0),
                             parallel_fraction=0.6, overhead_eta=0.1,
                             spes_per_task=8)
        assert split.makespan_s < serial.makespan_s

    def test_amdahl_floor(self):
        p = 0.6
        tasks = simple_tasks(1, spe_s=10.0, ppe_s=0.0)
        result = simulate_llp(tasks, parallel_fraction=p,
                              overhead_eta=0.0, spes_per_task=8)
        assert result.makespan_s >= 10.0 * (1 - p) - 1e-9

    def test_concurrent_groups(self):
        # 4 tasks with 2 SPEs each run fully concurrently.
        tasks = simple_tasks(4, spe_s=4.0, ppe_s=0.0)
        result = simulate_llp(tasks, parallel_fraction=0.5,
                              overhead_eta=0.0, spes_per_task=2)
        one = simulate_llp(simple_tasks(1, spe_s=4.0, ppe_s=0.0),
                           parallel_fraction=0.5, overhead_eta=0.0,
                           spes_per_task=2)
        assert result.makespan_s == pytest.approx(one.makespan_s, rel=0.05)

    def test_queueing_beyond_four_groups(self):
        # 5 tasks, 2 SPEs each: max four concurrent -> two waves.
        tasks = simple_tasks(5, spe_s=4.0, ppe_s=0.0)
        result = simulate_llp(tasks, parallel_fraction=0.5,
                              overhead_eta=0.0, spes_per_task=2)
        one = simulate_llp(simple_tasks(1, spe_s=4.0, ppe_s=0.0),
                           parallel_fraction=0.5, overhead_eta=0.0,
                           spes_per_task=2)
        assert result.makespan_s > 1.5 * one.makespan_s

    def test_parameter_validation(self):
        tasks = simple_tasks(1)
        with pytest.raises(ValueError):
            simulate_llp(tasks, parallel_fraction=1.5, overhead_eta=0.0,
                         spes_per_task=2)
        with pytest.raises(ValueError):
            simulate_llp(tasks, parallel_fraction=0.5, overhead_eta=0.0,
                         spes_per_task=0)

    def test_matches_analytic_within_10pct(self, executor):
        devs = executor.llp_devs(1, spes_per_task=8).makespan_s
        analytic = executor.model.llp_task_s(8)
        assert abs(devs - analytic) / analytic < 0.10


class TestMGPS:
    def test_phase_decomposition(self, executor):
        result = executor.mgps_devs(11)
        modes = [(p.mode, p.n_tasks) for p in result.phases]
        assert modes[0] == ("edtlp", 8)
        assert all(m == "llp" for m, _ in modes[1:])
        assert result.edtlp_tasks == 8
        assert result.llp_tasks == 3

    def test_exact_batches_skip_llp(self, executor):
        result = executor.mgps_devs(16)
        assert all(p.mode == "edtlp" for p in result.phases)

    def test_pure_llp_below_chip_size(self, executor):
        result = executor.mgps_devs(3)
        assert all(p.mode == "llp" for p in result.phases)

    def test_matches_analytic_within_15pct(self, executor):
        for b in (1, 8, 12):
            devs = executor.mgps_devs(b).makespan_s
            analytic = executor.model.mgps_total_s(b)
            assert abs(devs - analytic) / analytic < 0.15, b

    def test_mgps_beats_static_two_workers(self, executor):
        # The headline claim of Table 8: MGPS strictly beats the naive
        # two-worker regime at every bootstrap count.
        from repro.port import stage
        for b in (8, 16, 32):
            mgps = executor.model.mgps_total_s(b)
            static = executor.model.run_total_s(stage("table7"), 2, b)
            assert mgps < static, b
