"""Failure-injection tests: the simulator must fail loudly, not wrongly."""

import pytest

from repro.cell import (
    CellBlade,
    DMAError,
    EIB,
    KernelInvocation,
    LocalStoreOverflow,
    MFC,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.cell.timing import CellTiming


class TestEIBOverload:
    def test_outstanding_request_cap_enforced(self):
        # A pathological burst beyond the architected 100 outstanding
        # requests must raise, not silently serialize.
        timing = CellTiming(eib_max_outstanding=4)
        sim = Simulator()
        eib = EIB(sim, timing)

        def mover():
            yield from eib.transfer(2 ** 20)

        for _ in range(6):
            sim.spawn(mover())
        with pytest.raises(SimulationError, match="outstanding"):
            sim.run()


class TestDMAErrorsMidRun:
    def test_invalid_issue_does_not_corrupt_queue(self):
        sim = Simulator()
        mfc = MFC(sim, EIB(sim))
        with pytest.raises(DMAError):
            mfc.dma_get(17)  # illegal size
        # The failed issue must not leave a phantom pending command.
        assert mfc.tag_pending(0) == 0
        mfc.dma_get(16, tag=0)

        def proc():
            yield from mfc.wait_tag(0)

        sim.spawn(proc())
        sim.run()
        assert mfc.commands_served == 1

    def test_oversize_transfer_points_to_dma_lists(self):
        sim = Simulator()
        mfc = MFC(sim, EIB(sim))
        with pytest.raises(DMAError, match="use a DMA list"):
            mfc.dma_get(64 * 1024)


class TestLocalStorePressure:
    def test_oversized_module_fails_at_load(self):
        blade = CellBlade()
        spe = blade.chip.spes[0]
        with pytest.raises(LocalStoreOverflow):
            spe.load_offloaded_code(300 * 1024)

    def test_double_thread_load_rejected(self):
        blade = CellBlade()
        spe = blade.chip.spes[0]
        spe.load_offloaded_code()
        with pytest.raises(RuntimeError, match="already"):
            spe.load_offloaded_code()

    def test_failed_load_leaves_store_consistent(self):
        blade = CellBlade()
        spe = blade.chip.spes[0]
        try:
            spe.load_offloaded_code(300 * 1024)
        except LocalStoreOverflow:
            pass
        # The code segment must not be half-reserved.
        assert "code" not in spe.local_store.segments()
        spe.load_offloaded_code()  # a sane module still loads


class TestDeadlockDiagnosis:
    def test_unserved_offload_is_diagnosed(self):
        # An SPE waiting for a signal nobody sends: the run drains, the
        # quiescence check names the blocked process.
        blade = CellBlade()
        spe = blade.chip.spes[0]
        spe.load_offloaded_code()

        def spe_side():
            yield from spe.signal.wait()  # never written
            yield from spe.execute(KernelInvocation("newview", 1e-6))

        blade.sim.spawn(spe_side(), name="orphan-spe-thread")
        blade.sim.run()
        with pytest.raises(SimulationError, match="orphan-spe-thread"):
            blade.sim.assert_quiescent()

    def test_mailbox_overflow_blocks_writer(self):
        blade = CellBlade()
        spe = blade.chip.spes[0]

        def flooder():
            for i in range(10):  # inbound depth is 4
                yield from spe.mailbox.ppe_write(i)

        blade.sim.spawn(flooder(), name="ppe-flooder")
        blade.sim.run()
        assert len(blade.sim.unfinished_processes()) == 1
