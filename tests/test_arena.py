"""Tests for the CLV arena and the P-matrix cache (engine hot-path state)."""

import numpy as np
import pytest

from repro.phylo import GammaRates, LikelihoodEngine, default_gtr, kernels
from repro.phylo.arena import ClvArena
from repro.phylo.models import PMatrixCache


class TestClvArena:
    def test_initial_capacity_and_shapes(self):
        arena = ClvArena(17, 4, 4, initial_slots=8)
        assert arena.capacity == 8
        assert arena.in_use == 0
        slot = arena.acquire()
        assert slot.clv.shape == (17, 4, 4)
        assert slot.clv.flags["C_CONTIGUOUS"]
        assert slot.scale_counts.shape == (17,)
        assert slot.scale_counts.dtype == np.int64

    def test_acquire_release_recycles(self):
        arena = ClvArena(5, 2, 4, initial_slots=2)
        a = arena.acquire()
        arena.release(a)
        b = arena.acquire()
        # The freed slot is handed out again: same underlying buffer.
        assert b is a
        assert arena.acquires == 2 and arena.releases == 1

    def test_grows_by_doubling_when_exhausted(self):
        arena = ClvArena(3, 1, 4, initial_slots=2)
        slots = [arena.acquire() for _ in range(5)]
        assert arena.capacity >= 5
        assert arena.grown >= 2  # initial block + at least one growth
        # Growth must not invalidate earlier slots' views.
        slots[0].clv[:] = 7.0
        assert np.all(slots[0].clv == 7.0)

    def test_double_release_guard(self):
        arena = ClvArena(3, 1, 4)
        slot = arena.acquire()
        arena.release(slot)
        with pytest.raises(ValueError, match="released twice"):
            arena.release(slot)

    def test_foreign_slot_guard(self):
        a = ClvArena(3, 1, 4)
        b = ClvArena(3, 1, 4)
        slot = a.acquire()
        with pytest.raises(ValueError, match="belong"):
            b.release(slot)

    def test_release_all_and_counters(self):
        arena = ClvArena(3, 1, 4, initial_slots=4)
        for _ in range(3):
            arena.acquire()
        assert arena.in_use == 3
        assert arena.high_water == 3
        arena.release_all()
        assert arena.in_use == 0
        counters = arena.counters()
        assert counters["arena_acquires"] == 3
        assert counters["arena_releases"] == 3
        assert counters["arena_high_water"] == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            ClvArena(0, 1, 4)
        with pytest.raises(ValueError):
            ClvArena(3, 1, 4, initial_slots=0)


class TestPMatrixCache:
    def setup_method(self):
        self.model = default_gtr()
        self.rates = GammaRates(0.7, 4).rates

    def test_hit_and_miss_counting(self):
        cache = PMatrixCache(self.model, self.rates)
        p1 = cache.matrices(0.3)
        assert (cache.hits, cache.misses) == (0, 1)
        p2 = cache.matrices(0.3)
        assert p2 is p1
        assert (cache.hits, cache.misses) == (1, 1)

    def test_quantization_shares_nearby_lengths(self):
        cache = PMatrixCache(self.model, self.rates, quantum=1e-12)
        p1 = cache.matrices(0.25)
        p2 = cache.matrices(0.25 + 1e-13)  # below the quantum
        assert p2 is p1
        p3 = cache.matrices(0.25 + 1e-8)  # a resolvable difference
        assert p3 is not p1

    def test_entries_match_uncached_computation(self):
        cache = PMatrixCache(self.model, self.rates)
        assert np.allclose(
            cache.matrices(0.4),
            self.model.transition_matrices(0.4, self.rates),
            atol=1e-15,
        )
        cached = cache.derivatives(0.4)
        direct = self.model.transition_derivatives(0.4, self.rates)
        for a, b in zip(cached, direct):
            assert np.allclose(a, b, atol=1e-15)

    def test_derivative_stack_serves_matrices(self):
        cache = PMatrixCache(self.model, self.rates)
        p_deriv, _, _ = cache.derivatives(0.7)
        p = cache.matrices(0.7)  # served from the derivative entry
        assert p is p_deriv
        assert cache.hits == 1

    def test_invalidate_clears_entries_keeps_counters(self):
        cache = PMatrixCache(self.model, self.rates)
        cache.matrices(0.1)
        cache.matrices(0.1)
        cache.invalidate()
        assert len(cache) == 0
        assert cache.hits == 1 and cache.misses == 1
        cache.matrices(0.1)  # recomputed after invalidation
        assert cache.misses == 2

    def test_lru_eviction_at_capacity(self):
        cache = PMatrixCache(self.model, self.rates, capacity=2)
        cache.matrices(0.1)
        cache.matrices(0.2)
        cache.matrices(0.1)  # refresh 0.1 -> 0.2 becomes LRU
        cache.matrices(0.3)  # evicts 0.2
        misses = cache.misses
        cache.matrices(0.1)
        assert cache.misses == misses  # still cached
        cache.matrices(0.2)
        assert cache.misses == misses + 1  # was evicted

    def test_cached_arrays_are_read_only(self):
        cache = PMatrixCache(self.model, self.rates)
        p = cache.matrices(0.5)
        with pytest.raises(ValueError):
            p[0, 0, 0] = 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PMatrixCache(self.model, self.rates, quantum=0.0)
        with pytest.raises(ValueError):
            PMatrixCache(self.model, self.rates, capacity=0)


class TestEngineArenaIntegration:
    def test_recycled_slots_give_bit_identical_clvs(self, engine):
        lnl1 = engine.evaluate()
        branch = engine.tree.branches[0]
        key, entry = next(iter(engine._clv_cache.items()))
        first = entry.clv.copy()
        first_scale = entry.scale_counts.copy()
        # Invalidation releases every slot; recomputation reuses the
        # recycled slots and must be bit-identical.
        engine.invalidate_all()
        assert not engine._clv_cache
        lnl2 = engine.evaluate()
        assert lnl2 == lnl1  # bit-identical, not just close
        entry2 = engine._clv_cache[key]
        assert np.array_equal(entry2.clv, first)
        assert np.array_equal(entry2.scale_counts, first_scale)
        assert engine._arena.releases > 0  # recycling actually happened

    def test_clv_matches_scalar_reference_oracle(self, engine):
        engine.evaluate()
        # Find a cached direction whose two children are both expandable.
        for (node_id, entry_id), cached in engine._clv_cache.items():
            node = next(
                n for n in engine.tree.nodes if n.index == node_id
            )
            entry = engine.tree.branch_by_id(entry_id)
            b1, b2 = [b for b in node.branches if b is not entry]
            q1, q2 = b1.other(node), b2.other(node)

            def expanded(q, via):
                if q.is_tip:
                    return np.asarray(engine._tip_clv(q), dtype=float)
                return engine._clv_cache[(q.index, via.index)].clv

            left = expanded(q1, b1)
            right = expanded(q2, b2)
            reference = kernels.newview_combine_reference(
                engine._pmat(b1), engine._pmat(b2), left, right
            )
            assert np.allclose(cached.clv, reference, rtol=1e-12)
            break
        else:  # pragma: no cover
            pytest.fail("no cached CLV direction found")

    def test_steady_state_sweeps_do_not_grow_arena(self, engine):
        engine.optimize_all_branches(passes=1)
        grown_before = engine._arena.grown
        engine.optimize_all_branches(passes=2)
        assert engine._arena.grown == grown_before

    def test_perf_counters_exposed(self, engine):
        engine.evaluate()
        counters = engine.perf_counters()
        for key in (
            "pmat_hits",
            "pmat_misses",
            "arena_capacity",
            "arena_acquires",
            "arena_grown",
            "spr_batch_calls",
            "newview_calls",
        ):
            assert key in counters
        assert counters["newview_calls"] == engine.newview_calls
        assert counters["arena_in_use"] == len(engine._clv_cache)

    def test_pmat_cache_hits_on_shared_lengths(self, engine):
        tree = engine.tree
        length = 0.123
        for b in tree.branches[:3]:
            tree.set_length(b, length)
        engine.evaluate()
        assert engine._pmats.hits > 0

    def test_model_swap_invalidates_pmats(self, small_patterns, engine):
        engine.evaluate()
        entries_before = len(engine._pmats)
        assert entries_before > 0
        new_model = default_gtr().with_frequencies(
            small_patterns.base_frequencies()
        )
        engine.set_model(new_model)
        assert len(engine._pmats) == 0
        assert engine._pmats.model is new_model
        assert np.isfinite(engine.evaluate())
