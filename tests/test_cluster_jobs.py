"""Tests for job specs and their expansion into the task DAG."""

from repro.cluster.jobs import (
    AGGREGATE_NODE,
    ClusterTask,
    JobSpec,
    TaskGraph,
    expand_job,
)
from repro.phylo.search import SearchConfig


class TestExpansion:
    def test_fine_grain_expansion(self):
        tasks = expand_job(JobSpec(n_inferences=2, n_bootstraps=3, seed=7))
        assert [t.task_id for t in tasks] == [
            "inference/0", "inference/1",
            "bootstrap/0", "bootstrap/1", "bootstrap/2",
        ]
        assert all(t.grain == 1 for t in tasks)
        assert all(t.seed == 7 for t in tasks)

    def test_coarse_bootstrap_batches(self):
        tasks = expand_job(JobSpec(n_inferences=1, n_bootstraps=5,
                                   batch_size=2))
        boot = [t for t in tasks if t.kind == "bootstrap"]
        assert [t.task_id for t in boot] == [
            "bootstrap/0-1", "bootstrap/2-3", "bootstrap/4",
        ]
        assert [t.replicates for t in boot] == [(0, 1), (2, 3), (4,)]

    def test_expansion_is_deterministic(self):
        spec = JobSpec(n_inferences=2, n_bootstraps=6, seed=1, batch_size=3)
        assert expand_job(spec) == expand_job(spec)

    def test_done_replicates_are_excluded(self):
        spec = JobSpec(n_inferences=2, n_bootstraps=4, batch_size=2)
        tasks = expand_job(spec, done_inferences={0}, done_bootstraps={1, 2})
        assert [t.task_id for t in tasks] == [
            "inference/1", "bootstrap/0", "bootstrap/3",
        ]

    def test_non_consecutive_survivors_never_share_a_batch(self):
        # After a resume excluded replicate 1, replicates 0 and 2 must not
        # collapse into a "bootstrap/0-2" batch that would lie about its
        # range.
        spec = JobSpec(n_inferences=0, n_bootstraps=3, batch_size=2)
        tasks = expand_job(spec, done_bootstraps={1})
        assert [t.replicates for t in tasks] == [(0,), (2,)]

    def test_split_produces_fine_children(self):
        task = ClusterTask("bootstrap/2-4", "bootstrap", (2, 3, 4), seed=5)
        children = task.split()
        assert [c.task_id for c in children] == [
            "bootstrap/2", "bootstrap/3", "bootstrap/4",
        ]
        assert all(c.seed == 5 and c.grain == 1 for c in children)
        assert [k for c in children for k in c.keys()] == task.keys()

    def test_singleton_split_is_identity(self):
        task = ClusterTask("inference/0", "inference", (0,), seed=5)
        assert task.split() == [task]


class TestTaskGraph:
    def test_graph_is_flat_with_aggregate_barrier(self):
        graph = TaskGraph.from_spec(JobSpec(n_inferences=1, n_bootstraps=2))
        assert len(graph.ready()) == 3  # every task immediately runnable
        assert graph.dependencies[AGGREGATE_NODE] == (
            "inference/0", "bootstrap/0", "bootstrap/1",
        )
        assert graph.n_replicates == 3

    def test_graph_expansion_idempotent(self):
        spec = JobSpec(n_inferences=2, n_bootstraps=4, batch_size=2)
        assert TaskGraph.from_spec(spec).tasks == TaskGraph.from_spec(spec).tasks


class TestJobSpecJson:
    def test_round_trip_without_config(self):
        spec = JobSpec(n_inferences=2, n_bootstraps=4, seed=3, batch_size=2,
                       alignment_path="d.phy", model_name="GTR", alpha=0.5)
        assert JobSpec.from_json(spec.to_json()) == spec

    def test_round_trip_with_search_config(self):
        config = SearchConfig(initial_radius=1, max_radius=2, max_rounds=3)
        spec = JobSpec(n_inferences=1, n_bootstraps=1, config=config)
        restored = JobSpec.from_json(spec.to_json())
        assert restored.config == config
        assert restored == spec

    def test_json_payload_is_json_native(self):
        import json

        spec = JobSpec(n_inferences=1, n_bootstraps=1,
                       config=SearchConfig())
        assert JobSpec.from_json(
            json.loads(json.dumps(spec.to_json()))
        ) == spec
