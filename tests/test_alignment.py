"""Tests for alignments, parsers and pattern compression."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phylo import Alignment, parse_fasta, parse_phylip
from repro.phylo.alignment import PatternAlignment

FASTA = """\
>taxA
ACGTACGT
>taxB
ACGTTCGT
>taxC
ACGAACGA
"""

PHYLIP = """\
3 8
taxA  ACGTACGT
taxB  ACGTTCGT
taxC  ACGAACGA
"""


def seq_dict():
    return {"taxA": "ACGTACGT", "taxB": "ACGTTCGT", "taxC": "ACGAACGA"}


class TestParsers:
    def test_fasta_round_trip(self):
        parsed = parse_fasta(FASTA)
        assert parsed == seq_dict()

    def test_fasta_multiline_sequences(self):
        parsed = parse_fasta(">x\nACGT\nACGT\n>y\nTTTT\nCCCC\n")
        assert parsed == {"x": "ACGTACGT", "y": "TTTTCCCC"}

    def test_fasta_duplicate_name_raises(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_fasta(">a\nAC\n>a\nGT\n")

    def test_fasta_data_before_header_raises(self):
        with pytest.raises(ValueError, match="before first header"):
            parse_fasta("ACGT\n>a\nAC\n")

    def test_fasta_empty_raises(self):
        with pytest.raises(ValueError, match="no FASTA records"):
            parse_fasta("\n\n")

    def test_phylip_round_trip(self):
        assert parse_phylip(PHYLIP) == seq_dict()

    def test_phylip_bad_header(self):
        with pytest.raises(ValueError, match="header"):
            parse_phylip("3\nx ACGT\n")

    def test_phylip_length_mismatch(self):
        with pytest.raises(ValueError, match="sites"):
            parse_phylip("1 8\ntaxA ACGT\n")

    def test_phylip_missing_rows(self):
        with pytest.raises(ValueError, match="expected 3"):
            parse_phylip("3 4\na ACGT\nb ACGT\n")


class TestAlignment:
    def test_construction_and_shapes(self):
        aln = Alignment.from_sequences(seq_dict())
        assert aln.n_taxa == 3
        assert aln.n_sites == 8
        assert aln.taxa == ["taxA", "taxB", "taxC"]

    def test_sequence_accessor(self):
        aln = Alignment.from_sequences(seq_dict())
        assert aln.sequence("taxB") == "ACGTTCGT"

    def test_duplicate_taxa_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Alignment(["a", "a"], np.ones((2, 4), dtype=np.uint8))

    def test_name_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Alignment(["a"], np.ones((2, 4), dtype=np.uint8))

    def test_invalid_mask_rejected(self):
        data = np.zeros((1, 4), dtype=np.uint8)  # 0 is not a valid mask
        with pytest.raises(ValueError, match="invalid"):
            Alignment(["a"], data)

    def test_fasta_writer_round_trip(self):
        aln = Alignment.from_sequences(seq_dict())
        again = Alignment.from_fasta(aln.to_fasta())
        assert again.taxa == aln.taxa
        assert np.array_equal(again.data, aln.data)

    def test_phylip_writer_round_trip(self):
        aln = Alignment.from_sequences(seq_dict())
        again = Alignment.from_phylip(aln.to_phylip())
        assert np.array_equal(again.data, aln.data)

    def test_file_io(self, tmp_path):
        path = tmp_path / "test.fasta"
        path.write_text(FASTA)
        aln = Alignment.from_fasta(str(path))
        assert aln.n_taxa == 3

    def test_base_frequencies_sum_to_one(self):
        aln = Alignment.from_sequences(seq_dict())
        freqs = aln.base_frequencies()
        assert freqs.shape == (4,)
        assert abs(freqs.sum() - 1.0) < 1e-12

    def test_base_frequencies_pure_a(self):
        aln = Alignment.from_sequences({"a": "AAAA", "b": "AAAA", "c": "AAAA"})
        assert np.allclose(aln.base_frequencies(), [1.0, 0.0, 0.0, 0.0])

    def test_gaps_spread_frequency_mass(self):
        aln = Alignment.from_sequences({"a": "----", "b": "----", "c": "----"})
        assert np.allclose(aln.base_frequencies(), [0.25] * 4)


class TestCompression:
    def test_weights_sum_to_sites(self):
        pats = Alignment.from_sequences(seq_dict()).compress()
        assert pats.weights.sum() == 8

    def test_identical_columns_merge(self):
        # Columns 0-3 repeat as columns 4-7 except where sequences differ.
        aln = Alignment.from_sequences(
            {"a": "AAAA", "b": "CCCC", "c": "GGGG"}
        )
        pats = aln.compress()
        assert pats.n_patterns == 1
        assert pats.weights[0] == 4

    def test_site_to_pattern_reconstructs_columns(self):
        aln = Alignment.from_sequences(seq_dict())
        pats = aln.compress()
        rebuilt = pats.patterns[:, pats.site_to_pattern]
        assert np.array_equal(rebuilt, aln.data)

    def test_expand_to_sites(self):
        pats = Alignment.from_sequences(seq_dict()).compress()
        per_pattern = np.arange(pats.n_patterns, dtype=float)
        per_site = pats.expand_to_sites(per_pattern)
        assert per_site.shape == (8,)

    def test_empty_alignment_cannot_compress(self):
        with pytest.raises(ValueError):
            Alignment(["a", "b"], np.ones((2, 0), dtype=np.uint8)).compress()

    def test_tip_partials_cached_and_readonly(self):
        pats = Alignment.from_sequences(seq_dict()).compress()
        rows1 = pats.tip_partials(0)
        rows2 = pats.tip_partials(0)
        assert rows1 is rows2
        with pytest.raises(ValueError):
            rows1[0, 0] = 9.0

    def test_tip_is_unambiguous(self):
        aln = Alignment.from_sequences({"a": "ACGT", "b": "ACNT", "c": "ACGT"})
        pats = aln.compress()
        assert pats.tip_is_unambiguous(pats.taxon_index("a"))
        assert not pats.tip_is_unambiguous(pats.taxon_index("b"))

    @given(st.integers(0, 2 ** 31 - 1))
    def test_compression_preserves_information(self, seed):
        rng = np.random.default_rng(seed)
        n_taxa, n_sites = 4, 30
        data = rng.choice([1, 2, 4, 8, 15], size=(n_taxa, n_sites)).astype(
            np.uint8
        )
        aln = Alignment([f"t{i}" for i in range(n_taxa)], data)
        pats = aln.compress()
        assert pats.weights.sum() == n_sites
        assert np.array_equal(pats.patterns[:, pats.site_to_pattern], data)
        # patterns must be distinct columns
        cols = {tuple(pats.patterns[:, j]) for j in range(pats.n_patterns)}
        assert len(cols) == pats.n_patterns


class TestBootstrap:
    def test_weights_sum_preserved(self, small_patterns, rng):
        weights = small_patterns.bootstrap_weights(rng)
        assert weights.sum() == small_patterns.n_sites

    def test_weights_nonnegative_integers(self, small_patterns, rng):
        weights = small_patterns.bootstrap_weights(rng)
        assert (weights >= 0).all()
        assert np.array_equal(weights, np.round(weights))

    def test_replicates_differ(self, small_patterns):
        r1 = small_patterns.bootstrap_weights(np.random.default_rng(1))
        r2 = small_patterns.bootstrap_weights(np.random.default_rng(2))
        assert not np.array_equal(r1, r2)

    def test_replicate_shares_pattern_matrix(self, small_patterns, rng):
        rep = small_patterns.bootstrap_replicate(rng)
        assert rep.patterns is small_patterns.patterns
        assert rep is not small_patterns

    def test_with_weights_validates_sum(self, small_patterns):
        bad = np.ones(small_patterns.n_patterns)
        with pytest.raises(ValueError, match="sum"):
            small_patterns.with_weights(bad)

    def test_expected_zero_fraction(self, small_patterns):
        # Resampling n sites leaves ~1/e of unit-weight patterns unpicked.
        rng = np.random.default_rng(99)
        weights = small_patterns.bootstrap_weights(rng)
        assert (weights == 0).sum() > 0
