"""Tests for the SPR hill-climbing search."""

import numpy as np
import pytest

from repro.phylo import (
    GammaRates,
    LikelihoodEngine,
    SearchConfig,
    Tree,
    default_gtr,
    evolve_alignment,
    hill_climb,
    random_tree,
    robinson_foulds,
    spr_neighborhood,
    stepwise_addition_tree,
    synthetic_dataset,
)
from repro.phylo.search import _apply_spr, _revert_spr


def make_engine(patterns, seed=0, start="parsimony"):
    rng = np.random.default_rng(seed)
    if start == "parsimony":
        tree = stepwise_addition_tree(patterns, rng)
    else:
        tree = Tree.from_tip_names(patterns.taxa, rng)
    model = default_gtr().with_frequencies(patterns.base_frequencies())
    return LikelihoodEngine(patterns, model, GammaRates(0.7, 4), tree)


class TestNeighborhood:
    def test_excludes_pruned_subtree_and_adjacency(self, small_patterns):
        engine = make_engine(small_patterns)
        tree = engine.tree
        prune = tree.branches[0]
        keep = next(n for n in prune.nodes if not n.is_tip)
        targets = spr_neighborhood(tree, prune, keep, radius=10)
        moved = prune.other(keep)
        inside = tree.subtree_branches(moved, prune)
        adjacent = {b.index for b in keep.branches}
        for t in targets:
            assert t.index not in inside
            assert t.index not in adjacent
            assert t is not prune
        engine.detach()

    def test_radius_monotone(self, small_patterns):
        engine = make_engine(small_patterns)
        tree = engine.tree
        prune = tree.branches[2]
        keep = next(n for n in prune.nodes if not n.is_tip)
        sizes = [
            len(spr_neighborhood(tree, prune, keep, r)) for r in (1, 2, 4, 99)
        ]
        assert sizes == sorted(sizes)
        engine.detach()

    def test_unbounded_radius_covers_all_legal_targets(self, small_patterns):
        engine = make_engine(small_patterns)
        tree = engine.tree
        prune = tree.branches[1]
        keep = next(n for n in prune.nodes if not n.is_tip)
        targets = spr_neighborhood(tree, prune, keep, radius=1000)
        moved = prune.other(keep)
        illegal = tree.subtree_branches(moved, prune)
        illegal |= {b.index for b in keep.branches} | {prune.index}
        expected = [b for b in tree.branches if b.index not in illegal]
        assert {t.index for t in targets} == {b.index for b in expected}
        engine.detach()


class TestApplyRevert:
    def test_revert_restores_topology_lengths_and_likelihood(
        self, small_patterns
    ):
        engine = make_engine(small_patterns, seed=3)
        tree = engine.tree
        base_lnl = engine.evaluate()
        base_newick = tree.to_newick(digits=17)
        rng = np.random.default_rng(17)
        performed = 0
        for _ in range(30):
            branches = tree.branches
            prune = branches[rng.integers(len(branches))]
            inner_sides = [n for n in prune.nodes if not n.is_tip]
            if not inner_sides:
                continue
            keep = inner_sides[0]
            targets = spr_neighborhood(tree, prune, keep, radius=3)
            if not targets:
                continue
            move = _apply_spr(tree, prune, keep,
                              targets[rng.integers(len(targets))])
            restored = _revert_spr(tree, move)
            tree.validate()
            assert not restored.retired
            assert abs(engine.evaluate() - base_lnl) < 1e-9
            performed += 1
        assert performed >= 10
        # Topology is bit-identical up to branch ids.
        assert robinson_foulds(
            tree, Tree.from_newick(base_newick)
        ) == 0.0
        engine.detach()

    def test_revert_after_local_optimization(self, small_patterns):
        # The lazy scoring optimizes branch lengths before rejecting;
        # revert must restore the original lengths exactly.
        engine = make_engine(small_patterns, seed=4)
        tree = engine.tree
        base_lnl = engine.evaluate()
        prune = next(
            b for b in tree.branches
            if any(not n.is_tip for n in b.nodes)
        )
        keep = next(n for n in prune.nodes if not n.is_tip)
        targets = spr_neighborhood(tree, prune, keep, radius=3)
        move = _apply_spr(tree, prune, keep, targets[0])
        for local in list(move.junction.branches):
            engine.makenewz(local)
        _revert_spr(tree, move)
        assert abs(engine.evaluate() - base_lnl) < 1e-9
        engine.detach()


class TestNNISearch:
    def test_nni_revert_is_exact(self, small_patterns):
        from repro.phylo.search import _apply_nni, _revert_nni

        engine = make_engine(small_patterns, seed=21)
        tree = engine.tree
        base = engine.evaluate()
        rng = np.random.default_rng(22)
        for _ in range(20):
            internal = [
                b for b in tree.branches
                if not b.nodes[0].is_tip and not b.nodes[1].is_tip
            ]
            branch = internal[rng.integers(len(internal))]
            record = _apply_nni(tree, branch, int(rng.integers(2)))
            _revert_nni(tree, record)
            tree.validate()
            assert abs(engine.evaluate() - base) < 1e-9
        engine.detach()

    def test_nni_revert_after_local_optimization(self, small_patterns):
        from repro.phylo.search import _apply_nni, _revert_nni

        engine = make_engine(small_patterns, seed=23)
        tree = engine.tree
        base = engine.evaluate()
        branch = next(
            b for b in tree.branches
            if not b.nodes[0].is_tip and not b.nodes[1].is_tip
        )
        record = _apply_nni(tree, branch, 0)
        for endpoint in branch.nodes:
            for local in list(endpoint.branches):
                engine.makenewz(local)
        _revert_nni(tree, record)
        assert abs(engine.evaluate() - base) < 1e-9
        engine.detach()

    def test_nni_search_improves_from_random_start(self, medium_patterns):
        engine = make_engine(medium_patterns, seed=24, start="random")
        start = engine.evaluate()
        result = hill_climb(
            engine,
            SearchConfig(move_set="nni", max_rounds=4),
            np.random.default_rng(24),
        )
        assert result.log_likelihood > start
        engine.tree.validate()
        engine.detach()

    def test_spr_at_least_matches_nni(self, medium_patterns):
        # SPR's move set strictly contains NNI's reachable improvements;
        # from the same start it should end at least as high.
        results = {}
        for move_set in ("nni", "spr"):
            engine = make_engine(medium_patterns, seed=25, start="random")
            results[move_set] = hill_climb(
                engine,
                SearchConfig(move_set=move_set, initial_radius=2,
                             max_radius=4, max_rounds=4),
                np.random.default_rng(25),
            ).log_likelihood
            engine.detach()
        assert results["spr"] >= results["nni"] - 1.0

    def test_invalid_move_set_rejected(self):
        with pytest.raises(ValueError, match="move_set"):
            SearchConfig(move_set="tbr")


class TestHillClimb:
    def test_monotone_improvement(self, small_patterns):
        engine = make_engine(small_patterns, seed=5, start="random")
        start = engine.evaluate()
        result = hill_climb(
            engine, SearchConfig(initial_radius=2, max_radius=3, max_rounds=3),
            np.random.default_rng(5),
        )
        assert result.log_likelihood >= start
        engine.tree.validate()
        engine.detach()

    def test_deterministic_given_seed(self, small_patterns):
        results = []
        for _ in range(2):
            engine = make_engine(small_patterns, seed=6)
            results.append(
                hill_climb(
                    engine,
                    SearchConfig(initial_radius=2, max_radius=2, max_rounds=2),
                    np.random.default_rng(42),
                )
            )
            engine.detach()
        assert results[0].newick == results[1].newick
        assert results[0].log_likelihood == results[1].log_likelihood

    def test_recovers_true_tree_on_clean_data(self):
        # Strong signal: long alignment, moderate branches; the search
        # from a random start must find the generating topology.
        names = [f"t{i}" for i in range(8)]
        rng = np.random.default_rng(30)
        truth = random_tree(names, rng, mean_branch_length=0.12)
        aln = evolve_alignment(truth, default_gtr(), 4000, rng,
                               gamma_alpha=None, invariant_fraction=0.0)
        patterns = aln.compress()
        engine = make_engine(patterns, seed=31, start="random")
        result = hill_climb(
            engine, SearchConfig(initial_radius=3, max_radius=5, max_rounds=6),
            np.random.default_rng(31),
        )
        inferred = Tree.from_newick(result.newick)
        assert robinson_foulds(truth, inferred) == 0.0
        engine.detach()

    def test_search_result_fields(self, small_patterns):
        engine = make_engine(small_patterns, seed=8)
        result = hill_climb(
            engine, SearchConfig(initial_radius=1, max_radius=1, max_rounds=1),
            np.random.default_rng(8),
        )
        assert result.rounds >= 1
        assert result.evaluated_moves >= result.accepted_moves >= 0
        assert result.newick.endswith(";")
        engine.detach()

    def test_all_taxa_preserved(self, medium_patterns):
        engine = make_engine(medium_patterns, seed=9, start="random")
        result = hill_climb(
            engine, SearchConfig(initial_radius=2, max_radius=2, max_rounds=2),
            np.random.default_rng(9),
        )
        inferred = Tree.from_newick(result.newick)
        assert sorted(inferred.tip_names()) == sorted(medium_patterns.taxa)
        engine.detach()
