"""Tests for the experiment harness: every paper claim must hold."""

import pytest

from repro.harness import (
    EXPERIMENTS,
    full_alignment,
    get_trace,
    quick_alignment,
    render_experiment,
    render_report,
    run_experiment,
)


class TestDatasets:
    def test_quick_alignment_cached(self):
        assert quick_alignment() is quick_alignment()

    def test_full_alignment_dimensions(self):
        aln = full_alignment()
        assert aln.n_taxa == 42
        assert aln.n_sites == 1167

    def test_trace_cached(self):
        assert get_trace("quick") is get_trace("quick")

    def test_unknown_profile(self):
        with pytest.raises(KeyError):
            get_trace("nope")

    def test_trace_has_realistic_mix(self):
        trace = get_trace("quick")
        assert trace.newview_count > trace.makenewz_count
        assert trace.makenewz_count > trace.evaluate_count > 0


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_experiment_shape_checks_pass(name):
    """Every table/figure experiment reproduces the paper's shape."""
    result = run_experiment(name)
    result.assert_shape()


class TestExperimentStructure:
    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("table99")

    def test_rows_have_measured_values(self):
        result = run_experiment("table2")
        assert result.rows
        assert all(r.measured > 0 for r in result.rows)

    def test_relative_error_tight_on_tables(self):
        for name in ("table1", "table2", "table3", "table4",
                     "table5", "table6", "table7", "table8"):
            result = run_experiment(name)
            for row in result.rows:
                if row.paper is not None:
                    assert abs(row.relative_error) < 0.07, (name, row.label)


class TestRendering:
    def test_render_single(self):
        text = render_experiment(run_experiment("micro_localstore"))
        assert "PASS" in text
        assert "metric" in text
        assert "139" in text

    def test_render_report_header(self):
        results = [run_experiment("micro_localstore"),
                   run_experiment("micro_dma")]
        text = render_report(results)
        assert "2/2 experiments pass" in text

    def test_render_markdown(self):
        from repro.harness.report import render_markdown

        results = [run_experiment("micro_localstore"),
                   run_experiment("overlays")]
        text = render_markdown(results)
        assert text.startswith("# RAxML-Cell reproduction")
        assert "2/2 experiments pass" in text
        assert "| metric | paper | measured | delta |" in text
        assert "✅" in text

    def test_failed_check_renders_fail(self):
        from repro.harness.experiments import ExperimentResult, Row, ShapeCheck
        result = ExperimentResult(
            "fake", "Fake", [Row("x", 1.0, 2.0)],
            [ShapeCheck("impossible claim", False, "nope")],
        )
        text = render_experiment(result)
        assert "[FAIL] impossible claim" in text
        assert "+100.0%" in text
        with pytest.raises(AssertionError, match="impossible"):
            result.assert_shape()
