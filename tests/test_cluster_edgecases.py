"""Cluster edge cases: degenerate journals and single-replicate aggregation.

The recovery tests cover the happy crash/resume paths; these pin down the
corners — a journal with nothing in it, a journal holding only a torn
tail, and consensus/support behavior when only one replicate exists.
"""

import numpy as np
import pytest

from repro.cluster.aggregate import StreamingAggregator
from repro.cluster.checkpoint import replay
from repro.cluster.runner import job_status, resume_job
from repro.phylo import Tree


# -- degenerate journals -----------------------------------------------------


def test_resume_empty_journal_refuses(tmp_path):
    journal = tmp_path / "empty.jsonl"
    journal.write_text("")
    with pytest.raises(ValueError, match="no run_started header"):
        resume_job(str(journal))


def test_resume_torn_tail_only_journal_refuses(tmp_path):
    """A journal whose only content is a half-written record: replay
    must skip the torn line (not crash on it) and resume must then
    refuse for want of a header."""
    journal = tmp_path / "torn.jsonl"
    journal.write_text('{"event": "run_started", "spec": {"n_inf')
    state = replay(str(journal))
    assert state.spec is None
    assert state.events == []
    with pytest.raises(ValueError, match="no run_started header"):
        resume_job(str(journal))


def test_replay_blank_lines_only(tmp_path):
    journal = tmp_path / "blank.jsonl"
    journal.write_text("\n\n   \n")
    state = replay(str(journal))
    assert state.spec is None
    assert state.events == []


def test_job_status_on_empty_journal(tmp_path):
    """Status must degrade gracefully: no spec, nothing done, no best."""
    journal = tmp_path / "empty.jsonl"
    journal.write_text("")
    status = job_status(str(journal))
    assert status["spec"] is None
    assert status["finished"] is False
    assert status["n_inferences_done"] == 0
    assert status["n_bootstraps_done"] == 0
    assert status["best"] is None
    assert status["consensus_newick"] is None


# -- single-replicate aggregation --------------------------------------------


def _random_newick(seed, n_taxa=5):
    rng = np.random.default_rng(seed)
    return Tree.from_tip_names(
        [f"t{i}" for i in range(n_taxa)], rng
    ).to_newick()


def test_consensus_single_bootstrap_replicate():
    """With one bootstrap, every split of that tree has support 1.0 and
    the majority-rule consensus is the tree's own topology."""
    aggregator = StreamingAggregator()
    newick = _random_newick(41)
    assert aggregator.ingest({
        "replicate": 0, "is_bootstrap": True,
        "newick": newick, "log_likelihood": -123.0,
    })
    supports, consensus = aggregator.consensus()
    source_splits = Tree.from_newick(newick).bipartitions()
    assert set(supports) == source_splits
    assert all(value == 1.0 for value in supports.values())
    assert consensus is not None
    assert Tree.from_newick(consensus).bipartitions() == source_splits


def test_consensus_without_bootstraps_is_none():
    aggregator = StreamingAggregator()
    aggregator.ingest({
        "replicate": 0, "is_bootstrap": False,
        "newick": _random_newick(42), "log_likelihood": -100.0,
    })
    supports, consensus = aggregator.consensus()
    assert supports == {}
    assert consensus is None


def test_supports_single_inference_no_bootstraps():
    """Best-tree splits exist but every support is 0.0 (0/0 replicates)."""
    aggregator = StreamingAggregator()
    newick = _random_newick(43)
    aggregator.ingest({
        "replicate": 0, "is_bootstrap": False,
        "newick": newick, "log_likelihood": -100.0,
    })
    supports = aggregator.supports()
    assert set(supports) == Tree.from_newick(newick).bipartitions()
    assert all(value == 0.0 for value in supports.values())


def test_single_replicate_ingest_is_idempotent():
    aggregator = StreamingAggregator()
    payload = {
        "replicate": 0, "is_bootstrap": True,
        "newick": _random_newick(44), "log_likelihood": -90.0,
    }
    assert aggregator.ingest(payload)
    assert not aggregator.ingest(dict(payload))
    _supports, consensus = aggregator.consensus()
    # The duplicate must not double-count splits: supports stay exactly 1.
    supports, _ = aggregator.consensus()
    assert all(value == 1.0 for value in supports.values())
    assert consensus is not None
