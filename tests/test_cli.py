"""Tests for the command-line interface (repro.phylo.cli)."""

import pytest

from repro.phylo import Alignment, Tree, synthetic_dataset
from repro.phylo.cli import build_parser, main


@pytest.fixture(scope="module")
def fasta_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "data.fasta"
    aln = synthetic_dataset(n_taxa=6, n_sites=200, seed=1)
    path.write_text(aln.to_fasta())
    return str(path)


@pytest.fixture(scope="module")
def phylip_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "data.phy"
    aln = synthetic_dataset(n_taxa=6, n_sites=200, seed=1)
    path.write_text(aln.to_phylip())
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_infer_defaults(self):
        args = build_parser().parse_args(["infer", "-s", "x.phy"])
        assert args.runs == 1
        assert args.bootstraps == 0
        assert args.model == "GTR"

    def test_model_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["infer", "-s", "x", "-m", "WAG"])


class TestInfer:
    def test_basic_inference(self, fasta_path, capsys):
        code = main(["infer", "-s", fasta_path, "--rounds", "1",
                     "--radius", "1", "--max-radius", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "lnL =" in out
        assert "best tree:" in out

    def test_phylip_input(self, phylip_path, capsys):
        code = main(["infer", "-s", phylip_path, "--rounds", "1",
                     "--radius", "1", "--max-radius", "1"])
        assert code == 0
        assert "6 taxa x 200 DNA sites" in capsys.readouterr().out

    def test_bootstraps_and_output(self, fasta_path, tmp_path, capsys):
        out_file = tmp_path / "best.nwk"
        code = main([
            "infer", "-s", fasta_path, "-n", "2", "-b", "2",
            "--rounds", "1", "--radius", "1", "--max-radius", "1",
            "-o", str(out_file),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "bootstraps: 2" in out
        assert "support" in out
        tree = Tree.from_newick(out_file.read_text())
        assert tree.n_tips == 6

    def test_jc_model(self, fasta_path, capsys):
        code = main(["infer", "-s", fasta_path, "-m", "JC69",
                     "--rounds", "1", "--radius", "1", "--max-radius", "1"])
        assert code == 0


class TestSimulate:
    def test_stdout_fasta(self, capsys):
        code = main(["simulate", "--taxa", "5", "--sites", "60"])
        assert code == 0
        out = capsys.readouterr().out
        aln = Alignment.from_fasta(out)
        assert aln.n_taxa == 5
        assert aln.n_sites == 60

    def test_file_phylip(self, tmp_path, capsys):
        path = tmp_path / "sim.phy"
        code = main(["simulate", "--taxa", "4", "--sites", "50",
                     "--format", "phylip", "-o", str(path)])
        assert code == 0
        aln = Alignment.from_phylip(path.read_text())
        assert aln.n_taxa == 4


class TestDistances:
    def test_matrix_output(self, fasta_path, capsys):
        code = main(["distances", "-s", fasta_path, "--method", "jc"])
        assert code == 0
        out = capsys.readouterr().out
        # Header plus one row per taxon.
        assert len(out.strip().splitlines()) == 7

    def test_nj_tree_output(self, fasta_path, capsys):
        code = main(["distances", "-s", fasta_path, "--nj"])
        assert code == 0
        tree = Tree.from_newick(capsys.readouterr().out.strip())
        assert tree.n_tips == 6


class TestCluster:
    def test_cluster_parser_defaults(self):
        args = build_parser().parse_args(
            ["cluster", "run", "-s", "x.phy", "--journal", "j.jsonl"]
        )
        assert args.workers == 2
        assert args.batch_size == 4
        assert args.cluster_command == "run"

    def test_cluster_run_resume_status(self, fasta_path, tmp_path, capsys):
        journal = str(tmp_path / "run.jsonl")
        out_file = str(tmp_path / "best.nwk")
        code = main([
            "cluster", "run", "-s", fasta_path, "-n", "1", "-b", "2",
            "--rounds", "1", "--radius", "1", "--max-radius", "1",
            "--workers", "2", "--batch-size", "2",
            "--journal", journal, "-o", out_file,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "lnL =" in out
        assert "bootstraps: 2" in out
        tree = Tree.from_newick(open(out_file).read())
        assert tree.n_tips == 6

        code = main(["cluster", "status", "--journal", journal])
        assert code == 0
        status = capsys.readouterr().out
        assert "bootstraps 2/2" in status
        assert "[finished]" in status

        # Resuming a finished run reuses the journal verbatim.
        code = main(["cluster", "resume", "--journal", journal])
        assert code == 0
        assert "best tree:" in capsys.readouterr().out
