"""Crash-recovery tests: workers die mid-task; the run must not.

``WorkerPlans.crash`` makes the victim worker ``os._exit`` mid-task
(after streaming all but its last replicate), which exercises the
master's dead-worker detection, task requeue, and replacement spawning.
The recovered run must be bit-identical to a clean serial run.
"""

from repro.cluster import (
    ClusterConfig,
    JobSpec,
    WorkerPlans,
    replay,
    run_job,
)

FAULT_CFG = dict(retry_backoff_s=0.01, heartbeat_interval_s=0.1)


class TestWorkerCrash:
    def test_crash_mid_bootstrap_recovers_bit_identically(
            self, tiny_patterns, fast_config, serial_reference,
            cluster_workers, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        spec = JobSpec(n_inferences=1, n_bootstraps=4, seed=9, batch_size=2,
                       config=fast_config)
        # Kill whichever worker picks up the first bootstrap batch, on
        # its first attempt only.
        plans = WorkerPlans(crash={"bootstrap/0-1": (1,)})
        result = run_job(
            spec, alignment=tiny_patterns, journal_path=journal, plans=plans,
            cluster=ClusterConfig(n_workers=cluster_workers, **FAULT_CFG),
        )

        # The final result is exactly the clean serial run.
        assert result.best.newick == serial_reference.best.newick
        assert result.best.log_likelihood == \
            serial_reference.best.log_likelihood
        assert [b.newick for b in result.bootstraps] == \
            [b.newick for b in serial_reference.bootstraps]
        assert result.supports == serial_reference.supports

        # The journal shows the death and the retry.
        state = replay(journal)
        assert [d["reason"] for d in state.worker_deaths] == ["crash"]
        assert state.worker_deaths[0]["task"] == "bootstrap/0-1"
        assert len(state.retries) == 1
        assert state.retries[0]["task"] == "bootstrap/0-1"
        assert state.retries[0]["will_retry"] is True
        assert state.finished

    def test_partial_batch_results_survive_the_crash(
            self, tiny_patterns, fast_config, cluster_workers, tmp_path):
        # The worker streams replicate 0 before dying ahead of replicate
        # 1, so the journal must contain bootstrap/0 exactly once from
        # the first attempt *and* the task retry must only have to
        # confirm it (idempotent ingest).
        journal = str(tmp_path / "run.jsonl")
        spec = JobSpec(n_inferences=1, n_bootstraps=2, seed=9, batch_size=2,
                       config=fast_config)
        plans = WorkerPlans(crash={"bootstrap/0-1": (1,)})
        result = run_job(
            spec, alignment=tiny_patterns, journal_path=journal, plans=plans,
            cluster=ClusterConfig(n_workers=cluster_workers, **FAULT_CFG),
        )
        assert len(result.bootstraps) == 2
        state = replay(journal)
        assert ("bootstrap", 0) in state.payloads
        assert ("bootstrap", 1) in state.payloads

    def test_hung_worker_is_timed_out_and_task_requeued(
            self, tiny_patterns, fast_config, cluster_workers, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        spec = JobSpec(n_inferences=1, n_bootstraps=1, seed=2,
                       config=fast_config)
        plans = WorkerPlans(hang={"bootstrap/0": (1,)})
        result = run_job(
            spec, alignment=tiny_patterns, journal_path=journal, plans=plans,
            cluster=ClusterConfig(n_workers=cluster_workers,
                                  task_timeout_s=0.7, **FAULT_CFG),
        )
        assert len(result.bootstraps) == 1
        state = replay(journal)
        assert any(d["reason"] == "timeout" for d in state.worker_deaths)
        assert len(state.retries) == 1
