"""End-to-end deadlines, graceful drain, and admission control.

Four robustness behaviours of the serve/cluster path, each proven
end to end:

* **deadlines** — ``JobSpec.deadline_s`` trips a cooperative
  :class:`~repro.cluster.cancel.CancelToken` at a safe point; finished
  replicates are salvaged into a ``degraded: true`` result that is
  journalled but *never cached*, so an identical resubmission re-runs;
* **drain** — ``begin_drain()`` flips ``/readyz``, bounces new submits
  with ``503 + Retry-After``, unwinds in-flight work to a resumable
  checkpoint within the grace budget, and the resumed run is
  bit-identical to an uninterrupted one;
* **admission control** — a memory preflight rejects impossible
  submissions with a typed 413 before any durable side effect, and the
  RSS watchdog reaps a runaway worker instead of letting the kernel
  OOM-kill it silently;
* **request hardening** — slowloris clients get typed 408s and an SSE
  stream notices a dead client within one poll interval.
"""

import asyncio
import json
import os
import time

import pytest

from repro.chaos import FaultPlan, FaultSpec, inject
from repro.chaos.injector import _uniform
from repro.chaos.plan import CLUSTER_WORKER_OOM, CLUSTER_WORKER_STALL
from repro.cluster import JobSpec, replay, run_job
from repro.cluster.cancel import (
    REASON_DEADLINE,
    REASON_DRAIN,
    CancelToken,
    TaskCancelled,
)
from repro.cluster.queue import _OOM_BALLAST_MB, ClusterConfig, _rss_bytes
from repro.phylo import synthetic_dataset
from repro.phylo.inference import infer_tree
from repro.serve import (
    JobService,
    ResourceLimitError,
    ServeApp,
    estimate_job_memory_mb,
    preflight,
)
from repro.serve.resilience import estimate_clv_mb


@pytest.fixture(scope="module")
def tiny_fasta():
    return synthetic_dataset(n_taxa=6, n_sites=120, seed=3).to_fasta()


async def _http(host, port, method, path, payload=None):
    reader, writer = await asyncio.open_connection(host, port)
    head = f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
    if payload is not None:
        head += f"Content-Length: {len(payload)}\r\n"
    head += "\r\n"
    writer.write(head.encode() + (payload or b""))
    await writer.drain()
    raw = await reader.read()
    writer.close()
    status = int(raw.split(b" ", 2)[1])
    head_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    return status, head_blob.decode("latin-1"), body_blob


# -- the token itself --------------------------------------------------------


class TestCancelToken:
    def test_deadline_trips_via_injected_clock(self):
        now = [100.0]
        token = CancelToken.with_timeout(5.0, clock=lambda: now[0])
        assert token.active and not token.cancelled
        assert token.remaining() == pytest.approx(5.0)
        token.check()  # within budget: no-op
        now[0] = 105.0
        assert token.cancelled and token.reason == REASON_DEADLINE
        assert token.remaining() == 0.0
        with pytest.raises(TaskCancelled) as excinfo:
            token.check()
        assert excinfo.value.reason == REASON_DEADLINE

    def test_explicit_cancel_first_reason_wins(self):
        token = CancelToken()
        assert not token.active  # no deadline, not cancelled: cheap gate
        token.cancel(REASON_DRAIN)
        token.cancel(REASON_DEADLINE)  # loses: first reason sticks
        assert token.reason == REASON_DRAIN
        with pytest.raises(TaskCancelled) as excinfo:
            token.check()
        assert excinfo.value.reason == REASON_DRAIN

    def test_cap_deadline_only_tightens(self):
        now = [0.0]
        token = CancelToken(deadline=50.0, clock=lambda: now[0])
        token.cap_deadline(100.0)  # looser: ignored
        assert token.deadline == 50.0
        token.cap_deadline(10.0)  # tighter: wins
        assert token.deadline == 10.0
        bare = CancelToken(clock=lambda: now[0])
        bare.cap_deadline(7.0)
        assert bare.deadline == 7.0

    def test_inference_unwinds_on_tripped_token(self, tiny_fasta,
                                                fast_config):
        from repro.phylo.alignment import Alignment

        patterns = Alignment.from_fasta(tiny_fasta).compress()
        token = CancelToken()
        token.cancel(REASON_DRAIN)
        with pytest.raises(TaskCancelled):
            infer_tree(patterns, config=fast_config, seed=1, cancel=token)


# -- deadlines end to end ----------------------------------------------------


class TestDeadlineEndToEnd:
    def test_deadline_salvages_degraded_result_and_skips_cache(
            self, tiny_fasta, fast_config, cluster_workers, tmp_path):
        service = JobService(str(tmp_path / "root"),
                             n_workers=cluster_workers)

        # Calibrate: time a bootstrap-free run so the deadline below is
        # comfortably after the first inference lands but far before
        # 600 bootstrap replicates could.
        probe = JobSpec(n_inferences=1, n_bootstraps=0, seed=5,
                        config=fast_config)
        t0 = time.monotonic()
        service.submit(tiny_fasta, probe, client="probe")
        assert service.run_next().state == "done"
        probe_s = time.monotonic() - t0

        deadline_s = max(0.75, 2.0 * probe_s)
        spec = JobSpec(n_inferences=1, n_bootstraps=600, seed=5,
                       batch_size=2, config=fast_config,
                       deadline_s=deadline_s)
        record, hit = service.submit(tiny_fasta, spec, client="alice")
        assert not hit
        done = service.run_next()
        assert done.state == "done"
        assert done.degraded is True

        status = service.status(record.job_id)
        assert status["degraded"] is True
        result = service.result(record.job_id)
        assert result["degraded"] is True
        assert result["best_newick"].endswith(";")  # >=1 inference salvaged
        assert result["n_bootstraps_used"] < 600

        # The deadline event is durable in the journal.
        journal = open(service.store.journal_path(record.job_id)).read()
        assert "task_deadline_exceeded" in journal

        # Degraded results are never cached: the identical resubmission
        # MISSES and would re-run.
        again, hit = service.submit(tiny_fasta, spec, client="alice")
        assert hit is False
        assert again.job_id != record.job_id

    def test_deadline_is_execution_policy_not_cache_content(
            self, tiny_fasta, fast_config, cluster_workers, tmp_path):
        """A completed (non-degraded) result serves resubmissions that
        merely differ in ``deadline_s`` — the deadline is an execution
        knob, not part of the job's content digest."""
        service = JobService(str(tmp_path / "root"),
                             n_workers=cluster_workers)
        spec = JobSpec(n_inferences=1, n_bootstraps=4, seed=9,
                       batch_size=2, config=fast_config)
        record, hit = service.submit(tiny_fasta, spec, client="alice")
        assert not hit
        done = service.run_next()
        assert done.state == "done" and done.degraded is False

        from dataclasses import replace

        with_deadline = replace(spec, deadline_s=999.0)
        cached, hit = service.submit(tiny_fasta, with_deadline,
                                     client="bob")
        assert hit is True
        assert cached.digest == record.digest

    def test_deadline_with_nothing_to_salvage_is_a_typed_failure(
            self, tiny_fasta, fast_config, cluster_workers, tmp_path):
        service = JobService(str(tmp_path / "root"),
                             n_workers=cluster_workers)
        spec = JobSpec(n_inferences=1, n_bootstraps=2, seed=5,
                       config=fast_config, deadline_s=1e-4)
        record, _ = service.submit(tiny_fasta, spec, client="alice")
        done = service.run_next()
        assert done.state == "failed"
        assert "TaskCancelled" in done.error
        assert service.result(record.job_id) is None


# -- graceful drain end to end -----------------------------------------------


class TestDrainEndToEnd:
    def test_drain_checkpoints_inflight_and_resumes_bit_identical(
            self, tiny_fasta, cluster_workers, tmp_path):
        root = str(tmp_path / "root")
        submission = json.dumps({
            "alignment": tiny_fasta,
            "model": {"n_inferences": 1, "n_bootstraps": 24, "seed": 3},
            "client": "alice",
        }).encode()

        async def scenario():
            service = JobService(root, n_workers=cluster_workers)
            app = ServeApp(service, port=0, poll_interval=0.05,
                           drain_grace_s=20.0)
            await app.start()
            h, p = app.host, app.port
            try:
                status, _, blob = await _http(h, p, "GET", "/readyz")
                assert status == 200 and json.loads(blob)["ready"] is True

                status, _, blob = await _http(h, p, "POST", "/jobs",
                                              submission)
                assert status == 201
                job_id = json.loads(blob)["job_id"]

                # Wait for the executor to pick the job up, then drain
                # mid-run.
                for _ in range(200):
                    status, _, blob = await _http(h, p, "GET",
                                                  f"/jobs/{job_id}")
                    if json.loads(blob)["state"] == "running":
                        break
                    await asyncio.sleep(0.05)
                else:
                    raise AssertionError("job never started running")

                app.begin_drain()

                status, _, blob = await _http(h, p, "GET", "/readyz")
                assert status == 503
                assert json.loads(blob)["draining"] is True
                status, _, blob = await _http(h, p, "GET", "/healthz")
                assert status == 200  # alive-but-draining, not dead
                assert json.loads(blob)["draining"] is True

                status, head, blob = await _http(h, p, "POST", "/jobs",
                                                 submission)
                assert status == 503
                assert "Retry-After:" in head
                err = json.loads(blob)
                assert err["error"] == "draining"
                assert err["retry_after_s"] > 0
            finally:
                t0 = time.monotonic()
                await app.stop()
                # The drain unwound at a safe point, far inside the
                # grace budget — no 20 s hang, no cancelled executor.
                assert time.monotonic() - t0 < 15.0
            return job_id

        job_id = asyncio.run(scenario())

        # The drained job is durably *unfinished*: journal has no
        # terminal record, and the record is recoverable.
        first = JobService(root, n_workers=cluster_workers)
        journal_path = first.store.journal_path(job_id)
        if os.path.exists(journal_path):
            journal = open(journal_path).read()
            assert "run_cancelled" in journal
            assert "run_finished" not in journal
        recovered = first.recover()
        assert job_id in [r.job_id for r in recovered]

        # Resume to completion; compare bit-for-bit against an
        # uninterrupted run of the same submission in a fresh root.
        done = first.run_next()
        assert done.state == "done" and done.degraded is False
        resumed = first.result(job_id)

        from repro.serve.api import parse_submission

        _, spec, _, _ = parse_submission(submission)
        baseline_service = JobService(str(tmp_path / "baseline"),
                                      n_workers=cluster_workers)
        base_record, _ = baseline_service.submit(tiny_fasta, spec,
                                                 client="alice")
        assert baseline_service.run_next().state == "done"
        baseline = baseline_service.result(base_record.job_id)

        assert resumed["digest"] == baseline["digest"]
        assert json.dumps(resumed, sort_keys=True) == \
            json.dumps(baseline, sort_keys=True)

    def test_service_drain_rejects_submissions(self, tiny_fasta,
                                               fast_config, tmp_path):
        from repro.serve import DrainingError

        service = JobService(str(tmp_path / "root"))
        assert service.begin_drain() == 0  # idempotent, nothing in flight
        with pytest.raises(DrainingError) as excinfo:
            service.submit(tiny_fasta,
                           JobSpec(n_inferences=1, n_bootstraps=0, seed=1,
                                   config=fast_config))
        assert excinfo.value.retry_after_s > 0
        assert service.store.load_all() == []  # no durable trace


# -- admission control --------------------------------------------------------


class TestAdmissionPreflight:
    def test_estimate_scales_with_problem_size(self):
        small = estimate_job_memory_mb(8, 100)
        tall = estimate_job_memory_mb(800, 100)
        wide = estimate_job_memory_mb(8, 100_000)
        assert small < tall and small < wide
        # Protein models cost 5x the states.
        assert estimate_job_memory_mb(8, 100, n_states=20) > small
        assert estimate_job_memory_mb(8, 100, n_workers=4) > \
            2 * estimate_job_memory_mb(8, 100, n_workers=1)
        assert estimate_clv_mb(100, 1000) == pytest.approx(
            100 * 1000 * 4 * 4 * 8 / 1024 / 1024)

    def test_preflight_passes_without_a_ceiling(self, tiny_fasta):
        from repro.phylo.alignment import Alignment

        patterns = Alignment.from_fasta(tiny_fasta).compress()
        spec = JobSpec(n_inferences=1, n_bootstraps=0, seed=0)
        estimate = preflight(patterns, spec, None)
        assert estimate > 0
        with pytest.raises(ResourceLimitError) as excinfo:
            preflight(patterns, spec, limit_mb=1.0, n_workers=2)
        err = excinfo.value
        assert err.limit_mb == 1.0
        assert err.estimated_mb > 1.0
        assert "exceeds the service ceiling" in str(err)

    def test_oversize_submission_is_413_with_no_durable_trace(
            self, tiny_fasta, tmp_path):
        async def scenario():
            app = ServeApp(
                JobService(str(tmp_path / "root"), max_job_memory_mb=1.0),
                port=0,
            )
            await app.start()
            h, p = app.host, app.port
            try:
                submission = json.dumps({
                    "alignment": tiny_fasta,
                    "model": {"n_inferences": 1, "n_bootstraps": 0,
                              "seed": 0},
                }).encode()
                status, _, blob = await _http(h, p, "POST", "/jobs",
                                              submission)
                assert status == 413
                err = json.loads(blob)
                assert err["error"] == "job_too_large"
                assert err["estimated_mb"] > err["limit_mb"] == 1.0

                status, _, blob = await _http(h, p, "GET", "/jobs")
                assert json.loads(blob)["jobs"] == []
            finally:
                await app.stop()

        asyncio.run(scenario())


# -- request hardening --------------------------------------------------------


class TestRequestHardening:
    def test_slowloris_header_gets_typed_408(self, tmp_path):
        async def scenario():
            app = ServeApp(JobService(str(tmp_path / "root")), port=0,
                           header_timeout_s=0.2)
            await app.start()
            try:
                reader, writer = await asyncio.open_connection(
                    app.host, app.port)
                writer.write(b"POST /jobs HTTP/1.1\r\nHost: slow")
                await writer.drain()  # ...and never finish the head
                raw = await asyncio.wait_for(reader.read(), timeout=5.0)
                writer.close()
                assert b" 408 " in raw.split(b"\r\n", 1)[0]
                assert json.loads(raw.partition(b"\r\n\r\n")[2])["error"] \
                    == "header_timeout"
            finally:
                await app.stop()

        asyncio.run(scenario())

    def test_stalled_body_gets_typed_408(self, tmp_path):
        async def scenario():
            app = ServeApp(JobService(str(tmp_path / "root")), port=0,
                           body_timeout_s=0.2)
            await app.start()
            try:
                reader, writer = await asyncio.open_connection(
                    app.host, app.port)
                writer.write(b"POST /jobs HTTP/1.1\r\nHost: slow\r\n"
                             b"Content-Length: 4096\r\n\r\nonly-a-bit")
                await writer.drain()  # promised 4096 bytes, sent 10
                raw = await asyncio.wait_for(reader.read(), timeout=5.0)
                writer.close()
                assert b" 408 " in raw.split(b"\r\n", 1)[0]
                assert json.loads(raw.partition(b"\r\n\r\n")[2])["error"] \
                    == "body_timeout"
            finally:
                await app.stop()

        asyncio.run(scenario())

    def test_sse_stream_notices_client_disconnect(self, tiny_fasta,
                                                  tmp_path):
        """Regression: an aborted SSE client must release its stream
        within about one poll interval, not linger until job end."""

        async def scenario():
            app = ServeApp(JobService(str(tmp_path / "root")), port=0,
                           poll_interval=0.05)
            app._max_concurrent = 0  # freeze dispatch: job stays queued
            await app.start()
            h, p = app.host, app.port
            try:
                submission = json.dumps({
                    "alignment": tiny_fasta,
                    "model": {"n_inferences": 1, "n_bootstraps": 2,
                              "seed": 11},
                }).encode()
                status, _, blob = await _http(h, p, "POST", "/jobs",
                                              submission)
                assert status == 201
                job_id = json.loads(blob)["job_id"]

                reader, writer = await asyncio.open_connection(h, p)
                writer.write(f"GET /jobs/{job_id}/events HTTP/1.1\r\n"
                             f"Host: t\r\n\r\n".encode())
                await writer.drain()
                head = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), timeout=5.0)
                assert b"text/event-stream" in head
                for _ in range(100):
                    if app._sse_active == 1:
                        break
                    await asyncio.sleep(0.02)
                assert app._sse_active == 1

                # Hard client abort, then the server notices on its own.
                writer.transport.abort()
                for _ in range(100):
                    if app._sse_active == 0:
                        break
                    await asyncio.sleep(0.02)
                assert app._sse_active == 0
            finally:
                await app.stop()

        asyncio.run(scenario())


# -- wedged workers: stall timeout and RSS watchdog ---------------------------

#: With two workers, the coarse tasks dispatched first; the trailing
#: batch is split by the multigrain scheduler into fine children before
#: any worker sees it, so worker-site draws never use its coarse id.
FIRST_DISPATCH = ("inference/0", "bootstrap/0-1")
OTHER_KEYS = ("bootstrap/2-3", "bootstrap/2-2", "bootstrap/3-3")
FAULT_PROBABILITY = 0.3


def _seed_firing_once(site):
    """A plan seed whose draw fires *site* on exactly one first-dispatch
    task's first attempt — and on no retry and no split-child grain, so
    the requeue must succeed.  Returns ``(seed, task_id)``."""
    for seed in range(5000):
        first = [t for t in FIRST_DISPATCH
                 if _uniform(seed, site, f"{t}:1") < FAULT_PROBABILITY]
        if len(first) != 1:
            continue
        task = first[0]
        quiet = [f"{t}:{a}"
                 for t in FIRST_DISPATCH + OTHER_KEYS
                 for a in (1, 2, 3)
                 if (t, a) != (task, 1)]
        if all(_uniform(seed, site, k) >= FAULT_PROBABILITY
               for k in quiet):
            return seed, task
    raise AssertionError(f"no seed fires {site} exactly once")


class TestWedgedWorkers:
    def _spec(self, fast_config):
        return JobSpec(n_inferences=1, n_bootstraps=4, seed=9,
                       batch_size=2, config=fast_config)

    def test_stalled_worker_is_reaped_by_the_task_timeout(
            self, tiny_patterns, fast_config, serial_reference, tmp_path):
        """``cluster.worker_stall`` keeps heartbeating, so the *task
        timeout* — not the staleness sweep — must catch it."""
        seed, stalled_task = _seed_firing_once(CLUSTER_WORKER_STALL)
        plan = FaultPlan(seed=seed, specs=(
            FaultSpec(CLUSTER_WORKER_STALL, probability=FAULT_PROBABILITY),
        ))
        cfg = ClusterConfig(
            n_workers=2, task_timeout_s=1.5, max_retries=2,
            retry_backoff_s=0.01, retry_backoff_cap_s=0.1,
            heartbeat_interval_s=0.05, heartbeat_timeout_s=30.0,
        )
        journal = str(tmp_path / "j.jsonl")
        with inject(plan):
            analysis = run_job(self._spec(fast_config),
                               alignment=tiny_patterns,
                               journal_path=journal, cluster=cfg)
        assert analysis.best.newick == serial_reference.best.newick
        assert analysis.supports == serial_reference.supports
        state = replay(journal)
        assert any(d["reason"] == "timeout" for d in state.worker_deaths)
        assert any(f["task"] == stalled_task and f["will_retry"]
                   for f in state.failures)

    def test_rss_watchdog_reaps_runaway_worker(
            self, tiny_patterns, fast_config, serial_reference, tmp_path):
        """``cluster.worker_oom`` allocates ballast and wedges; the RSS
        watchdog journals the overrun and requeues the task instead of
        waiting for the kernel's OOM killer."""
        seed, fat_task = _seed_firing_once(CLUSTER_WORKER_OOM)
        plan = FaultPlan(seed=seed, specs=(
            FaultSpec(CLUSTER_WORKER_OOM, probability=FAULT_PROBABILITY),
        ))
        parent_mb = (_rss_bytes(os.getpid()) or 0) / 1048576.0
        cfg = ClusterConfig(
            n_workers=2, task_timeout_s=60.0, max_retries=2,
            retry_backoff_s=0.01, retry_backoff_cap_s=0.1,
            heartbeat_interval_s=0.05, heartbeat_timeout_s=30.0,
            max_worker_rss_mb=parent_mb + _OOM_BALLAST_MB / 2.0,
        )
        journal = str(tmp_path / "j.jsonl")
        with inject(plan):
            analysis = run_job(self._spec(fast_config),
                               alignment=tiny_patterns,
                               journal_path=journal, cluster=cfg)
        assert analysis.best.newick == serial_reference.best.newick
        assert analysis.supports == serial_reference.supports
        raw = open(journal).read()
        assert "worker_rss_exceeded" in raw
        state = replay(journal)
        assert any(d["reason"] == "rss" for d in state.worker_deaths)
        assert any(f["task"] == fat_task and f["will_retry"]
                   for f in state.failures)
