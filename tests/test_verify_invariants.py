"""Metamorphic invariant tests (repro.verify.invariants).

Tier-1 runs each invariant on a few fixed seeds; the hypothesis-driven
sweeps over random models carry ``@pytest.mark.verify`` and run under
the seeded ``ci`` profile in the CI verify job.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.phylo import GammaRates, JC69, LikelihoodEngine, Tree, UniformRate
from repro.phylo.engine.backends.compiled import compiled_available
from repro.phylo.models import GTR
from repro.verify import (
    InvariantViolation,
    ReferenceEngine,
    gradient_rerooting_invariance,
    gradient_site_permutation_invariance,
    gradient_spr_roundtrip_invariance,
    gradient_taxon_permutation_invariance,
    pattern_compression_invariance,
    rerooting_invariance,
    site_permutation_invariance,
    spr_roundtrip_invariance,
    taxon_permutation_invariance,
)
from tests.strategies import (
    base_frequencies,
    gtr_rates,
    random_sequences,
    seeds,
    substitution_models,
)


def _fixture(seed, n_taxa=7, n_sites=50):
    rng = np.random.default_rng(seed)
    sequences = random_sequences(rng, n_taxa, n_sites)
    return sequences, rng


MODEL = GTR((1.2, 2.9, 0.7, 1.1, 3.4, 1.0), (0.32, 0.18, 0.24, 0.26))


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_rerooting_invariance_fast_and_oracle(seed):
    sequences, rng = _fixture(seed)
    from repro.phylo import Alignment

    patterns = Alignment.from_sequences(sequences).compress()
    tree = Tree.from_tip_names(patterns.taxa, rng)
    rates = GammaRates(0.7, 4)
    fast = LikelihoodEngine(patterns, MODEL, rates, tree)
    try:
        assert rerooting_invariance(fast) < 1e-12
    finally:
        fast.detach()
    assert rerooting_invariance(
        ReferenceEngine(patterns, MODEL, rates, tree)
    ) < 1e-12


@pytest.mark.parametrize("seed", [4, 5])
def test_site_permutation_bit_identical(seed):
    sequences, rng = _fixture(seed)
    assert site_permutation_invariance(
        sequences, MODEL, UniformRate(), rng
    ) == 0.0


@pytest.mark.parametrize("seed", [6, 7])
def test_taxon_permutation_within_roundoff(seed):
    sequences, rng = _fixture(seed)
    assert taxon_permutation_invariance(
        sequences, MODEL, GammaRates(0.5, 2), rng
    ) < 1e-12


@pytest.mark.parametrize("seed", [8, 9])
def test_pattern_compression_matches_per_site(seed):
    sequences, rng = _fixture(seed)
    assert pattern_compression_invariance(
        sequences, MODEL, UniformRate(), rng
    ) < 1e-12


#: Backend sweep for the metamorphic checks (see test_engine_backends.py
#: for the registry-level tests; here the point is that the *invariants*
#: hold on every backend, not only on the default).  The compiled
#: backend joins whenever a kernel flavor loads on the host.
BACKEND_SPECS = ["einsum", "reference", "partitioned:1", "partitioned:2",
                 "partitioned:7",
                 pytest.param("compiled:2", marks=pytest.mark.skipif(
                     compiled_available() is None,
                     reason="no compiled kernel flavor available"))]


@pytest.mark.parametrize("backend", BACKEND_SPECS)
def test_invariants_hold_on_every_backend(backend):
    """Site-permutation (bit-identical), taxon-permutation and
    pattern-compression (round-off) invariances on each backend."""
    sequences, rng = _fixture(20)
    assert site_permutation_invariance(
        sequences, MODEL, UniformRate(), rng, backend=backend
    ) == 0.0
    assert taxon_permutation_invariance(
        sequences, MODEL, GammaRates(0.5, 2), rng, backend=backend
    ) < 1e-12
    assert pattern_compression_invariance(
        sequences, MODEL, UniformRate(), rng, backend=backend
    ) < 1e-12


@pytest.mark.parametrize("backend", BACKEND_SPECS)
def test_rerooting_invariance_every_backend(backend):
    from repro.phylo import Alignment, create_engine

    sequences, rng = _fixture(21)
    patterns = Alignment.from_sequences(sequences).compress()
    tree = Tree.from_tip_names(patterns.taxa, rng)
    engine = create_engine(
        patterns, MODEL, GammaRates(0.7, 4), tree, backend=backend
    )
    try:
        assert rerooting_invariance(engine) < 1e-12
    finally:
        engine.detach()


@pytest.mark.parametrize("backend", BACKEND_SPECS)
def test_spr_roundtrip_bit_identical_every_backend(backend):
    """The bit-for-bit SPR round-trip contract (cluster resume relies on
    it) must survive striped reduction too: for a fixed stripe count the
    recomputed CLVs take the identical kernel path."""
    from repro.phylo import Alignment, create_engine

    sequences, rng = _fixture(22)
    patterns = Alignment.from_sequences(sequences).compress()
    tree = Tree.from_tip_names(patterns.taxa, rng)
    engine = create_engine(patterns, MODEL, None, tree, backend=backend)
    try:
        lnl_before, lnl_moved = spr_roundtrip_invariance(engine, rng)
        assert np.isfinite(lnl_moved)
    finally:
        engine.detach()


@pytest.mark.parametrize("backend", BACKEND_SPECS)
def test_gradient_invariants_every_backend(backend):
    """Sweep-root bit-stability + per-branch pulley agreement, and the
    SPR round-trip gradient contract, on every backend."""
    from repro.phylo import Alignment, create_engine

    sequences, rng = _fixture(23)
    patterns = Alignment.from_sequences(sequences).compress()
    tree = Tree.from_tip_names(patterns.taxa, rng)
    engine = create_engine(
        patterns, MODEL, GammaRates(0.7, 4), tree, backend=backend
    )
    try:
        assert gradient_rerooting_invariance(engine) < 1e-12
        assert gradient_spr_roundtrip_invariance(engine, rng) > 0
    finally:
        engine.detach()


@pytest.mark.parametrize("seed", [24, 25])
def test_gradient_permutation_invariances(seed):
    sequences, rng = _fixture(seed)
    assert gradient_site_permutation_invariance(
        sequences, MODEL, UniformRate(), rng
    ) == 0.0
    assert gradient_taxon_permutation_invariance(
        sequences, MODEL, GammaRates(0.5, 2), rng
    ) < 1e-12


def test_gradient_invariant_violation_is_reported():
    """A poisoned gradient entry must trip the pulley check with a
    diagnostic naming the offending branch."""

    class _Broken:
        def __init__(self, engine):
            self._engine = engine
            self.tree = engine.tree

        def branch_gradient_full(self, lengths=None, root=None):
            branches, lnl, d1, d2 = self._engine.branch_gradient_full(
                lengths=lengths, root=root
            )
            lnl = np.array(lnl)
            lnl[-1] += 1e-3
            return branches, lnl, d1, d2

    sequences, rng = _fixture(26)
    from repro.phylo import Alignment

    patterns = Alignment.from_sequences(sequences).compress()
    tree = Tree.from_tip_names(patterns.taxa, rng)
    engine = LikelihoodEngine(patterns, JC69(), None, tree)
    try:
        with pytest.raises(InvariantViolation, match="pulley|root"):
            gradient_rerooting_invariance(_Broken(engine))
    finally:
        engine.detach()


def test_per_site_rate_models_rejected_where_unsound():
    """Permuting taxa / dropping compression invalidates a CAT model's
    per-pattern category map, so those checks must refuse it."""
    from repro.phylo import Alignment, CatRates

    sequences, rng = _fixture(10)
    patterns = Alignment.from_sequences(sequences).compress()
    cat = CatRates(np.linspace(0.5, 2.0, patterns.n_patterns), 2)
    with pytest.raises(ValueError, match="CAT"):
        taxon_permutation_invariance(sequences, MODEL, cat, rng)
    with pytest.raises(ValueError, match="CAT"):
        pattern_compression_invariance(sequences, MODEL, cat, rng)


@pytest.mark.parametrize("seed", [11, 12, 13])
def test_spr_roundtrip_restores_everything(seed):
    sequences, rng = _fixture(seed)
    from repro.phylo import Alignment

    patterns = Alignment.from_sequences(sequences).compress()
    tree = Tree.from_tip_names(patterns.taxa, rng)
    engine = LikelihoodEngine(patterns, MODEL, GammaRates(0.8, 2), tree)
    try:
        lnl_before, lnl_moved = spr_roundtrip_invariance(engine, rng)
        # The move itself must have actually changed something.
        assert np.isfinite(lnl_moved)
    finally:
        engine.detach()


def test_invariant_violation_is_reported():
    """A deliberately broken engine must trip the pulley check."""

    class _Broken:
        def __init__(self, engine):
            self._engine = engine
            self.tree = engine.tree
            self._calls = 0

        def evaluate(self, branch=None):
            self._calls += 1
            value = self._engine.evaluate(branch)
            return value + (1e-3 if self._calls > 1 else 0.0)

    sequences, rng = _fixture(14)
    from repro.phylo import Alignment

    patterns = Alignment.from_sequences(sequences).compress()
    tree = Tree.from_tip_names(patterns.taxa, rng)
    engine = LikelihoodEngine(patterns, JC69(), None, tree)
    try:
        with pytest.raises(InvariantViolation, match="pulley"):
            rerooting_invariance(_Broken(engine))
    finally:
        engine.detach()


# -- hypothesis sweeps (CI verify job) --------------------------------------


@pytest.mark.verify
@given(seeds, gtr_rates, base_frequencies)
@settings(max_examples=25, deadline=None)
def test_rerooting_invariance_property(seed, rates, freqs):
    from repro.phylo import Alignment

    rng = np.random.default_rng(seed)
    sequences = random_sequences(rng, 6, 40)
    patterns = Alignment.from_sequences(sequences).compress()
    tree = Tree.from_tip_names(patterns.taxa, rng)
    engine = LikelihoodEngine(patterns, GTR(rates, freqs), None, tree)
    try:
        rerooting_invariance(engine)
    finally:
        engine.detach()


@pytest.mark.verify
@given(seeds, substitution_models())
@settings(max_examples=25, deadline=None)
def test_permutation_and_compression_properties(seed, model):
    rng = np.random.default_rng(seed)
    sequences = random_sequences(rng, 6, 40)
    site_permutation_invariance(sequences, model, None, rng)
    taxon_permutation_invariance(sequences, model, None, rng)
    pattern_compression_invariance(sequences, model, None, rng)


@pytest.mark.verify
@given(seeds, substitution_models())
@settings(max_examples=25, deadline=None)
def test_spr_roundtrip_property(seed, model):
    from repro.phylo import Alignment

    rng = np.random.default_rng(seed)
    sequences = random_sequences(rng, 7, 40)
    patterns = Alignment.from_sequences(sequences).compress()
    tree = Tree.from_tip_names(patterns.taxa, rng)
    engine = LikelihoodEngine(patterns, model, None, tree)
    try:
        spr_roundtrip_invariance(engine, rng)
    finally:
        engine.detach()
