"""Tests of the kernel-backend protocol layer (repro.phylo.engine).

Covers the registry/factory surface (names, env override, ``name:N``
specs), the fixed perf-counter contract every backend must honour, and
cross-backend agreement: identical scale counts bit for bit, log
likelihoods within 1e-9, and fixed-stripe-count determinism for the
partitioned backend.
"""

import numpy as np
import pytest

from repro.phylo import GammaRates, LikelihoodEngine, Tree
from repro.phylo.engine import (
    BACKEND_COUNTER_KEYS,
    BACKEND_ENV_VAR,
    KernelBackend,
    available_backends,
    create_engine,
    resolve_backend,
)
from repro.phylo.engine.backends.compiled import compiled_available
from repro.phylo.engine.backends.partitioned import (
    PartitionedBackend,
    THREADS_ENV_VAR,
    default_thread_count,
)
from repro.phylo.models import GTR
from repro.phylo.rates import CatRates
from tests.strategies import random_patterns

needs_compiled = pytest.mark.skipif(
    compiled_available() is None,
    reason="no compiled kernel flavor available (numba or a C compiler)",
)

#: Every backend spec the cross-backend agreement tests sweep, including
#: partitioned stripe counts that do not divide typical pattern counts.
ALL_BACKEND_SPECS = [
    "einsum", "reference", "partitioned:1", "partitioned:2", "partitioned:7",
    pytest.param("compiled:1", marks=needs_compiled),
    pytest.param("compiled:2", marks=needs_compiled),
    pytest.param("partitioned:2:compiled", marks=needs_compiled),
]

MODEL = GTR((1.2, 2.9, 0.7, 1.1, 3.4, 1.0), (0.32, 0.18, 0.24, 0.26))


@pytest.fixture()
def instance():
    rng = np.random.default_rng(23)
    patterns = random_patterns(rng, 6, 60)
    tree = Tree.from_tip_names(patterns.taxa, rng)
    return patterns, tree


# -- registry and factory ----------------------------------------------------


def test_registry_lists_all_builtin_backends():
    names = available_backends()
    for expected in ("einsum", "reference", "partitioned"):
        assert expected in names


def test_resolve_backend_by_name():
    backend = resolve_backend("einsum")
    assert isinstance(backend, KernelBackend)
    assert backend.name == "einsum"


def test_resolve_backend_instance_passthrough():
    backend = resolve_backend("einsum")
    assert resolve_backend(backend) is backend
    with pytest.raises(ValueError, match="cannot be combined"):
        resolve_backend(backend, n_stripes=2)


def test_resolve_backend_name_colon_n_spec():
    backend = resolve_backend("partitioned:3")
    assert backend.n_stripes == 3
    assert backend.n_threads == 3


def test_resolve_backend_inner_spec_selects_inner_kernels():
    backend = resolve_backend("partitioned:2:einsum")
    assert backend.n_stripes == 2
    assert backend.inner_kernels.flavor == "einsum"
    with pytest.raises(ValueError, match="unknown inner kernels"):
        resolve_backend("partitioned:2:quantum")


def test_resolve_backend_rejects_unknown_and_malformed():
    with pytest.raises(ValueError, match="unknown engine backend"):
        resolve_backend("spe")  # real SPEs are not available here
    with pytest.raises(ValueError, match="malformed backend spec"):
        resolve_backend("partitioned:lots")


def test_env_override_selects_backend(instance, monkeypatch):
    patterns, tree = instance
    monkeypatch.setenv(BACKEND_ENV_VAR, "partitioned:2")
    engine = create_engine(patterns, MODEL, None, tree)
    try:
        assert engine.backend.name == "partitioned"
        assert engine.backend.n_stripes == 2
    finally:
        engine.detach()
    # An explicit backend= wins over the environment.
    engine = create_engine(patterns, MODEL, None, tree, backend="einsum")
    try:
        assert engine.backend.name == "einsum"
    finally:
        engine.detach()


def test_likelihood_shim_still_constructs(instance):
    """The thin ``repro.phylo.likelihood`` alias keeps old imports alive."""
    from repro.phylo import likelihood

    patterns, tree = instance
    assert likelihood.LikelihoodEngine is LikelihoodEngine
    engine = likelihood.create_engine(patterns, MODEL, None, tree)
    try:
        assert np.isfinite(engine.evaluate())
    finally:
        engine.detach()


def test_default_thread_count_env_override(monkeypatch):
    monkeypatch.setenv(THREADS_ENV_VAR, "3")
    assert default_thread_count() == 3
    backend = PartitionedBackend()
    assert backend.n_threads == 3
    monkeypatch.delenv(THREADS_ENV_VAR)
    assert 1 <= default_thread_count() <= 4


def test_partitioned_rejects_nonpositive_worker_counts():
    with pytest.raises(ValueError, match=">= 1"):
        PartitionedBackend(n_stripes=0)


def test_partitioned_stripe_bounds_are_contiguous_and_exhaustive():
    backend = PartitionedBackend(n_stripes=7)
    for n_patterns in (1, 6, 7, 8, 23):
        bounds = backend._stripes(n_patterns)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == n_patterns
        for (_, stop), (start, _) in zip(bounds, bounds[1:]):
            assert start == stop  # contiguous, no gaps or overlap
        assert all(stop > start for start, stop in bounds)  # none empty


# -- the perf-counter contract ----------------------------------------------


@pytest.mark.parametrize("spec", ALL_BACKEND_SPECS)
def test_backend_counter_keys_identical_across_backends(spec):
    backend = resolve_backend(spec)
    assert tuple(sorted(backend.perf_counters())) == tuple(
        sorted(BACKEND_COUNTER_KEYS)
    )


@pytest.mark.parametrize("spec", ALL_BACKEND_SPECS)
def test_engine_counter_key_set_is_backend_independent(instance, spec):
    """pmat_*/arena_*/backend_* keys must not depend on the backend, so
    perf-counter consumers (golden corpus, benchmarks) never branch."""
    patterns, tree = instance
    baseline = create_engine(patterns, MODEL, None, tree, backend="einsum")
    engine = create_engine(patterns, MODEL, None, tree, backend=spec)
    try:
        baseline.evaluate()
        engine.evaluate()
        assert sorted(engine.perf_counters()) == sorted(
            baseline.perf_counters()
        )
    finally:
        baseline.detach()
        engine.detach()


def test_partitioned_counters_report_stripes_and_tasks(instance):
    patterns, tree = instance
    engine = create_engine(patterns, MODEL, None, tree, backend="partitioned:2")
    try:
        engine.evaluate()
        counters = engine.perf_counters()
        assert counters["backend_stripes"] == 2
        assert counters["backend_threads"] == 2
        assert counters["backend_kernel_calls"] > 0
        # Every kernel call fanned out at least one stripe/block task
        # (reduction kernels may collapse to a single block run on
        # small instances; elementwise kernels still fan out fully).
        assert counters["backend_stripe_tasks"] >= (
            counters["backend_kernel_calls"]
        )
    finally:
        engine.detach()


# -- cross-backend agreement -------------------------------------------------


@pytest.mark.parametrize("spec", ALL_BACKEND_SPECS)
@pytest.mark.parametrize("rates", ["gamma", "cat"])
def test_backends_agree_on_loglik_and_scale_counts(instance, spec, rates):
    patterns, tree = instance
    if rates == "gamma":
        rate_model = GammaRates(0.6, 4)
    else:
        rate_model = CatRates(
            np.linspace(0.3, 3.0, patterns.n_patterns), 3
        )
    reference = LikelihoodEngine(
        patterns, MODEL, rate_model, tree, backend="einsum"
    )
    engine = LikelihoodEngine(patterns, MODEL, rate_model, tree, backend=spec)
    try:
        for branch in tree.branches[:3]:
            a = reference.evaluate(branch)
            b = engine.evaluate(branch)
            assert b == pytest.approx(a, rel=1e-9)
        inner = next(n for n in tree.inner_nodes)
        entry = inner.branches[0]
        expected = reference.clv(inner, entry)
        got = engine.clv(inner, entry)
        # Scale counts are an exact comparison: bit-identical everywhere.
        assert np.array_equal(got.scale_counts, expected.scale_counts)
        if spec.startswith("partitioned") and not spec.endswith("compiled"):
            # Striped propagation is elementwise per pattern: CLVs are
            # bit-identical to the flat einsum kernels.
            assert np.array_equal(got.clv, expected.clv)
        elif spec.startswith(("compiled", "partitioned")):
            # Compiled inner kernels use plain accumulation loops whose
            # summation order may differ from einsum's: tolerance-gated.
            np.testing.assert_allclose(got.clv, expected.clv, rtol=1e-9)
    finally:
        reference.detach()
        engine.detach()


@pytest.mark.parametrize("spec", ALL_BACKEND_SPECS)
def test_backends_agree_on_branch_derivatives(instance, spec):
    patterns, tree = instance
    reference = LikelihoodEngine(patterns, MODEL, None, tree, backend="einsum")
    engine = LikelihoodEngine(patterns, MODEL, None, tree, backend=spec)
    try:
        branch = tree.branches[1]
        a_lnl, a_d1, a_d2 = reference.branch_derivatives(branch)
        b_lnl, b_d1, b_d2 = engine.branch_derivatives(branch)
        assert b_lnl == pytest.approx(a_lnl, rel=1e-9)
        assert b_d1 == pytest.approx(a_d1, rel=1e-8, abs=1e-7)
        assert b_d2 == pytest.approx(a_d2, rel=1e-8, abs=1e-7)
    finally:
        reference.detach()
        engine.detach()


def test_partitioned_fixed_stripe_count_is_deterministic(instance):
    """For one stripe count the reduction grouping is fixed, so repeated
    evaluations are bit-identical whatever the thread scheduling."""
    patterns, tree = instance
    values = []
    for _ in range(3):
        engine = create_engine(
            patterns, MODEL, GammaRates(0.9, 4), tree,
            backend="partitioned", n_stripes=3, n_threads=2,
        )
        try:
            values.append(engine.evaluate(tree.branches[0]))
        finally:
            engine.detach()
    assert values[0] == values[1] == values[2]
    # Thread count is pure pool width: same stripes, same bits.
    engine = create_engine(
        patterns, MODEL, GammaRates(0.9, 4), tree,
        backend="partitioned", n_stripes=3, n_threads=1,
    )
    try:
        assert engine.evaluate(tree.branches[0]) == values[0]
    finally:
        engine.detach()


@pytest.mark.parametrize("base", [
    "partitioned",
    pytest.param("compiled", marks=needs_compiled),
])
def test_loglik_bits_invariant_across_thread_counts(instance, base):
    """The reduction regrouping bug: ``:1/:2/:4`` used to report slightly
    different log likelihoods because per-stripe sums regrouped with the
    stripe count.  Fixed reduction blocks + ordered pairwise summation
    make the lnL (and the Newton-optimized branch path that compounds
    it) bit-identical across stripe/thread counts."""
    patterns, tree = instance
    newick = tree.to_newick(digits=17)
    results = []
    for n in (1, 2, 4):
        own_tree = Tree.from_newick(newick)
        engine = create_engine(
            patterns, MODEL, GammaRates(0.6, 4), own_tree,
            backend=f"{base}:{n}",
        )
        try:
            lnl = engine.evaluate()
            opt = engine.optimize_all_branches(passes=2)
            results.append((lnl, opt))
        finally:
            engine.detach()
    assert results[0] == results[1] == results[2]  # bitwise, no approx


def test_detach_closes_partitioned_pool(instance):
    patterns, tree = instance
    engine = LikelihoodEngine(
        patterns, MODEL, None, tree, backend="partitioned:2"
    )
    backend = engine.backend
    engine.evaluate()
    assert backend._pool is not None  # pool spun up by the striped kernels
    engine.detach()
    assert backend._pool is None
    backend.close()  # idempotent


def test_search_and_makenewz_run_on_partitioned_backend(instance):
    """The whole optimization surface (not just evaluate) must work when
    striped: makenewz Newton iterations and the fused SPR batch scorer."""
    from repro.phylo.search import spr_neighborhood

    patterns, tree = instance
    newick = tree.to_newick(digits=17)
    results = {}
    for spec in ("einsum", "partitioned:2"):
        own_tree = Tree.from_newick(newick)
        engine = LikelihoodEngine(patterns, MODEL, None, own_tree, backend=spec)
        try:
            branch = own_tree.branches[2]
            length, lnl = engine.makenewz(branch)

            inner = [b for b in own_tree.branches if not b.nodes[0].is_tip]
            prune = inner[0]
            keep = prune.nodes[0]
            targets = spr_neighborhood(own_tree, prune, keep, 2)
            scores, lengths, _ = engine.score_spr_candidates(
                prune, keep, targets
            )
            assert np.isfinite(scores).all()
            results[spec] = (length, lnl, scores, lengths)
        finally:
            engine.detach()
    a, b = results["einsum"], results["partitioned:2"]
    assert b[0] == pytest.approx(a[0], rel=1e-6)  # optimized length
    assert b[1] == pytest.approx(a[1], rel=1e-9)  # lnL at the optimum
    np.testing.assert_allclose(b[2], a[2], rtol=1e-9)  # SPR preview scores
    np.testing.assert_allclose(b[3], a[3], rtol=1e-6)  # connect lengths
