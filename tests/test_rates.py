"""Tests for rate-heterogeneity models (repro.phylo.rates)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phylo import (
    CatRates,
    GammaRates,
    RateModel,
    UniformRate,
    discrete_gamma_rates,
)


class TestDiscreteGamma:
    def test_mean_is_one(self):
        for alpha in (0.2, 0.5, 1.0, 2.0, 10.0):
            rates = discrete_gamma_rates(alpha, 4)
            assert abs(rates.mean() - 1.0) < 1e-12, alpha

    def test_rates_increase(self):
        rates = discrete_gamma_rates(0.7, 4)
        assert (np.diff(rates) > 0).all()

    def test_single_category_is_one(self):
        assert np.array_equal(discrete_gamma_rates(0.5, 1), [1.0])

    def test_low_alpha_spreads_rates(self):
        spread_low = np.ptp(discrete_gamma_rates(0.2, 4))
        spread_high = np.ptp(discrete_gamma_rates(5.0, 4))
        assert spread_low > spread_high

    def test_high_alpha_approaches_uniform(self):
        rates = discrete_gamma_rates(500.0, 4)
        assert np.allclose(rates, 1.0, atol=0.1)

    def test_median_variant(self):
        mean_rates = discrete_gamma_rates(0.7, 4, median=False)
        median_rates = discrete_gamma_rates(0.7, 4, median=True)
        assert abs(median_rates.mean() - 1.0) < 1e-12
        assert not np.allclose(mean_rates, median_rates)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            discrete_gamma_rates(0.0, 4)

    def test_invalid_categories(self):
        with pytest.raises(ValueError):
            discrete_gamma_rates(1.0, 0)

    @given(
        st.floats(min_value=0.05, max_value=50.0),
        st.integers(min_value=2, max_value=16),
    )
    def test_mean_one_property(self, alpha, k):
        rates = discrete_gamma_rates(alpha, k)
        assert len(rates) == k
        assert abs(rates.mean() - 1.0) < 1e-9
        assert (rates >= 0).all()


class TestRateModel:
    def test_uniform(self):
        model = UniformRate()
        assert model.n_categories == 1
        assert not model.is_per_site

    def test_gamma_weights_equal(self):
        model = GammaRates(0.7, 4)
        assert np.allclose(model.weights, 0.25)
        assert model.n_categories == 4

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum"):
            RateModel(np.ones(2), np.array([0.4, 0.4]))

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            RateModel(np.array([-1.0, 1.0]), np.array([0.5, 0.5]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RateModel(np.ones(3), np.ones(2) / 2)


class TestCatRates:
    def test_assignment_covers_all_sites(self):
        site_rates = np.array([0.1, 0.2, 1.0, 1.1, 5.0, 5.5])
        model = CatRates(site_rates, n_categories=3)
        assert model.is_per_site
        assert model.site_categories.shape == (6,)
        assert set(model.site_categories) == {0, 1, 2}

    def test_weighted_mean_rate_is_one(self):
        rng = np.random.default_rng(3)
        site_rates = rng.gamma(0.5, 2.0, size=200) + 0.01
        model = CatRates(site_rates, n_categories=8)
        mean = (model.rates * model.weights).sum()
        assert abs(mean - 1.0) < 1e-12

    def test_fewer_unique_rates_than_categories(self):
        model = CatRates(np.array([1.0, 1.0, 2.0, 2.0]), n_categories=10)
        assert model.n_categories == 2

    def test_sorted_assignment(self):
        site_rates = np.array([5.0, 0.1, 1.0, 9.0])
        model = CatRates(site_rates, n_categories=2)
        # The two slowest sites share the low category.
        slow = model.site_categories[[1, 2]]
        fast = model.site_categories[[0, 3]]
        assert (model.rates[slow] < model.rates[fast]).all()

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="positive"):
            CatRates(np.array([1.0, 0.0]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            CatRates(np.array([]))
