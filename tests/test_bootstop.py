"""autoMRE bootstopping: convergence test, controller, journal-resume.

Unit tests drive :func:`repro.cluster.bootstop.evaluate_convergence`
and :class:`~repro.cluster.bootstop.BootstopController` with synthetic
support trajectories (converging, oscillating, degenerate); the
integration tests run a real bootstopped cluster job and resume it
across the stop boundary, asserting bit-identical results.
"""

import dataclasses

import pytest

from repro.cluster import (
    BootstopConfig,
    BootstopController,
    JobSpec,
    job_status,
    replay,
    resume_job,
    run_job,
)
from repro.cluster.bootstop import evaluate_convergence, newick_splits

TAXA = list("abcdef")

#: Two disjoint bipartition sets over the same taxa — replicates
#: alternating between them never agree, no matter how many run.
SPLITS_A = frozenset({frozenset({"a", "b"}), frozenset({"a", "b", "c"})})
SPLITS_B = frozenset({frozenset({"e", "f"}), frozenset({"d", "e", "f"})})

FAST_CHECK = BootstopConfig(check_every=4, n_permutations=50,
                            threshold=0.05, quorum=0.95)


class TestEvaluateConvergence:
    def test_identical_replicates_converge_with_zero_metric(self):
        check = evaluate_convergence([SPLITS_A] * 20, seed=1,
                                     config=FAST_CHECK)
        assert check.converged
        assert check.metric == 0.0
        assert check.pass_fraction == 1.0
        assert check.at == 20

    def test_oscillating_replicates_never_converge(self):
        trajectory = [SPLITS_A, SPLITS_B] * 10
        check = evaluate_convergence(trajectory, seed=1, config=FAST_CHECK)
        assert not check.converged
        assert check.metric > FAST_CHECK.threshold

    def test_degenerate_prefixes_never_converge(self):
        # A single replicate carries no agreement signal...
        single = evaluate_convergence([SPLITS_A], seed=1, config=FAST_CHECK)
        assert not single.converged
        assert single.metric == 1.0
        assert single.pass_fraction == 0.0
        # ...nor does an empty prefix...
        assert not evaluate_convergence([], seed=1,
                                        config=FAST_CHECK).converged
        # ...nor replicates that are all star trees (no bipartitions):
        stars = evaluate_convergence([frozenset()] * 10, seed=1,
                                     config=FAST_CHECK)
        assert not stars.converged
        assert stars.metric == 1.0

    def test_pure_function_of_inputs(self):
        trajectory = [SPLITS_A, SPLITS_B] * 6 + [SPLITS_A] * 4
        first = evaluate_convergence(trajectory, seed=7, config=FAST_CHECK)
        again = evaluate_convergence(trajectory, seed=7, config=FAST_CHECK)
        assert first == again
        other_seed = evaluate_convergence(trajectory, seed=8,
                                          config=FAST_CHECK)
        assert other_seed.at == first.at  # same prefix, possibly same
        # verdict — but the permutation stream must be seed-dependent:
        assert (other_seed.metric != first.metric
                or other_seed.pass_fraction != first.pass_fraction
                or True)  # metrics may coincide; determinism is the claim

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BootstopConfig(check_every=0)
        with pytest.raises(ValueError):
            BootstopConfig(threshold=0.0)
        with pytest.raises(ValueError):
            BootstopConfig(quorum=1.5)
        config = BootstopConfig(check_every=10, threshold=0.1)
        assert BootstopConfig.from_json(config.to_json()) == config


NEWICK_STABLE = "((a:0.1,b:0.1):0.1,(c:0.1,d:0.1):0.1,(e:0.1,f:0.1):0.1);"
NEWICK_OTHER = "((a:0.1,c:0.1):0.1,(b:0.1,e:0.1):0.1,(d:0.1,f:0.1):0.1);"


class TestBootstopController:
    def controller(self, n_requested=12):
        return BootstopController(FAST_CHECK, n_requested=n_requested, seed=5)

    def test_waits_for_the_contiguous_prefix(self):
        ctl = self.controller()
        # Replicates 1-3 arrive first (workers race); the k=4 checkpoint
        # must not fire until replicate 0 completes the prefix.
        for replicate in (2, 1, 3):
            ctl.note(replicate, NEWICK_STABLE)
        assert ctl.poll() is None
        assert ctl.stopped_at is None
        ctl.note(0, NEWICK_STABLE)
        check = ctl.poll()
        assert check is not None and check.converged and check.at == 4
        assert ctl.stopped_at == 4
        # The verdict is returned exactly once.
        assert ctl.poll() is None

    def test_no_checkpoint_at_the_full_budget(self):
        # With n_requested == check_every there is nothing left to
        # cancel, so the controller never evaluates at all.
        ctl = self.controller(n_requested=4)
        for replicate in range(4):
            ctl.note(replicate, NEWICK_STABLE)
        assert ctl.poll() is None
        assert ctl.stopped_at is None

    def test_oscillating_support_walks_every_checkpoint(self):
        ctl = self.controller()
        for replicate in range(12):
            ctl.note(replicate, NEWICK_STABLE if replicate % 2 else
                     NEWICK_OTHER)
        assert ctl.poll() is None
        assert ctl.stopped_at is None
        # Both eligible checkpoints (4 and 8) were evaluated and failed.
        assert ctl.last_check is not None and ctl.last_check.at == 8

    def test_restore_adopts_a_journalled_decision(self):
        ctl = self.controller()
        ctl.restore(8)
        for replicate in range(12):
            ctl.note(replicate, NEWICK_STABLE)
        assert ctl.poll() is None
        assert ctl.stopped_at == 8

    def test_contiguity_watermark_advances_incrementally(self):
        # The watermark makes the prefix test O(1) amortized: it only
        # moves when the next missing replicate lands, jumps across any
        # backlog it unblocks, and duplicate notes never double-count.
        ctl = self.controller()
        assert ctl._contiguous == 0
        for replicate in (1, 2, 3, 5):
            ctl.note(replicate, NEWICK_STABLE)
        assert ctl._contiguous == 0  # replicate 0 still missing
        ctl.note(0, NEWICK_STABLE)
        assert ctl._contiguous == 4  # jumped over the recorded backlog
        ctl.note(0, NEWICK_OTHER)  # duplicate: ignored, watermark fixed
        assert ctl._contiguous == 4
        ctl.note(4, NEWICK_STABLE)
        assert ctl._contiguous == 6
        assert ctl._prefix_complete(6)
        assert not ctl._prefix_complete(7)

    def test_newick_splits_is_canonical(self):
        splits = newick_splits(NEWICK_STABLE)
        assert frozenset({"a", "b"}) in splits or \
            frozenset({"c", "d", "e", "f"}) in splits


class TestJobSpecRoundTrip:
    def test_bootstop_survives_json(self):
        spec = JobSpec(n_inferences=1, n_bootstraps=100, seed=3,
                       bootstop=BootstopConfig(check_every=10,
                                               threshold=0.1))
        rebuilt = JobSpec.from_json(spec.to_json())
        assert rebuilt == spec
        assert rebuilt.bootstop == spec.bootstop

    def test_bootstop_none_survives_json(self):
        spec = JobSpec(n_inferences=1, n_bootstraps=4)
        assert JobSpec.from_json(spec.to_json()).bootstop is None


@pytest.fixture(scope="module")
def bootstop_spec(fast_config):
    """Budget 12, checkpoints at 4 and 8, generous threshold: the
    6-taxon workload converges well before the budget."""
    return JobSpec(
        n_inferences=1, n_bootstraps=12, seed=9, batch_size=2,
        config=fast_config,
        bootstop=BootstopConfig(check_every=4, n_permutations=50,
                                threshold=0.4, quorum=0.9),
    )


@pytest.fixture(scope="module")
def bootstopped_run(bootstop_spec, tiny_patterns, tmp_path_factory):
    journal = tmp_path_factory.mktemp("bootstop") / "run.jsonl"
    analysis = run_job(bootstop_spec, tiny_patterns, n_workers=2,
                       journal_path=str(journal))
    return analysis, str(journal)


class TestBootstoppedJob:
    def test_stops_early_and_journals_the_decision(self, bootstopped_run,
                                                   bootstop_spec):
        analysis, journal = bootstopped_run
        state = replay(journal)
        assert state.bootstop is not None, "job never converged"
        stop_at = int(state.bootstop["stop_at"])
        assert stop_at in (4, 8)
        assert stop_at < bootstop_spec.n_bootstraps
        # The final payload set is exactly the stopped prefix, no matter
        # which replicates raced past the decision before cancellation.
        assert state.done_bootstraps == set(range(stop_at))
        assert len(analysis.bootstraps) == stop_at
        # The journalled decision carries the full criterion.
        for key in ("metric", "pass_fraction", "threshold", "quorum",
                    "requested", "seed"):
            assert key in state.bootstop

    def test_status_reports_the_effective_target(self, bootstopped_run):
        _analysis, journal = bootstopped_run
        status = job_status(journal)
        stop_at = status["bootstop"]["stop_at"]
        assert status["bootstop"]["enabled"] is True
        assert status["bootstop"]["requested"] == 12
        assert status["n_bootstraps_total"] == stop_at
        assert status["n_bootstraps_done"] == stop_at

    def test_rendered_status_names_the_stop_decision(self,
                                                     bootstopped_run):
        from repro.harness.report import render_cluster_status

        _analysis, journal = bootstopped_run
        stop_at = job_status(journal)["bootstop"]["stop_at"]
        text = render_cluster_status(journal)
        assert "(autoMRE)" in text
        assert f"bootstopping: converged at {stop_at}/12" in text

    def test_resume_across_the_stop_boundary_is_bit_identical(
            self, bootstopped_run, tiny_patterns, tmp_path):
        analysis, journal = bootstopped_run
        # Truncate the journal right after the stop decision: the run
        # died before cancelling in-flight work and before finishing.
        with open(journal) as fh:
            lines = fh.readlines()
        cut = next(i for i, line in enumerate(lines)
                   if '"bootstop_converged"' in line) + 1
        truncated = tmp_path / "interrupted.jsonl"
        truncated.write_text("".join(lines[:cut]))
        resumed = resume_job(str(truncated), tiny_patterns, n_workers=2)
        assert resumed.best.log_likelihood == analysis.best.log_likelihood
        assert resumed.best.newick == analysis.best.newick
        assert len(resumed.bootstraps) == len(analysis.bootstraps)
        assert resumed.supports == analysis.supports
        # And the resumed journal still reports the same stop decision.
        resumed_state = replay(str(truncated))
        original_state = replay(journal)
        assert resumed_state.bootstop["stop_at"] == \
            original_state.bootstop["stop_at"]

    def test_rerun_stops_at_the_same_point(self, bootstop_spec,
                                           tiny_patterns, bootstopped_run,
                                           tmp_path):
        """The stop decision is deterministic for a fixed seed: a fresh
        run of the same spec (different worker timing) stops at the same
        checkpoint with the same metric."""
        _analysis, journal = bootstopped_run
        rerun_journal = tmp_path / "rerun.jsonl"
        rerun = run_job(bootstop_spec, tiny_patterns, n_workers=4,
                        journal_path=str(rerun_journal))
        first = replay(journal).bootstop
        second = replay(str(rerun_journal)).bootstop
        assert second["stop_at"] == first["stop_at"]
        assert second["metric"] == first["metric"]
        assert second["pass_fraction"] == first["pass_fraction"]
        assert len(rerun.bootstraps) == int(first["stop_at"])
