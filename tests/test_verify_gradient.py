"""Tests of the one-pass full-tree branch gradient.

Tier-1 pins ``branch_gradient_full`` to the per-branch derivative path
on every backend and exercises the gradient smoothing mode on one
golden case; the hypothesis sweeps and the full golden-corpus
equivalence run carry ``@pytest.mark.verify`` (CI verify job, or
locally with ``pytest -m verify``).
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.phylo import Alignment, GammaRates, LikelihoodEngine, Tree
from repro.phylo.engine import create_engine
from repro.phylo.engine.backends.compiled import compiled_available
from repro.phylo.engine.protocol import KernelBackend
from repro.phylo.models import GTR
from repro.phylo.search import SearchConfig
from repro.port.trace import Tracer
from repro.verify import (
    GOLDEN_CASES,
    build_case_instance,
    gradient_rerooting_invariance,
    gradient_site_permutation_invariance,
    gradient_spr_roundtrip_invariance,
    gradient_taxon_permutation_invariance,
)
from tests.strategies import (
    random_phylo_instance,
    random_sequences,
    seeds,
    substitution_models,
)

#: Same sweep as the other verify suites: every registered backend plus
#: the compiled one whenever a kernel flavor loads on the host.
BACKEND_SPECS = ["einsum", "reference", "partitioned:1", "partitioned:2",
                 "partitioned:7",
                 pytest.param("compiled:2", marks=pytest.mark.skipif(
                     compiled_available() is None,
                     reason="no compiled kernel flavor available"))]

MODEL = GTR((1.2, 2.9, 0.7, 1.1, 3.4, 1.0), (0.32, 0.18, 0.24, 0.26))


def _engine(seed, backend=None, gamma=False, n_taxa=7, n_sites=50):
    patterns, tree, model, rate_model = random_phylo_instance(
        seed, MODEL, n_taxa=n_taxa, n_sites=n_sites, gamma=gamma
    )
    return create_engine(patterns, model, rate_model, tree, backend=backend)


def _assert_gradient_matches_per_branch(engine, rel_tol=1e-9):
    branches, lnl, d1, d2 = engine.branch_gradient_full()
    assert len(branches) == len(engine.tree.branches)
    for k, b in enumerate(branches):
        p_lnl, p_d1, p_d2 = engine.branch_derivatives(b)
        assert abs(float(lnl[k]) - p_lnl) <= rel_tol * max(1.0, abs(p_lnl))
        for got, want in ((float(d1[k]), p_d1), (float(d2[k]), p_d2)):
            assert abs(got - want) <= rel_tol * 10 * max(abs(got), abs(want)) + 1e-7


# -- tier-1: the gradient agrees with the per-branch path --------------------


@pytest.mark.parametrize("backend", BACKEND_SPECS)
def test_gradient_matches_per_branch_every_backend(backend):
    engine = _engine(31, backend=backend)
    try:
        _assert_gradient_matches_per_branch(engine)
    finally:
        engine.detach()


@pytest.mark.parametrize("backend", ["einsum", "partitioned:2"])
def test_gradient_matches_per_branch_gamma(backend):
    engine = _engine(32, backend=backend, gamma=True)
    try:
        _assert_gradient_matches_per_branch(engine)
    finally:
        engine.detach()


def test_gradient_cat_mode_per_site():
    """CAT rates route the fused contraction through the per-site
    kernel flavor; agreement bar is unchanged."""
    from repro.phylo import CatRates

    rng = np.random.default_rng(33)
    patterns = Alignment.from_sequences(
        random_sequences(rng, 6, 45)
    ).compress()
    tree = Tree.from_tip_names(patterns.taxa, rng)
    cat = CatRates(rng.uniform(0.25, 4.0, patterns.n_patterns), 3)
    engine = LikelihoodEngine(patterns, MODEL, cat, tree)
    try:
        _assert_gradient_matches_per_branch(engine)
    finally:
        engine.detach()


def test_gradient_at_explicit_lengths():
    """An explicit length vector evaluates the gradient away from the
    tree's current lengths without mutating the tree."""
    engine = _engine(34)
    try:
        before = [b.length for b in engine.tree.branches]
        ts = np.asarray(before) * 1.5
        branches, lnl, d1, d2 = engine.branch_gradient_full(lengths=ts)
        assert [b.length for b in engine.tree.branches] == before
        for k, b in enumerate(branches):
            p_lnl, p_d1, _ = engine.branch_derivatives(b, float(ts[k]))
            assert abs(float(lnl[k]) - p_lnl) <= 1e-9 * max(1.0, abs(p_lnl))
            assert abs(float(d1[k]) - p_d1) <= 1e-8 * max(
                1.0, abs(p_d1)) + 1e-7
    finally:
        engine.detach()


def test_gradient_rejects_bad_inputs():
    engine = _engine(35)
    try:
        tip = next(n for n in engine.tree.nodes if n.is_tip)
        with pytest.raises(ValueError):
            engine.branch_gradient_full(root=tip)
        with pytest.raises(ValueError):
            engine.branch_gradient_full(lengths=np.ones(3))
    finally:
        engine.detach()


def test_default_protocol_delegates_to_batch():
    """A third-party backend that only implements the batch kernel gets
    the full-tree gradient for free through the protocol default."""
    engine = _engine(36)
    try:
        backend = engine._backend
        branches, lnl, d1, d2 = engine.branch_gradient_full()
        ts = np.array([b.length for b in branches])
        # Rebuild the stacks exactly as the engine does and route them
        # through the *protocol default* instead of the override.
        u = np.stack([engine._side(b.nodes[0], b)[0] for b in branches])
        v = np.stack([engine._side(b.nodes[1], b)[0] for b in branches])
        sc = np.stack([
            engine._side(b.nodes[0], b)[1] + engine._side(b.nodes[1], b)[1]
            for b in branches
        ])
        default = KernelBackend.branch_gradient_full(
            backend, engine._transition_derivatives_batch(ts),
            engine.model.pi, engine._cat_weights, engine.patterns.weights,
            u, v, sc,
        )
        assert np.array_equal(default[0], lnl)
        assert np.array_equal(default[1], d1)
        assert np.array_equal(default[2], d2)
    finally:
        engine.detach()


def test_gradient_counters_and_tracer():
    tracer = Tracer(keep_events=True)
    patterns, tree, model, rate_model = random_phylo_instance(37, MODEL)
    engine = LikelihoodEngine(patterns, model, rate_model, tree,
                              tracer=tracer)
    try:
        engine.branch_gradient_full()
        engine.branch_gradient_full()
        n = len(tree.branches)
        assert engine.gradient_sweeps == 2
        assert engine.gradient_traversals_saved == 2 * (n - 1)
        counters = engine.perf_counters()
        assert counters["gradient_sweeps"] == 2
        assert counters["gradient_traversals_saved"] == 2 * (n - 1)
        assert "gradient_fallbacks" in counters
        assert tracer.gradient_count == 2
        assert tracer.gradient_branches == 2 * n
        # The second sweep reuses every cached directional CLV.
        events = [e for e in tracer.events if e.kernel == "gradient"]
        assert len(events) == 2 and events[0].batch == n
        summary = tracer.summary()
        assert summary.gradient_count == 2
        assert summary.scale(2.0).gradient_branches == 4 * n
    finally:
        engine.detach()


# -- tier-1: gradient smoothing mode -----------------------------------------


def test_optimize_all_branches_rejects_unknown_mode():
    engine = _engine(38)
    try:
        with pytest.raises(ValueError, match="mode"):
            engine.optimize_all_branches(mode="bogus")
    finally:
        engine.detach()


def test_search_config_smoothing_mode_flag():
    assert SearchConfig().smoothing_mode == "newton"
    assert SearchConfig(gradient_smoothing=True).smoothing_mode == "gradient"


def _smoothing_pair(case):
    """(newton lnL, gradient lnL) from a shared preconditioned start."""
    results = {}
    newicks = {}
    for mode in ("newton", "gradient"):
        patterns, model, rate_model, tree, _ = build_case_instance(case)
        engine = LikelihoodEngine(patterns, model, rate_model, tree)
        try:
            # Two plain Newton passes precondition both runs onto the
            # same basin; the modes must then agree at the fixed point.
            engine.optimize_all_branches(passes=2, mode="newton")
            results[mode] = engine.optimize_all_branches(
                passes=10, tolerance=1e-8, mode=mode
            )
            newicks[mode] = tree.to_newick(digits=17)
        finally:
            engine.detach()
    assert newicks["newton"].count(",") == newicks["gradient"].count(",")
    return results["newton"], results["gradient"]


def test_gradient_smoothing_matches_newton_one_case():
    newton, gradient = _smoothing_pair(GOLDEN_CASES[0])
    assert abs(newton - gradient) < 1e-6


def test_gradient_smoothing_uses_sweeps_and_polishes():
    case = GOLDEN_CASES[0]
    patterns, model, rate_model, tree, _ = build_case_instance(case)
    engine = LikelihoodEngine(patterns, model, rate_model, tree)
    try:
        lnl = engine.optimize_all_branches(
            passes=10, tolerance=1e-8, mode="gradient"
        )
        assert np.isfinite(lnl)
        assert engine.gradient_sweeps >= 1
        assert engine.gradient_traversals_saved > 0
        # A per-branch Newton pass from the gradient answer gains
        # (almost) nothing: both modes share the fixed point.
        polished = engine.optimize_all_branches(passes=1, mode="newton")
        assert polished - lnl < 1e-4
    finally:
        engine.detach()


# -- verify: acceptance ------------------------------------------------------


@pytest.mark.verify
def test_gradient_smoothing_matches_newton_golden_corpus():
    """Acceptance bar: gradient smoothing reaches the same lnL as the
    per-branch Newton smoother within 1e-6 on every golden case."""
    for case in GOLDEN_CASES:
        newton, gradient = _smoothing_pair(case)
        assert abs(newton - gradient) < 1e-6, case.name


@pytest.mark.verify
def test_gradient_smoothing_never_worse_from_raw_starts():
    """From unpreconditioned random starts the modes may walk to
    different basins, but the gradient mode's polish pass guarantees it
    never ends below the Newton smoother."""
    for case in GOLDEN_CASES:
        results = {}
        for mode in ("newton", "gradient"):
            patterns, model, rate_model, tree, _ = build_case_instance(case)
            engine = LikelihoodEngine(patterns, model, rate_model, tree)
            try:
                results[mode] = engine.optimize_all_branches(
                    passes=10, tolerance=1e-8, mode=mode
                )
            finally:
                engine.detach()
        assert results["gradient"] >= results["newton"] - 1e-6, case.name


@pytest.mark.verify
@given(seeds, substitution_models())
@settings(max_examples=25, deadline=None)
def test_gradient_matches_per_branch_property(seed, model):
    rng = np.random.default_rng(seed)
    patterns = Alignment.from_sequences(
        random_sequences(rng, 6, 40)
    ).compress()
    tree = Tree.from_tip_names(patterns.taxa, rng)
    engine = LikelihoodEngine(patterns, model, None, tree)
    try:
        _assert_gradient_matches_per_branch(engine)
    finally:
        engine.detach()


@pytest.mark.verify
@given(seeds, substitution_models())
@settings(max_examples=15, deadline=None)
def test_gradient_invariants_property(seed, model):
    rng = np.random.default_rng(seed)
    sequences = random_sequences(rng, 6, 40)
    patterns = Alignment.from_sequences(sequences).compress()
    tree = Tree.from_tip_names(patterns.taxa, rng)
    engine = LikelihoodEngine(patterns, model, None, tree)
    try:
        gradient_rerooting_invariance(engine)
        gradient_spr_roundtrip_invariance(engine, rng)
    finally:
        engine.detach()
    gradient_site_permutation_invariance(sequences, model, None, rng)
    gradient_taxon_permutation_invariance(sequences, model, None, rng)
