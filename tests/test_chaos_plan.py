"""Unit tests of the chaos plan/injector layer (repro.chaos).

The determinism contract under test: the same :class:`FaultPlan` driven
over the same visit sequence produces the same injection schedule —
fire decisions hash (seed, site, key-or-visit-index) through CRC32 and
never touch global RNG state.
"""

import pytest

from repro.chaos import (
    FaultPlan,
    FaultSpec,
    active_injector,
    fire,
    inject,
)
from repro.chaos.injector import FaultInjector, _uniform
from repro.chaos.plan import (
    ALL_SITES,
    ENGINE_CLV_POISON,
    ENGINE_UNDERFLOW,
    default_cluster_plan,
    default_engine_plan,
)


class TestSpecAndPlanValidation:
    def test_probability_must_be_a_probability(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(ENGINE_CLV_POISON, probability=1.5)
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(ENGINE_CLV_POISON, probability=-0.1)

    def test_max_triggers_must_be_positive(self):
        with pytest.raises(ValueError, match="max_triggers"):
            FaultSpec(ENGINE_CLV_POISON, max_triggers=0)

    def test_duplicate_sites_rejected(self):
        with pytest.raises(ValueError, match="duplicate sites"):
            FaultPlan(seed=0, specs=(
                FaultSpec(ENGINE_CLV_POISON, probability=0.1),
                FaultSpec(ENGINE_CLV_POISON, probability=0.2),
            ))

    def test_default_plans_cover_their_site_lists(self):
        assert set(default_engine_plan(0).sites) <= set(ALL_SITES)
        assert set(default_cluster_plan(0).sites) <= set(ALL_SITES)
        restricted = default_engine_plan(0, sites=(ENGINE_UNDERFLOW,))
        assert restricted.sites == (ENGINE_UNDERFLOW,)


class TestJsonRoundTrip:
    def test_plan_round_trips_exactly(self):
        plan = FaultPlan(seed=7, specs=(
            FaultSpec(ENGINE_CLV_POISON, probability=0.25, max_triggers=3,
                      value="inf"),
            FaultSpec(ENGINE_UNDERFLOW, trigger_at=(0, 4, 9)),
        ))
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_round_trip_survives_json_serialization(self):
        import json

        plan = default_engine_plan(11)
        payload = json.loads(json.dumps(plan.to_json()))
        assert FaultPlan.from_json(payload) == plan


class TestDeterminism:
    def test_same_plan_same_visits_same_schedule(self):
        plan = FaultPlan(seed=3, specs=(
            FaultSpec(ENGINE_CLV_POISON, probability=0.3, max_triggers=5),
        ))
        logs = []
        for _ in range(2):
            injector = FaultInjector(plan)
            for _ in range(40):
                injector.fire(ENGINE_CLV_POISON)
            logs.append(list(injector.fire_log))
        assert logs[0] == logs[1]
        assert logs[0]  # probability 0.3 over 40 visits must fire

    def test_different_seeds_give_different_schedules(self):
        def schedule(seed):
            injector = FaultInjector(FaultPlan(seed=seed, specs=(
                FaultSpec(ENGINE_CLV_POISON, probability=0.3,
                          max_triggers=100),
            )))
            return [injector.fire(ENGINE_CLV_POISON) for _ in range(64)]

        assert schedule(0) != schedule(1)

    def test_keyed_draws_depend_on_key_not_visit_order(self):
        plan = FaultPlan(seed=5, specs=(
            FaultSpec(ENGINE_CLV_POISON, probability=0.5, max_triggers=100),
        ))
        keys = [f"task/{i}:1" for i in range(20)]
        forward = FaultInjector(plan)
        decisions_fwd = {k: forward.fire(ENGINE_CLV_POISON, key=k)
                         for k in keys}
        backward = FaultInjector(plan)
        decisions_bwd = {k: backward.fire(ENGINE_CLV_POISON, key=k)
                         for k in reversed(keys)}
        assert decisions_fwd == decisions_bwd

    def test_uniform_draw_is_in_unit_interval(self):
        draws = [_uniform(s, "site", str(i))
                 for s in range(4) for i in range(16)]
        assert all(0.0 <= d < 1.0 for d in draws)


class TestFirePolicy:
    def test_trigger_at_wins_over_probability(self):
        injector = FaultInjector(FaultPlan(seed=0, specs=(
            FaultSpec(ENGINE_CLV_POISON, probability=1.0, trigger_at=(2,),
                      max_triggers=10),
        )))
        fired = [injector.fire(ENGINE_CLV_POISON) for _ in range(5)]
        assert fired == [False, False, True, False, False]

    def test_max_triggers_bounds_fires(self):
        injector = FaultInjector(FaultPlan(seed=0, specs=(
            FaultSpec(ENGINE_CLV_POISON, probability=1.0, max_triggers=2),
        )))
        fired = [injector.fire(ENGINE_CLV_POISON) for _ in range(6)]
        assert fired == [True, True, False, False, False, False]
        assert injector.fired[ENGINE_CLV_POISON] == 2
        assert injector.visits[ENGINE_CLV_POISON] == 6

    def test_unplanned_site_never_fires_and_is_not_counted(self):
        injector = FaultInjector(FaultPlan(seed=0, specs=(
            FaultSpec(ENGINE_CLV_POISON, probability=1.0),
        )))
        assert not injector.fire(ENGINE_UNDERFLOW)
        assert injector.visits[ENGINE_UNDERFLOW] == 0

    def test_zero_probability_never_fires(self):
        injector = FaultInjector(FaultPlan(seed=0, specs=(
            FaultSpec(ENGINE_CLV_POISON, probability=0.0),
        )))
        assert not any(injector.fire(ENGINE_CLV_POISON) for _ in range(50))

    def test_summary_reports_visits_fired_and_log(self):
        injector = FaultInjector(FaultPlan(seed=0, specs=(
            FaultSpec(ENGINE_CLV_POISON, trigger_at=(1,)),
        )))
        for _ in range(3):
            injector.fire(ENGINE_CLV_POISON, key="k")
        summary = injector.summary()
        assert summary["visits"] == {ENGINE_CLV_POISON: 3}
        assert summary["fired"] == {ENGINE_CLV_POISON: 1}
        assert summary["fire_log"] == [[ENGINE_CLV_POISON, 1, "k"]]


class TestActivation:
    def test_module_fire_is_inert_without_active_plan(self):
        assert active_injector() is None
        assert fire(ENGINE_CLV_POISON) is False

    def test_inject_activates_and_deactivates(self):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(ENGINE_CLV_POISON, probability=1.0),
        ))
        with inject(plan) as injector:
            assert active_injector() is injector
            assert fire(ENGINE_CLV_POISON) is True
        assert active_injector() is None

    def test_nesting_is_rejected(self):
        plan = FaultPlan(seed=0)
        with inject(plan):
            with pytest.raises(RuntimeError, match="cannot nest"):
                with inject(plan):
                    pass  # pragma: no cover
        assert active_injector() is None

    def test_deactivates_even_when_body_raises(self):
        with pytest.raises(KeyError):
            with inject(FaultPlan(seed=0)):
                raise KeyError("boom")
        assert active_injector() is None
