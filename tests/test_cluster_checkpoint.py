"""Journal replay and resume-determinism tests.

The acceptance bar: a run interrupted at any task boundary and resumed
from its journal produces bit-identical trees, log likelihoods, and
bootstrap supports to an uninterrupted run.
"""

import json

import pytest

from repro.cluster import (
    JobSpec,
    RunJournal,
    replay,
    resume_job,
    run_job,
)
from repro.cluster.checkpoint import compact_journal, decode_record
from repro.harness.report import render_cluster_status


def _truncate_after(journal_path: str, out_path: str, k: int) -> int:
    """Keep the run header and the first *k* replicate results —
    simulating a run killed at a task boundary after *k* replicates."""
    kept, replicates = [], 0
    with open(journal_path) as fh:
        for line in fh:
            record = json.loads(line)
            if record["event"] == "replicate_done":
                replicates += 1
                if replicates > k:
                    continue
            if record["event"] in ("run_finished", "run_progress"):
                continue
            kept.append(line.rstrip("\n"))
    with open(out_path, "w") as fh:
        fh.write("\n".join(kept) + "\n")
    return min(k, replicates)


class TestJournal:
    def test_append_and_replay_round_trip(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with RunJournal(path) as journal:
            journal.append("run_started", spec={"n_inferences": 1})
            journal.append("task_started", task="inference/0", attempt=1,
                           worker=0)
            journal.append(
                "replicate_done", task="inference/0",
                payload={"kind": "inference", "replicate": 0,
                         "newick": "(a,b,c);", "log_likelihood": -1.5,
                         "is_bootstrap": False, "perf": {"pmat_hits": 2}},
            )
            journal.append("task_finished", task="inference/0", attempt=1,
                           worker=0)
        state = replay(path)
        assert state.spec == {"n_inferences": 1}
        assert state.payloads[("inference", 0)]["log_likelihood"] == -1.5
        assert state.tasks_started == 1 and state.tasks_finished == 1
        assert not state.finished
        assert state.perf_totals() == {"pmat_hits": 2}

    def test_duplicate_replicates_first_wins(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with RunJournal(path) as journal:
            for i in range(2):
                journal.append(
                    "replicate_done", task="bootstrap/0",
                    payload={"kind": "bootstrap", "replicate": 0,
                             "newick": "(a,b,c);", "log_likelihood": -2.0,
                             "is_bootstrap": True},
                )
        assert len(replay(path).payloads) == 1

    def test_replay_tolerates_torn_tail_line(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with RunJournal(path) as journal:
            journal.append("run_started", spec={"n_inferences": 1})
        with open(path, "a") as fh:
            fh.write('{"event": "replicate_done", "payl')  # torn write
        state = replay(path)
        assert state.spec == {"n_inferences": 1}
        assert not state.payloads

    def test_in_memory_journal_has_no_file(self):
        journal = RunJournal(None)
        journal.append("run_started", spec={})
        assert journal.path is None and len(journal.events) == 1


def _payload(replicate, kind="bootstrap"):
    return {"kind": kind, "replicate": replicate,
            "newick": f"(a,b,c{replicate});", "log_likelihood": -2.0,
            "is_bootstrap": kind == "bootstrap"}


class TestJournalHardening:
    """CRC + torn-record tolerance (hardened by the chaos campaign)."""

    def _journal_with_payloads(self, path, n=3):
        with RunJournal(path) as journal:
            journal.append("run_started", spec={"n_inferences": 1})
            for r in range(n):
                journal.append("replicate_done", task=f"bootstrap/{r}",
                               payload=_payload(r))

    def test_crc_detects_in_place_corruption(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        self._journal_with_payloads(path)
        lines = open(path).read().splitlines()
        # Flip two characters inside the *middle* record's newick — the
        # line stays valid JSON of the right shape, so only the CRC can
        # catch it.
        corrupted = lines[2].replace("(a,b,c1)", "(a,c,b1)")
        assert corrupted != lines[2]
        lines[2] = corrupted
        with open(path, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="CRC32"):
            decode_record(corrupted)
        state = replay(path)
        assert state.corrupt_records == 1
        assert any("CRC32" in w for w in state.warnings)
        # The damaged replicate is dropped (it would rerun on resume);
        # its neighbours are untouched.
        assert sorted(state.payloads) == [("bootstrap", 0), ("bootstrap", 2)]

    def test_truncation_at_every_byte_offset_is_tolerated(self, tmp_path):
        """Replay must survive the writer dying at *any* byte of the
        final record: earlier records stay intact, the torn tail is
        skipped and counted, and nothing raises."""
        path = str(tmp_path / "j.jsonl")
        self._journal_with_payloads(path, n=2)
        blob = open(path, "rb").read()
        last_start = blob[:-1].rfind(b"\n") + 1
        cut_path = str(tmp_path / "cut.jsonl")
        for cut in range(last_start, len(blob)):
            with open(cut_path, "wb") as fh:
                fh.write(blob[:cut])
            state = replay(cut_path)
            assert state.spec == {"n_inferences": 1}
            assert ("bootstrap", 0) in state.payloads  # never collateral
            if ("bootstrap", 1) in state.payloads:
                # A clean cut: the whole record survived, only the
                # newline is missing.
                assert state.corrupt_records == 0
            else:
                # A nonempty fragment is counted; a cut at the record
                # boundary leaves nothing to count.
                assert state.corrupt_records == (
                    1 if cut > last_start else 0
                )

    def test_malformed_payload_is_skipped_not_trusted(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with RunJournal(path) as journal:
            journal.append("run_started", spec={"n_inferences": 1})
            journal.append("replicate_done", task="bootstrap/0",
                           payload=_payload(0))
            # CRC-valid record, nonsense payload (no newick/lnl): the
            # validate-first ingest must refuse it.
            journal.append("replicate_done", task="bootstrap/1",
                           payload={"kind": "bootstrap", "replicate": 1})
        state = replay(path)
        assert state.corrupt_records == 1
        assert any("bad result payload" in w for w in state.warnings)
        assert sorted(state.payloads) == [("bootstrap", 0)]

    def test_append_repairs_a_torn_tail_before_writing(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        self._journal_with_payloads(path, n=1)
        with open(path, "a") as fh:
            fh.write('{"event": "replicate_done", "payl')  # torn write
        # Reopening for append must terminate the fragment so the next
        # record does not splice onto it.
        with RunJournal(path, append=True) as journal:
            journal.append("replicate_done", task="bootstrap/9",
                           payload=_payload(9))
        state = replay(path)
        assert state.corrupt_records == 1  # the fragment, nothing else
        assert sorted(state.payloads) == [("bootstrap", 0), ("bootstrap", 9)]

    def test_compact_journal_keeps_the_durable_essence(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        with RunJournal(path) as journal:
            journal.append("run_started", spec={"n_inferences": 1})
            journal.append("task_started", task="bootstrap/0", attempt=1,
                           worker=0)
            for _ in range(2):  # a retry duplicate
                journal.append("replicate_done", task="bootstrap/0",
                               payload=_payload(0))
            journal.append("task_failed", task="bootstrap/1", attempt=1,
                           attempts=3, backoff_ms=10.0, error="boom",
                           will_retry=True)
            journal.append("run_finished", n_results=1)
        with open(path, "a") as fh:
            fh.write('{"event": "replicate_done", "payl')  # torn write
        before = replay(path)
        compact_journal(path)
        after = replay(path)
        assert after.payloads == before.payloads
        assert after.spec == before.spec
        assert after.finished
        assert after.corrupt_records == 0  # the torn line is gone
        assert after.tasks_started == 0  # scheduling chatter dropped
        assert len(open(path).read().splitlines()) == 3

    def test_atomic_write_fsyncs_the_parent_directory(self, tmp_path,
                                                      monkeypatch):
        """``os.replace`` only updates the directory entry; without a
        directory fsync a crash right after the rename can resurrect
        the old file.  atomic_write must therefore fsync the target's
        parent exactly once, after the replace has landed."""
        from repro.cluster import checkpoint

        calls = []
        real = checkpoint._fsync_directory

        def recording(directory):
            # The rename must already be visible when the fsync runs —
            # otherwise the fsync hardens nothing.
            calls.append((directory, target.read_text()))
            real(directory)

        monkeypatch.setattr(checkpoint, "_fsync_directory", recording)
        target = tmp_path / "snapshot.json"
        checkpoint.atomic_write(str(target), "durable\n")
        assert target.read_text() == "durable\n"
        assert calls == [(str(tmp_path), "durable\n")]
        # No temp file survives a successful write.
        assert [p.name for p in tmp_path.iterdir()] == ["snapshot.json"]

    def test_single_worker_runs_journal_identically(
            self, tiny_patterns, fast_config, tmp_path):
        """With one worker and an injected deterministic clock, two runs
        of the same spec journal identically (modulo the run_progress
        record, which summarizes wall-clock phase timings)."""
        spec = JobSpec(n_inferences=1, n_bootstraps=2, seed=9,
                       batch_size=2, config=fast_config)

        def lines(path):
            clock = iter(range(1, 10_000)).__next__
            run_job(spec, alignment=tiny_patterns, n_workers=1,
                    journal_path=path,
                    clock=lambda: float(clock()))
            return [line for line in open(path).read().splitlines()
                    if json.loads(line)["event"] != "run_progress"]

        first = lines(str(tmp_path / "a.jsonl"))
        second = lines(str(tmp_path / "b.jsonl"))
        assert first == second


class TestResumeDeterminism:
    @pytest.mark.parametrize("k", [0, 2, 4])
    def test_resume_after_k_replicates_is_bit_identical(
            self, k, tiny_patterns, fast_config, serial_reference,
            cluster_workers, tmp_path):
        # A clean journalled run, then a copy truncated after k of its 5
        # replicate results (1 inference + 4 bootstraps) to simulate an
        # interruption at a task boundary.
        full = str(tmp_path / "full.jsonl")
        spec = JobSpec(n_inferences=1, n_bootstraps=4, seed=9, batch_size=2,
                       config=fast_config)
        run_job(spec, alignment=tiny_patterns, n_workers=cluster_workers,
                journal_path=full)

        truncated = str(tmp_path / f"cut{k}.jsonl")
        _truncate_after(full, truncated, k)
        resumed = resume_job(truncated, alignment=tiny_patterns,
                             n_workers=cluster_workers)

        assert resumed.best.newick == serial_reference.best.newick
        assert resumed.best.log_likelihood == \
            serial_reference.best.log_likelihood
        assert [r.newick for r in resumed.inferences] == \
            [r.newick for r in serial_reference.inferences]
        assert [b.newick for b in resumed.bootstraps] == \
            [b.newick for b in serial_reference.bootstraps]
        assert [b.log_likelihood for b in resumed.bootstraps] == \
            [b.log_likelihood for b in serial_reference.bootstraps]
        assert resumed.supports == serial_reference.supports

        state = replay(truncated)
        assert state.resumes == 1
        assert state.finished

    def test_resume_of_complete_run_spawns_no_workers(
            self, tiny_patterns, fast_config, serial_reference,
            cluster_workers, tmp_path):
        journal = str(tmp_path / "full.jsonl")
        spec = JobSpec(n_inferences=1, n_bootstraps=4, seed=9,
                       config=fast_config)
        run_job(spec, alignment=tiny_patterns, n_workers=cluster_workers,
                journal_path=journal)
        # No alignment passed: a complete journal must not need one (it
        # would have to load from spec.alignment_path, which is unset).
        resumed = resume_job(journal)
        assert resumed.supports == serial_reference.supports
        assert resumed.best.newick == serial_reference.best.newick

    def test_resume_requires_a_header(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        open(path, "w").close()
        with pytest.raises(ValueError, match="no run_started header"):
            resume_job(path)


class TestStatusRendering:
    def test_status_of_partial_run(self, tiny_patterns, fast_config,
                                   cluster_workers, tmp_path):
        full = str(tmp_path / "full.jsonl")
        spec = JobSpec(n_inferences=1, n_bootstraps=4, seed=9, batch_size=2,
                       config=fast_config)
        run_job(spec, alignment=tiny_patterns, n_workers=cluster_workers,
                journal_path=full)
        # Keep the inference and the first two bootstraps (arrival order
        # of the journal is nondeterministic, so filter by kind).
        partial = str(tmp_path / "partial.jsonl")
        kept, boots = [], 0
        with open(full) as fh:
            for line in fh:
                record = json.loads(line)
                if record["event"] in ("run_finished", "run_progress"):
                    continue
                if (record["event"] == "replicate_done"
                        and record["payload"]["is_bootstrap"]):
                    boots += 1
                    if boots > 2:
                        continue
                kept.append(line.rstrip("\n"))
        with open(partial, "w") as fh:
            fh.write("\n".join(kept) + "\n")

        text = render_cluster_status(partial)
        assert "1 inference(s) + 4 bootstrap(s)" in text
        assert "best so far" in text
        assert "engine counters" in text
        assert "[finished]" not in text

        finished = render_cluster_status(full)
        assert "[finished]" in finished
        assert "bootstraps 4/4" in finished
        assert "corrupt journal records" not in finished

    def test_status_counts_corrupt_records(self, tiny_patterns,
                                           fast_config, cluster_workers,
                                           tmp_path):
        full = str(tmp_path / "full.jsonl")
        spec = JobSpec(n_inferences=1, n_bootstraps=4, seed=9, batch_size=2,
                       config=fast_config)
        run_job(spec, alignment=tiny_patterns, n_workers=cluster_workers,
                journal_path=full)
        lines = open(full).read().splitlines()
        # Corrupt one replicate record in place (CRC catches it) and
        # append a torn tail: both must be counted, not trusted.
        index = next(i for i, line in enumerate(lines)
                     if json.loads(line)["event"] == "replicate_done")
        lines[index] = lines[index][:-3] + '"}}'
        lines.append('{"event": "replicate_done", "payl')
        with open(full, "w") as fh:
            fh.write("\n".join(lines) + "\n")
        text = render_cluster_status(full)
        assert "corrupt journal records skipped: 2" in text
