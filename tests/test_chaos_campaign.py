"""Campaign and classification tests (repro.chaos.campaign / .report).

Tier-1 runs tiny campaigns (2 chaos seeds on a 6-taxon workload) across
all three kernel backends; the CI-sized 25-seed sweeps are marked
``verify`` and also run from the ``chaos`` CI job via the CLI.
"""

import json

import pytest

from repro.chaos import (
    SILENT_CORRUPTION,
    SURVIVED_IDENTICAL,
    TYPED_FAILURE,
    ChaosRunResult,
    ChaosSurvivalReport,
)
from repro.chaos.campaign import (
    journal_payload_digest,
    run_cluster_campaign,
    run_engine_campaign,
)
from repro.chaos.plan import ENGINE_CLV_POISON, ENGINE_UNDERFLOW
from repro.cluster import RunJournal

#: Backend-neutral engine sites: both recover bit-identically on every
#: backend, so the classification must be the same everywhere.
NEUTRAL_SITES = (ENGINE_CLV_POISON, ENGINE_UNDERFLOW)

BACKENDS = ("einsum", "reference", "partitioned:2")


class TestEngineCampaign:
    def test_tiny_campaign_classifies_identically_on_every_backend(
            self, tiny_patterns):
        reports = {
            backend: run_engine_campaign(
                n_seeds=2, backend=backend, sites=NEUTRAL_SITES,
                patterns=tiny_patterns,
            )
            for backend in BACKENDS
        }
        classifications = {
            backend: [run.classification for run in report.runs]
            for backend, report in reports.items()
        }
        for backend, report in reports.items():
            assert report.ok, report.summary()
            assert report.label == f"engine:{backend}"
            assert classifications[backend] == \
                classifications[BACKENDS[0]]
            # Backend-neutral faults recover bit-identically: every
            # surviving run reproduces its own backend's baseline.
            for run in report.runs:
                assert run.classification == SURVIVED_IDENTICAL
                assert run.log_likelihood == run.baseline_log_likelihood

    def test_start_seed_shifts_the_adversaries(self, tiny_patterns):
        report = run_engine_campaign(
            n_seeds=2, sites=NEUTRAL_SITES, start_seed=7,
            patterns=tiny_patterns,
        )
        assert [run.seed for run in report.runs] == [7, 8]

    @pytest.mark.verify
    def test_full_25_seed_campaign_has_no_silent_corruption(self):
        report = run_engine_campaign(n_seeds=25)
        assert report.ok, report.summary()
        assert report.faults_fired > 0  # the adversary was not vacuous


class TestClusterCampaign:
    def test_tiny_campaign_survives_identically(self, tiny_patterns,
                                                cluster_workers, tmp_path):
        report = run_cluster_campaign(
            n_seeds=2, n_workers=cluster_workers,
            workdir=str(tmp_path), patterns=tiny_patterns,
        )
        assert report.ok, report.summary()
        assert report.label == f"cluster:{cluster_workers}w"
        for run in report.runs:
            assert run.classification in (SURVIVED_IDENTICAL, TYPED_FAILURE)

    @pytest.mark.verify
    def test_full_25_seed_campaign_has_no_silent_corruption(
            self, cluster_workers, tmp_path):
        report = run_cluster_campaign(
            n_seeds=25, n_workers=cluster_workers, workdir=str(tmp_path),
        )
        assert report.ok, report.summary()
        assert report.faults_fired > 0


class TestPayloadDigest:
    @staticmethod
    def _payload(replicate, kind="bootstrap"):
        return {"kind": kind, "replicate": replicate,
                "newick": f"(a,b,c{replicate});", "log_likelihood": -1.5,
                "is_bootstrap": kind == "bootstrap"}

    def test_digest_ignores_arrival_order_and_duplicates(self, tmp_path):
        ordered = str(tmp_path / "a.jsonl")
        with RunJournal(ordered) as journal:
            journal.append("run_started", spec={})
            for r in (0, 1):
                journal.append("replicate_done",
                               payload=self._payload(r))
        shuffled = str(tmp_path / "b.jsonl")
        with RunJournal(shuffled) as journal:
            for r in (1, 0, 1):  # reversed, plus a retry duplicate
                journal.append("replicate_done",
                               payload=self._payload(r))
        assert journal_payload_digest(ordered) == \
            journal_payload_digest(shuffled)

    def test_digest_sees_payload_changes(self, tmp_path):
        a, b = str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")
        for path, lnl in ((a, -1.5), (b, -1.5000000001)):
            payload = dict(self._payload(0), log_likelihood=lnl)
            with RunJournal(path) as journal:
                journal.append("replicate_done", payload=payload)
        assert journal_payload_digest(a) != journal_payload_digest(b)


class TestReportSemantics:
    def test_unknown_classification_is_rejected(self):
        with pytest.raises(ValueError, match="unknown classification"):
            ChaosRunResult(seed=0, classification="meltdown")

    def test_silent_corruption_fails_the_gate(self):
        report = ChaosSurvivalReport(label="unit")
        report.add(ChaosRunResult(seed=0,
                                  classification=SURVIVED_IDENTICAL))
        assert report.ok
        offender = ChaosRunResult(
            seed=1, classification=SILENT_CORRUPTION,
            log_likelihood=-1.0, baseline_log_likelihood=-2.0,
        )
        report.add(offender)
        assert not report.ok
        assert report.offenders() == [offender]
        assert "FAILED" in report.summary()
        assert "seed 1" in report.summary()

    def test_typed_failures_are_loud_but_acceptable(self):
        report = ChaosSurvivalReport(label="unit")
        report.add(ChaosRunResult(seed=0, classification=TYPED_FAILURE,
                                  error="EngineNumericalError: boom",
                                  fired={"engine.clv_poison": 2}))
        assert report.ok
        assert report.counts[TYPED_FAILURE] == 1
        assert report.faults_fired == 2

    def test_report_json_round_trips(self):
        report = ChaosSurvivalReport(label="unit")
        report.add(ChaosRunResult(seed=3,
                                  classification=SURVIVED_IDENTICAL,
                                  log_likelihood=-10.25,
                                  baseline_log_likelihood=-10.25,
                                  fired={"engine.underflow": 1}))
        payload = json.loads(report.to_json_text())
        assert payload["label"] == "unit"
        assert payload["ok"] is True
        assert payload["counts"][SURVIVED_IDENTICAL] == 1
        assert payload["runs"][0]["fired"] == {"engine.underflow": 1}
