"""Tests for GTR+I+G (GammaInvRates), protein simulation and devsim
quiescence — the second extension batch."""

import numpy as np
import pytest

from repro.cell import Get, SimulationError, Simulator, Timeout
from repro.phylo import (
    GammaInvRates,
    GammaRates,
    LikelihoodEngine,
    PoissonAA,
    ProteinAlignment,
    Tree,
    default_gtr,
    evolve_alignment,
    random_tree,
)


class TestGammaInvRates:
    def test_structure(self):
        model = GammaInvRates(alpha=0.7, p_invariant=0.3, n_categories=4)
        assert model.n_categories == 5
        assert model.rates[0] == 0.0
        assert model.weights[0] == pytest.approx(0.3)

    def test_mean_rate_is_one(self):
        model = GammaInvRates(alpha=0.5, p_invariant=0.25)
        assert (model.rates * model.weights).sum() == pytest.approx(1.0)

    def test_zero_pinv_is_plain_gamma(self):
        a = GammaInvRates(0.8, 0.0, 4)
        b = GammaRates(0.8, 4)
        assert np.allclose(a.rates, b.rates)
        assert np.allclose(a.weights, b.weights)

    def test_validation(self):
        with pytest.raises(ValueError):
            GammaInvRates(0.8, 1.0)
        with pytest.raises(ValueError):
            GammaInvRates(0.8, -0.1)

    def test_engine_runs_and_is_branch_invariant(self, small_patterns):
        from repro.phylo import stepwise_addition_tree

        tree = stepwise_addition_tree(
            small_patterns, np.random.default_rng(0)
        )
        model = default_gtr().with_frequencies(
            small_patterns.base_frequencies()
        )
        engine = LikelihoodEngine(
            small_patterns, model, GammaInvRates(0.7, 0.3, 4), tree
        )
        values = [engine.evaluate(b) for b in tree.branches]
        assert max(values) - min(values) < 1e-8
        engine.detach()

    def test_invariant_data_prefers_high_pinv(self):
        # Half the sites forced invariant: GTR+I+G with p=0.4 should
        # beat plain Gamma on the same tree.
        from repro.phylo import synthetic_dataset, stepwise_addition_tree

        aln = synthetic_dataset(n_taxa=8, n_sites=400, seed=21,
                                invariant_fraction=0.6)
        patterns = aln.compress()
        tree = stepwise_addition_tree(patterns, np.random.default_rng(1))
        model = default_gtr().with_frequencies(patterns.base_frequencies())
        plain = LikelihoodEngine(patterns, model, GammaRates(1.0, 4), tree)
        lnl_plain = plain.optimize_all_branches(passes=2)
        plain.detach()
        inv = LikelihoodEngine(
            patterns, model, GammaInvRates(1.0, 0.4, 4), tree
        )
        lnl_inv = inv.optimize_all_branches(passes=2)
        inv.detach()
        assert lnl_inv > lnl_plain

    def test_makenewz_with_zero_rate_category(self, small_patterns):
        from repro.phylo import stepwise_addition_tree

        tree = stepwise_addition_tree(
            small_patterns, np.random.default_rng(2)
        )
        model = default_gtr().with_frequencies(
            small_patterns.base_frequencies()
        )
        engine = LikelihoodEngine(
            small_patterns, model, GammaInvRates(0.7, 0.2, 4), tree
        )
        before = engine.evaluate()
        _, after = engine.makenewz(tree.branches[0])
        assert after >= before - 1e-9
        engine.detach()


class TestProteinSimulation:
    def test_evolves_protein_alignment(self):
        names = [f"p{i}" for i in range(6)]
        tree = random_tree(names, np.random.default_rng(3),
                           mean_branch_length=0.2)
        aln = evolve_alignment(tree, PoissonAA(), 150,
                               np.random.default_rng(4),
                               gamma_alpha=None, invariant_fraction=0.0)
        assert isinstance(aln, ProteinAlignment)
        assert aln.n_taxa == 6
        assert aln.n_sites == 150

    def test_simulated_protein_data_is_learnable(self):
        # Inference on simulated AA data recovers the generating tree.
        from repro.phylo import infer_tree, robinson_foulds, SearchConfig

        truth = Tree.from_newick(
            "((a:0.1,b:0.1):0.08,(c:0.1,d:0.1):0.08,e:0.15);"
        )
        aln = evolve_alignment(truth, PoissonAA(), 1500,
                               np.random.default_rng(5),
                               gamma_alpha=None, invariant_fraction=0.0)
        result = infer_tree(
            aln.compress(),
            config=SearchConfig(initial_radius=2, max_radius=3,
                                max_rounds=3),
            seed=0,
        )
        inferred = Tree.from_newick(result.newick)
        assert robinson_foulds(truth, inferred) == 0.0

    def test_unknown_state_count_rejected(self):
        from repro.phylo.models import SubstitutionModel

        weird = SubstitutionModel((1.0, 1.0, 1.0), (1 / 3,) * 3)
        names = [f"x{i}" for i in range(4)]
        tree = random_tree(names, np.random.default_rng(6))
        with pytest.raises(ValueError, match="no alphabet"):
            evolve_alignment(tree, weird, 10)


class TestQuiescence:
    def test_quiescent_after_clean_run(self):
        sim = Simulator()

        def proc():
            yield Timeout(1.0)

        sim.spawn(proc())
        sim.run()
        sim.assert_quiescent()
        assert sim.unfinished_processes() == []

    def test_blocked_process_detected(self):
        sim = Simulator()
        store = sim.store(name="never-filled")

        def starved():
            yield Get(store)

        sim.spawn(starved(), name="starved-consumer")
        sim.run()
        blocked = sim.unfinished_processes()
        assert len(blocked) == 1
        with pytest.raises(SimulationError, match="starved-consumer"):
            sim.assert_quiescent()
