"""Content-addressed result cache: canonical digests and storage.

The digest must be invariant to presentation (taxon order, site order,
duplicated sites) and sensitive to content (a sequence edit that
introduces a new pattern column, any model/seed change) — and must
ignore execution-only spec fields that the cluster's determinism
contract makes invisible in the result.
"""

import json

import pytest

from repro.cluster import JobSpec
from repro.phylo import Alignment
from repro.serve import ResultCache, canonical_alignment_key, job_digest

#: Four taxa, eight sites, with columns 0 and 4 identical (a built-in
#: duplicate) and seven distinct pattern columns overall.
SEQS = {
    "t1": "ACGTAATG",
    "t2": "ACGTACTC",
    "t3": "AGGTAAAG",
    "t4": "CGGACCAC",
}

SPEC = JobSpec(n_inferences=1, n_bootstraps=10, seed=42)


def digest_of(seqs, spec=SPEC):
    return job_digest(Alignment.from_sequences(seqs).compress(), spec)


class TestCanonicalDigest:
    def test_taxon_order_is_presentation(self):
        reordered = {name: SEQS[name] for name in ("t3", "t1", "t4", "t2")}
        assert digest_of(reordered) == digest_of(SEQS)

    def test_site_order_is_presentation(self):
        # Reverse every sequence: same column multiset, new site order.
        reversed_sites = {name: seq[::-1] for name, seq in SEQS.items()}
        assert digest_of(reversed_sites) == digest_of(SEQS)

    def test_duplicated_sites_collapse(self):
        # Append a copy of site 1 to every taxon: the distinct pattern
        # set is unchanged, so the submission hits the same entry.
        duplicated = {name: seq + seq[1] for name, seq in SEQS.items()}
        assert digest_of(duplicated) == digest_of(SEQS)

    def test_taxon_order_and_duplicates_together(self):
        mangled = {name: SEQS[name] + SEQS[name][:3]
                   for name in ("t4", "t2", "t3", "t1")}
        assert digest_of(mangled) == digest_of(SEQS)

    def test_one_character_edit_misses(self):
        # t1's site 2 G->T creates the column TGGG, which is not among
        # the original patterns: the digest must change.
        edited = dict(SEQS)
        edited["t1"] = "ACTTAATG"
        assert digest_of(edited) != digest_of(SEQS)

    def test_renamed_taxon_misses(self):
        renamed = dict(SEQS)
        renamed["t9"] = renamed.pop("t1")
        assert digest_of(renamed) != digest_of(SEQS)

    def test_model_and_seed_are_content(self):
        import dataclasses

        assert digest_of(SEQS, dataclasses.replace(SPEC, seed=43)) \
            != digest_of(SEQS)
        assert digest_of(SEQS, dataclasses.replace(SPEC, n_bootstraps=20)) \
            != digest_of(SEQS)
        assert digest_of(SEQS, dataclasses.replace(SPEC, model_name="JC69")) \
            != digest_of(SEQS)

    def test_execution_fields_are_not_content(self):
        import dataclasses

        moved = dataclasses.replace(SPEC, alignment_path="/elsewhere.fa",
                                    batch_size=8)
        assert digest_of(SEQS, moved) == digest_of(SEQS)

    def test_key_is_stable_bytes(self):
        patterns = Alignment.from_sequences(SEQS).compress()
        assert canonical_alignment_key(patterns) == \
            canonical_alignment_key(patterns)
        # 4 taxa, 7 distinct patterns (the duplicate column collapsed).
        assert canonical_alignment_key(patterns).startswith(b"4:7:")


class TestResultCache:
    def test_put_get_roundtrip_and_counters(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.get("d" * 64) is None
        payload = {"best_newick": "(a,b);", "best_log_likelihood": -1.5}
        cache.put("d" * 64, payload)
        assert cache.get("d" * 64) == payload
        assert cache.counters() == {"cache_hits": 1, "cache_misses": 1}

    def test_corrupt_entry_is_a_miss_not_an_error(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("e" * 64, {"ok": True})
        with open(cache.path("e" * 64), "w") as fh:
            fh.write('{"torn": ')
        assert cache.get("e" * 64) is None
        # The recompute path simply overwrites the torn entry.
        cache.put("e" * 64, {"ok": True})
        assert cache.get("e" * 64) == {"ok": True}
