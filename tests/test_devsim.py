"""Tests for the discrete-event simulation core (repro.cell.devsim)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cell.devsim import (
    Get,
    Put,
    Release,
    Request,
    SimulationError,
    Simulator,
    Timeout,
    Wait,
)


class TestClockAndTimeouts:
    def test_time_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_single_timeout(self):
        sim = Simulator()

        def proc():
            yield Timeout(2.5)

        sim.spawn(proc())
        assert sim.run() == 2.5

    def test_sequential_timeouts_accumulate(self):
        sim = Simulator()
        seen = []

        def proc():
            yield Timeout(1.0)
            seen.append(sim.now)
            yield Timeout(2.0)
            seen.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert seen == [1.0, 3.0]

    def test_negative_timeout_rejected(self):
        sim = Simulator()

        def proc():
            yield Timeout(-1.0)

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_run_until_stops_early(self):
        sim = Simulator()

        def proc():
            yield Timeout(10.0)

        sim.spawn(proc())
        assert sim.run(until=3.0) == 3.0
        assert sim.run() == 10.0  # resumable

    def test_deterministic_tie_break(self):
        sim = Simulator()
        order = []

        def proc(tag):
            yield Timeout(1.0)
            order.append(tag)

        for tag in ("a", "b", "c"):
            sim.spawn(proc(tag))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_call_at(self):
        sim = Simulator()
        fired = []
        sim.call_at(5.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [5.0]

    def test_call_at_past_rejected(self):
        sim = Simulator()

        def proc():
            yield Timeout(2.0)
            sim.call_at(1.0, lambda: None)

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            while True:
                yield Timeout(1.0)

        sim.spawn(forever())
        with pytest.raises(SimulationError, match="runaway"):
            sim.run(max_events=100)


class TestEvents:
    def test_wait_and_succeed(self):
        sim = Simulator()
        event = sim.event("go")
        results = []

        def waiter():
            value = yield Wait(event)
            results.append((sim.now, value))

        def trigger():
            yield Timeout(4.0)
            event.succeed("payload")

        sim.spawn(waiter())
        sim.spawn(trigger())
        sim.run()
        assert results == [(4.0, "payload")]

    def test_multiple_waiters_all_wake(self):
        sim = Simulator()
        event = sim.event()
        woke = []

        def waiter(tag):
            yield Wait(event)
            woke.append(tag)

        for tag in range(3):
            sim.spawn(waiter(tag))

        def trigger():
            yield Timeout(1.0)
            event.succeed()

        sim.spawn(trigger())
        sim.run()
        assert woke == [0, 1, 2]

    def test_wait_on_triggered_event_returns_immediately(self):
        sim = Simulator()
        event = sim.event()
        event.succeed(99)
        got = []

        def waiter():
            value = yield Wait(event)
            got.append(value)

        sim.spawn(waiter())
        sim.run()
        assert got == [99]

    def test_double_succeed_rejected(self):
        sim = Simulator()
        event = sim.event("once")
        event.succeed()
        with pytest.raises(SimulationError, match="already"):
            event.succeed()

    def test_process_completion_event(self):
        sim = Simulator()

        def child():
            yield Timeout(2.0)
            return "result"

        def parent():
            proc = sim.spawn(child())
            value = yield proc  # waiting on a process
            return (sim.now, value)

        parent_proc = sim.spawn(parent())
        sim.run()
        assert parent_proc.done_event.value == (2.0, "result")


class TestResource:
    def test_fifo_mutual_exclusion(self):
        sim = Simulator()
        resource = sim.resource(1)
        log = []

        def user(tag, hold):
            yield Request(resource)
            log.append(("start", tag, sim.now))
            yield Timeout(hold)
            log.append(("end", tag, sim.now))
            yield Release(resource)

        sim.spawn(user("a", 2.0))
        sim.spawn(user("b", 1.0))
        sim.run()
        assert log == [
            ("start", "a", 0.0),
            ("end", "a", 2.0),
            ("start", "b", 2.0),
            ("end", "b", 3.0),
        ]

    def test_capacity_two_runs_concurrently(self):
        sim = Simulator()
        resource = sim.resource(2)
        ends = []

        def user(hold):
            yield Request(resource)
            yield Timeout(hold)
            ends.append(sim.now)
            yield Release(resource)

        for _ in range(2):
            sim.spawn(user(5.0))
        sim.run()
        assert ends == [5.0, 5.0]

    def test_release_idle_rejected(self):
        sim = Simulator()
        resource = sim.resource(1)

        def bad():
            yield Release(resource)

        sim.spawn(bad())
        with pytest.raises(SimulationError, match="idle"):
            sim.run()

    def test_capacity_validation(self):
        with pytest.raises(SimulationError):
            Simulator().resource(0)

    @given(st.lists(st.floats(min_value=0.01, max_value=5.0),
                    min_size=1, max_size=10),
           st.integers(min_value=1, max_value=4))
    def test_makespan_bounds_property(self, holds, capacity):
        sim = Simulator()
        resource = sim.resource(capacity)

        def user(hold):
            yield Request(resource)
            yield Timeout(hold)
            yield Release(resource)

        for hold in holds:
            sim.spawn(user(hold))
        makespan = sim.run()
        total = sum(holds)
        assert makespan >= max(holds) - 1e-12
        assert makespan >= total / capacity - 1e-9
        assert makespan <= total + 1e-9


class TestStore:
    def test_fifo_order(self):
        sim = Simulator()
        store = sim.store()
        received = []

        def producer():
            for i in range(3):
                yield Put(store, i)
                yield Timeout(1.0)

        def consumer():
            for _ in range(3):
                item = yield Get(store)
                received.append(item)

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert received == [0, 1, 2]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = sim.store()
        times = []

        def consumer():
            yield Get(store)
            times.append(sim.now)

        def producer():
            yield Timeout(7.0)
            yield Put(store, "x")

        sim.spawn(consumer())
        sim.spawn(producer())
        sim.run()
        assert times == [7.0]

    def test_bounded_put_blocks(self):
        sim = Simulator()
        store = sim.store(capacity=1)
        times = []

        def producer():
            yield Put(store, 1)
            yield Put(store, 2)  # blocks: capacity 1
            times.append(sim.now)

        def consumer():
            yield Timeout(3.0)
            yield Get(store)

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert times == [3.0]

    def test_try_put_respects_capacity(self):
        sim = Simulator()
        store = sim.store(capacity=1)
        assert store.try_put("a")
        assert not store.try_put("b")

    def test_try_put_hands_to_waiting_getter(self):
        sim = Simulator()
        store = sim.store(capacity=1)
        got = []

        def consumer():
            item = yield Get(store)
            got.append(item)

        sim.spawn(consumer())
        sim.run()  # consumer now blocked
        assert store.try_put("direct")
        sim.run()
        assert got == ["direct"]


class TestMisuse:
    def test_unsupported_yield(self):
        sim = Simulator()

        def bad():
            yield 42

        sim.spawn(bad())
        with pytest.raises(SimulationError, match="unsupported"):
            sim.run()
