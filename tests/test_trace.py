"""Tests for workload tracing (repro.port.trace)."""

import numpy as np
import pytest

from repro.phylo import (
    GammaRates,
    LikelihoodEngine,
    SearchConfig,
    default_gtr,
    infer_tree,
    stepwise_addition_tree,
)
from repro.phylo.likelihood import NewviewCase
from repro.port import NESTED_TOP, Tracer, TraceSummary


def traced_engine(patterns, keep_events=False, seed=0):
    tracer = Tracer(keep_events=keep_events)
    tree = stepwise_addition_tree(patterns, np.random.default_rng(seed))
    model = default_gtr().with_frequencies(patterns.base_frequencies())
    engine = LikelihoodEngine(
        patterns, model, GammaRates(0.7, 4), tree, tracer=tracer
    )
    return engine, tracer


class TestTracerCounting:
    def test_counts_match_engine_counters(self, small_patterns):
        engine, tracer = traced_engine(small_patterns)
        engine.evaluate()
        engine.makenewz(engine.tree.branches[0])
        assert tracer.newview_count == engine.newview_calls
        assert tracer.evaluate_count == engine.evaluate_calls
        assert tracer.makenewz_count == engine.makenewz_calls
        engine.detach()

    def test_patterncats_accumulate(self, small_patterns):
        engine, tracer = traced_engine(small_patterns)
        engine.evaluate()
        expected = tracer.newview_count * small_patterns.n_patterns * 4
        assert tracer.newview_patterncats == expected
        engine.detach()

    def test_case_counts_cover_all_calls(self, small_patterns):
        engine, tracer = traced_engine(small_patterns)
        engine.evaluate()
        assert sum(tracer.newview_case_counts.values()) == tracer.newview_count
        valid = {
            NewviewCase.TIP_TIP,
            NewviewCase.TIP_INNER,
            NewviewCase.INNER_TIP,
            NewviewCase.INNER_INNER,
        }
        assert set(tracer.newview_case_counts).issubset(valid)
        engine.detach()

    def test_nested_context_tagging(self, small_patterns):
        engine, tracer = traced_engine(small_patterns)
        # evaluate() pushes a context, so its newviews are nested.
        engine.evaluate()
        assert tracer.newview_nested_count == tracer.newview_count
        engine.detach()

    def test_kept_events_have_context(self, small_patterns):
        engine, tracer = traced_engine(small_patterns, keep_events=True)
        engine.makenewz(engine.tree.branches[0])
        newviews = [e for e in tracer.events if e.kernel == "newview"]
        assert newviews
        assert all(e.context == "makenewz" for e in newviews)
        makenewz = [e for e in tracer.events if e.kernel == "makenewz"]
        assert len(makenewz) == 1
        assert makenewz[0].context == NESTED_TOP
        assert makenewz[0].iterations >= 1
        engine.detach()

    def test_events_off_by_default(self, small_patterns):
        engine, tracer = traced_engine(small_patterns)
        engine.evaluate()
        assert tracer.events == []
        engine.detach()


class TestTraceSummary:
    def make_summary(self, small_patterns):
        engine, tracer = traced_engine(small_patterns)
        engine.optimize_all_branches(passes=1)
        engine.evaluate()
        engine.detach()
        return tracer.summary()

    def test_offload_count_regimes(self, small_patterns):
        summary = self.make_summary(small_patterns)
        only_newview = summary.offload_count(offload_all=False)
        all_three = summary.offload_count(offload_all=True)
        assert only_newview == summary.newview_count
        assert all_three == (
            summary.newview_toplevel_count
            + summary.makenewz_count
            + summary.evaluate_count
        )

    def test_scale_preserves_ratios(self, small_patterns):
        summary = self.make_summary(small_patterns)
        scaled = summary.scale(10.0)
        assert scaled.newview_count == 10 * summary.newview_count
        assert scaled.makenewz_count == 10 * summary.makenewz_count
        assert abs(
            scaled.newview_patterncats - 10 * summary.newview_patterncats
        ) < 1e-6

    def test_mean_quantities(self, small_patterns):
        summary = self.make_summary(small_patterns)
        assert summary.mean_newview_patterncats == pytest.approx(
            small_patterns.n_patterns * 4
        )
        assert summary.mean_makenewz_iterations >= 1.0

    def test_tip_case_fraction_range(self, small_patterns):
        summary = self.make_summary(small_patterns)
        assert 0.0 <= summary.tip_case_fraction() <= 1.0

    def test_paper_equivalent_flops_vectorization_halves_large_loop(
        self, small_patterns
    ):
        summary = self.make_summary(small_patterns)
        scalar = summary.paper_equivalent_flops(vectorized=False)
        simd = summary.paper_equivalent_flops(vectorized=True)
        assert simd < scalar

    def test_empty_summary_guards(self):
        empty = TraceSummary(
            newview_count=0, newview_nested_count=0, newview_patterncats=0.0,
            newview_case_counts={}, newview_scaled_patterns=0,
            makenewz_count=0, makenewz_iterations=0,
            makenewz_patterncats=0.0, evaluate_count=0,
            evaluate_patterncats=0.0,
        )
        assert empty.mean_newview_patterncats == 0.0
        assert empty.mean_makenewz_iterations == 0.0
        assert empty.tip_case_fraction() == 0.0


class TestFullSearchTrace:
    def test_infer_tree_with_tracer(self, small_patterns,
                                    tiny_search_config):
        tracer = Tracer()
        result = infer_tree(small_patterns, config=tiny_search_config,
                            seed=0, tracer=tracer)
        assert tracer.newview_count == result.newview_calls
        assert tracer.newview_count > tracer.makenewz_count > 0
        assert tracer.evaluate_count > 0
