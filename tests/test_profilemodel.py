"""Tests for the calibrated cost model (repro.port.profilemodel)."""

import numpy as np
import pytest

from repro.harness import get_trace
from repro.port import CellCostModel, OptimizationConfig, paperdata as P, stage


@pytest.fixture(scope="module")
def model():
    return CellCostModel(get_trace("quick"))


class TestDerivedComponents:
    def test_all_components_positive(self, model):
        for name in (
            "nv_exp_lib_s", "nv_exp_sdk_s", "nv_cond_float_s",
            "nv_cond_int_s", "nv_dma_wait_s", "nv_loops_scalar_s",
            "nv_loops_vector_s", "nv_residual_s",
            "comm_mailbox_per_offload", "comm_direct_per_offload",
        ):
            assert getattr(model, name) > 0, name

    def test_optimized_components_smaller(self, model):
        assert model.nv_exp_sdk_s < model.nv_exp_lib_s
        assert model.nv_cond_int_s < model.nv_cond_float_s
        assert model.nv_loops_vector_s < model.nv_loops_scalar_s
        assert model.comm_direct_per_offload < model.comm_mailbox_per_offload

    def test_exp_is_half_of_unoptimized_kernel(self, model):
        # Paper section 5.2.2: exp() takes 50 % of the unoptimized SPE time.
        k1 = model.newview_kernel_s(stage("table1b"))
        assert model.nv_exp_lib_s / k1 == pytest.approx(0.5, abs=0.01)

    def test_conditional_share_after_opt(self, model):
        # Paper section 5.2.3: 6 % after the integer cast.
        k3 = model.newview_kernel_s(stage("table3"))
        assert model.nv_cond_int_s / k3 == pytest.approx(0.06, abs=0.01)

    def test_canonical_scaled_to_paper_call_count(self, model):
        assert model.canonical.newview_count == P.NEWVIEW_CALLS

    def test_smt_slowdown_from_table1a(self, model):
        expected = P.TABLES["table1a"][(2, 8)] / (4 * P.TABLES["table1a"][(1, 1)])
        assert model.timing.ppe_smt_slowdown == pytest.approx(expected)

    def test_empty_trace_rejected(self):
        from repro.port.trace import TraceSummary
        empty = TraceSummary(
            newview_count=0, newview_nested_count=0, newview_patterncats=0.0,
            newview_case_counts={}, newview_scaled_patterns=0,
            makenewz_count=0, makenewz_iterations=0,
            makenewz_patterncats=0.0, evaluate_count=0,
            evaluate_patterncats=0.0,
        )
        with pytest.raises(ValueError):
            CellCostModel(empty)


class TestStagePricing:
    def test_anchor_cells_exact(self, model):
        # The (1 worker, 1 bootstrap) column is the calibration anchor.
        for table, cells in P.TABLES.items():
            mine = model.stage_total_s(table, 1, 1)
            assert mine == pytest.approx(cells[(1, 1)], rel=0.005), table

    def test_all_cells_within_seven_percent(self, model):
        for table, cells in P.TABLES.items():
            for key, paper_value in cells.items():
                mine = model.stage_total_s(table, *key)
                error = abs(mine - paper_value) / paper_value
                assert error < 0.07, (table, key, mine, paper_value)

    def test_each_stage_improves_on_previous(self, model):
        order = ["table1b", "table2", "table3", "table4", "table5",
                 "table6", "table7"]
        for earlier, later in zip(order, order[1:]):
            for key in P.TABLES[later]:
                t_early = model.stage_total_s(earlier, *key)
                t_late = model.stage_total_s(later, *key)
                assert t_late < t_early, (earlier, later, key)

    def test_naive_offload_hurts(self, model):
        for key in P.TABLES["table1a"]:
            assert model.stage_total_s("table1b", *key) > \
                model.stage_total_s("table1a", *key)

    def test_full_offload_beats_ppe(self, model):
        assert model.stage_total_s("table7", 1, 1) < \
            model.stage_total_s("table1a", 1, 1)

    def test_kernel_flags_monotone(self, model):
        # Turning on any single SPE optimization reduces kernel time.
        base = OptimizationConfig(offload_newview=True)
        base_time = model.newview_kernel_s(base)
        for flag in ("sdk_exp", "int_conditionals", "double_buffering",
                     "vectorize"):
            improved = model.newview_kernel_s(base.with_flags(**{flag: True}))
            assert improved < base_time, flag

    def test_workers_validation(self, model):
        with pytest.raises(ValueError):
            model.task_cost(stage("table7"), workers=3)
        with pytest.raises(ValueError):
            model.run_total_s(stage("table7"), 0, 1)

    def test_straggler_rounding(self, model):
        # 3 bootstraps over 2 workers: the busiest worker runs 2 tasks.
        per_task = model.task_cost(stage("table7"), workers=2).total_s
        assert model.run_total_s(stage("table7"), 2, 3) == \
            pytest.approx(2 * per_task)

    def test_comm_contention_grows_with_workers(self, model):
        config = stage("table1b")
        one = model.comm_per_offload(config, workers=1)
        two = model.comm_per_offload(config, workers=2)
        assert two > one * model.timing.ppe_smt_slowdown * 0.99


class TestSchedulingForms:
    def test_table8_within_five_percent(self, model):
        for b, paper_value in P.TABLE8.items():
            mine = model.mgps_total_s(b)
            assert abs(mine - paper_value) / paper_value < 0.05, b

    def test_llp_speedup_shape(self, model):
        # Small splits help monotonically; beyond the sweet spot the
        # per-SPE split/merge overhead flattens (and may bend) the
        # curve — the reason the paper uses only 2 SPEs per loop when
        # several tasks are active.
        speedups = {n: model.llp_speedup(n) for n in range(1, 9)}
        assert speedups[1] == 1.0
        assert speedups[1] < speedups[2] < speedups[4]
        assert all(s >= 1.0 for s in speedups.values())
        assert speedups[8] > 1.3  # 8 SPEs must still clearly help

    def test_llp_overhead_caps_speedup(self, model):
        # Amdahl bound with the calibrated parallel fraction.
        p = model.llp_parallel_fraction
        for n in (2, 4, 8):
            assert model.llp_speedup(n) <= 1.0 / (1.0 - p) + 1e-9

    def test_edtlp_scales_with_batches(self, model):
        t8 = model.edtlp_total_s(8)
        t32 = model.edtlp_total_s(32)
        assert t32 == pytest.approx(4 * t8, rel=0.01)

    def test_mgps_remainder_uses_llp(self, model):
        # 9 bootstraps: one EDTLP batch + one LLP task on all 8 SPEs.
        total = model.mgps_total_s(9)
        expected = model.edtlp_total_s(8) + model.llp_task_s(8, 1)
        assert total == pytest.approx(expected)

    def test_mgps_five_tasks_two_rounds(self, model):
        # 5 tasks -> 4 concurrent with 2 SPEs each, then 1 with 8 SPEs.
        total = model.mgps_total_s(5)
        expected = model.llp_task_s(2, 4) + model.llp_task_s(8, 1)
        assert total == pytest.approx(expected)

    def test_invalid_inputs(self, model):
        with pytest.raises(ValueError):
            model.mgps_total_s(0)
        with pytest.raises(ValueError):
            model.edtlp_total_s(0)
        with pytest.raises(ValueError):
            model.llp_speedup(0)


class TestTraceRobustness:
    def test_model_stable_across_trace_profiles(self):
        # A different (larger) trace must yield very similar tables:
        # the calibration chain dominates; the trace supplies structure.
        quick = CellCostModel(get_trace("quick"))
        full = CellCostModel(get_trace("full"))
        for table in ("table2", "table5", "table7"):
            for key in P.TABLES[table]:
                a = quick.stage_total_s(table, *key)
                b = full.stage_total_s(table, *key)
                assert abs(a - b) / a < 0.06, (table, key)

    def test_paper_comparison_structure(self):
        model = CellCostModel(get_trace("quick"))
        comparison = model.paper_comparison()
        assert set(comparison) == set(P.TABLES)
        for cells in comparison.values():
            for paper_value, mine in cells.values():
                assert paper_value > 0 and mine > 0
