"""Tests for tree presentation (ASCII rendering, support newick)."""

import numpy as np
import pytest

from repro.phylo import (
    Tree,
    ascii_tree,
    newick_with_support,
    robinson_foulds,
    support_values,
)


def sample_tree():
    return Tree.from_newick("((a:0.1,b:0.2):0.05,(c:0.1,d:0.1):0.07,e:0.3);")


class TestAsciiTree:
    def test_contains_every_tip(self):
        tree = sample_tree()
        art = ascii_tree(tree)
        for name in tree.tip_names():
            assert name in art

    def test_marks_display_root(self):
        assert "(display root)" in ascii_tree(sample_tree())

    def test_line_count(self):
        # One line per node.
        tree = sample_tree()
        art = ascii_tree(tree)
        assert len(art.splitlines()) == len(tree.nodes)

    def test_longer_branches_draw_longer_bars(self):
        tree = Tree.from_newick("(a:0.01,b:1.0,c:0.5);")
        art = ascii_tree(tree, width=60)
        line_a = next(l for l in art.splitlines() if l.endswith("a"))
        line_b = next(l for l in art.splitlines() if l.endswith("b"))
        assert line_b.count("-") > line_a.count("-")

    def test_random_trees_render(self):
        for seed in range(5):
            tree = Tree.from_tip_names(
                [f"t{i}" for i in range(7)], np.random.default_rng(seed)
            )
            art = ascii_tree(tree)
            assert art


class TestNewickWithSupport:
    def test_round_trips_topology(self):
        tree = sample_tree()
        supports = {split: 0.9 for split in tree.bipartitions()}
        text = newick_with_support(tree, supports)
        again = Tree.from_newick(text)
        assert robinson_foulds(tree, again) == 0.0

    def test_labels_present_as_percent(self):
        tree = sample_tree()
        supports = {split: 0.87 for split in tree.bipartitions()}
        text = newick_with_support(tree, supports)
        assert ")87:" in text

    def test_fractional_labels(self):
        tree = sample_tree()
        supports = {split: 0.875 for split in tree.bipartitions()}
        text = newick_with_support(tree, supports, percent=False)
        assert ")0.875:" in text

    def test_missing_support_leaves_node_unlabeled(self):
        tree = sample_tree()
        text = newick_with_support(tree, {})
        again = Tree.from_newick(text)
        assert robinson_foulds(tree, again) == 0.0

    def test_integrates_with_support_values(self):
        tree = sample_tree()
        replicates = [tree, tree.copy()]
        supports = support_values(tree, replicates)
        text = newick_with_support(tree, supports)
        assert ")100:" in text

    def test_preserves_branch_lengths(self):
        tree = sample_tree()
        text = newick_with_support(tree, {})
        again = Tree.from_newick(text)
        assert again.total_length() == pytest.approx(tree.total_length())
