"""Tests for the real parallel master-worker driver."""

import pytest

from repro.phylo import SearchConfig, parallel_analysis, run_full_analysis

FAST = SearchConfig(initial_radius=1, max_radius=1, max_rounds=1,
                    smoothing_passes=1, final_smoothing_passes=1)


class TestParallelAnalysis:
    def test_matches_serial_exactly(self, small_patterns):
        serial = run_full_analysis(
            small_patterns, n_inferences=2, n_bootstraps=2,
            config=FAST, seed=4,
        )
        parallel = parallel_analysis(
            small_patterns, n_inferences=2, n_bootstraps=2,
            config=FAST, seed=4, n_workers=2,
        )
        assert parallel.best.newick == serial.best.newick
        assert parallel.best.log_likelihood == serial.best.log_likelihood
        assert [r.newick for r in parallel.inferences] == \
            [r.newick for r in serial.inferences]
        assert [r.newick for r in parallel.bootstraps] == \
            [r.newick for r in serial.bootstraps]
        assert parallel.supports == serial.supports

    def test_serial_fallback_path(self, small_patterns):
        result = parallel_analysis(
            small_patterns, n_inferences=1, n_bootstraps=1,
            config=FAST, seed=5, n_workers=1,
        )
        assert len(result.inferences) == 1
        assert len(result.bootstraps) == 1

    def test_accepts_uncompressed_alignment(self, small_alignment):
        result = parallel_analysis(
            small_alignment, n_inferences=1, n_bootstraps=0,
            config=FAST, seed=6, n_workers=1,
        )
        assert result.best is result.inferences[0]

    def test_requires_an_inference(self, small_patterns):
        with pytest.raises(ValueError, match="at least one inference"):
            parallel_analysis(small_patterns, n_inferences=0,
                              n_bootstraps=1, config=FAST, n_workers=1)

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            parallel_analysis("not an alignment", n_workers=1)
