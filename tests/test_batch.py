"""Tests for the batched likelihood pipeline (multi-candidate SPR scoring)."""

import numpy as np
import pytest

from repro.phylo import (
    CatRates,
    GammaRates,
    LikelihoodEngine,
    SearchConfig,
    Tree,
    default_gtr,
    hill_climb,
    kernels,
    robinson_foulds,
    stepwise_addition_tree,
    synthetic_dataset,
)
from repro.phylo.search import _apply_spr, _revert_spr, spr_neighborhood
from repro.port.trace import Tracer


def random_clv_batch(rng, k, n_patterns, n_cats):
    return rng.random((k, n_patterns, n_cats, 4)) + 1e-3


class TestBatchTransitionMatrices:
    def test_matches_serial_stacks(self):
        model = default_gtr()
        rates = GammaRates(0.7, 4).rates
        lengths = np.array([1e-8, 0.05, 0.3, 1.2, 5.0])
        batch = model.transition_matrices_batch(lengths, rates)
        assert batch.shape == (5, 4, 4, 4)
        for k, t in enumerate(lengths):
            assert np.allclose(
                batch[k], model.transition_matrices(t, rates), atol=1e-13
            )

    def test_derivatives_match_serial_stacks(self):
        model = default_gtr()
        rates = GammaRates(0.7, 4).rates
        lengths = np.array([0.01, 0.4, 2.0])
        batch = model.transition_derivatives_batch(lengths, rates)
        for k, t in enumerate(lengths):
            serial = model.transition_derivatives(t, rates)
            for got, want in zip((part[k] for part in batch), serial):
                assert np.allclose(got, want, atol=1e-13)

    def test_rejects_negative_lengths(self):
        model = default_gtr()
        with pytest.raises(ValueError):
            model.transition_matrices_batch(
                np.array([0.1, -0.2]), np.ones(4)
            )


class TestBatchKernelsVsSerial:
    """The acceptance bar: batched == K serial calls to <= 1e-10."""

    def setup_method(self):
        self.model = default_gtr()
        self.rates = GammaRates(0.7, 4).rates
        self.rng = np.random.default_rng(42)

    def test_branch_derivatives_batch(self):
        k, s, c = 7, 23, 4
        u = random_clv_batch(self.rng, k, s, c)
        v = random_clv_batch(self.rng, k, s, c)
        weights = self.rng.integers(1, 5, size=s).astype(float)
        cat_w = np.full(c, 0.25)
        scale = self.rng.integers(0, 3, size=(k, s)).astype(np.int64)
        lengths = self.rng.random(k) + 0.01
        terms = self.model.transition_derivatives_batch(lengths, self.rates)
        lnl, d1, d2 = kernels.branch_derivatives_batch(
            terms, self.model.pi, cat_w, weights, u, v, scale
        )
        for i in range(k):
            serial = kernels.branch_derivatives(
                self.model.transition_derivatives(lengths[i], self.rates),
                self.model.pi, cat_w, weights, u[i], v[i], scale[i],
            )
            assert abs(lnl[i] - serial[0]) <= 1e-10
            assert abs(d1[i] - serial[1]) <= 1e-10
            assert abs(d2[i] - serial[2]) <= 1e-10

    def test_evaluate_loglik_batch(self):
        k, s, c = 6, 19, 4
        u = random_clv_batch(self.rng, k, s, c)
        v = random_clv_batch(self.rng, k, s, c)
        weights = self.rng.integers(1, 5, size=s).astype(float)
        cat_w = np.full(c, 0.25)
        scale = self.rng.integers(0, 2, size=(k, s)).astype(np.int64)
        batch = kernels.evaluate_loglik_batch(
            self.model.pi, cat_w, weights, u, v, scale
        )
        for i in range(k):
            serial = kernels.evaluate_loglik(
                self.model.pi, cat_w, weights, u[i], v[i], scale[i]
            )
            assert abs(batch[i] - serial) <= 1e-10

    def test_evaluate_loglik_batch_underflow_raises(self):
        with pytest.raises(FloatingPointError):
            kernels.evaluate_loglik_batch(
                np.full(4, 0.25), np.ones(1), np.ones(2),
                np.zeros((2, 2, 1, 4)), np.zeros((2, 2, 1, 4)),
                np.zeros((2, 2), dtype=np.int64),
            )

    def test_branch_derivatives_batch_persite(self):
        k, s = 5, 17
        site_rates = self.rng.random(s) + 0.1
        u = random_clv_batch(self.rng, k, s, 1)
        v = random_clv_batch(self.rng, k, s, 1)
        weights = self.rng.integers(1, 4, size=s).astype(float)
        scale = self.rng.integers(0, 2, size=(k, s)).astype(np.int64)
        lengths = self.rng.random(k) + 0.01
        terms = self.model.transition_derivatives_batch(lengths, site_rates)
        lnl, d1, d2 = kernels.branch_derivatives_batch_persite(
            terms, self.model.pi, weights, u, v, scale
        )
        for i in range(k):
            serial = kernels.branch_derivatives_persite(
                self.model.transition_derivatives(lengths[i], site_rates),
                self.model.pi, weights, u[i], v[i], scale[i],
            )
            assert abs(lnl[i] - serial[0]) <= 1e-10
            assert abs(d1[i] - serial[1]) <= 1e-10
            assert abs(d2[i] - serial[2]) <= 1e-10


@pytest.fixture()
def spr_setup():
    aln = synthetic_dataset(n_taxa=10, n_sites=400, seed=5)
    patterns = aln.compress()
    rng = np.random.default_rng(9)
    tree = stepwise_addition_tree(patterns, rng)
    model = default_gtr().with_frequencies(patterns.base_frequencies())
    engine = LikelihoodEngine(patterns, model, GammaRates(0.7, 4), tree)
    yield engine
    engine.detach()


class TestScoreSprCandidates:
    def _prune_point(self, tree):
        prune = next(b for b in tree.branches if not b.nodes[0].is_tip)
        return prune, prune.nodes[0]

    def test_matches_serial_connect_only_scoring(self, spr_setup):
        engine = spr_setup
        tree = engine.tree
        prune, keep = self._prune_point(tree)
        targets = spr_neighborhood(tree, prune, keep, radius=3)
        assert len(targets) > 2

        # Serial oracle: apply each candidate, Newton-optimize only the
        # connect branch (what the batched preview optimizes), evaluate.
        serial = []
        pb, ks = prune, keep
        for target in list(targets):
            move = _apply_spr(tree, pb, ks, target)
            _, lnl = engine.makenewz(
                move.connect_branch, max_iterations=8, tolerance=1e-8
            )
            serial.append(lnl)
            pb = _revert_spr(tree, move)
            ks = pb.nodes[0]

        fresh = spr_neighborhood(tree, pb, ks, radius=3)
        scores, lengths, pb2 = engine.score_spr_candidates(
            pb, ks, fresh, max_iterations=8
        )
        assert scores.shape == lengths.shape == (len(fresh),)
        assert np.max(np.abs(scores - np.array(serial))) <= 1e-10

    def test_restores_tree_exactly(self, spr_setup):
        engine = spr_setup
        tree = engine.tree
        reference = Tree.from_newick(tree.to_newick())
        lnl0 = engine.evaluate()
        lengths0 = sorted(b.length for b in tree.branches)
        prune, keep = self._prune_point(tree)
        targets = spr_neighborhood(tree, prune, keep, radius=3)
        _, _, new_prune = engine.score_spr_candidates(prune, keep, targets)
        assert robinson_foulds(reference, tree) == 0.0
        assert np.allclose(
            sorted(b.length for b in tree.branches), lengths0
        )
        assert engine.evaluate() == pytest.approx(lnl0, abs=1e-12)
        # Returned branch has the serial-revert orientation: junction
        # first, subtree root second.
        assert new_prune.nodes[0] in (n for n in tree.nodes)
        assert not new_prune.retired

    def test_counts_and_tracer_events(self, spr_setup):
        engine = spr_setup
        tracer = Tracer(keep_events=True)
        engine.tracer = tracer
        tree = engine.tree
        prune, keep = self._prune_point(tree)
        targets = spr_neighborhood(tree, prune, keep, radius=2)
        engine.score_spr_candidates(prune, keep, targets)
        assert engine.spr_batch_calls == 1
        assert engine.spr_batch_candidates == len(targets)
        assert tracer.spr_batch_count == 1
        assert tracer.spr_batch_candidates == len(targets)
        assert tracer.spr_batch_patterncats > 0
        batch_events = [e for e in tracer.events if e.kernel == "spr_batch"]
        assert len(batch_events) == 1
        assert batch_events[0].batch == len(targets)

    def test_cat_mode_matches_serial(self):
        aln = synthetic_dataset(n_taxa=8, n_sites=300, seed=13)
        patterns = aln.compress()
        rng = np.random.default_rng(3)
        tree = stepwise_addition_tree(patterns, rng)
        model = default_gtr().with_frequencies(patterns.base_frequencies())
        site_rates = rng.random(patterns.n_patterns) + 0.2
        cat = CatRates(site_rates, n_categories=4)
        engine = LikelihoodEngine(patterns, model, cat, tree)
        try:
            prune = next(b for b in tree.branches if not b.nodes[0].is_tip)
            keep = prune.nodes[0]
            targets = spr_neighborhood(tree, prune, keep, radius=2)
            serial = []
            pb, ks = prune, keep
            for target in list(targets):
                move = _apply_spr(tree, pb, ks, target)
                _, lnl = engine.makenewz(
                    move.connect_branch, max_iterations=8, tolerance=1e-8
                )
                serial.append(lnl)
                pb = _revert_spr(tree, move)
                ks = pb.nodes[0]
            fresh = spr_neighborhood(tree, pb, ks, radius=2)
            scores, _, _ = engine.score_spr_candidates(
                pb, ks, fresh, max_iterations=8
            )
            assert np.max(np.abs(scores - np.array(serial))) <= 1e-10
        finally:
            engine.detach()


class TestBatchedHillClimb:
    def test_batched_search_improves_and_traces(self):
        aln = synthetic_dataset(n_taxa=10, n_sites=500, seed=21)
        patterns = aln.compress()
        rng = np.random.default_rng(17)
        tree = stepwise_addition_tree(patterns, rng)
        model = default_gtr().with_frequencies(patterns.base_frequencies())
        tracer = Tracer()
        engine = LikelihoodEngine(
            patterns, model, GammaRates(0.7, 4), tree, tracer=tracer
        )
        try:
            start = engine.evaluate()
            result = hill_climb(
                engine,
                SearchConfig(
                    initial_radius=2, max_radius=3, max_rounds=2,
                    batch_spr=True,
                ),
                np.random.default_rng(17),
            )
            assert np.isfinite(result.log_likelihood)
            assert result.log_likelihood >= start
            # The batched scorer actually ran and was traced.
            assert engine.spr_batch_calls > 0
            assert tracer.spr_batch_count == engine.spr_batch_calls
            assert tracer.perf_counters()["spr_batch_calls"] > 0
            # FLOP reconstruction includes the batched work.
            summary = tracer.summary()
            assert summary.spr_batch_count == tracer.spr_batch_count
            assert summary.paper_equivalent_flops() > 0
            scaled = summary.scale(2.0)
            assert scaled.spr_batch_candidates == pytest.approx(
                2 * summary.spr_batch_candidates, abs=1
            )
        finally:
            engine.detach()

    def test_batched_and_serial_reach_comparable_likelihoods(self):
        aln = synthetic_dataset(n_taxa=9, n_sites=400, seed=33)
        patterns = aln.compress()
        model = default_gtr().with_frequencies(patterns.base_frequencies())
        results = {}
        for batch in (False, True):
            rng = np.random.default_rng(5)
            tree = stepwise_addition_tree(patterns, rng)
            engine = LikelihoodEngine(
                patterns, model, GammaRates(0.7, 4), tree
            )
            try:
                results[batch] = hill_climb(
                    engine,
                    SearchConfig(
                        initial_radius=2, max_radius=3, max_rounds=3,
                        batch_spr=batch,
                    ),
                    np.random.default_rng(5),
                ).log_likelihood
            finally:
                engine.detach()
        # The batched preview is a lower bound, so trajectories differ,
        # but both searches must land in the same likelihood basin.
        assert abs(results[True] - results[False]) < 5.0
