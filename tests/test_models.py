"""Tests for substitution models (repro.phylo.models)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phylo import GTR, HKY85, JC69, K80, SubstitutionModel

positive = st.floats(min_value=0.05, max_value=20.0, allow_nan=False)
frequency = st.floats(min_value=0.05, max_value=1.0, allow_nan=False)


def random_models():
    return st.builds(
        lambda rates, freqs: GTR(rates, freqs),
        st.tuples(*([positive] * 6)),
        st.tuples(*([frequency] * 4)),
    )


class TestConstruction:
    def test_frequencies_normalized(self):
        model = GTR((1,) * 6, (2.0, 2.0, 2.0, 2.0))
        assert np.allclose(model.pi, [0.25] * 4)

    def test_wrong_rate_count(self):
        with pytest.raises(ValueError, match="exactly 6"):
            SubstitutionModel((1.0,) * 5, (0.25,) * 4)

    def test_wrong_frequency_count_for_gtr(self):
        with pytest.raises(ValueError, match="four-state"):
            GTR((1.0,) * 6, (0.25,) * 3)

    def test_general_state_count(self):
        # A 3-state reversible model is legal in the general machinery.
        model = SubstitutionModel((1.0, 2.0, 0.5), (0.2, 0.3, 0.5))
        assert model.n_states == 3
        p = model.transition_matrices(0.4, [1.0])
        assert p.shape == (1, 3, 3)
        assert np.allclose(p.sum(axis=2), 1.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            SubstitutionModel((1, 1, -1, 1, 1, 1), (0.25,) * 4)

    def test_zero_frequency_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            SubstitutionModel((1,) * 6, (0.5, 0.5, 0.0, 0.0))

    def test_named_factories(self):
        assert JC69().name == "JC69"
        assert K80(2.0).name == "K80"
        assert HKY85(2.0).name == "HKY85"
        assert GTR((1,) * 6, (0.25,) * 4).name == "GTR"

    def test_with_frequencies(self):
        model = JC69().with_frequencies((0.4, 0.3, 0.2, 0.1))
        assert np.allclose(model.pi, [0.4, 0.3, 0.2, 0.1])

    def test_with_exchangeabilities(self):
        model = JC69().with_exchangeabilities((1, 2, 3, 4, 5, 6))
        assert model.exchangeabilities == (1, 2, 3, 4, 5, 6)


class TestRateMatrix:
    def test_rows_sum_to_zero(self):
        q = GTR((1.3, 3.8, 0.9, 1.1, 4.2, 1.0), (0.3, 0.2, 0.26, 0.24)).rate_matrix
        assert np.allclose(q.sum(axis=1), 0.0, atol=1e-12)

    def test_normalized_to_one_substitution(self):
        model = GTR((1.3, 3.8, 0.9, 1.1, 4.2, 1.0), (0.3, 0.2, 0.26, 0.24))
        expected_rate = -(model.pi * np.diag(model.rate_matrix)).sum()
        assert abs(expected_rate - 1.0) < 1e-12

    def test_detailed_balance(self):
        model = GTR((1.3, 3.8, 0.9, 1.1, 4.2, 1.0), (0.3, 0.2, 0.26, 0.24))
        q = model.rate_matrix
        pi = model.pi
        flux = pi[:, None] * q
        assert np.allclose(flux, flux.T, atol=1e-12)

    def test_one_zero_eigenvalue_rest_negative(self):
        eigs = np.sort(JC69().eigenvalues)
        assert abs(eigs[-1]) < 1e-10
        assert (eigs[:-1] < 0).all()

    @given(random_models())
    def test_reversibility_property(self, model):
        q = model.rate_matrix
        flux = model.pi[:, None] * q
        assert np.allclose(flux, flux.T, atol=1e-9)


class TestTransitionMatrices:
    def test_identity_at_zero(self):
        p = JC69().transition_matrices(0.0, [1.0])
        assert np.allclose(p[0], np.eye(4), atol=1e-12)

    def test_rows_sum_to_one(self):
        model = GTR((1.3, 3.8, 0.9, 1.1, 4.2, 1.0), (0.3, 0.2, 0.26, 0.24))
        p = model.transition_matrices(0.37, [0.5, 1.0, 2.0])
        assert p.shape == (3, 4, 4)
        assert np.allclose(p.sum(axis=2), 1.0, atol=1e-10)

    def test_entries_are_probabilities(self):
        model = HKY85(3.0, (0.1, 0.4, 0.3, 0.2))
        p = model.transition_matrices(1.5, [1.0])
        assert (p >= -1e-12).all()
        assert (p <= 1.0 + 1e-12).all()

    def test_long_branch_converges_to_stationary(self):
        model = GTR((1.3, 3.8, 0.9, 1.1, 4.2, 1.0), (0.3, 0.2, 0.26, 0.24))
        p = model.transition_matrices(500.0, [1.0])[0]
        for row in p:
            assert np.allclose(row, model.pi, atol=1e-8)

    def test_chapman_kolmogorov(self):
        model = GTR((1.3, 3.8, 0.9, 1.1, 4.2, 1.0), (0.3, 0.2, 0.26, 0.24))
        p1 = model.transition_matrices(0.2, [1.0])[0]
        p2 = model.transition_matrices(0.3, [1.0])[0]
        p12 = model.transition_matrices(0.5, [1.0])[0]
        assert np.allclose(p1 @ p2, p12, atol=1e-10)

    def test_rate_scaling_equivalence(self):
        model = JC69()
        a = model.transition_matrices(0.4, [2.0])[0]
        b = model.transition_matrices(0.8, [1.0])[0]
        assert np.allclose(a, b, atol=1e-12)

    def test_negative_branch_rejected(self):
        with pytest.raises(ValueError):
            JC69().transition_matrices(-0.1, [1.0])

    def test_jc69_analytic_form(self):
        # JC69: P(same) = 1/4 + 3/4 exp(-4t/3).
        t = 0.3
        p = JC69().transition_matrices(t, [1.0])[0]
        same = 0.25 + 0.75 * np.exp(-4.0 * t / 3.0)
        diff = 0.25 - 0.25 * np.exp(-4.0 * t / 3.0)
        expected = np.full((4, 4), diff)
        np.fill_diagonal(expected, same)
        assert np.allclose(p, expected, atol=1e-12)

    @given(random_models(), st.floats(min_value=0.0, max_value=10.0))
    def test_stochastic_property(self, model, t):
        p = model.transition_matrices(t, [1.0])
        assert np.allclose(p.sum(axis=2), 1.0, atol=1e-8)
        assert (p >= -1e-9).all()


class TestDerivatives:
    def test_derivatives_match_finite_differences(self):
        model = GTR((1.3, 3.8, 0.9, 1.1, 4.2, 1.0), (0.3, 0.2, 0.26, 0.24))
        rates = np.array([0.5, 1.5])
        t, h = 0.42, 1e-6
        p, dp, d2p = model.transition_derivatives(t, rates)
        p_plus = model.transition_matrices(t + h, rates)
        p_minus = model.transition_matrices(t - h, rates)
        fd1 = (p_plus - p_minus) / (2 * h)
        fd2 = (p_plus - 2 * p + p_minus) / (h * h)
        assert np.allclose(dp, fd1, atol=1e-5)
        assert np.allclose(d2p, fd2, atol=1e-3)

    def test_p_consistent_with_transition_matrices(self):
        model = HKY85(2.5)
        rates = np.array([1.0, 2.0])
        p, _, _ = model.transition_derivatives(0.7, rates)
        assert np.allclose(p, model.transition_matrices(0.7, rates), atol=1e-12)

    def test_derivative_rows_sum_to_zero(self):
        # d/dt of row sums (==1) must vanish.
        _, dp, d2p = JC69().transition_derivatives(0.5, np.ones(1))
        assert np.allclose(dp.sum(axis=2), 0.0, atol=1e-10)
        assert np.allclose(d2p.sum(axis=2), 0.0, atol=1e-10)
