"""Property-based tests of the likelihood engine over random instances."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phylo import (
    Alignment,
    GTR,
    GammaRates,
    LikelihoodEngine,
    Tree,
    UniformRate,
)
from tests.strategies import (
    base_frequencies,
    gtr_rates,
    random_instance,
    seeds,
)


class TestEngineProperties:
    @given(
        seeds,
        st.integers(min_value=4, max_value=8),
        gtr_rates,
        base_frequencies,
    )
    @settings(max_examples=20, deadline=None)
    def test_branch_invariance_property(self, seed, n_taxa, rates, freqs):
        """lnL is identical at every branch for any reversible model."""
        patterns, tree, model = random_instance(seed, n_taxa, 30, rates, freqs)
        engine = LikelihoodEngine(patterns, model, UniformRate(), tree)
        try:
            values = [engine.evaluate(b) for b in tree.branches]
            spread = max(values) - min(values)
            assert spread < 1e-9 * max(1.0, abs(values[0])) + 1e-8
        finally:
            engine.detach()

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_likelihood_bounded_above_by_zero(self, seed):
        """Site likelihoods are probabilities, so lnL <= 0."""
        patterns, tree, model = random_instance(
            seed, 5, 40, (1.0, 2.0, 1.0, 1.0, 2.0, 1.0),
            (0.25, 0.25, 0.25, 0.25),
        )
        engine = LikelihoodEngine(patterns, model, GammaRates(0.8, 2), tree)
        try:
            assert engine.evaluate() < 0.0
        finally:
            engine.detach()

    @given(seeds, st.floats(min_value=0.05, max_value=2.0))
    @settings(max_examples=15, deadline=None)
    def test_makenewz_never_decreases(self, seed, start_length):
        patterns, tree, model = random_instance(
            seed, 5, 40, (1.0, 3.0, 1.0, 1.0, 3.0, 1.0),
            (0.3, 0.2, 0.3, 0.2),
        )
        engine = LikelihoodEngine(patterns, model, UniformRate(), tree)
        try:
            branch = tree.branches[seed % len(tree.branches)]
            tree.set_length(branch, start_length)
            before = engine.evaluate(branch)
            _, after = engine.makenewz(branch)
            assert after >= before - 1e-9
        finally:
            engine.detach()

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_bootstrap_weights_change_lnl_not_validity(self, seed):
        patterns, tree, model = random_instance(
            seed, 5, 60, (1.0,) * 6, (0.25,) * 4
        )
        rng = np.random.default_rng(seed + 1)
        replicate = patterns.bootstrap_replicate(rng)
        engine = LikelihoodEngine(replicate, model, UniformRate(), tree)
        try:
            value = engine.evaluate()
            assert np.isfinite(value)
            assert value < 0.0
        finally:
            engine.detach()

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_duplicate_columns_scale_lnl_linearly(self, seed):
        """Doubling every column exactly doubles the log likelihood."""
        rng = np.random.default_rng(seed)
        seqs = {
            f"t{i}": "".join(rng.choice(list("ACGT"), 25)) for i in range(5)
        }
        doubled = {name: s + s for name, s in seqs.items()}
        single = Alignment.from_sequences(seqs).compress()
        double = Alignment.from_sequences(doubled).compress()
        tree1 = Tree.from_tip_names(single.taxa, np.random.default_rng(seed))
        tree2 = Tree.from_newick(tree1.to_newick(digits=17))
        model = GTR((1.0, 2.0, 1.0, 1.0, 2.0, 1.0), (0.25,) * 4)
        e1 = LikelihoodEngine(single, model, UniformRate(), tree1)
        e2 = LikelihoodEngine(double, model, UniformRate(), tree2)
        try:
            assert 2 * e1.evaluate() == pytest.approx(e2.evaluate(), rel=1e-9)
        finally:
            e1.detach()
            e2.detach()
