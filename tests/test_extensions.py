"""Tests for the beyond-the-paper extensions (SP, overlays, dual-Cell,
CAT-vs-Gamma) and the CAT-mode makenewz path they exercise."""

import numpy as np
import pytest

from repro.harness import get_trace, run_experiment
from repro.harness.datasets import get_cat_trace
from repro.phylo import (
    CatRates,
    LikelihoodEngine,
    default_gtr,
    estimate_site_rates,
    stepwise_addition_tree,
)
from repro.port import PortExecutor, stage


@pytest.fixture(scope="module")
def executor():
    return PortExecutor(get_trace("quick"))


class TestCATMakenewz:
    """makenewz under CAT rates (per-pattern transition matrices)."""

    def _cat_engine(self, patterns, seed=0):
        rng = np.random.default_rng(seed)
        tree = stepwise_addition_tree(patterns, rng)
        model = default_gtr().with_frequencies(patterns.base_frequencies())
        rates = estimate_site_rates(
            patterns, model, tree, rate_grid=np.geomspace(0.25, 4.0, 7)
        )
        cat = CatRates(rates, n_categories=4)
        return LikelihoodEngine(patterns, model, cat, tree)

    def test_makenewz_improves_likelihood(self, small_patterns):
        engine = self._cat_engine(small_patterns)
        before = engine.evaluate()
        _, after = engine.makenewz(engine.tree.branches[0])
        assert after >= before - 1e-9
        engine.detach()

    def test_optimize_all_branches_runs(self, small_patterns):
        engine = self._cat_engine(small_patterns, seed=1)
        lnl = engine.optimize_all_branches(passes=1)
        assert np.isfinite(lnl)
        engine.detach()

    def test_cat_derivatives_match_finite_differences(self, small_patterns):
        from repro.phylo import kernels

        engine = self._cat_engine(small_patterns, seed=2)
        branch = engine.tree.branches[3]
        u, _ = engine._side(branch.nodes[0], branch)
        v, _ = engine._side(branch.nodes[1], branch)
        scale = np.zeros(small_patterns.n_patterns, dtype=np.int64)
        rates = engine._rates_for_pmat()
        pi = engine.model.pi
        w = small_patterns.weights
        t, h = 0.2, 1e-6

        def lnl_at(x):
            terms = engine.model.transition_derivatives(x, rates)
            return kernels.branch_derivatives_persite(
                terms, pi, w, u, v, scale
            )[0]

        terms = engine.model.transition_derivatives(t, rates)
        _, d1, d2 = kernels.branch_derivatives_persite(
            terms, pi, w, u, v, scale
        )
        fd1 = (lnl_at(t + h) - lnl_at(t - h)) / (2 * h)
        # Second differences need a larger step: with h = 1e-6 the
        # difference is ~1e-11 of lnl and cancellation noise dominates.
        h2 = 1e-4
        fd2 = (lnl_at(t + h2) - 2 * lnl_at(t) + lnl_at(t - h2)) / (h2 * h2)
        assert d1 == pytest.approx(fd1, rel=1e-4)
        assert d2 == pytest.approx(fd2, rel=1e-2)
        engine.detach()


class TestSinglePrecision:
    def test_arithmetic_factor_from_timing(self, executor):
        # (1 issue/cycle x 4-wide) / (2 ops per 6 cycles x 2-wide) = 6.
        assert executor.model.sp_arithmetic_speedup() == pytest.approx(6.0)

    def test_sp_kernel_faster(self, executor):
        full = stage("table7")
        dp = executor.model.newview_kernel_s(full)
        sp = executor.model.newview_kernel_s(full, single_precision=True)
        assert sp < dp
        # Conditionals and residual do not shrink, so < the full 6x.
        assert dp / sp < 6.0

    def test_llp_regime_benefits(self, executor):
        dp = executor.model.mgps_total_s(1)
        sp = executor.model.mgps_total_sp_s(1)
        assert sp < 0.6 * dp

    def test_ppe_bound_regime_does_not(self, executor):
        dp = executor.model.mgps_total_s(32)
        sp = executor.model.mgps_total_sp_s(32)
        assert sp == pytest.approx(dp, rel=0.05)

    def test_experiment_passes(self):
        run_experiment("single_precision").assert_shape()


class TestOverlays:
    def test_paper_module_fits_free(self, executor):
        assert executor.model.overlay_penalty_s(117 * 1024) == 0.0

    def test_penalty_monotone_in_module_size(self, executor):
        penalties = [
            executor.model.overlay_penalty_s(kb * 1024)
            for kb in (240, 280, 320, 400)
        ]
        assert all(p > 0 for p in penalties)
        assert penalties == sorted(penalties)

    def test_invalid_size(self, executor):
        with pytest.raises(ValueError):
            executor.model.overlay_penalty_s(0)

    def test_experiment_passes(self):
        run_experiment("overlays").assert_shape()


class TestDualCell:
    def test_even_split_halves(self, executor):
        one = executor.model.mgps_total_s(64)
        two = executor.model.dual_cell_mgps_s(64)
        assert two == pytest.approx(one / 2, rel=1e-9)

    def test_odd_split_rounds_up(self, executor):
        two = executor.model.dual_cell_mgps_s(9)
        assert two == pytest.approx(executor.model.mgps_total_s(5))

    def test_single_task_no_benefit(self, executor):
        assert executor.model.dual_cell_mgps_s(1) == \
            executor.model.mgps_total_s(1)

    def test_experiment_passes(self):
        run_experiment("dual_cell").assert_shape()


class TestAlignmentScaling:
    def test_monotone_and_affine(self, executor):
        times = executor.alignment_length_projection((100, 200, 400, 800))
        values = [times[c] for c in (100, 200, 400, 800)]
        assert values == sorted(values)
        # Doubling patterns less than doubles time (fixed floor).
        assert values[1] < 2 * values[0]
        assert values[3] < 2 * values[2]

    def test_canonical_point_matches_table7(self, executor):
        times = executor.alignment_length_projection((228,))
        assert times[228] == pytest.approx(
            executor.model.stage_total_s("table7", 1, 1), rel=1e-9
        )

    def test_invalid_count(self, executor):
        with pytest.raises(ValueError):
            executor.alignment_length_projection((0,))

    def test_experiment_passes(self):
        run_experiment("alignment_scaling").assert_shape()


class TestCatVsGamma:
    def test_cat_trace_has_one_category(self):
        trace = get_cat_trace()
        # CAT collapses the category axis: patterncats per call equals
        # the pattern count (not 4x it).
        gamma = get_trace("quick")
        assert trace.mean_newview_patterncats == pytest.approx(
            gamma.mean_newview_patterncats / 4
        )

    def test_projection_fields(self, executor):
        projection = executor.cat_projection(get_cat_trace())
        assert projection["cat_task_s"] < projection["gamma_task_s"]
        assert projection["speedup"] > 1.5

    def test_experiment_passes(self):
        run_experiment("cat_vs_gamma").assert_shape()
