"""Tests of the ``compiled`` kernel backend: flavor selection and
availability probing, the typed-unavailable contract, numerical
agreement with einsum, the JIT/build warmup counter, and the
compiled → einsum → reference degradation ladder under injected faults.

Runs with whichever flavor the host provides (numba, or the on-demand C
build); tests needing a live flavor skip when neither is available.
The disabled/unavailable-path tests run everywhere — they only need the
``REPRO_COMPILED_FLAVOR=disabled`` kill switch.
"""

import numpy as np
import pytest

from repro.chaos import FaultPlan, FaultSpec, inject
from repro.chaos.plan import ENGINE_CLV_POISON, ENGINE_PMAT_CORRUPT
from repro.phylo import GammaRates, JC69, LikelihoodEngine, Tree
from repro.phylo.engine import available_backends, create_engine
from repro.phylo.engine.backends.compiled import (
    FLAVOR_ENV_VAR,
    CompiledBackend,
    CompiledBackendUnavailable,
    compiled_available,
    load_compiled_kernels,
)
from repro.phylo.engine.backends.partitioned import EinsumStripedKernels
from repro.phylo.engine.protocol import (
    BACKEND_ENV_VAR,
    EngineNumericalError,
    backend_availability,
)
from repro.phylo.models import GTR
from tests.strategies import random_patterns

needs_compiled = pytest.mark.skipif(
    compiled_available() is None,
    reason="no compiled kernel flavor available (numba or a C compiler)",
)

MODEL = GTR((1.2, 2.9, 0.7, 1.1, 3.4, 1.0), (0.32, 0.18, 0.24, 0.26))


def _instance(seed=91, n_taxa=7, n_sites=80):
    rng = np.random.default_rng(seed)
    patterns = random_patterns(rng, n_taxa, n_sites)
    tree = Tree.from_tip_names(patterns.taxa, rng)
    return patterns, tree


def _persistent_plan(site, value=None):
    return FaultPlan(seed=0, specs=(
        FaultSpec(site, trigger_at=tuple(range(4096)),
                  max_triggers=4096, value=value),
    ))


# -- availability and selection ----------------------------------------------


@needs_compiled
def test_registry_lists_compiled_when_a_flavor_loads():
    assert "compiled" in available_backends()
    detail = backend_availability()["compiled"]
    assert detail in ("numba", "cc")


def test_disabled_flavor_hides_compiled_from_registry(monkeypatch):
    monkeypatch.setenv(FLAVOR_ENV_VAR, "disabled")
    assert "compiled" not in available_backends()
    assert backend_availability()["compiled"] is False
    # Every always-available backend is still listed.
    for name in ("einsum", "reference", "partitioned"):
        assert name in available_backends()


def test_engine_backend_env_compiled_unavailable_raises_typed(
    monkeypatch,
):
    """`REPRO_ENGINE_BACKEND=compiled` on a host without the kernels
    must fail loudly with the typed error, never fall back silently."""
    patterns, tree = _instance()
    monkeypatch.setenv(FLAVOR_ENV_VAR, "disabled")
    monkeypatch.setenv(BACKEND_ENV_VAR, "compiled")
    with pytest.raises(CompiledBackendUnavailable, match=FLAVOR_ENV_VAR):
        create_engine(patterns, MODEL, None, tree)


def test_unknown_flavor_raises_typed_error(monkeypatch):
    with pytest.raises(CompiledBackendUnavailable, match="unknown"):
        load_compiled_kernels("fortran")


@needs_compiled
def test_env_override_selects_compiled(monkeypatch):
    patterns, tree = _instance()
    monkeypatch.setenv(BACKEND_ENV_VAR, "compiled:2")
    engine = create_engine(patterns, MODEL, None, tree)
    try:
        assert engine.backend.name == "compiled"
        assert engine.backend.n_stripes == 2
        assert np.isfinite(engine.evaluate())
    finally:
        engine.detach()


@needs_compiled
def test_flavor_table_is_a_process_singleton():
    assert load_compiled_kernels() is load_compiled_kernels()
    backend_a = CompiledBackend(n_stripes=1)
    backend_b = CompiledBackend(n_stripes=2)
    assert backend_a.inner_kernels is backend_b.inner_kernels


def test_self_check_rejects_divergent_kernels():
    """A flavor that cannot reproduce the einsum math must never be
    declared usable — the load-time self-check is the gate."""
    from repro.phylo.engine.backends._compiled_cc import (
        CompiledKernelsError,
        run_self_check,
    )

    class BrokenKernels(EinsumStripedKernels):
        flavor = "broken"

        def newview_combine(self, left, right, out):
            def task(start, stop):
                out[start:stop] = left[start:stop] + right[start:stop]
            return task

    with pytest.raises(CompiledKernelsError, match="newview_combine"):
        run_self_check(BrokenKernels())


# -- numerical agreement and instrumentation ---------------------------------


@needs_compiled
def test_compiled_agrees_with_einsum_and_counts_scale_exactly():
    patterns, tree = _instance(seed=97, n_taxa=9, n_sites=120)
    reference = LikelihoodEngine(
        patterns, MODEL, GammaRates(0.6, 4), tree, backend="einsum"
    )
    engine = LikelihoodEngine(
        patterns, MODEL, GammaRates(0.6, 4), tree, backend="compiled:2"
    )
    try:
        assert engine.evaluate() == pytest.approx(
            reference.evaluate(), rel=1e-9
        )
        branch = tree.branches[1]
        a = reference.branch_derivatives(branch)
        b = engine.branch_derivatives(branch)
        assert b[0] == pytest.approx(a[0], rel=1e-9)
        assert b[1] == pytest.approx(a[1], rel=1e-8, abs=1e-7)
        assert b[2] == pytest.approx(a[2], rel=1e-8, abs=1e-7)
        inner = next(n for n in tree.inner_nodes)
        entry = inner.branches[0]
        got = engine.clv(inner, entry)
        expected = reference.clv(inner, entry)
        # The underflow comparison is exact per pattern: identical bits.
        assert np.array_equal(got.scale_counts, expected.scale_counts)
    finally:
        reference.detach()
        engine.detach()


@needs_compiled
def test_warmup_counter_surfaces_jit_cost():
    """Build/JIT time must be charged to warmup, not to the first
    likelihood call: compiled reports it, pure-NumPy backends report 0."""
    patterns, tree = _instance()
    engine = create_engine(patterns, MODEL, None, tree, backend="compiled:1")
    try:
        engine.evaluate()
        assert engine.perf_counters()["backend_warmup_us"] > 0
    finally:
        engine.detach()
    engine = create_engine(patterns, MODEL, None, tree, backend="einsum")
    try:
        engine.evaluate()
        assert engine.perf_counters()["backend_warmup_us"] == 0
    finally:
        engine.detach()


# -- the degradation ladder --------------------------------------------------


@needs_compiled
def test_pmat_corrupt_walks_compiled_to_reference():
    """A persistent P-matrix corruption fault follows the cache: it hits
    compiled and einsum alike (both serve from the engine's pmat cache)
    but cannot touch the reference backend, which projects its own
    matrices — so the ladder must walk compiled → einsum → reference
    and the evaluation must survive, degraded and loud."""
    patterns, tree = _instance(seed=101)
    clean_engine = LikelihoodEngine(
        patterns, JC69(), None, tree, backend="einsum"
    )
    try:
        clean = clean_engine.evaluate(tree.branches[0])
    finally:
        clean_engine.detach()
    engine = LikelihoodEngine(
        patterns, JC69(), None, tree, backend="compiled:2"
    )
    try:
        with inject(_persistent_plan(ENGINE_PMAT_CORRUPT)):
            value = engine.evaluate(tree.branches[0])
        assert engine.is_degraded
        assert engine.degradation_path == ["einsum", "reference"]
        assert engine.backend.name == "reference"
        assert engine.degraded_evaluations >= 1
        assert value == pytest.approx(clean, rel=1e-9)
    finally:
        engine.detach()


@needs_compiled
def test_clv_poison_exhausts_the_full_ladder():
    """A backend-independent fault (CLV poisoning re-fires on every
    backend) must exhaust compiled → einsum → reference and surface as
    the typed error with the full path recorded."""
    patterns, tree = _instance(seed=103)
    engine = LikelihoodEngine(
        patterns, JC69(), None, tree, backend="compiled:2"
    )
    try:
        with inject(_persistent_plan(ENGINE_CLV_POISON, value="nan")):
            with pytest.raises(EngineNumericalError,
                               match="persisted through"):
                engine.evaluate(tree.branches[0])
        assert engine.degradation_path == ["einsum", "reference"]
        assert engine.numerical_faults > engine._degrade_after
    finally:
        engine.detach()


@needs_compiled
def test_detach_closes_every_rung(monkeypatch):
    """Backends displaced mid-ladder keep their thread pools until
    detach; detach must close all of them."""
    patterns, tree = _instance(seed=107)
    engine = LikelihoodEngine(
        patterns, JC69(), None, tree, backend="compiled:2"
    )
    original = engine.backend
    try:
        with inject(_persistent_plan(ENGINE_CLV_POISON, value="nan")):
            with pytest.raises(EngineNumericalError):
                engine.evaluate(tree.branches[0])
    finally:
        engine.detach()
    assert original._pool is None  # closed despite being displaced
