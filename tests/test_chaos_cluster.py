"""Cluster-layer chaos tests: process deaths, torn writes, retry budgets.

Worker faults are keyed on ``task_id:attempt`` (the draw is a pure CRC32
function of the plan seed and that key), so each test *derives* a plan
seed that fires exactly the wanted fault — the schedule is deterministic
across processes, worker counts, and dispatch order.

The bar throughout: a run that survives must be bit-identical to the
serial reference (trees, likelihoods, supports); a run that dies must
die with a typed error.
"""

import pytest

from repro.chaos import FaultPlan, FaultSpec, InjectedCrash, inject
from repro.chaos.injector import _uniform
from repro.chaos.plan import (
    CLUSTER_CHECKPOINT_TORN,
    CLUSTER_JOURNAL_OSERROR,
    CLUSTER_JOURNAL_TORN,
    CLUSTER_WORKER_CRASH_ACK,
    CLUSTER_WORKER_HANG,
)
from repro.cluster import JobSpec, RunJournal, replay, resume_job, run_job
from repro.cluster.checkpoint import JournalWriteError, atomic_write
from repro.cluster.queue import ClusterConfig, retry_backoff

#: Task ids of the shared job spec (1 inference + 4 bootstraps in
#: batches of 2) — what the worker-site draws are keyed on.
TASK_IDS = ("inference/0", "bootstrap/0-1", "bootstrap/2-3")
FAULT_PROBABILITY = 0.3


def _spec(fast_config):
    return JobSpec(n_inferences=1, n_bootstraps=4, seed=9, batch_size=2,
                   config=fast_config)


def _cfg(n_workers):
    """Small timeouts: an injected hang costs ~1.5 s, not minutes."""
    return ClusterConfig(
        n_workers=n_workers,
        task_timeout_s=60.0,
        max_retries=2,
        retry_backoff_s=0.01,
        retry_backoff_cap_s=0.1,
        heartbeat_interval_s=0.05,
        heartbeat_timeout_s=1.5,
    )


def _seed_firing_once(site):
    """A plan seed whose deterministic draw fires *site* on exactly one
    task's first attempt — and not on that task's retries, so the requeue
    must succeed.  Returns ``(seed, task_id)``."""
    for seed in range(5000):
        first = [t for t in TASK_IDS
                 if _uniform(seed, site, f"{t}:1") < FAULT_PROBABILITY]
        if len(first) != 1:
            continue
        task = first[0]
        if all(_uniform(seed, site, f"{task}:{a}") >= FAULT_PROBABILITY
               for a in (2, 3)):
            return seed, task
    raise AssertionError(f"no seed fires {site} exactly once")


def _assert_identical(analysis, reference):
    assert analysis.best.newick == reference.best.newick
    assert analysis.best.log_likelihood == reference.best.log_likelihood
    assert [b.newick for b in analysis.bootstraps] == \
        [b.newick for b in reference.bootstraps]
    assert [b.log_likelihood for b in analysis.bootstraps] == \
        [b.log_likelihood for b in reference.bootstraps]
    assert analysis.supports == reference.supports


class TestWorkerFaults:
    def test_crash_before_ack_costs_a_worker_not_the_run(
            self, tiny_patterns, fast_config, serial_reference,
            cluster_workers, tmp_path):
        seed, _task = _seed_firing_once(CLUSTER_WORKER_CRASH_ACK)
        plan = FaultPlan(seed=seed, specs=(
            FaultSpec(CLUSTER_WORKER_CRASH_ACK,
                      probability=FAULT_PROBABILITY),
        ))
        journal = str(tmp_path / "j.jsonl")
        with inject(plan):
            analysis = run_job(_spec(fast_config), alignment=tiny_patterns,
                               journal_path=journal,
                               cluster=_cfg(cluster_workers))
        _assert_identical(analysis, serial_reference)
        state = replay(journal)
        # The worker died after streaming its replicates: the master
        # journals the death and reconciles the fully-delivered task.
        assert len(state.worker_deaths) >= 1
        assert state.finished

    def test_hung_worker_is_reaped_by_the_heartbeat_sweep(
            self, tiny_patterns, fast_config, serial_reference,
            cluster_workers, tmp_path):
        seed, hung_task = _seed_firing_once(CLUSTER_WORKER_HANG)
        plan = FaultPlan(seed=seed, specs=(
            FaultSpec(CLUSTER_WORKER_HANG, probability=FAULT_PROBABILITY),
        ))
        journal = str(tmp_path / "j.jsonl")
        with inject(plan):
            analysis = run_job(_spec(fast_config), alignment=tiny_patterns,
                               journal_path=journal,
                               cluster=_cfg(cluster_workers))
        _assert_identical(analysis, serial_reference)
        state = replay(journal)
        assert any(d["reason"] == "heartbeat" for d in state.worker_deaths)
        # The hung task produced nothing before dying: it must have been
        # requeued with its backoff journalled.
        assert any(f["task"] == hung_task and f["will_retry"]
                   for f in state.failures)
        for failure in state.failures:
            assert failure["backoff_ms"] == pytest.approx(
                retry_backoff(_cfg(cluster_workers), failure["task"],
                              failure["attempt"]) * 1000.0, abs=0.01,
            )


class TestJournalFaults:
    def test_transient_append_oserror_is_absorbed(
            self, tiny_patterns, fast_config, serial_reference,
            cluster_workers, tmp_path):
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(CLUSTER_JOURNAL_OSERROR, trigger_at=(0,)),
        ))
        journal = str(tmp_path / "j.jsonl")
        with inject(plan) as injector:
            analysis = run_job(_spec(fast_config), alignment=tiny_patterns,
                               journal_path=journal,
                               cluster=_cfg(cluster_workers))
            assert injector.fired[CLUSTER_JOURNAL_OSERROR] == 1
        _assert_identical(analysis, serial_reference)
        state = replay(journal)
        assert state.corrupt_records == 0  # the retried append landed whole
        assert state.finished

    def test_append_retry_exhaustion_raises_typed_error(self, tmp_path):
        # Three consecutive injected OSErrors exhaust APPEND_RETRIES
        # within one append.
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(CLUSTER_JOURNAL_OSERROR, trigger_at=(0, 1, 2),
                      max_triggers=3),
        ))
        with RunJournal(str(tmp_path / "j.jsonl")) as journal:
            with inject(plan):
                with pytest.raises(JournalWriteError,
                                   match="after 3 attempts"):
                    journal.append("run_started", spec={})

    def test_torn_append_crashes_then_resumes_bit_identical(
            self, tiny_patterns, fast_config, serial_reference,
            cluster_workers, tmp_path):
        """The flagship cluster recovery path: the master dies mid-write,
        leaving a half-record; resume repairs the tail, skips the torn
        line, and completes bit-identically to the serial reference."""
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(CLUSTER_JOURNAL_TORN, trigger_at=(4,)),
        ))
        journal = str(tmp_path / "j.jsonl")
        cfg = _cfg(cluster_workers)
        with inject(plan) as injector:
            with pytest.raises(InjectedCrash, match="torn mid-write"):
                run_job(_spec(fast_config), alignment=tiny_patterns,
                        journal_path=journal, cluster=cfg)
            assert injector.fired[CLUSTER_JOURNAL_TORN] == 1
            analysis = resume_job(journal, alignment=tiny_patterns,
                                  cluster=cfg)
        _assert_identical(analysis, serial_reference)
        state = replay(journal)
        assert state.corrupt_records == 1  # exactly the torn line
        assert state.resumes == 1
        assert state.finished


class TestCheckpointFaults:
    def test_torn_checkpoint_leaves_target_intact(self, tmp_path):
        target = tmp_path / "best.tree"
        atomic_write(str(target), "(a,b,c);\n")
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(CLUSTER_CHECKPOINT_TORN, trigger_at=(0,)),
        ))
        with inject(plan):
            with pytest.raises(InjectedCrash, match="torn mid-write"):
                atomic_write(str(target), "(a,(b,c));\n")
            # The previous checkpoint survives untouched...
            assert target.read_text() == "(a,b,c);\n"
            # ...with the partial temp file left behind, like a real
            # crash would leave it.
            assert list(tmp_path.glob("best.tree.*.tmp"))
            # The retry (fault budget spent) lands the full content.
            atomic_write(str(target), "(a,(b,c));\n")
        assert target.read_text() == "(a,(b,c));\n"

    def test_organic_write_failure_cleans_up_its_temp_file(self, tmp_path):
        target = tmp_path / "best.tree"
        with pytest.raises(TypeError):
            atomic_write(str(target), object())  # not str: write() raises
        assert not list(tmp_path.glob("best.tree.*.tmp"))
        assert not target.exists()


class TestRetryBackoff:
    def test_backoff_is_capped_exponential_with_deterministic_jitter(self):
        cfg = ClusterConfig(retry_backoff_s=0.05, retry_backoff_cap_s=2.0,
                            retry_jitter=0.25)
        delays = [retry_backoff(cfg, "bootstrap/0-1", a)
                  for a in range(1, 12)]
        assert delays == [retry_backoff(cfg, "bootstrap/0-1", a)
                          for a in range(1, 12)]  # pure function
        for attempt, delay in enumerate(delays, start=1):
            base = min(2.0, 0.05 * 2 ** (attempt - 1))
            assert base <= delay <= base * 1.25
        # Past the cap every delay is cap * (1 + jitter(task, attempt)).
        assert all(2.0 <= d <= 2.5 for d in delays[-3:])

    def test_jitter_decorrelates_tasks(self):
        cfg = ClusterConfig(retry_backoff_s=0.05, retry_jitter=0.25)
        assert retry_backoff(cfg, "inference/0", 1) != \
            retry_backoff(cfg, "bootstrap/0-1", 1)

    def test_zero_jitter_is_plain_capped_exponential(self):
        cfg = ClusterConfig(retry_backoff_s=0.05, retry_backoff_cap_s=0.4,
                            retry_jitter=0.0)
        assert [retry_backoff(cfg, "t", a) for a in (1, 2, 3, 4, 5)] == \
            [0.05, 0.1, 0.2, 0.4, 0.4]
