"""Tests for model-parameter optimization (repro.phylo.optimize)."""

import numpy as np
import pytest

from repro.phylo import (
    CatRates,
    GammaRates,
    LikelihoodEngine,
    Tree,
    default_gtr,
    evolve_alignment,
    optimize_alpha,
    optimize_exchangeabilities,
    optimize_model,
    random_tree,
    stepwise_addition_tree,
    synthetic_dataset,
)


def make_engine(patterns, alpha=1.0, seed=0):
    tree = stepwise_addition_tree(patterns, np.random.default_rng(seed))
    model = default_gtr().with_frequencies(patterns.base_frequencies())
    return LikelihoodEngine(patterns, model, GammaRates(alpha, 4), tree)


class TestOptimizeAlpha:
    def test_improves_likelihood(self, small_patterns):
        engine = make_engine(small_patterns, alpha=10.0)
        before = engine.evaluate()
        alpha, after = optimize_alpha(engine, 10.0)
        assert after >= before - 1e-9
        assert 0.02 <= alpha <= 100.0
        engine.detach()

    def test_recovers_simulated_shape(self):
        # Data generated with strong rate variation must prefer a small
        # alpha over a large one.
        names = [f"t{i}" for i in range(10)]
        rng = np.random.default_rng(3)
        tree = random_tree(names, rng, mean_branch_length=0.15)
        aln = evolve_alignment(tree, default_gtr(), 3000, rng,
                               gamma_alpha=0.3, invariant_fraction=0.0)
        patterns = aln.compress()
        engine = make_engine(patterns, alpha=1.0, seed=4)
        engine.optimize_all_branches(passes=2)
        alpha, _ = optimize_alpha(engine, 1.0)
        assert alpha < 1.0
        engine.detach()

    def test_uniform_like_data_prefers_large_alpha(self):
        names = [f"t{i}" for i in range(8)]
        rng = np.random.default_rng(5)
        tree = random_tree(names, rng, mean_branch_length=0.15)
        aln = evolve_alignment(tree, default_gtr(), 3000, rng,
                               gamma_alpha=None, invariant_fraction=0.0)
        patterns = aln.compress()
        engine = make_engine(patterns, alpha=0.3, seed=6)
        engine.optimize_all_branches(passes=2)
        alpha, _ = optimize_alpha(engine, 0.3)
        assert alpha > 1.5
        engine.detach()

    def test_rejects_cat_mode(self, small_patterns):
        tree = stepwise_addition_tree(
            small_patterns, np.random.default_rng(7)
        )
        cat = CatRates(np.linspace(0.5, 2.0, small_patterns.n_patterns), 4)
        engine = LikelihoodEngine(small_patterns, default_gtr(), cat, tree)
        with pytest.raises(ValueError, match="Gamma"):
            optimize_alpha(engine, 1.0)
        engine.detach()


class TestOptimizeExchangeabilities:
    def test_improves_likelihood(self, small_patterns):
        engine = make_engine(small_patterns)
        # Start from a deliberately wrong model (all rates equal).
        engine.set_model(engine.model.with_exchangeabilities((1.0,) * 6))
        before = engine.evaluate()
        model, after = optimize_exchangeabilities(engine, max_sweeps=1)
        assert after >= before
        assert model.exchangeabilities[5] == 1.0  # GT stays pinned
        engine.detach()

    def test_recovers_transition_bias(self):
        # Data simulated with strong AG/CT bias: the fitted AG and CT
        # rates must exceed the transversion rates.
        names = [f"t{i}" for i in range(8)]
        rng = np.random.default_rng(9)
        tree = random_tree(names, rng, mean_branch_length=0.2)
        truth = default_gtr()  # AG=3.8, CT=4.2 vs ~1 transversions
        aln = evolve_alignment(tree, truth, 4000, rng,
                               gamma_alpha=None, invariant_fraction=0.0)
        patterns = aln.compress()
        engine = make_engine(patterns, seed=10)
        engine.set_model(
            default_gtr()
            .with_frequencies(patterns.base_frequencies())
            .with_exchangeabilities((1.0,) * 6)
        )
        engine.optimize_all_branches(passes=2)
        model, _ = optimize_exchangeabilities(engine, max_sweeps=2)
        ac, ag, at, cg, ct, gt = model.exchangeabilities
        assert ag > 1.5 * max(ac, at, cg)
        assert ct > 1.5 * max(ac, at, cg)
        engine.detach()


class TestOptimizeGammaInv:
    def test_improves_likelihood(self, small_patterns):
        from repro.phylo import optimize_gamma_inv

        engine = make_engine(small_patterns, alpha=1.0)
        engine.optimize_all_branches(passes=1)
        before = engine.evaluate()
        alpha, pinv, after = optimize_gamma_inv(engine, 1.0, 0.1)
        assert after >= before - 1e-6
        assert 0.0 <= pinv <= 0.9
        assert 0.02 <= alpha <= 100.0
        engine.detach()

    def test_at_least_as_good_as_plain_gamma(self):
        # GTR+I+G nests plain Gamma, so the joint fit can never lose.
        from repro.phylo import (
            optimize_alpha,
            optimize_gamma_inv,
            synthetic_dataset,
        )

        aln = synthetic_dataset(n_taxa=8, n_sites=500, seed=31,
                                invariant_fraction=0.6, gamma_alpha=None)
        patterns = aln.compress()
        plain = make_engine(patterns, seed=31)
        plain.optimize_all_branches(passes=2)
        _, lnl_gamma = optimize_alpha(plain, 1.0)
        plain.detach()
        joint = make_engine(patterns, seed=31)
        joint.optimize_all_branches(passes=2)
        _, _, lnl_joint = optimize_gamma_inv(joint, 1.0, 0.05)
        joint.detach()
        assert lnl_joint >= lnl_gamma - 0.01

    def test_detects_invariance_when_alpha_fixed(self):
        # With alpha pinned high (little Gamma rate variation allowed),
        # the invariant fraction of the data must flow into p_inv.
        # (When alpha is free, I and Gamma trade off on a flat ridge —
        # the classic +I+G identifiability issue — so the joint fit is
        # only checked for likelihood, above.)
        from repro.phylo import GammaInvRates, synthetic_dataset

        aln = synthetic_dataset(n_taxa=8, n_sites=500, seed=31,
                                invariant_fraction=0.6, gamma_alpha=None)
        patterns = aln.compress()
        engine = make_engine(patterns, seed=31)
        engine.optimize_all_branches(passes=2)
        scores = {}
        for pinv in (0.0, 0.2, 0.4, 0.6):
            engine.set_rate_model(GammaInvRates(5.0, pinv, 4))
            scores[pinv] = engine.evaluate()
        engine.detach()
        assert max(scores, key=scores.get) >= 0.4

    def test_rejects_cat_mode(self, small_patterns):
        from repro.phylo import CatRates, optimize_gamma_inv

        tree = stepwise_addition_tree(
            small_patterns, np.random.default_rng(32)
        )
        cat = CatRates(
            np.linspace(0.5, 2.0, small_patterns.n_patterns), 4
        )
        engine = LikelihoodEngine(small_patterns, default_gtr(), cat, tree)
        with pytest.raises(ValueError, match="integrated"):
            optimize_gamma_inv(engine)
        engine.detach()


class TestOptimizeModel:
    def test_full_loop_monotone(self, small_patterns):
        engine = make_engine(small_patterns, alpha=5.0)
        start = engine.evaluate()
        result = optimize_model(engine, max_rounds=2)
        assert result.log_likelihood >= start
        assert result.rounds >= 1
        assert result.alpha is not None
        engine.detach()

    def test_branches_only(self, small_patterns):
        engine = make_engine(small_patterns)
        result = optimize_model(
            engine, optimize_rates=False, optimize_shape=False, max_rounds=1
        )
        assert result.alpha is None
        assert np.isfinite(result.log_likelihood)
        engine.detach()
