"""Sharded WAL journal tests: merge determinism, compaction, stealing.

The acceptance bar mirrors the single-journal contract: a sharded run
— including one with work stealing, torn shard appends, and kills at
arbitrary points — must produce bit-identical trees, log likelihoods,
and bootstrap supports to the uninterrupted serial reference, and
``replay(compact(journal))`` must equal ``replay(journal)`` for any
journal, however damaged.
"""

import json
import os
import random
import shutil

import pytest

from repro.chaos import FaultPlan, FaultSpec, inject
from repro.chaos.injector import _uniform
from repro.chaos.plan import CLUSTER_SHARD_TORN, CLUSTER_STEAL_RACE
from repro.cluster import (
    ClusterConfig,
    JobSpec,
    RunJournal,
    home_group,
    replay,
    resume_job,
    run_job,
)
from repro.cluster.checkpoint import compact_journal
from repro.cluster.shards import (
    ShardedJournal,
    ShardWriter,
    is_manifest,
    load_manifest,
)

FAULT_CFG = dict(retry_backoff_s=0.01, heartbeat_interval_s=0.1)


def _cfg(n_workers):
    return ClusterConfig(n_workers=n_workers, **FAULT_CFG)


def _steal_spec(fast_config):
    """1 inference + 4 single-replicate bootstraps, seed 9.

    With 2 shards the CRC32 home groups split 4-vs-1 (``bootstrap/0-3``
    all hash to group 0, ``inference/0`` to group 1), so group 1's
    worker goes idle after one task and must steal — the same logical
    job as the ``serial_reference`` fixture (batch size never affects
    results).
    """
    return JobSpec(n_inferences=1, n_bootstraps=4, seed=9, batch_size=1,
                   config=fast_config)


def _assert_identical(analysis, reference):
    assert analysis.best.newick == reference.best.newick
    assert analysis.best.log_likelihood == reference.best.log_likelihood
    assert [b.newick for b in analysis.bootstraps] == \
        [b.newick for b in reference.bootstraps]
    assert [b.log_likelihood for b in analysis.bootstraps] == \
        [b.log_likelihood for b in reference.bootstraps]
    assert analysis.supports == reference.supports


def _essence(state):
    """The resume-relevant projection of a replayed state: everything a
    compaction must preserve (scheduling chatter and corrupt-line counts
    are deliberately excluded — dropping those is compaction's job)."""
    return {
        "spec": state.spec,
        "payloads": state.payloads,
        "done_inferences": state.done_inferences,
        "done_bootstraps": state.done_bootstraps,
        "bootstop": state.bootstop,
        "finished": state.finished,
        "perf": state.perf_totals(),
    }


def _payload(kind, replicate, rng):
    return {
        "kind": kind,
        "replicate": replicate,
        "newick": f"(t0:0.{rng.randrange(9)},t1:0.1,t2:0.2);",
        "log_likelihood": -100.0 - rng.random(),
        "is_bootstrap": kind == "bootstrap",
        "perf": {"newview_calls": rng.randrange(1, 50)},
    }


def _corrupt_lines(path, rng):
    """Chaos-seeded damage: garbage lines, CRC flips, and a torn tail."""
    with open(path) as fh:
        lines = fh.read().splitlines()
    if not lines:
        return
    out = []
    for i, line in enumerate(lines):
        roll = rng.random()
        if i > 0 and roll < 0.10:
            out.append("{not json at all")  # malformed line
        elif i > 0 and roll < 0.20:
            out.append(line.replace('"', "'", 1))  # CRC-breaking flip
        else:
            out.append(line)
    text = "\n".join(out) + "\n"
    if rng.random() < 0.5:  # writer died mid-append
        text += out[-1][: max(1, len(out[-1]) // 2)]
    with open(path, "w") as fh:
        fh.write(text)


# -- manifest format ----------------------------------------------------------

class TestManifest:
    def test_fresh_sharded_journal_creates_manifest_and_shards(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        with ShardedJournal(path, n_shards=3) as journal:
            assert journal.n_shards == 3
            assert journal.generation == 0
            for group in range(3):
                assert os.path.exists(journal.shard_path(group))
        assert is_manifest(path)
        manifest = load_manifest(path)
        assert manifest["shards"][0].startswith("meta.")
        assert len(manifest["shards"]) == 4  # meta + 3 worker groups

    def test_plain_journal_and_missing_file_are_not_manifests(self, tmp_path):
        plain = str(tmp_path / "plain.jsonl")
        with RunJournal(plain) as journal:
            journal.append("run_started", spec={})
        assert not is_manifest(plain)
        assert not is_manifest(str(tmp_path / "missing.jsonl"))

    def test_shard_path_range_checked(self, tmp_path):
        with ShardedJournal(str(tmp_path / "r.jsonl"), n_shards=2) as journal:
            with pytest.raises(ValueError, match="out of range"):
                journal.shard_path(2)

    def test_newer_manifest_version_is_rejected(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text(json.dumps({
            "format": "repro-cluster-shard-manifest", "version": 99,
            "n_shards": 1, "generation": 0, "compactions": 0,
            "snapshot": None, "shards": [],
        }) + "\n")
        with pytest.raises(ValueError, match="newer than this reader"):
            load_manifest(str(path))

    def test_home_group_is_stable_and_degenerate_safe(self):
        assert home_group("bootstrap/0", 1) == 0
        groups = {home_group(f"bootstrap/{i}", 4) for i in range(32)}
        assert groups <= set(range(4)) and len(groups) > 1
        # Same id, same group — forever (the partition is part of the
        # replay contract).
        assert home_group("inference/0", 2) == home_group("inference/0", 2)


# -- merge determinism --------------------------------------------------------

class TestMergeDeterminism:
    def _write(self, path, order):
        """One logical run written with append order *order* (a list of
        (shard_group_or_None, event, fields) tuples; None = meta)."""
        clock = lambda: 0.0  # noqa: E731 — fixed stamp isolates ordering
        journal = ShardedJournal(path, n_shards=2, clock=clock)
        writers = {g: ShardWriter(journal.shard_path(g), g, clock=clock)
                   for g in range(2)}
        for group, event, fields in order:
            if group is None:
                journal.append(event, **fields)
            else:
                writers[group].append(event, **fields)
        for writer in writers.values():
            writer.close()
        journal.close()

    def test_interleaving_never_changes_the_replayed_stream(self, tmp_path):
        rng = random.Random(7)
        records = [(None, "run_started", {"spec": {"n_inferences": 1}})]
        for i in range(6):
            group = home_group(f"bootstrap/{i}", 2)
            records.append((None, "task_started",
                            {"task": f"bootstrap/{i}", "attempt": 1,
                             "worker": group}))
            records.append((group, "replicate_done",
                            {"task": f"bootstrap/{i}", "attempt": 1,
                             "payload": _payload("bootstrap", i, rng)}))
        records.append((None, "run_finished", {"n_results": 6, "perf": {}}))

        a = str(tmp_path / "a.jsonl")
        self._write(a, records)
        # Same logical records, worker shards drained in reverse order
        # and frame events interleaved differently.
        shuffled = [records[-1]] + records[:-1]
        shuffled[1:-1] = list(reversed(shuffled[1:-1]))
        b = str(tmp_path / "b.jsonl")
        self._write(b, shuffled)

        state_a, state_b = replay(a), replay(b)
        assert state_a.events == state_b.events
        assert _essence(state_a) == _essence(state_b)
        # The merged stream opens with the header and closes terminal,
        # matching single-file journal shape.
        assert state_a.events[0]["event"] == "run_started"
        assert state_a.events[-1]["event"] == "run_finished"

    def test_duplicate_results_across_shards_first_wins(self, tmp_path):
        rng = random.Random(3)
        payload = _payload("bootstrap", 0, rng)
        path = str(tmp_path / "dup.jsonl")
        self._write(path, [
            (None, "run_started", {"spec": {}}),
            (1, "replicate_done", {"task": "bootstrap/0", "attempt": 2,
                                   "payload": payload}),
            (0, "replicate_done", {"task": "bootstrap/0", "attempt": 1,
                                   "payload": payload}),
        ])
        state = replay(path)
        assert len(state.payloads) == 1
        assert state.payloads[("bootstrap", 0)] == payload


# -- compaction ---------------------------------------------------------------

class TestCompactionProperty:
    """replay(compact(journal)) == replay(journal), for any damage."""

    @pytest.mark.parametrize("seed", range(8))
    def test_single_file_journal(self, tmp_path, seed):
        rng = random.Random(seed)
        path = str(tmp_path / "j.jsonl")
        with RunJournal(path) as journal:
            journal.append("run_started",
                           spec={"n_inferences": 1, "n_bootstraps": 8})
            for _ in range(rng.randrange(4, 14)):
                kind = "bootstrap" if rng.random() < 0.75 else "inference"
                rep = rng.randrange(0, 8)
                task = f"{kind}/{rep}"
                journal.append("task_started", task=task, attempt=1, worker=0)
                journal.append("replicate_done", task=task, attempt=1,
                               payload=_payload(kind, rep, rng))
                journal.append("task_finished", task=task, attempt=1,
                               worker=0)
            if rng.random() < 0.3:
                journal.append("bootstop_converged", stop_at=4, requested=8,
                               metric=0.01, pass_fraction=1.0)
            if rng.random() < 0.5:
                journal.append("run_finished", n_results=1, perf={})
        _corrupt_lines(path, rng)

        before = replay(path)
        compact_journal(path)
        after = replay(path)
        assert _essence(after) == _essence(before)
        assert after.corrupt_records == 0  # damage never survives compaction
        with open(path) as fh:
            n_lines = sum(1 for _ in fh)
        assert n_lines <= (1 + len(before.payloads)
                           + (1 if before.bootstop else 0)
                           + (1 if before.finished else 0))

    @pytest.mark.parametrize("seed", range(8))
    def test_sharded_journal(self, tmp_path, seed):
        rng = random.Random(1000 + seed)
        path = str(tmp_path / "run.jsonl")
        n_shards = rng.choice([2, 3])
        journal = ShardedJournal(path, n_shards=n_shards)
        journal.append("run_started",
                       spec={"n_inferences": 1, "n_bootstraps": 8},
                       n_shards=n_shards)
        writers = [ShardWriter(journal.shard_path(g), g)
                   for g in range(n_shards)]
        for _ in range(rng.randrange(5, 20)):
            kind = "bootstrap" if rng.random() < 0.75 else "inference"
            rep = rng.randrange(0, 8)
            task = f"{kind}/{rep}"
            journal.append("task_started", task=task, attempt=1, worker=0)
            # Duplicates may land in *different* shards (a steal raced a
            # retry); results are bit-identical so first-wins is safe.
            for _ in range(1 + (rng.random() < 0.2)):
                writers[rng.randrange(n_shards)].append(
                    "replicate_done", task=task, attempt=1,
                    payload=_payload(kind, rep, rng),
                )
        if rng.random() < 0.3:
            journal.append("bootstop_converged", stop_at=4, requested=8,
                           metric=0.01, pass_fraction=1.0)
        if rng.random() < 0.5:
            journal.append("run_finished", n_results=1, perf={})
        for writer in writers:
            writer.close()
        journal.close()
        for name in load_manifest(path)["shards"]:
            _corrupt_lines(os.path.join(path + ".d", name), rng)

        before = replay(path)
        compact_journal(path)
        after = replay(path)
        assert _essence(after) == _essence(before)
        assert after.corrupt_records == 0
        assert after.shards["generation"] == before.shards["generation"] + 1
        assert after.shards["compactions"] == \
            before.shards["compactions"] + 1
        # Replay is O(live tasks) now: the snapshot holds exactly the
        # durable essence, the live shards are empty.
        assert after.shards["snapshot_records"] <= len(before.payloads) + 3
        assert sum(after.shards["records"].values()) == 0

    def test_open_for_append_compacts_over_threshold(self, tmp_path):
        rng = random.Random(42)
        path = str(tmp_path / "run.jsonl")
        with ShardedJournal(path, n_shards=2) as journal:
            journal.append("run_started", spec={}, n_shards=2)
            with ShardWriter(journal.shard_path(0), 0) as writer:
                for i in range(10):
                    writer.append("replicate_done", task=f"bootstrap/{i}",
                                  attempt=1,
                                  payload=_payload("bootstrap", i, rng))
        before = replay(path)
        resumed = ShardedJournal(path, append=True, compact_threshold=4)
        resumed.close()
        assert resumed.compactions == 1
        assert _essence(replay(path)) == _essence(before)


# -- end-to-end sharded runs --------------------------------------------------

class TestShardedRuns:
    def test_sharded_run_matches_serial_reference_and_steals(
            self, tiny_patterns, fast_config, serial_reference,
            cluster_workers, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        analysis = run_job(_steal_spec(fast_config), alignment=tiny_patterns,
                           journal_path=journal, n_shards=2,
                           cluster=_cfg(cluster_workers))
        _assert_identical(analysis, serial_reference)
        assert is_manifest(journal)
        state = replay(journal)
        assert state.finished
        assert state.shards["n_shards"] == 2
        # Group 1 owns only the inference; its worker must pull
        # bootstraps from group 0's queue, and every steal is journalled.
        assert len(state.steals) >= 1
        for steal in state.steals:
            assert steal["from_group"] != steal["to_group"]
            assert steal["task"].startswith(("bootstrap/", "inference/"))

    @pytest.mark.parametrize("kill_seed", [101, 202, 303])
    def test_kill_and_resume_is_bit_identical(
            self, tiny_patterns, fast_config, serial_reference,
            cluster_workers, tmp_path, kill_seed):
        """Steal-heavy campaign killed at a seeded point: truncate the
        shards mid-run (including a torn half-record), resume, and the
        result must still be the serial reference bit for bit."""
        source = str(tmp_path / "full.jsonl")
        run_job(_steal_spec(fast_config), alignment=tiny_patterns,
                journal_path=source, n_shards=2,
                cluster=_cfg(cluster_workers))

        journal = str(tmp_path / f"killed{kill_seed}.jsonl")
        shutil.copy(source, journal)
        shutil.copytree(source + ".d", journal + ".d")
        rng = random.Random(kill_seed)
        for name in load_manifest(journal)["shards"]:
            path = os.path.join(journal + ".d", name)
            with open(path) as fh:
                lines = fh.read().splitlines(True)
            if not lines:
                continue
            floor = 1 if name.startswith("meta") else 0  # keep the header
            keep = rng.randint(floor, len(lines))
            text = "".join(lines[:keep])
            if keep < len(lines) and rng.random() < 0.5:
                torn = lines[keep]
                text += torn[: max(1, len(torn) // 2)]  # died mid-write
            with open(path, "w") as fh:
                fh.write(text)

        analysis = resume_job(journal, alignment=tiny_patterns,
                              cluster=_cfg(cluster_workers))
        _assert_identical(analysis, serial_reference)
        state = replay(journal)
        assert state.resumes == 1
        assert state.finished


# -- chaos sites --------------------------------------------------------------

def _shard_torn_token(task, attempt, kind, replicate):
    # Mirrors ShardWriter._chaos_token for a single-replicate task.
    return f"replicate_done:{task}:{attempt}:{kind}:{replicate}"


def _seed_tearing_one_task(spec, probability):
    """A plan seed whose draw tears exactly one task's first-attempt
    shard append — and none of that task's retries, so the requeue must
    land the record whole.  (CRC32 draws are correlated across
    equal-length tokens, so only the fired task's retry tokens are
    constrained.)"""
    tasks = [("inference/0", "inference", 0)] + [
        (f"bootstrap/{i}", "bootstrap", i)
        for i in range(spec.n_bootstraps)
    ]
    for seed in range(5000):
        fired = [
            t for t in tasks
            if _uniform(seed, CLUSTER_SHARD_TORN,
                        _shard_torn_token(t[0], 1, t[1], t[2]))
            < probability
        ]
        if len(fired) != 1:
            continue
        task, kind, rep = fired[0]
        if any(_uniform(seed, CLUSTER_SHARD_TORN,
                        _shard_torn_token(task, attempt, kind, rep))
               < probability for attempt in (2, 3)):
            continue
        return seed
    raise AssertionError("no suitable plan seed in range")


class TestShardChaos:
    def test_torn_shard_append_is_isolated_and_recovered(
            self, tiny_patterns, fast_config, serial_reference,
            cluster_workers, tmp_path):
        spec = _steal_spec(fast_config)
        probability = 0.3
        seed = _seed_tearing_one_task(spec, probability)
        plan = FaultPlan(seed=seed, specs=(
            FaultSpec(CLUSTER_SHARD_TORN, probability=probability),
        ))
        journal = str(tmp_path / "run.jsonl")
        with inject(plan):
            analysis = run_job(spec, alignment=tiny_patterns,
                               journal_path=journal, n_shards=2,
                               cluster=_cfg(cluster_workers))
        _assert_identical(analysis, serial_reference)
        state = replay(journal)
        # The writer died with its torn line; the master requeued the
        # task and the merge-replay quarantined the damage.
        assert len(state.worker_deaths) >= 1
        assert state.corrupt_records >= 1
        assert state.finished

    def test_steal_race_duplicate_is_absorbed(
            self, tiny_patterns, fast_config, serial_reference,
            cluster_workers, tmp_path):
        # Fire on every steal: the victim queue keeps a duplicate of the
        # stolen entry, so the task may run twice — first-wins ingest
        # and bit-identical payloads make the race harmless.
        plan = FaultPlan(seed=0, specs=(
            FaultSpec(CLUSTER_STEAL_RACE, probability=1.0, max_triggers=16),
        ))
        journal = str(tmp_path / "run.jsonl")
        with inject(plan):
            analysis = run_job(_steal_spec(fast_config),
                               alignment=tiny_patterns,
                               journal_path=journal, n_shards=2,
                               cluster=_cfg(cluster_workers))
        _assert_identical(analysis, serial_reference)
        state = replay(journal)
        assert len(state.steals) >= 1
        assert state.finished
