"""Multi-tenant fairness: per-client FIFO, caps, priorities."""

import pytest

from repro.serve import FairScheduler


class TestFairScheduler:
    def test_fifo_within_a_client(self):
        sched = FairScheduler(max_inflight_per_client=2)
        sched.submit("j1", "alice")
        sched.submit("j2", "alice")
        assert sched.next().job_id == "j1"
        assert sched.next().job_id == "j2"
        assert sched.next() is None

    def test_round_robin_across_clients(self):
        # Alice floods the queue; Bob submits once.  Bob's job must run
        # second, not fifth.
        sched = FairScheduler(max_inflight_per_client=4)
        for i in range(4):
            sched.submit(f"a{i}", "alice")
        sched.submit("b0", "bob")
        order = [sched.next().job_id for _ in range(5)]
        assert order[0] == "a0"  # alice arrived first
        assert order[1] == "b0"  # bob is least recently served
        assert order[2:] == ["a1", "a2", "a3"]

    def test_inflight_cap_starves_only_the_capped_client(self):
        sched = FairScheduler(max_inflight_per_client=1)
        sched.submit("a0", "alice")
        sched.submit("a1", "alice")
        sched.submit("b0", "bob")
        assert sched.next().job_id == "a0"
        # Alice is at her cap: her a1 is ineligible, bob's head runs.
        assert sched.next().job_id == "b0"
        assert sched.next() is None  # everyone is capped now
        sched.finished("alice")
        assert sched.next().job_id == "a1"

    def test_priority_beats_round_robin(self):
        sched = FairScheduler(max_inflight_per_client=4)
        sched.submit("slow", "alice", priority=10)
        sched.submit("urgent", "bob", priority=1)
        assert sched.next().job_id == "urgent"
        assert sched.next().job_id == "slow"

    def test_deterministic_replay(self):
        """The same submission history always dispatches in the same
        order — the property a restarted server's recovery relies on."""
        def history(sched):
            for i in range(3):
                sched.submit(f"a{i}", "alice")
                sched.submit(f"b{i}", "bob", priority=5 if i == 1 else 10)
            order = []
            while True:
                entry = sched.next()
                if entry is None:
                    break
                order.append(entry.job_id)
                sched.finished(entry.client)
            return order

        assert history(FairScheduler()) == history(FairScheduler())

    def test_finished_without_inflight_is_an_error(self):
        sched = FairScheduler()
        with pytest.raises(ValueError):
            sched.finished("nobody")

    def test_snapshot_and_counters(self):
        sched = FairScheduler(max_inflight_per_client=1)
        sched.submit("a0", "alice")
        sched.submit("b0", "bob")
        sched.next()
        snap = sched.snapshot()
        assert snap["inflight"] == {"alice": 1}
        assert snap["queued"] == {"bob": ["b0"]}
        assert snap["dispatched"] == 1
        assert sched.n_queued == 1
        assert sched.inflight() == 1
        assert sched.inflight("alice") == 1

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            FairScheduler(max_inflight_per_client=0)
