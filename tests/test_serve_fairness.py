"""Multi-tenant fairness: per-client FIFO, caps, priorities,
queue-depth watermarks (backpressure)."""

import pytest

from repro.serve import FairScheduler, QueueFullError


class TestFairScheduler:
    def test_fifo_within_a_client(self):
        sched = FairScheduler(max_inflight_per_client=2)
        sched.submit("j1", "alice")
        sched.submit("j2", "alice")
        assert sched.next().job_id == "j1"
        assert sched.next().job_id == "j2"
        assert sched.next() is None

    def test_round_robin_across_clients(self):
        # Alice floods the queue; Bob submits once.  Bob's job must run
        # second, not fifth.
        sched = FairScheduler(max_inflight_per_client=4)
        for i in range(4):
            sched.submit(f"a{i}", "alice")
        sched.submit("b0", "bob")
        order = [sched.next().job_id for _ in range(5)]
        assert order[0] == "a0"  # alice arrived first
        assert order[1] == "b0"  # bob is least recently served
        assert order[2:] == ["a1", "a2", "a3"]

    def test_inflight_cap_starves_only_the_capped_client(self):
        sched = FairScheduler(max_inflight_per_client=1)
        sched.submit("a0", "alice")
        sched.submit("a1", "alice")
        sched.submit("b0", "bob")
        assert sched.next().job_id == "a0"
        # Alice is at her cap: her a1 is ineligible, bob's head runs.
        assert sched.next().job_id == "b0"
        assert sched.next() is None  # everyone is capped now
        sched.finished("alice")
        assert sched.next().job_id == "a1"

    def test_priority_beats_round_robin(self):
        sched = FairScheduler(max_inflight_per_client=4)
        sched.submit("slow", "alice", priority=10)
        sched.submit("urgent", "bob", priority=1)
        assert sched.next().job_id == "urgent"
        assert sched.next().job_id == "slow"

    def test_deterministic_replay(self):
        """The same submission history always dispatches in the same
        order — the property a restarted server's recovery relies on."""
        def history(sched):
            for i in range(3):
                sched.submit(f"a{i}", "alice")
                sched.submit(f"b{i}", "bob", priority=5 if i == 1 else 10)
            order = []
            while True:
                entry = sched.next()
                if entry is None:
                    break
                order.append(entry.job_id)
                sched.finished(entry.client)
            return order

        assert history(FairScheduler()) == history(FairScheduler())

    def test_finished_without_inflight_is_an_error(self):
        sched = FairScheduler()
        with pytest.raises(ValueError):
            sched.finished("nobody")

    def test_snapshot_and_counters(self):
        sched = FairScheduler(max_inflight_per_client=1)
        sched.submit("a0", "alice")
        sched.submit("b0", "bob")
        sched.next()
        snap = sched.snapshot()
        assert snap["inflight"] == {"alice": 1}
        assert snap["queued"] == {"bob": ["b0"]}
        assert snap["dispatched"] == 1
        assert sched.n_queued == 1
        assert sched.inflight() == 1
        assert sched.inflight("alice") == 1

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            FairScheduler(max_inflight_per_client=0)


class TestBackpressure:
    """Bounded submission: depth watermarks reject instead of queueing."""

    def test_unbounded_by_default(self):
        sched = FairScheduler()
        for i in range(100):
            sched.submit(f"j{i}", "alice")
        assert sched.n_queued == 100
        assert sched.rejected == 0

    def test_total_watermark_rejects_with_diagnostics(self):
        sched = FairScheduler(max_queued_total=2, retry_after_s=7.5)
        sched.submit("j0", "alice")
        sched.submit("j1", "bob")
        with pytest.raises(QueueFullError) as exc_info:
            sched.submit("j2", "carol")
        exc = exc_info.value
        assert exc.scope == "total"
        assert exc.depth == 2
        assert exc.limit == 2
        assert exc.retry_after_s == 7.5
        assert "retry in 7.5s" in str(exc)
        # The rejected job was never enqueued.
        assert sched.n_queued == 2
        assert sched.rejected == 1

    def test_per_client_watermark_isolates_the_flooder(self):
        sched = FairScheduler(max_queued_per_client=2)
        sched.submit("a0", "alice")
        sched.submit("a1", "alice")
        with pytest.raises(QueueFullError) as exc_info:
            sched.submit("a2", "alice")
        assert exc_info.value.scope == "client"
        # Bob is unaffected by alice's full queue.
        sched.submit("b0", "bob")
        assert sched.n_queued == 3

    def test_inflight_jobs_do_not_count_against_watermarks(self):
        # A dispatched job holds an executor slot, not a queue slot:
        # admission must reopen as soon as the queue drains, even while
        # the job is still running.
        sched = FairScheduler(max_queued_total=1)
        sched.submit("j0", "alice")
        with pytest.raises(QueueFullError):
            sched.submit("j1", "alice")
        assert sched.next().job_id == "j0"  # now inflight, queue empty
        sched.submit("j1", "alice")  # admitted despite j0 running
        assert sched.n_queued == 1

    def test_check_capacity_is_a_pure_probe_until_it_rejects(self):
        sched = FairScheduler(max_queued_total=1)
        sched.check_capacity("alice")  # below watermark: no effect
        assert sched.rejected == 0
        sched.submit("j0", "alice")
        with pytest.raises(QueueFullError):
            sched.check_capacity("alice")
        assert sched.rejected == 1
        assert sched.n_queued == 1

    def test_snapshot_exposes_watermarks_and_rejections(self):
        sched = FairScheduler(max_queued_total=1,
                              max_queued_per_client=1)
        sched.submit("j0", "alice")
        with pytest.raises(QueueFullError):
            sched.submit("j1", "bob")
        snap = sched.snapshot()
        assert snap["max_queued_total"] == 1
        assert snap["max_queued_per_client"] == 1
        assert snap["rejected"] == 1

    def test_watermark_validation(self):
        with pytest.raises(ValueError):
            FairScheduler(max_queued_total=0)
        with pytest.raises(ValueError):
            FairScheduler(max_queued_per_client=0)
