"""Engine-layer chaos tests: every injection site, the degradation
ladder, and the typed-failure contract.

The bar mirrors the campaign classes (repro.chaos.report): a transient
fault must recover *bit-identically* to an unfaulted engine; exhausting
the recompute budget must degrade loudly to the reference backend; a
persistent fault must surface as the typed ``EngineNumericalError`` and
never as silent corruption.
"""

import numpy as np
import pytest

from repro.chaos import FaultPlan, FaultSpec, inject
from repro.chaos.plan import (
    BACKEND_STRIPE_RAISE,
    ENGINE_CLV_POISON,
    ENGINE_PMAT_CORRUPT,
    ENGINE_SITES,
    ENGINE_UNDERFLOW,
)
from repro.phylo import JC69, GammaRates, LikelihoodEngine, Tree
from repro.phylo.engine.protocol import EngineNumericalError
from repro.verify import fault_recovery_invariance
from tests.strategies import random_patterns


def _instance(seed=17, n_taxa=7, n_sites=60):
    rng = np.random.default_rng(seed)
    patterns = random_patterns(rng, n_taxa, n_sites)
    tree = Tree.from_tip_names(patterns.taxa, rng)
    return patterns, tree


def _clean_loglik(patterns, tree, backend=None, rates=None):
    engine = LikelihoodEngine(patterns, JC69(), rates, tree, backend=backend)
    try:
        return engine.evaluate(tree.branches[0])
    finally:
        engine.detach()


def _single_site_plan(site, *, trigger_at=(0,), max_triggers=None, value=None):
    return FaultPlan(seed=0, specs=(
        FaultSpec(site, trigger_at=tuple(trigger_at),
                  max_triggers=max_triggers or len(trigger_at),
                  value=value),
    ))


class TestTransientRecovery:
    @pytest.mark.parametrize("value", ["nan", "inf"])
    def test_clv_poison_recovers_bit_identical(self, value):
        patterns, tree = _instance()
        clean = _clean_loglik(patterns, tree)
        engine = LikelihoodEngine(patterns, JC69(), None, tree)
        try:
            plan = _single_site_plan(ENGINE_CLV_POISON, value=value)
            with inject(plan) as injector:
                recovered = engine.evaluate(tree.branches[0])
            assert injector.fired[ENGINE_CLV_POISON] == 1
            assert engine.numerical_faults >= 1
            assert engine.fault_recoveries >= 1
            assert not engine.is_degraded
            assert recovered == clean  # bit-identical, not approx
        finally:
            engine.detach()

    def test_pmat_corruption_recovers_bit_identical(self):
        patterns, tree = _instance(seed=21)
        clean = _clean_loglik(patterns, tree)
        engine = LikelihoodEngine(patterns, JC69(), None, tree)
        try:
            plan = _single_site_plan(ENGINE_PMAT_CORRUPT)
            with inject(plan) as injector:
                recovered = engine.evaluate(tree.branches[0])
            assert injector.fired[ENGINE_PMAT_CORRUPT] == 1
            # The corruption persists in the cache until invalidate_all
            # drops it; detection + recompute is exactly one recovery.
            assert engine.numerical_faults >= 1
            assert engine.fault_recoveries >= 1
            assert not engine.is_degraded
            assert recovered == clean
        finally:
            engine.detach()

    def test_stripe_raise_recovers_bit_identical(self):
        patterns, tree = _instance(seed=29)
        clean = _clean_loglik(patterns, tree, backend="partitioned:2")
        engine = LikelihoodEngine(
            patterns, JC69(), None, tree, backend="partitioned:2"
        )
        try:
            plan = _single_site_plan(BACKEND_STRIPE_RAISE)
            with inject(plan) as injector:
                recovered = engine.evaluate(tree.branches[0])
            assert injector.fired[BACKEND_STRIPE_RAISE] == 1
            assert engine.numerical_faults >= 1
            assert engine.fault_recoveries >= 1
            assert not engine.is_degraded
            assert recovered == clean
        finally:
            engine.detach()

    def test_recovery_holds_through_makenewz(self):
        patterns, tree = _instance(seed=33)
        branch = tree.branches[1]
        engine = LikelihoodEngine(patterns, JC69(), None, tree)
        try:
            clean = engine.makenewz(branch)
        finally:
            engine.detach()
        engine = LikelihoodEngine(patterns, JC69(), None, tree)
        try:
            with inject(_single_site_plan(ENGINE_CLV_POISON)) as injector:
                recovered = engine.makenewz(branch)
            assert injector.fired[ENGINE_CLV_POISON] == 1
            assert engine.fault_recoveries >= 1
            assert recovered == clean
        finally:
            engine.detach()


class TestForcedUnderflow:
    def test_forced_underflow_is_bit_transparent(self):
        """The injected power-of-two push-down must be undone exactly by
        scale_clv's mandatory rescale — no guard trip, no lnL change."""
        patterns, tree = _instance(seed=41)
        clean = _clean_loglik(patterns, tree, rates=GammaRates(0.5, 4))
        engine = LikelihoodEngine(
            patterns, JC69(), GammaRates(0.5, 4), tree
        )
        try:
            plan = _single_site_plan(
                ENGINE_UNDERFLOW, trigger_at=tuple(range(32)),
            )
            with inject(plan) as injector:
                value = engine.evaluate(tree.branches[0])
            assert injector.fired[ENGINE_UNDERFLOW] >= 1
            assert engine.numerical_faults == 0  # never even detected
            assert value == clean
        finally:
            engine.detach()


class TestDegradationLadder:
    def test_repeated_stripe_raise_degrades_down_the_ladder(self):
        """Faults outlasting the recompute budget must step down the
        backend ladder — loudly (is_degraded + perf counter +
        degradation_path), with an answer that still agrees with the
        clean one.  A stripe-level fault dies at the first rung: einsum
        has no stripe dispatch, so the fault site never fires again."""
        patterns, tree = _instance(seed=47)
        clean = _clean_loglik(patterns, tree, backend="partitioned:2")
        engine = LikelihoodEngine(
            patterns, JC69(), None, tree, backend="partitioned:2"
        )
        try:
            plan = _single_site_plan(
                BACKEND_STRIPE_RAISE, trigger_at=tuple(range(64)),
            )
            with inject(plan):
                value = engine.evaluate(tree.branches[0])
            assert engine.is_degraded
            assert engine.degradation_path == ["einsum"]
            assert engine.backend.name == "einsum"
            assert engine.degraded_evaluations >= 1
            assert engine.perf_counters()["degraded"] >= 1
            assert engine.numerical_faults > engine._degrade_after
            # The fallback backend does not share the striped reduction
            # grouping, so agreement is approximate — but loud, not silent.
            assert value == pytest.approx(clean, rel=1e-9)
        finally:
            engine.detach()

    def test_persistent_poison_raises_typed_error(self):
        """A fault that re-fires on every recompute — including after the
        reference fallback — must exhaust the ladder and surface as the
        typed EngineNumericalError, never a silent wrong answer."""
        patterns, tree = _instance(seed=53)
        engine = LikelihoodEngine(patterns, JC69(), None, tree)
        try:
            plan = _single_site_plan(
                ENGINE_CLV_POISON, trigger_at=tuple(range(4096)),
                value="nan",
            )
            with inject(plan):
                with pytest.raises(EngineNumericalError,
                                   match="persisted through"):
                    engine.evaluate(tree.branches[0])
            assert engine.is_degraded  # the ladder did try the fallback
            assert engine.numerical_faults > engine._degrade_after
        finally:
            engine.detach()


class TestDisabledAndInertPaths:
    def test_zero_probability_plan_changes_nothing(self):
        patterns, tree = _instance(seed=59)
        clean = _clean_loglik(patterns, tree)
        engine = LikelihoodEngine(patterns, JC69(), None, tree)
        try:
            plan = FaultPlan(seed=1, specs=tuple(
                FaultSpec(site, probability=0.0) for site in ENGINE_SITES
            ))
            with inject(plan) as injector:
                value = engine.evaluate(tree.branches[0])
            assert sum(injector.fired.values()) == 0
            assert injector.visits[ENGINE_CLV_POISON] > 0  # sites visited
            assert engine.numerical_faults == 0
            assert value == clean
        finally:
            engine.detach()

    def test_no_active_plan_visits_no_sites(self):
        patterns, tree = _instance(seed=61)
        engine = LikelihoodEngine(patterns, JC69(), None, tree)
        try:
            value = engine.evaluate(tree.branches[0])
            assert np.isfinite(value)
            assert engine.numerical_faults == 0
        finally:
            engine.detach()


class TestVerifyInvariant:
    @pytest.mark.parametrize("backend", [None, "partitioned:2"])
    def test_fault_recovery_invariance_is_exact(self, backend):
        rng = np.random.default_rng(7)
        sequences = {
            "a": "ACGTACGTACGTACGTACGT",
            "b": "ACGAACGTTCGTACGTATGT",
            "c": "ACGTACCTACGTAAGTACGT",
            "d": "TCGTACGTACGTACGTACGA",
        }
        diff = fault_recovery_invariance(
            sequences, JC69(), None, rng, backend=backend
        )
        assert diff == 0.0
