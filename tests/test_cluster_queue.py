"""Tests for the fault-tolerant work queue (retry, backoff, surfacing).

Worker-count sensitive scheduling paths run under the
``REPRO_CLUSTER_WORKERS`` worker count (CI sweeps 2 and 4).
"""

import pytest

from repro.cluster import (
    ClusterConfig,
    JobSpec,
    TaskExecutionError,
    WorkerPlans,
    replay,
    run_job,
)
from repro.phylo.alignment import PatternAlignment
from repro.phylo.parallel import parallel_analysis

FAST_RETRY = dict(retry_backoff_s=0.01)


class TestCleanRuns:
    def test_matches_serial_bit_for_bit(self, tiny_patterns, fast_config,
                                        serial_reference, cluster_workers,
                                        tmp_path):
        journal = str(tmp_path / "run.jsonl")
        spec = JobSpec(n_inferences=1, n_bootstraps=4, seed=9, batch_size=2,
                       config=fast_config)
        result = run_job(spec, alignment=tiny_patterns,
                         n_workers=cluster_workers, journal_path=journal)
        assert result.best.newick == serial_reference.best.newick
        assert result.best.log_likelihood == \
            serial_reference.best.log_likelihood
        assert [b.newick for b in result.bootstraps] == \
            [b.newick for b in serial_reference.bootstraps]
        assert result.supports == serial_reference.supports

    def test_journal_records_full_lifecycle(self, tiny_patterns, fast_config,
                                            cluster_workers, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        spec = JobSpec(n_inferences=1, n_bootstraps=2, seed=2,
                       config=fast_config)
        run_job(spec, alignment=tiny_patterns, n_workers=cluster_workers,
                journal_path=journal)
        state = replay(journal)
        assert state.spec is not None
        assert len(state.payloads) == 3
        assert state.finished
        assert state.tasks_started >= 3
        assert state.tasks_finished >= 3

    def test_perf_counters_journalled_per_task(self, tiny_patterns,
                                               fast_config, cluster_workers,
                                               tmp_path):
        journal = str(tmp_path / "run.jsonl")
        spec = JobSpec(n_inferences=1, n_bootstraps=1, seed=2,
                       config=fast_config)
        run_job(spec, alignment=tiny_patterns, n_workers=cluster_workers,
                journal_path=journal)
        state = replay(journal)
        for payload in state.payloads.values():
            assert payload["perf"]["newview_calls"] > 0
            assert "pmat_hits" in payload["perf"]
            assert "arena_acquires" in payload["perf"]
        totals = state.perf_totals()
        assert totals["newview_calls"] == sum(
            p["perf"]["newview_calls"] for p in state.payloads.values()
        )


class TestRetries:
    def test_transient_failure_is_retried(self, tiny_patterns, fast_config,
                                          serial_reference, cluster_workers,
                                          tmp_path):
        journal = str(tmp_path / "run.jsonl")
        spec = JobSpec(n_inferences=1, n_bootstraps=4, seed=9, batch_size=2,
                       config=fast_config)
        plans = WorkerPlans(fail={"bootstrap/0-1": (1,)})  # attempt 1 only
        result = run_job(
            spec, alignment=tiny_patterns, journal_path=journal, plans=plans,
            cluster=ClusterConfig(n_workers=cluster_workers, **FAST_RETRY),
        )
        assert result.supports == serial_reference.supports
        state = replay(journal)
        assert len(state.retries) == 1
        retry = state.retries[0]
        assert retry["task"] == "bootstrap/0-1"
        assert retry["attempt"] == 1
        assert "injected failure" in retry["error"]

    def test_exhausted_retries_surface_the_task_spec(self, tiny_patterns,
                                                     fast_config,
                                                     cluster_workers,
                                                     tmp_path):
        spec = JobSpec(n_inferences=1, n_bootstraps=1, seed=2,
                       config=fast_config)
        plans = WorkerPlans(fail={"bootstrap/0": (1, 2)})
        with pytest.raises(TaskExecutionError) as err:
            run_job(
                spec, alignment=tiny_patterns,
                journal_path=str(tmp_path / "run.jsonl"), plans=plans,
                cluster=ClusterConfig(n_workers=cluster_workers,
                                      max_retries=1, **FAST_RETRY),
            )
        message = str(err.value)
        assert "kind=bootstrap" in message
        assert "replicates=[0]" in message
        assert "seed=2" in message

    def test_scheduler_phases_journalled(self, tiny_patterns, fast_config,
                                         cluster_workers, tmp_path):
        journal = str(tmp_path / "run.jsonl")
        spec = JobSpec(n_inferences=1, n_bootstraps=6, seed=2, batch_size=3,
                       config=fast_config)
        run_job(spec, alignment=tiny_patterns, n_workers=cluster_workers,
                journal_path=journal)
        state = replay(journal)
        progress = [e for e in state.events if e["event"] == "run_progress"]
        assert progress, "queue should journal its phase accounting"
        phases = progress[-1]["phases"]
        assert set(phases) <= {"edtlp", "llp"}
        total = sum(entry["tasks"] for entry in phases.values())
        assert total >= 3  # every dispatched task is accounted somewhere


class TestParallelFacade:
    def test_facade_matches_serial(self, tiny_patterns, fast_config,
                                   serial_reference, cluster_workers):
        result = parallel_analysis(
            tiny_patterns, n_inferences=1, n_bootstraps=4,
            config=fast_config, seed=9, n_workers=cluster_workers,
        )
        assert result.best.newick == serial_reference.best.newick
        assert result.supports == serial_reference.supports

    def test_serial_fallback_surfaces_task_spec(self, fast_config):
        with pytest.raises(TaskExecutionError) as err:
            parallel_analysis(
                _BrokenPatterns(), n_inferences=1, n_bootstraps=1,
                config=fast_config, seed=6, n_workers=1,
            )
        message = str(err.value)
        assert "kind=inference" in message or "kind=bootstrap" in message
        assert "seed=6" in message

    def test_pool_failure_surfaces_task_spec(self, fast_config,
                                             cluster_workers):
        with pytest.raises(TaskExecutionError) as err:
            parallel_analysis(
                _BrokenPatterns(), n_inferences=1, n_bootstraps=1,
                config=fast_config, seed=6, n_workers=cluster_workers,
            )
        assert "seed=6" in str(err.value)


class _BrokenPatterns(PatternAlignment):
    """Passes the type check but explodes inside the task body."""

    def __init__(self):  # noqa: D401 — deliberately skips parent init
        pass

    def __reduce__(self):  # picklable across worker processes
        return (_BrokenPatterns, ())

    def base_frequencies(self):
        raise RuntimeError("boom: broken alignment")

    def bootstrap_replicate(self, rng):
        raise RuntimeError("boom: broken alignment")
