"""Tests for the ASCII timeline renderer (repro.cell.timeline)."""

import pytest

from repro.cell import CellBlade, KernelInvocation, occupancy_row, render_timeline
from repro.harness import get_trace
from repro.port import PortExecutor


class TestOccupancyRow:
    def test_empty_spans_all_idle(self):
        assert occupancy_row([], horizon=1.0, width=10) == " " * 10

    def test_fully_busy(self):
        row = occupancy_row([(0.0, 1.0, "x")], horizon=1.0, width=10)
        assert row == "#" * 10

    def test_half_busy_bucket(self):
        # One span covering 40% of a single-bucket chart -> '.'.
        row = occupancy_row([(0.0, 0.4, "x")], horizon=1.0, width=1)
        assert row == "."

    def test_levels_progression(self):
        for fraction, char in ((0.2, "."), (0.7, ":"), (0.95, "#")):
            row = occupancy_row([(0.0, fraction, "x")], horizon=1.0, width=1)
            assert row == char, fraction

    def test_span_split_across_buckets(self):
        row = occupancy_row([(0.25, 0.75, "x")], horizon=1.0, width=4)
        assert row == " ## "

    def test_validation(self):
        with pytest.raises(ValueError):
            occupancy_row([], horizon=0.0)
        with pytest.raises(ValueError):
            occupancy_row([], horizon=1.0, width=0)


class TestRenderTimeline:
    def test_records_spans_during_simulation(self):
        blade = CellBlade()
        spe = blade.chip.spes[0]
        spe.load_offloaded_code()

        def proc():
            yield from blade.chip.ppe.compute(1e-3)
            yield from spe.execute(KernelInvocation("newview", 2e-3))

        blade.sim.spawn(proc())
        blade.sim.run()
        assert len(blade.chip.ppe.spans) == 1
        assert len(spe.spans) == 1
        text = render_timeline(blade.chip)
        assert "ppe" in text
        assert "spe0" in text
        assert "#" in text

    def test_empty_simulation(self):
        blade = CellBlade()
        assert "no simulated time" in render_timeline(blade.chip)

    def test_edtlp_run_shows_ppe_saturation(self):
        executor = PortExecutor(get_trace("quick"), devs_batches_per_task=16)
        result = executor.edtlp_devs(8)
        text = render_timeline(result.chip, width=40)
        ppe_row = next(
            line for line in text.splitlines() if line.strip().startswith("ppe")
        )
        # The PPE row is nearly solid '#' under 8 oversubscribed workers.
        assert ppe_row.count("#") > 30

    def test_span_cap_respected(self):
        blade = CellBlade()
        spe = blade.chip.spes[0]
        spe.load_offloaded_code()
        spe.max_spans = 5

        def proc():
            for _ in range(10):
                yield from spe.execute(KernelInvocation("k", 1e-6))

        blade.sim.spawn(proc())
        blade.sim.run()
        assert len(spe.spans) == 5
        assert spe.kernel_count == 10
