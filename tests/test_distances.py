"""Tests for pairwise distances and neighbor joining."""

import math

import numpy as np
import pytest

from repro.phylo import (
    Alignment,
    GammaRates,
    JC69,
    Tree,
    default_gtr,
    distance_matrix,
    evolve_alignment,
    jc69_distance,
    ml_distance,
    neighbor_joining,
    random_tree,
    robinson_foulds,
)


def patterns_of(seqs):
    return Alignment.from_sequences(seqs).compress()


class TestJC69Distance:
    def test_identical_is_zero(self):
        pats = patterns_of({"a": "ACGTACGT", "b": "ACGTACGT", "c": "ACGTACGT"})
        assert jc69_distance(pats, 0, 1) == 0.0

    def test_analytic_formula(self):
        # 2 mismatches in 8 sites: p = 0.25.
        pats = patterns_of({"a": "ACGTACGT", "b": "ACGTACGA", "c": "ACGTACGG"})
        # recompute pair (a, b): one mismatch at last site -> p = 1/8
        p = 1.0 / 8.0
        expected = -0.75 * math.log(1 - 4 * p / 3)
        assert jc69_distance(pats, 0, 1) == pytest.approx(expected)

    def test_saturation_capped(self):
        pats = patterns_of({"a": "AAAA", "b": "CCCC", "c": "GGGG"})
        assert jc69_distance(pats, 0, 1) == 5.0

    def test_ambiguity_counts_as_match(self):
        pats = patterns_of({"a": "ACGT", "b": "NCGT", "c": "ACGT"})
        assert jc69_distance(pats, 0, 1) == 0.0

    def test_symmetric(self):
        pats = patterns_of({"a": "ACGTTGCA", "b": "ACCTTGAA", "c": "ACGTAGCA"})
        assert jc69_distance(pats, 0, 1) == jc69_distance(pats, 1, 0)


class TestMLDistance:
    def test_matches_jc_under_jc_model(self):
        rng = np.random.default_rng(0)
        seqs = {
            "a": "".join(rng.choice(list("ACGT"), 2000)),
        }
        # Mutate ~10 % of sites for b.
        b = list(seqs["a"])
        idx = rng.choice(2000, size=200, replace=False)
        for k in idx:
            b[k] = rng.choice([c for c in "ACGT" if c != b[k]])
        seqs["b"] = "".join(b)
        seqs["c"] = seqs["a"]
        pats = patterns_of(seqs)
        jc = jc69_distance(pats, 0, 1)
        ml = ml_distance(pats, 0, 1, JC69())
        assert ml == pytest.approx(jc, rel=0.02)

    def test_recovers_simulated_branch_length(self):
        # Evolve two sequences at a known distance; ML must recover it.
        names = ["x", "y", "z"]
        tree = Tree.from_newick("(x:0.15,y:0.15,z:0.0001);")
        rng = np.random.default_rng(1)
        aln = evolve_alignment(tree, JC69(), 20000, rng,
                               gamma_alpha=None, invariant_fraction=0.0)
        pats = aln.compress()
        d = ml_distance(pats, pats.taxon_index("x"), pats.taxon_index("y"),
                        JC69())
        assert d == pytest.approx(0.30, rel=0.08)

    def test_gamma_rates_increase_distance(self):
        # Rate variation hides multiple hits: for the same observed
        # mismatch fraction, Gamma distances exceed uniform ones.
        rng = np.random.default_rng(2)
        a = "".join(rng.choice(list("ACGT"), 3000))
        b = list(a)
        idx = rng.choice(3000, size=900, replace=False)
        for k in idx:
            b[k] = rng.choice([c for c in "ACGT" if c != b[k]])
        pats = patterns_of({"a": a, "b": "".join(b), "c": a})
        uniform = ml_distance(pats, 0, 1, JC69())
        gamma = ml_distance(pats, 0, 1, JC69(), GammaRates(0.3, 4))
        assert gamma > uniform


class TestDistanceMatrix:
    def test_properties(self, small_patterns):
        matrix = distance_matrix(small_patterns, method="jc")
        n = small_patterns.n_taxa
        assert matrix.shape == (n, n)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)
        assert (matrix >= 0).all()

    def test_methods_correlate(self, small_patterns):
        jc = distance_matrix(small_patterns, method="jc")
        ml = distance_matrix(small_patterns, method="ml")
        mask = ~np.eye(small_patterns.n_taxa, dtype=bool)
        corr = np.corrcoef(jc[mask], ml[mask])[0, 1]
        assert corr > 0.95

    def test_unknown_method(self, small_patterns):
        with pytest.raises(ValueError, match="unknown distance"):
            distance_matrix(small_patterns, method="phlogiston")


class TestNeighborJoining:
    def test_recovers_additive_tree(self):
        # Exact additive distances from a known tree -> NJ recovers it.
        source = Tree.from_newick(
            "((a:0.1,b:0.2):0.15,(c:0.12,d:0.08):0.1,e:0.3);"
        )
        names = sorted(source.tip_names())
        index = {name: i for i, name in enumerate(names)}
        matrix = np.zeros((5, 5))
        for i, x in enumerate(names):
            for j, y in enumerate(names):
                if i < j:
                    d = sum(
                        b.length
                        for b in source.path_between(
                            source.find_tip(x), source.find_tip(y)
                        )
                    )
                    matrix[i, j] = matrix[j, i] = d
        tree = neighbor_joining(matrix, names)
        tree.validate()
        assert robinson_foulds(tree, source) == 0.0
        # Branch lengths are recovered too (additivity).
        total = tree.total_length()
        assert total == pytest.approx(source.total_length(), rel=1e-6)

    def test_recovers_topology_from_sequences(self):
        # Fixed topology with clearly resolvable internal branches (a
        # random tree can draw near-zero internal branches, which no
        # method can recover from finite data).
        truth = Tree.from_newick(
            "((t0:0.08,t1:0.1):0.06,((t2:0.09,t3:0.07):0.05,"
            "(t4:0.1,t5:0.08):0.06):0.05,(t6:0.09,t7:0.1):0.07);"
        )
        rng = np.random.default_rng(5)
        aln = evolve_alignment(truth, default_gtr(), 5000, rng,
                               gamma_alpha=None, invariant_fraction=0.0)
        pats = aln.compress()
        matrix = distance_matrix(pats, method="ml", model=default_gtr())
        tree = neighbor_joining(matrix, pats.taxa)
        assert robinson_foulds(truth, tree) == 0.0

    def test_three_taxa(self):
        matrix = np.array([[0, 2.0, 3.0], [2.0, 0, 2.5], [3.0, 2.5, 0]])
        tree = neighbor_joining(matrix, ["a", "b", "c"])
        tree.validate()
        assert tree.n_tips == 3

    def test_validation(self):
        with pytest.raises(ValueError, match="at least 3"):
            neighbor_joining(np.zeros((2, 2)), ["a", "b"])
        with pytest.raises(ValueError, match="symmetric"):
            bad = np.array([[0, 1.0, 2], [3, 0, 1], [2, 1, 0.0]])
            neighbor_joining(bad, ["a", "b", "c"])
        with pytest.raises(ValueError, match="diagonal"):
            bad = np.ones((3, 3))
            neighbor_joining(bad, ["a", "b", "c"])
        with pytest.raises(ValueError, match="shape"):
            neighbor_joining(np.zeros((3, 3)), ["a", "b"])

    def test_negative_limbs_clamped(self):
        # A non-additive matrix that provokes negative limb estimates.
        matrix = np.array(
            [
                [0.0, 0.1, 0.4, 0.4],
                [0.1, 0.0, 0.4, 0.4],
                [0.4, 0.4, 0.0, 0.02],
                [0.4, 0.4, 0.02, 0.0],
            ]
        )
        tree = neighbor_joining(matrix, ["a", "b", "c", "d"])
        tree.validate()  # validates positive clamped lengths
