"""Tests for the comparison-platform models (repro.platforms)."""

import pytest

from repro.platforms import (
    PPE_TASK_SECONDS,
    SMTPlatform,
    power5_platform,
    xeon_platform,
)


class TestGeometry:
    def test_power5_ranks(self):
        p5 = power5_platform()
        assert p5.n_cores == 2
        assert p5.n_ranks == 4

    def test_dual_xeon_ranks(self):
        xe = xeon_platform(n_chips=2)
        assert xe.n_cores == 2
        assert xe.n_ranks == 4

    def test_single_xeon(self):
        assert xeon_platform(n_chips=1).n_ranks == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            SMTPlatform("bad", 0, 1, 1, 1.0, 1.0)
        with pytest.raises(ValueError):
            SMTPlatform("bad", 1, 1, 1, -1.0, 1.0)
        with pytest.raises(ValueError):
            SMTPlatform("bad", 1, 1, 1, 1.0, 0.9)


class TestTaskSeconds:
    def test_no_smt_penalty_when_cores_free(self):
        p5 = power5_platform()
        base = PPE_TASK_SECONDS / p5.relative_speed
        assert p5.task_seconds(1) == pytest.approx(base)
        assert p5.task_seconds(2) == pytest.approx(base)

    def test_smt_penalty_kicks_in_beyond_cores(self):
        p5 = power5_platform()
        base = PPE_TASK_SECONDS / p5.relative_speed
        assert p5.task_seconds(3) == pytest.approx(base * p5.smt_slowdown)
        assert p5.task_seconds(4) == pytest.approx(base * p5.smt_slowdown)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            power5_platform().task_seconds(0)


class TestRunTotal:
    def test_single_task(self):
        p5 = power5_platform()
        assert p5.run_total_s(1) == pytest.approx(
            PPE_TASK_SECONDS / p5.relative_speed
        )

    def test_full_round(self):
        p5 = power5_platform()
        expected = PPE_TASK_SECONDS / p5.relative_speed * p5.smt_slowdown
        assert p5.run_total_s(4) == pytest.approx(expected)

    def test_linear_scaling_in_full_rounds(self):
        xe = xeon_platform()
        assert xe.run_total_s(32) == pytest.approx(4 * xe.run_total_s(8))

    def test_partial_final_round_cheaper(self):
        p5 = power5_platform()
        five = p5.run_total_s(5)
        eight = p5.run_total_s(8)
        # Tasks 5..8 fill the second round; 5 tasks leave it partial
        # (a single task on free cores runs at full speed).
        assert five < eight

    def test_sweep_matches_pointwise(self):
        xe = xeon_platform()
        counts = (1, 8, 16)
        assert xe.sweep(counts) == [xe.run_total_s(b) for b in counts]

    def test_needs_positive_bootstraps(self):
        with pytest.raises(ValueError):
            power5_platform().run_total_s(0)


class TestPaperAnchors:
    def test_power5_calibration_comment_holds(self):
        # 32 tasks/rank x 36.9 x 1.25 / 2.0 = ~738 s at 128 bootstraps.
        p5 = power5_platform()
        assert p5.run_total_s(128) == pytest.approx(738.0, rel=0.01)

    def test_xeon_calibration_comment_holds(self):
        xe = xeon_platform(n_chips=2)
        assert xe.run_total_s(128) == pytest.approx(1396.0, rel=0.01)

    def test_power5_beats_xeon(self):
        p5, xe = power5_platform(), xeon_platform(2)
        for b in (1, 8, 32, 128):
            assert p5.run_total_s(b) < xe.run_total_s(b)
