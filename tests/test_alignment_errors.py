"""Malformed-alignment corpus: every broken input gets a typed error.

The serve path admits untrusted alignment text, so the parser must
never leak a bare ``ValueError``/``IndexError`` — each corpus entry
asserts a :class:`~repro.phylo.alignment.AlignmentError` with a
*stable* machine-readable code, and the HTTP layer maps it to a 400
whose top-level ``error`` stays ``alignment_invalid`` (the published
contract) with the parser code carried in ``alignment_code``.
"""

import asyncio
import json

import pytest

from repro.phylo.alignment import (
    Alignment,
    AlignmentError,
    parse_alignment,
)
from repro.serve import JobService, ServeApp

# (label, text, expected code) — one entry per malformation class the
# issue names, plus the parser-specific failures around them.
CORPUS = [
    ("fasta_truncated_record", ">a\nACGT\n>b\n", "empty_sequence"),
    ("fasta_length_mismatch", ">a\nACGT\n>b\nACG\n", "length_mismatch"),
    ("fasta_duplicate_taxon", ">a\nACGT\n>a\nACGT\n", "duplicate_taxon"),
    ("fasta_illegal_character", ">a\nAC!T\n>b\nACGT\n",
     "illegal_character"),
    ("fasta_empty_name", ">\nACGT\n", "fasta_empty_name"),
    ("fasta_data_before_header", "ACGT\n>a\nACGT\n", "phylip_header"),
    ("empty_input", "", "empty"),
    ("whitespace_input", "  \n\t\n", "empty"),
    ("phylip_missing_rows", "3 4\nt1 ACGT\nt2 ACGA\n", "phylip_truncated"),
    ("phylip_row_too_short", "2 4\nt1 ACGT\nt2 ACG\n", "phylip_length"),
    ("phylip_bad_header", "junk header\nt1 ACGT\n", "phylip_header"),
    ("phylip_one_token_header", "2\nt1 ACGT\nt2 ACGA\n", "phylip_header"),
    ("phylip_zero_sites", "2 0\nt1 \nt2 \n", "phylip_header"),
    ("phylip_duplicate_taxon", "2 4\nt1 ACGT\nt1 ACGA\n",
     "duplicate_taxon"),
    ("phylip_name_only_line", "2 4\nt1 ACGT\nlonesome\n", "phylip_line"),
    ("phylip_illegal_character", "2 4\nt1 AC?T\nt2 ACG%\n",
     "illegal_character"),
]


class TestMalformedCorpus:
    @pytest.mark.parametrize(
        "text, code",
        [(text, code) for _, text, code in CORPUS],
        ids=[label for label, _, _ in CORPUS],
    )
    def test_typed_rejection(self, text, code):
        with pytest.raises(AlignmentError) as excinfo:
            parse_alignment(text)
        assert excinfo.value.code == code
        # AlignmentError subclasses ValueError so legacy `except
        # ValueError` call sites keep working.
        assert isinstance(excinfo.value, ValueError)

    def test_no_bare_exception_leaks(self):
        """Nothing in the corpus escapes as an untyped exception."""
        for label, text, _ in CORPUS:
            try:
                parse_alignment(text)
            except AlignmentError:
                continue
            raise AssertionError(f"{label}: parsed without error")

    def test_well_formed_inputs_still_parse(self):
        fasta = parse_alignment(">a\nACGT\n>b\nACGA\n>c\nTCGA\n")
        assert isinstance(fasta, Alignment)
        assert fasta.taxa == ["a", "b", "c"]
        phylip = parse_alignment("3 4\nt1 ACGT\nt2 ACGA\nt3 TCGA\n")
        assert phylip.taxa == ["t1", "t2", "t3"]
        # Ambiguity codes and gaps are legal, not "illegal characters".
        assert parse_alignment(">a\nAC-N\n>b\nRYGT\n").n_sites == 4


class TestServeMapping:
    """The HTTP surface turns parser codes into one stable 400."""

    def test_submit_maps_corpus_to_400_with_alignment_code(self, tmp_path):
        async def scenario():
            app = ServeApp(JobService(str(tmp_path / "root")), port=0)
            await app.start()
            try:
                reader_writer = await asyncio.open_connection(
                    app.host, app.port)
                reader, writer = reader_writer
                payload = json.dumps({
                    "alignment": "2 4\nt1 ACGT\nt2 ACG\n",
                    "model": {"n_inferences": 1, "n_bootstraps": 0,
                              "seed": 0},
                }).encode()
                writer.write(
                    b"POST /jobs HTTP/1.1\r\nHost: t\r\n"
                    + f"Content-Length: {len(payload)}\r\n\r\n".encode()
                    + payload)
                await writer.drain()
                raw = await reader.read()
                writer.close()
                status = int(raw.split(b" ", 2)[1])
                body = json.loads(raw.partition(b"\r\n\r\n")[2])
                assert status == 400
                assert body["error"] == "alignment_invalid"
                assert body["alignment_code"] == "phylip_length"
            finally:
                await app.stop()

        asyncio.run(scenario())

    def test_service_submit_raises_typed_error(self, tmp_path):
        from repro.cluster import JobSpec

        service = JobService(str(tmp_path / "root"))
        with pytest.raises(AlignmentError) as excinfo:
            service.submit(">a\nACGT\n>a\nACGT\n",
                           JobSpec(n_inferences=1, n_bootstraps=0, seed=0))
        assert excinfo.value.code == "duplicate_taxon"
        # The rejection left no durable job record behind.
        assert service.store.load_all() == []
