"""Property-based tests of the schedulers: bounds and conservation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched import (
    CellTask,
    simulate_edtlp,
    simulate_llp,
    simulate_static,
)

task_times = st.floats(min_value=0.01, max_value=5.0)


def build_tasks(spe_times, ppe_frac=0.05, offloads=20, n_batches=4):
    return [
        CellTask(
            task_id=i,
            spe_s=t,
            ppe_s=t * ppe_frac,
            comm_s=0.0,
            offloads=offloads,
            n_batches=n_batches,
        )
        for i, t in enumerate(spe_times)
    ]


class TestEDTLPBounds:
    @given(st.lists(task_times, min_size=1, max_size=12),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_makespan_bounds(self, spe_times, n_workers):
        tasks = build_tasks(spe_times)
        result = simulate_edtlp(tasks, ppe_service_s=1e-4,
                                n_workers=n_workers)
        serial = sum(t.serial_s for t in tasks)
        longest = max(t.serial_s for t in tasks)
        # Lower bounds: the longest task; the SPE-work divided by width.
        assert result.makespan_s >= longest * 0.999
        assert result.makespan_s >= serial / n_workers * 0.5
        # Upper bound: fully serial execution plus all PPE service,
        # inflated by worst-case SMT contention.
        ppe_total = sum(t.offloads for t in tasks) * 1e-4
        assert result.makespan_s <= (serial + ppe_total) * 1.5 + 1e-6

    @given(st.lists(task_times, min_size=2, max_size=10))
    @settings(max_examples=15, deadline=None)
    def test_all_tasks_complete(self, spe_times):
        tasks = build_tasks(spe_times)
        result = simulate_edtlp(tasks, ppe_service_s=1e-5, n_workers=4)
        assert result.n_tasks == len(tasks)
        # Total SPE busy time equals the submitted SPE work.
        # (utilization * makespan summed over used SPEs)
        busy = sum(u * result.makespan_s for u in result.spe_utilizations)
        assert busy == pytest.approx(sum(spe_times), rel=1e-6)

    @given(st.lists(task_times, min_size=1, max_size=8))
    @settings(max_examples=15, deadline=None)
    def test_utilizations_in_range(self, spe_times):
        tasks = build_tasks(spe_times)
        result = simulate_edtlp(tasks, ppe_service_s=1e-5, n_workers=2)
        assert 0.0 <= result.ppe_utilization <= 1.0
        assert all(0.0 <= u <= 1.0 for u in result.spe_utilizations)


class TestLLPBounds:
    @given(st.lists(task_times, min_size=1, max_size=6),
           st.floats(min_value=0.0, max_value=0.95),
           st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=20, deadline=None)
    def test_amdahl_bounds(self, spe_times, p, spes):
        tasks = build_tasks(spe_times, ppe_frac=0.0)
        result = simulate_llp(tasks, parallel_fraction=p,
                              overhead_eta=0.0, spes_per_task=spes)
        # Never better than perfect Amdahl on the longest task.
        longest = max(spe_times)
        floor = longest * ((1 - p) + p / spes)
        assert result.makespan_s >= floor * 0.999
        # Never worse than running everything serially.
        assert result.makespan_s <= sum(spe_times) * 1.001 + 1e-9

    @given(st.floats(min_value=0.1, max_value=0.9))
    @settings(max_examples=10, deadline=None)
    def test_more_spes_never_hurt_without_overhead(self, p):
        times = {}
        for spes in (1, 2, 4, 8):
            tasks = build_tasks([2.0], ppe_frac=0.0)
            times[spes] = simulate_llp(
                tasks, parallel_fraction=p, overhead_eta=0.0,
                spes_per_task=spes,
            ).makespan_s
        assert times[1] >= times[2] >= times[4] >= times[8]


class TestStaticBounds:
    @given(st.lists(task_times, min_size=1, max_size=8),
           st.integers(min_value=1, max_value=2))
    @settings(max_examples=20, deadline=None)
    def test_static_bounds(self, spe_times, workers):
        tasks = build_tasks(spe_times)
        result = simulate_static(tasks, comm_per_offload_s=1e-6,
                                 n_workers=workers)
        serial = sum(t.serial_s for t in tasks)
        assert result.makespan_s >= max(t.serial_s for t in tasks) * 0.99
        # Even with SMT inflation the PPE share is small here.
        assert result.makespan_s <= serial * 1.5 + 1e-6

    def test_one_worker_is_serial_plus_mpi_latency(self):
        tasks = build_tasks([1.0, 2.0, 0.5], ppe_frac=0.1)
        result = simulate_static(tasks, comm_per_offload_s=0.0, n_workers=1)
        expected = sum(t.spe_s + t.ppe_s for t in tasks)
        # The only extra cost is the master-worker messages (~2 us each).
        assert expected <= result.makespan_s <= expected + 50e-6
