"""Tests for streaming aggregation: best tree, supports, consensus."""

import random

from repro.cluster.aggregate import (
    StreamingAggregator,
    consensus_newick,
    merge_perf_counters,
)
from repro.phylo import Tree, support_values


def _payload(newick, lnl, replicate, is_bootstrap=False, perf=None):
    return {
        "kind": "bootstrap" if is_bootstrap else "inference",
        "replicate": replicate,
        "newick": newick,
        "log_likelihood": lnl,
        "is_bootstrap": is_bootstrap,
        "perf": perf or {},
    }


BALANCED = "((A:1,B:1):1,(C:1,D:1):1,E:1);"
LADDER = "(((A:1,B:1):1,C:1):1,D:1,E:1);"
OTHER = "((A:1,C:1):1,(B:1,D:1):1,E:1);"


class TestBestTracking:
    def test_best_updates_as_better_results_land(self):
        agg = StreamingAggregator()
        agg.ingest(_payload(BALANCED, -100.0, 1))
        assert agg.best["replicate"] == 1
        agg.ingest(_payload(LADDER, -90.0, 2))
        assert agg.best["replicate"] == 2
        agg.ingest(_payload(OTHER, -95.0, 0))  # worse; no change
        assert agg.best["replicate"] == 2

    def test_tie_breaks_to_lowest_replicate_any_arrival_order(self):
        # The serial `max` keeps the first maximal element, i.e. the
        # lowest replicate; streaming must agree regardless of order.
        for order in ([0, 1], [1, 0]):
            agg = StreamingAggregator()
            for r in order:
                agg.ingest(_payload(BALANCED, -50.0, r))
            assert agg.best["replicate"] == 0

    def test_ingest_is_idempotent(self):
        agg = StreamingAggregator()
        assert agg.ingest(_payload(BALANCED, -1.0, 0, is_bootstrap=True))
        assert not agg.ingest(_payload(BALANCED, -1.0, 0, is_bootstrap=True))
        assert agg.n_bootstraps == 1
        assert sum(agg._split_counts.values()) == len(
            Tree.from_newick(BALANCED).bipartitions()
        )


class TestStreamingSupports:
    def test_matches_support_values_exactly(self):
        boots = [BALANCED, BALANCED, LADDER, OTHER]
        agg = StreamingAggregator()
        agg.ingest(_payload(BALANCED, -10.0, 0))
        payloads = [
            _payload(nwk, -20.0 - i, i, is_bootstrap=True)
            for i, nwk in enumerate(boots)
        ]
        random.Random(5).shuffle(payloads)
        for p in payloads:
            agg.ingest(p)
        expected = support_values(
            Tree.from_newick(BALANCED),
            [Tree.from_newick(b) for b in boots],
        )
        assert agg.supports() == expected

    def test_no_bootstraps_gives_zero_supports(self):
        agg = StreamingAggregator()
        agg.ingest(_payload(BALANCED, -10.0, 0))
        supports = agg.supports()
        assert supports
        assert all(v == 0.0 for v in supports.values())

    def test_partial_supports_are_servable_mid_run(self):
        agg = StreamingAggregator()
        agg.ingest(_payload(BALANCED, -10.0, 0))
        agg.ingest(_payload(BALANCED, -20.0, 0, is_bootstrap=True))
        partial = agg.supports()
        assert set(partial.values()) == {1.0}  # 1/1 replicates agree so far


class TestConsensus:
    def test_majority_rule_consensus(self):
        agg = StreamingAggregator()
        for i, nwk in enumerate([BALANCED, BALANCED, LADDER]):
            agg.ingest(_payload(nwk, -20.0, i, is_bootstrap=True))
        majority, newick = agg.consensus()
        # {A,B} is in all three trees; {C,D} only in the two BALANCED ones.
        ab = frozenset({"C", "D", "E"})  # canonical side excludes min taxon A
        assert majority[ab] == 1.0
        tree = Tree.from_newick(newick)
        assert set(majority) == tree.bipartitions()

    def test_consensus_empty_before_any_bootstrap(self):
        agg = StreamingAggregator()
        agg.ingest(_payload(BALANCED, -10.0, 0))
        majority, newick = agg.consensus()
        assert majority == {} and newick is None

    def test_consensus_newick_nests_compatible_splits(self):
        taxa = ["A", "B", "C", "D", "E"]
        splits = [frozenset({"B", "C", "D"}), frozenset({"C", "D"})]
        newick = consensus_newick(taxa, splits)
        assert Tree.from_newick(newick).bipartitions() == {
            frozenset({"B", "C", "D"}), frozenset({"C", "D"}),
        }


class TestFinalAssembly:
    def test_analysis_matches_serial_assembly(self, tiny_patterns,
                                              fast_config):
        from repro.cluster.queue import ExecutionContext, execute_replicate
        from repro.phylo import run_full_analysis

        serial = run_full_analysis(tiny_patterns, n_inferences=2,
                                   n_bootstraps=2, config=fast_config, seed=4)
        ctx = ExecutionContext(config=fast_config)
        agg = StreamingAggregator()
        # Scrambled arrival order.
        for kind, rep in [("bootstrap", 1), ("inference", 1),
                          ("bootstrap", 0), ("inference", 0)]:
            agg.ingest(execute_replicate(tiny_patterns, ctx, kind, rep, 4))
        result = agg.analysis()
        assert result.best.newick == serial.best.newick
        assert result.best.log_likelihood == serial.best.log_likelihood
        assert [b.newick for b in result.bootstraps] == \
            [b.newick for b in serial.bootstraps]
        assert result.supports == serial.supports


class TestPerfMerge:
    def test_merge_perf_counters_sums(self):
        merged = merge_perf_counters([
            {"pmat_hits": 3, "arena_acquires": 1},
            {"pmat_hits": 2, "newview_calls": 7},
            None,
        ])
        assert merged == {"pmat_hits": 5, "arena_acquires": 1,
                          "newview_calls": 7}
