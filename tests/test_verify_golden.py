"""Golden corpus tests (repro.verify.golden) and the verify CLI.

The committed-corpus check recomputes every case, so the heavier pieces
carry ``@pytest.mark.verify``; a single-case determinism smoke stays in
tier-1.
"""

import json

import pytest

from repro.phylo.cli import main
from repro.verify import (
    GOLDEN_CASES,
    check_corpus,
    compute_case,
    default_corpus_dir,
    write_corpus,
)


def test_corpus_dir_is_committed():
    corpus = default_corpus_dir()
    assert corpus.is_dir()
    names = {p.name for p in corpus.glob("*.json")}
    assert names == {f"{case.name}.json" for case in GOLDEN_CASES}


def test_compute_case_is_deterministic():
    case = GOLDEN_CASES[0]
    first, second = compute_case(case), compute_case(case)
    assert first == second
    assert json.dumps(first, sort_keys=True) == json.dumps(second,
                                                           sort_keys=True)


def test_compute_case_record_shape():
    record = compute_case(GOLDEN_CASES[0])
    assert record["log_likelihood"] == pytest.approx(
        record["oracle_log_likelihood"], rel=1e-9
    )
    assert record["consensus"]["newick"]
    assert record["perf_counter_keys"] == sorted(record["perf_counter_keys"])
    assert "newview_calls" in record["perf_counter_keys"]


@pytest.mark.verify
def test_committed_corpus_is_valid():
    assert check_corpus() == []


@pytest.mark.verify
def test_corpus_regeneration_is_byte_deterministic(tmp_path):
    first_dir, second_dir = tmp_path / "a", tmp_path / "b"
    first = write_corpus(first_dir)
    second = write_corpus(second_dir)
    for path_a, path_b in zip(first, second):
        assert path_a.read_bytes() == path_b.read_bytes()
    # ...and matches the committed corpus too.
    for path_a in first:
        committed = default_corpus_dir() / path_a.name
        assert json.loads(path_a.read_text()) == json.loads(
            committed.read_text()
        )


def test_check_corpus_flags_tampering(tmp_path):
    case = GOLDEN_CASES[0]
    path = tmp_path / f"{case.name}.json"
    record = compute_case(case)
    record["log_likelihood"] += 1e-3
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    mismatches = check_corpus(tmp_path, cases=[case])
    assert mismatches and "log_likelihood" in mismatches[0]


def test_check_corpus_flags_missing_and_unreadable(tmp_path):
    case = GOLDEN_CASES[0]
    assert "missing golden file" in check_corpus(tmp_path, cases=[case])[0]
    (tmp_path / f"{case.name}.json").write_text("{not json")
    assert "unreadable" in check_corpus(tmp_path, cases=[case])[0]


# -- CLI ---------------------------------------------------------------------


@pytest.mark.verify
def test_cli_verify_check_passes_on_committed_corpus(capsys):
    assert main(["verify", "--check"]) == 0
    assert "golden corpus: OK" in capsys.readouterr().out


def test_cli_verify_check_fails_on_corrupt_corpus(tmp_path, capsys):
    case = GOLDEN_CASES[0]
    record = compute_case(case)
    record["log_likelihood"] += 0.5
    (tmp_path / f"{case.name}.json").write_text(json.dumps(record))
    code = main(["verify", "--check", "--corpus-dir", str(tmp_path)])
    assert code == 1
    out = capsys.readouterr().out
    assert "mismatch" in out


def test_cli_verify_write_then_check_roundtrip(tmp_path, capsys):
    assert main(["verify", "--write", "--corpus-dir", str(tmp_path)]) == 0
    assert main(["verify", "--check", "--corpus-dir", str(tmp_path)]) == 0


def test_cli_verify_fuzz_smoke(tmp_path, capsys):
    main(["verify", "--write", "--corpus-dir", str(tmp_path)])
    capsys.readouterr()
    code = main(["verify", "--corpus-dir", str(tmp_path), "--fuzz", "5"])
    assert code == 0
    assert "all cases agree" in capsys.readouterr().out


def test_cli_verify_fuzz_failure_is_nonzero(tmp_path, capsys):
    main(["verify", "--write", "--corpus-dir", str(tmp_path)])
    code = main(["verify", "--corpus-dir", str(tmp_path),
                 "--fuzz", "3", "--rel-tol", "0"])
    assert code == 1
    assert "reproduce:" in capsys.readouterr().out


def test_cli_verify_check_and_write_conflict(capsys):
    assert main(["verify", "--check", "--write"]) == 2
