"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.phylo import (
    Alignment,
    GammaRates,
    LikelihoodEngine,
    SearchConfig,
    Tree,
    default_gtr,
    stepwise_addition_tree,
    synthetic_dataset,
)

# Hypothesis profiles: `ci` is fully seeded (derandomized) so CI runs —
# including the repro.verify differential/metamorphic suite — are
# reproducible; `dev` is the fast randomized default for local work;
# `thorough` is the long soak.  Select with REPRO_HYPOTHESIS_PROFILE.
try:
    import os

    from hypothesis import HealthCheck, settings

    _COMMON = dict(
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.register_profile("ci", max_examples=20, derandomize=True,
                              **_COMMON)
    settings.register_profile("dev", max_examples=25, **_COMMON)
    settings.register_profile("thorough", max_examples=250, **_COMMON)
    # Back-compat alias for the original profile name.
    settings.register_profile("repro", max_examples=25, **_COMMON)
    settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "dev"))
except ImportError:  # pragma: no cover
    pass


@pytest.fixture(scope="session")
def small_alignment() -> Alignment:
    """8 taxa x 300 sites; compresses to a few dozen patterns."""
    return synthetic_dataset(n_taxa=8, n_sites=300, seed=11)


@pytest.fixture(scope="session")
def medium_alignment() -> Alignment:
    """12 taxa x 600 sites (the quick trace profile's size)."""
    return synthetic_dataset(n_taxa=12, n_sites=600, seed=7)


@pytest.fixture(scope="session")
def small_patterns(small_alignment):
    return small_alignment.compress()


@pytest.fixture(scope="session")
def medium_patterns(medium_alignment):
    return medium_alignment.compress()


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture()
def small_tree(small_patterns, rng) -> Tree:
    return stepwise_addition_tree(small_patterns, rng)


@pytest.fixture()
def engine(small_patterns, small_tree) -> LikelihoodEngine:
    model = default_gtr().with_frequencies(small_patterns.base_frequencies())
    eng = LikelihoodEngine(
        small_patterns, model, GammaRates(0.7, 4), small_tree
    )
    yield eng
    eng.detach()


@pytest.fixture(scope="session")
def tiny_search_config() -> SearchConfig:
    return SearchConfig(initial_radius=2, max_radius=3, max_rounds=2)


# -- cluster fixtures --------------------------------------------------------

@pytest.fixture(scope="session")
def tiny_patterns():
    """6 taxa x 120 sites — small enough for many-process cluster tests."""
    return synthetic_dataset(n_taxa=6, n_sites=120, seed=3).compress()


@pytest.fixture(scope="session")
def fast_config() -> SearchConfig:
    return SearchConfig(initial_radius=1, max_radius=1, max_rounds=1,
                        smoothing_passes=1, final_smoothing_passes=1)


@pytest.fixture(scope="session")
def cluster_workers() -> int:
    """Worker count for cluster tests; CI sweeps 2 and 4 to catch
    scheduling nondeterminism."""
    import os

    return int(os.environ.get("REPRO_CLUSTER_WORKERS", "2"))


@pytest.fixture(scope="session")
def serial_reference(tiny_patterns, fast_config):
    """The uninterrupted single-core result every cluster run must
    reproduce bit-identically: 1 inference + 4 bootstraps, seed 9."""
    from repro.phylo import run_full_analysis

    return run_full_analysis(tiny_patterns, n_inferences=1, n_bootstraps=4,
                             config=fast_config, seed=9)
