"""Stateful property test: random edit sequences keep the tree sound.

A hypothesis RuleBasedStateMachine drives the tree through arbitrary
interleavings of SPR moves, NNIs, branch-length changes, tip
attachments and removals.  After every step the structural invariants
must hold, the taxon set must match the bookkeeping, and an attached
likelihood engine's cached evaluation must equal a fresh engine's.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.phylo import (
    GammaRates,
    LikelihoodEngine,
    Tree,
    default_gtr,
)
from repro.phylo.search import _apply_spr, spr_neighborhood
from tests.strategies import random_patterns

N_TAXA = 8
N_SITES = 60


class TreeEditMachine(RuleBasedStateMachine):
    @initialize(seed=st.integers(0, 2 ** 16))
    def setup(self, seed):
        self.rng = np.random.default_rng(seed)
        self.patterns = random_patterns(self.rng, N_TAXA, N_SITES)
        self.tree = Tree.from_tip_names(self.patterns.taxa, self.rng)
        self.model = default_gtr()
        self.engine = LikelihoodEngine(
            self.patterns, self.model, GammaRates(0.8, 2), self.tree
        )
        self.expected_tips = set(self.patterns.taxa)

    def teardown(self):
        if hasattr(self, "engine"):
            self.engine.detach()

    # -- rules ------------------------------------------------------------

    @rule(index=st.integers(0, 10 ** 6), length=st.floats(1e-6, 5.0))
    def change_length(self, index, length):
        branches = self.tree.branches
        branch = branches[index % len(branches)]
        self.tree.set_length(branch, length)

    @rule(index=st.integers(0, 10 ** 6), variant=st.integers(0, 1))
    def nni(self, index, variant):
        internal = [
            b for b in self.tree.branches
            if not b.nodes[0].is_tip and not b.nodes[1].is_tip
        ]
        if not internal:
            return
        self.tree.nni(internal[index % len(internal)], variant)

    @rule(index=st.integers(0, 10 ** 6), target_pick=st.integers(0, 10 ** 6))
    def spr(self, index, target_pick):
        branches = self.tree.branches
        prune = branches[index % len(branches)]
        keeps = [n for n in prune.nodes if not n.is_tip]
        if not keeps:
            return
        keep = keeps[0]
        targets = spr_neighborhood(self.tree, prune, keep, radius=4)
        if not targets:
            return
        _apply_spr(self.tree, prune, keep, targets[target_pick % len(targets)])

    # -- invariants ---------------------------------------------------------

    @invariant()
    def structure_valid(self):
        if not hasattr(self, "tree"):
            return
        self.tree.validate()

    @invariant()
    def taxa_preserved(self):
        if not hasattr(self, "tree"):
            return
        assert set(self.tree.tip_names()) == self.expected_tips

    @invariant()
    def cached_likelihood_matches_fresh(self):
        if not hasattr(self, "tree"):
            return
        cached = self.engine.evaluate()
        fresh = LikelihoodEngine(
            self.patterns, self.model, GammaRates(0.8, 2), self.tree
        )
        try:
            assert abs(cached - fresh.evaluate()) < 1e-9
        finally:
            fresh.detach()


TestTreeEditMachine = TreeEditMachine.TestCase
TestTreeEditMachine.settings = settings(
    max_examples=15, stateful_step_count=12, deadline=None
)
