"""Tests for the unrooted tree structure (repro.phylo.tree)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phylo import Tree, robinson_foulds
from repro.phylo.tree import MAX_BRANCH_LENGTH, MIN_BRANCH_LENGTH


def names(n):
    return [f"t{i}" for i in range(n)]


def random_tree(n, seed=0):
    return Tree.from_tip_names(names(n), np.random.default_rng(seed))


class TestConstruction:
    def test_minimal_tree(self):
        tree = random_tree(3)
        tree.validate()
        assert tree.n_tips == 3
        assert len(tree.branches) == 3

    def test_branch_count_invariant(self):
        for n in (3, 5, 10, 25):
            tree = random_tree(n, seed=n)
            assert len(tree.branches) == 2 * n - 3
            assert len(tree.inner_nodes) == n - 2

    def test_degree_invariants(self):
        tree = random_tree(12)
        for node in tree.nodes:
            assert node.degree == (1 if node.is_tip else 3)

    def test_too_few_taxa(self):
        with pytest.raises(ValueError):
            Tree.from_tip_names(["a", "b"])

    def test_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            Tree.from_tip_names(["a", "a", "b"])

    def test_find_tip(self):
        tree = random_tree(5)
        assert tree.find_tip("t3").name == "t3"
        with pytest.raises(KeyError):
            tree.find_tip("nope")

    @given(st.integers(min_value=3, max_value=40), st.integers(0, 10_000))
    def test_random_tree_invariants(self, n, seed):
        tree = Tree.from_tip_names(names(n), np.random.default_rng(seed))
        tree.validate()
        assert sorted(tree.tip_names()) == sorted(names(n))


class TestNewick:
    def test_round_trip_topology(self):
        tree = random_tree(10, seed=4)
        again = Tree.from_newick(tree.to_newick())
        assert robinson_foulds(tree, again) == 0.0

    def test_round_trip_lengths(self):
        tree = random_tree(8, seed=5)
        again = Tree.from_newick(tree.to_newick(digits=17))
        assert abs(tree.total_length() - again.total_length()) < 1e-9

    def test_rooted_input_is_unrooted(self):
        tree = Tree.from_newick("((a:1,b:1):0.5,(c:1,d:1):0.5);")
        tree.validate()
        assert tree.n_tips == 4
        assert len(tree.branches) == 5  # root edge pair merged

    def test_trifurcating_root(self):
        tree = Tree.from_newick("(a:1,b:1,(c:1,d:1):1);")
        tree.validate()
        assert tree.n_tips == 4

    def test_merged_root_edge_sums_lengths(self):
        tree = Tree.from_newick("((a:1,b:1):0.25,(c:1,d:1):0.75);")
        inner_branches = [
            b for b in tree.branches
            if not b.nodes[0].is_tip and not b.nodes[1].is_tip
        ]
        assert len(inner_branches) == 1
        assert abs(inner_branches[0].length - 1.0) < 1e-12

    def test_comments_stripped(self):
        tree = Tree.from_newick("(a:1,b:1,[a comment]c:1);")
        assert tree.n_tips == 3

    def test_missing_lengths_get_default(self):
        tree = Tree.from_newick("(a,b,(c,d));")
        tree.validate()

    def test_bad_newick_raises(self):
        for bad in ("a,b,c;", "(a,b", "(a,b,c)x y;", "((a,b),(c,d)"):
            with pytest.raises(ValueError):
                Tree.from_newick(bad)

    def test_unary_node_rejected(self):
        with pytest.raises(ValueError, match="unary"):
            Tree.from_newick("(a,b,((c)));")

    def test_scientific_notation_lengths(self):
        tree = Tree.from_newick("(a:1e-3,b:2.5E-2,c:1.0);")
        assert abs(tree.total_length() - (1e-3 + 2.5e-2 + 1.0)) < 1e-12

    @given(st.integers(min_value=3, max_value=25), st.integers(0, 1000))
    def test_round_trip_property(self, n, seed):
        tree = Tree.from_tip_names(names(n), np.random.default_rng(seed))
        again = Tree.from_newick(tree.to_newick(digits=17))
        again.validate()
        assert robinson_foulds(tree, again) == 0.0


class TestTraversal:
    def test_postorder_covers_tree(self):
        tree = random_tree(9)
        visited = tree.postorder(tree.nodes[0])
        assert len(visited) == len(tree.nodes)
        assert visited[-1][0] is tree.nodes[0]

    def test_postorder_children_before_parents(self):
        tree = random_tree(9)
        root = tree.inner_nodes[0]
        seen = set()
        for node, entry in tree.postorder(root):
            for branch in node.branches:
                if branch is not entry:
                    # children (on the far side) must already be visited
                    assert branch.other(node).index in seen
            seen.add(node.index)

    def test_subtree_tips_partition(self):
        tree = random_tree(12, seed=2)
        for branch in tree.branches:
            a, b = branch.nodes
            side_a = tree.subtree_tips(a, branch)
            side_b = tree.subtree_tips(b, branch)
            assert side_a | side_b == set(tree.tip_names())
            assert not side_a & side_b

    def test_subtree_branches_partition(self):
        tree = random_tree(10, seed=3)
        for branch in tree.branches:
            a, b = branch.nodes
            ids_a = tree.subtree_branches(a, branch)
            ids_b = tree.subtree_branches(b, branch)
            all_ids = {br.index for br in tree.branches}
            assert ids_a | ids_b | {branch.index} == all_ids
            assert not ids_a & ids_b

    def test_path_between(self):
        tree = random_tree(10, seed=6)
        tips = tree.tips
        path = tree.path_between(tips[0], tips[1])
        assert path  # non-empty
        # The path must start at tips[0] and end at tips[1].
        assert tips[0] in path[0].nodes
        assert tips[1] in path[-1].nodes

    def test_path_to_self_is_empty(self):
        tree = random_tree(5)
        node = tree.tips[0]
        assert tree.path_between(node, node) == []


class TestEdits:
    def test_attach_and_remove_tip(self):
        tree = random_tree(6, seed=8)
        target = tree.branches[0]
        tree.attach_tip("newtip", target, 0.1)
        tree.validate()
        assert tree.n_tips == 7
        tree.remove_tip(tree.find_tip("newtip"))
        tree.validate()
        assert tree.n_tips == 6

    def test_remove_tip_merges_lengths(self):
        tree = Tree.from_newick("(a:1,b:1,(c:0.5,d:0.5):2);")
        total_before = tree.total_length()
        tip_c = tree.find_tip("c")
        c_len = tip_c.branches[0].length
        tree.remove_tip(tip_c)
        tree.validate()
        # Only the tip branch disappears; the junction's edges merge.
        assert abs(tree.total_length() - (total_before - c_len)) < 1e-9

    def test_cannot_shrink_below_three(self):
        tree = random_tree(3)
        with pytest.raises(ValueError):
            tree.remove_tip(tree.tips[0])

    def test_set_length_clamps(self):
        tree = random_tree(4)
        branch = tree.branches[0]
        tree.set_length(branch, 1e-30)
        assert branch.length == MIN_BRANCH_LENGTH
        tree.set_length(branch, 1e6)
        assert branch.length == MAX_BRANCH_LENGTH

    def test_nni_preserves_invariants_and_changes_topology(self):
        tree = random_tree(8, seed=9)
        internal = next(
            b for b in tree.branches
            if not b.nodes[0].is_tip and not b.nodes[1].is_tip
        )
        before = tree.copy()
        tree.nni(internal, variant=0)
        tree.validate()
        assert robinson_foulds(before, tree) > 0

    def test_nni_two_variants_differ(self):
        newick = random_tree(8, seed=10).to_newick(digits=17)
        # Parsing the same string twice yields structurally identical
        # trees with identical branch indices.
        t0 = Tree.from_newick(newick)
        t1 = Tree.from_newick(newick)
        internal_id = next(
            b.index for b in t0.branches
            if not b.nodes[0].is_tip and not b.nodes[1].is_tip
        )
        t0.nni(t0.branch_by_id(internal_id), variant=0)
        t1.nni(t1.branch_by_id(internal_id), variant=1)
        t0.validate()
        t1.validate()
        assert robinson_foulds(t0, t1) > 0

    def test_nni_requires_internal_branch(self):
        tree = random_tree(5)
        tip_branch = tree.tips[0].branches[0]
        with pytest.raises(ValueError, match="internal"):
            tree.nni(tip_branch)

    def test_spr_valid_move(self):
        tree = random_tree(10, seed=11)
        prune = tree.branches[0]
        keep = next(n for n in prune.nodes if not n.is_tip)
        moved = prune.other(keep)
        excluded = tree.subtree_branches(moved, prune)
        excluded |= {b.index for b in keep.branches}
        target = next(
            b for b in tree.branches if b.index not in excluded
        )
        tree.spr(prune, keep, target)
        tree.validate()

    def test_spr_rejects_target_in_pruned_subtree(self):
        tree = random_tree(10, seed=12)
        # Choose a prune branch whose moved side is a large subtree.
        prune = next(
            b for b in tree.branches
            if not b.nodes[0].is_tip and not b.nodes[1].is_tip
        )
        keep, moved = prune.nodes
        inside = tree.subtree_branches(moved, prune)
        target = tree.branch_by_id(next(iter(inside)))
        with pytest.raises(ValueError, match="inside"):
            tree.spr(prune, keep, target)

    def test_spr_rejects_adjacent_target(self):
        tree = random_tree(8, seed=13)
        prune = tree.branches[0]
        keep = next(n for n in prune.nodes if not n.is_tip)
        adjacent = next(b for b in keep.branches if b is not prune)
        with pytest.raises(ValueError, match="no-op"):
            tree.spr(prune, keep, adjacent)

    def test_retired_branch_operations_fail(self):
        tree = random_tree(6, seed=14)
        tip = tree.tips[0]
        branch = tip.branches[0]
        tree.remove_tip(tip)
        assert branch.retired
        with pytest.raises(ValueError):
            tree.set_length(branch, 0.5)


class TestObservers:
    def test_length_change_notifies(self):
        tree = random_tree(5)
        dirtied = []
        tree.add_observer(dirtied.append)
        branch = tree.branches[0]
        tree.set_length(branch, branch.length + 0.1)
        assert dirtied == [branch.index]

    def test_unchanged_length_does_not_notify(self):
        tree = random_tree(5)
        dirtied = []
        tree.add_observer(dirtied.append)
        branch = tree.branches[0]
        tree.set_length(branch, branch.length)
        assert dirtied == []

    def test_retire_notifies(self):
        tree = random_tree(6)
        dirtied = []
        tree.add_observer(dirtied.append)
        target = tree.branches[0]
        tree.attach_tip("x", target, 0.1)
        assert target.index in dirtied

    def test_remove_observer(self):
        tree = random_tree(5)
        dirtied = []
        callback = dirtied.append
        tree.add_observer(callback)
        tree.remove_observer(callback)
        tree.set_length(tree.branches[0], 0.123)
        assert dirtied == []

    def test_revision_increments(self):
        tree = random_tree(5)
        before = tree.revision
        tree.set_length(tree.branches[0], 0.3)
        assert tree.revision > before


class TestBipartitionsAndRF:
    def test_bipartition_count(self):
        tree = random_tree(10, seed=15)
        # n - 3 internal branches => n - 3 non-trivial splits.
        assert len(tree.bipartitions()) == 10 - 3

    def test_rf_identity(self):
        tree = random_tree(12, seed=16)
        assert robinson_foulds(tree, tree.copy()) == 0.0

    def test_rf_symmetry(self):
        a = random_tree(10, seed=17)
        b = random_tree(10, seed=18)
        assert robinson_foulds(a, b) == robinson_foulds(b, a)

    def test_rf_normalized_range(self):
        a = random_tree(10, seed=19)
        b = random_tree(10, seed=20)
        val = robinson_foulds(a, b, normalized=True)
        assert 0.0 <= val <= 1.0

    def test_rf_detects_single_nni(self):
        tree = random_tree(10, seed=21)
        other = tree.copy()
        internal = next(
            b for b in other.branches
            if not b.nodes[0].is_tip and not b.nodes[1].is_tip
        )
        other.nni(internal)
        assert robinson_foulds(tree, other) == 2.0  # one split swapped

    def test_rf_requires_same_taxa(self):
        a = random_tree(5)
        b = Tree.from_tip_names(names(6))
        with pytest.raises(ValueError, match="taxon sets"):
            robinson_foulds(a, b)

    @given(st.integers(min_value=4, max_value=20), st.integers(0, 500))
    def test_rf_triangle_bound(self, n, seed):
        rng = np.random.default_rng(seed)
        a = Tree.from_tip_names(names(n), rng)
        b = Tree.from_tip_names(names(n), rng)
        c = Tree.from_tip_names(names(n), rng)
        ab = robinson_foulds(a, b)
        bc = robinson_foulds(b, c)
        ac = robinson_foulds(a, c)
        assert ac <= ab + bc  # symmetric difference is a metric
