"""Tests for amino-acid support (repro.phylo.protein)."""

import numpy as np
import pytest

from repro.phylo import (
    AA_STATES,
    GammaRates,
    LikelihoodEngine,
    PoissonAA,
    ProteinAlignment,
    SearchConfig,
    Tree,
    UniformRate,
    hill_climb,
    protein_model,
)
from repro.phylo.protein import (
    AA_CODE_TABLE,
    decode_protein,
    encode_protein,
)


def related_sequences(n_taxa=6, n_sites=120, seed=0):
    rng = np.random.default_rng(seed)
    base = "".join(rng.choice(list(AA_STATES), n_sites))
    seqs = {"p0": base}
    for i in range(1, n_taxa):
        s = list(base)
        for k in rng.choice(n_sites, 10 * i, replace=True):
            s[k] = rng.choice(list(AA_STATES))
        seqs[f"p{i}"] = "".join(s)
    return seqs


@pytest.fixture(scope="module")
def protein_patterns():
    return ProteinAlignment.from_sequences(related_sequences()).compress()


class TestEncoding:
    def test_round_trip_plain(self):
        text = AA_STATES
        assert decode_protein(encode_protein(text)) == text

    def test_lowercase_accepted(self):
        assert decode_protein(encode_protein("arndc")) == "ARNDC"

    def test_ambiguity_codes(self):
        codes = encode_protein("BZJX-")
        rows = AA_CODE_TABLE[codes]
        assert rows[0].sum() == 2  # B: N or D
        assert rows[1].sum() == 2  # Z: Q or E
        assert rows[2].sum() == 2  # J: I or L
        assert rows[3].sum() == 20  # X: anything
        assert rows[4].sum() == 20  # gap

    def test_selenocysteine_folds_to_cysteine(self):
        u = AA_CODE_TABLE[encode_protein("U")[0]]
        c = AA_CODE_TABLE[encode_protein("C")[0]]
        assert np.array_equal(u, c)

    def test_invalid_character(self):
        with pytest.raises(ValueError, match="invalid amino-acid"):
            encode_protein("ACDE1")

    def test_code_table_rows_are_indicators(self):
        assert set(np.unique(AA_CODE_TABLE)) == {0.0, 1.0}
        # Every plain state row is a unit vector.
        assert np.array_equal(AA_CODE_TABLE[:20], np.eye(20))


class TestProteinAlignment:
    def test_construction_and_fasta_round_trip(self):
        aln = ProteinAlignment.from_sequences(related_sequences())
        again = ProteinAlignment.from_fasta(aln.to_fasta())
        assert np.array_equal(aln.data, again.data)

    def test_compression_reconstructs(self):
        aln = ProteinAlignment.from_sequences(related_sequences(seed=3))
        pats = aln.compress()
        rebuilt = pats.patterns[:, pats.site_to_pattern]
        assert np.array_equal(rebuilt, aln.data)
        assert pats.weights.sum() == aln.n_sites

    def test_frequencies_sum_to_one(self, protein_patterns):
        freqs = protein_patterns.base_frequencies()
        assert freqs.shape == (20,)
        assert freqs.sum() == pytest.approx(1.0)

    def test_bootstrap_machinery_inherited(self, protein_patterns):
        rng = np.random.default_rng(5)
        replicate = protein_patterns.bootstrap_replicate(rng)
        assert replicate.weights.sum() == protein_patterns.n_sites
        assert type(replicate) is type(protein_patterns)

    def test_tip_is_unambiguous(self):
        aln = ProteinAlignment.from_sequences(
            {"a": "ACDE", "b": "ACDX", "c": "ACDE"}
        )
        pats = aln.compress()
        assert pats.tip_is_unambiguous(pats.taxon_index("a"))
        assert not pats.tip_is_unambiguous(pats.taxon_index("b"))


class TestProteinModels:
    def test_poisson_is_symmetric_jc_analogue(self):
        model = PoissonAA()
        assert model.n_states == 20
        p = model.transition_matrices(0.5, [1.0])[0]
        # All off-diagonals equal under equal rates and frequencies.
        off = p[~np.eye(20, dtype=bool)]
        assert np.allclose(off, off[0])
        assert np.allclose(p.sum(axis=1), 1.0)

    def test_poisson_f_uses_frequencies(self, protein_patterns):
        freqs = protein_patterns.base_frequencies()
        model = PoissonAA(freqs)
        p = model.transition_matrices(300.0, [1.0])[0]
        for row in p:
            assert np.allclose(row, model.pi, atol=1e-6)

    def test_custom_matrix_validation(self):
        with pytest.raises(ValueError, match="190"):
            protein_model((1.0,) * 100, (0.05,) * 20)
        with pytest.raises(ValueError, match="20 frequencies"):
            protein_model((1.0,) * 190, (0.25,) * 4)

    def test_custom_matrix_reversible(self):
        rng = np.random.default_rng(7)
        rates = rng.random(190) + 0.1
        freqs = rng.random(20) + 0.05
        model = protein_model(rates, freqs)
        q = model.rate_matrix
        flux = model.pi[:, None] * q
        assert np.allclose(flux, flux.T, atol=1e-9)


class TestProteinInferencePipeline:
    def test_fitch_parsimony_on_protein(self, protein_patterns):
        from repro.phylo import fitch_score, stepwise_addition_tree

        tree = stepwise_addition_tree(
            protein_patterns, np.random.default_rng(11)
        )
        tree.validate()
        score = fitch_score(tree, protein_patterns)
        assert 0 < score < protein_patterns.n_sites * 20

    def test_parsimony_masks_are_20bit(self, protein_patterns):
        masks = protein_patterns.parsimony_masks(0)
        assert masks.dtype == np.uint32
        assert (masks > 0).all()
        assert (masks < (1 << 20)).all()

    def test_identical_protein_sequences_score_zero(self):
        from repro.phylo import fitch_score
        aln = ProteinAlignment.from_sequences(
            {"a": "ACDEF", "b": "ACDEF", "c": "ACDEF"}
        )
        pats = aln.compress()
        tree = Tree.from_tip_names(pats.taxa, np.random.default_rng(0))
        assert fitch_score(tree, pats) == 0.0

    def test_infer_tree_end_to_end(self, protein_patterns):
        from repro.phylo import infer_tree

        result = infer_tree(
            protein_patterns,
            config=SearchConfig(initial_radius=1, max_radius=1,
                                max_rounds=1),
            seed=0,
        )
        assert np.isfinite(result.log_likelihood)
        tree = Tree.from_newick(result.newick)
        assert sorted(tree.tip_names()) == sorted(protein_patterns.taxa)

    def test_default_model_dispatches_to_poisson(self, protein_patterns):
        from repro.phylo.inference import default_model_for

        model = default_model_for(protein_patterns)
        assert model.n_states == 20
        assert model.name == "PoissonAA"

    def test_bootstrap_analysis_on_protein(self, protein_patterns):
        from repro.phylo import run_full_analysis

        analysis = run_full_analysis(
            protein_patterns, n_inferences=1, n_bootstraps=2,
            config=SearchConfig(initial_radius=1, max_radius=1,
                                max_rounds=1),
            seed=2,
        )
        assert analysis.supports
        assert all(0.0 <= v <= 1.0 for v in analysis.supports.values())

    def test_cli_aa_flag(self, tmp_path, capsys):
        from repro.phylo.cli import main

        aln = ProteinAlignment.from_sequences(related_sequences(5, 60, 9))
        path = tmp_path / "protein.fasta"
        path.write_text(aln.to_fasta())
        code = main(["infer", "-s", str(path), "--aa", "--rounds", "1",
                     "--radius", "1", "--max-radius", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "AA sites" in out
        assert "best tree:" in out


class TestProteinLikelihood:
    def test_branch_invariance(self, protein_patterns):
        model = PoissonAA(protein_patterns.base_frequencies())
        tree = Tree.from_tip_names(
            protein_patterns.taxa, np.random.default_rng(1)
        )
        engine = LikelihoodEngine(
            protein_patterns, model, GammaRates(0.8, 4), tree
        )
        values = [engine.evaluate(b) for b in tree.branches]
        assert max(values) - min(values) < 1e-8
        engine.detach()

    def test_two_sequence_poisson_analytic(self):
        # Poisson: P(same) = 1/20 + 19/20 exp(-20t/19).
        import math

        from repro.phylo.tree import Tree as _Tree

        aln = ProteinAlignment.from_sequences(
            {"a": "AAAC", "b": "AAAD"}
        )
        pats = aln.compress()
        t = 0.3
        tree = _Tree()
        x = tree._new_node("a")
        y = tree._new_node("b")
        tree._new_branch(x, y, t)
        engine = LikelihoodEngine(pats, PoissonAA(), UniformRate(), tree)
        e = math.exp(-20.0 * t / 19.0)
        same = math.log((1 / 20) * (1 / 20 + (19 / 20) * e))
        diff = math.log((1 / 20) * (1 / 20 - (1 / 20) * e))
        expected = 3 * same + diff
        assert engine.evaluate() == pytest.approx(expected, abs=1e-10)
        engine.detach()

    def test_makenewz_improves(self, protein_patterns):
        model = PoissonAA(protein_patterns.base_frequencies())
        tree = Tree.from_tip_names(
            protein_patterns.taxa, np.random.default_rng(2)
        )
        engine = LikelihoodEngine(
            protein_patterns, model, GammaRates(0.8, 4), tree
        )
        before = engine.evaluate()
        after = engine.optimize_all_branches(passes=2)
        assert after >= before
        engine.detach()

    def test_full_search_runs(self, protein_patterns):
        model = PoissonAA(protein_patterns.base_frequencies())
        tree = Tree.from_tip_names(
            protein_patterns.taxa, np.random.default_rng(3)
        )
        engine = LikelihoodEngine(
            protein_patterns, model, GammaRates(0.8, 4), tree
        )
        result = hill_climb(
            engine,
            SearchConfig(initial_radius=1, max_radius=2, max_rounds=2),
            np.random.default_rng(3),
        )
        assert np.isfinite(result.log_likelihood)
        engine.tree.validate()
        engine.detach()

    def test_related_sequences_beat_star_lengths(self, protein_patterns):
        # Optimized branch lengths on related sequences must give a
        # higher likelihood than absurdly long branches (signal exists).
        model = PoissonAA(protein_patterns.base_frequencies())
        tree = Tree.from_tip_names(
            protein_patterns.taxa, np.random.default_rng(4)
        )
        engine = LikelihoodEngine(protein_patterns, model, None, tree)
        optimized = engine.optimize_all_branches(passes=2)
        for branch in tree.branches:
            tree.set_length(branch, 5.0)
        saturated = engine.evaluate()
        assert optimized > saturated
        engine.detach()
