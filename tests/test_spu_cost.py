"""Tests for the first-principles SPU cost estimator and static DEVS."""

import pytest

from repro.cell import NewviewWorkload, estimate_newview
from repro.harness import get_trace, run_experiment
from repro.port import PortExecutor


class TestNewviewWorkload:
    def test_paper_defaults(self):
        w = NewviewWorkload()
        assert w.fp_ops == 25_554
        assert w.exp_calls == 150
        assert w.large_loop_iterations == 228
        assert w.conditional_checks == 228 * 4


class TestEstimateNewview:
    def test_vectorization_halves_fp_cycles(self):
        scalar = estimate_newview(vectorized=False)
        simd = estimate_newview(vectorized=True)
        assert simd.cycles["fp"] == pytest.approx(scalar.cycles["fp"] / 2)

    def test_sdk_exp_much_cheaper(self):
        lib = estimate_newview(sdk_exp=False)
        sdk = estimate_newview(sdk_exp=True)
        assert sdk.cycles["exp"] < lib.cycles["exp"] / 5

    def test_int_conditional_much_cheaper(self):
        fl = estimate_newview(int_conditionals=False)
        it = estimate_newview(int_conditionals=True)
        assert it.cycles["conditional"] < fl.cycles["conditional"] / 10

    def test_total_seconds_positive_and_consistent(self):
        est = estimate_newview()
        assert est.total_seconds > 0
        assert est.total_seconds == pytest.approx(
            sum(est.seconds(k) for k in est.cycles)
        )

    def test_exp_dominates_unoptimized(self):
        # Paper section 5.2.2: exp() takes ~50% of the unoptimized time.
        est = estimate_newview()
        assert est.cycles["exp"] > est.cycles["fp"]

    def test_optimized_kernel_is_fp_bound(self):
        est = estimate_newview(vectorized=True, sdk_exp=True,
                               int_conditionals=True)
        assert est.cycles["fp"] > est.cycles["exp"]
        assert est.cycles["fp"] > est.cycles["conditional"]

    def test_scaling_with_workload(self):
        small = estimate_newview(NewviewWorkload(large_loop_iterations=50))
        large = estimate_newview(NewviewWorkload(large_loop_iterations=500))
        assert large.cycles["conditional"] == pytest.approx(
            10 * small.cycles["conditional"]
        )


class TestValidationExperiments:
    def test_firstprinciples_passes(self):
        run_experiment("firstprinciples").assert_shape()

    def test_static_devs_passes(self):
        run_experiment("static_devs").assert_shape()

    def test_static_devs_rejects_ppe_only(self):
        ex = PortExecutor(get_trace("quick"))
        with pytest.raises(ValueError, match="PPE-only"):
            ex.static_devs("table1a", 1, 1)

    def test_static_devs_rejects_three_workers(self):
        ex = PortExecutor(get_trace("quick"))
        with pytest.raises(ValueError):
            ex.static_devs("table7", 3, 3)
