"""Final coverage batch: lighter-tested corners across the layers."""

import pathlib

import numpy as np
import pytest

from repro.cell import render_timeline
from repro.harness import get_trace
from repro.phylo import (
    Alignment,
    GammaRates,
    PoissonAA,
    ProteinAlignment,
    Tree,
    ascii_tree,
    synthetic_dataset,
)
from repro.port import PortExecutor, TaskCost, paperdata as P, stage


@pytest.fixture(scope="module")
def executor():
    return PortExecutor(get_trace("quick"), devs_batches_per_task=16)


class TestExecutorProjections:
    def test_single_precision_projection_structure(self, executor):
        data = executor.single_precision_projection(bootstraps=(1, 8))
        assert data["bootstraps"] == (1, 8)
        assert len(data["cell_sp"]) == 2
        assert data["cell_sp"][0] < data["cell_dp"][0]

    def test_dual_cell_projection_structure(self, executor):
        data = executor.dual_cell_projection(bootstraps=(1, 16))
        one, two = data[16]
        assert two == pytest.approx(one / 2)
        assert data[1][0] == data[1][1]

    def test_table_lookup_covers_paper_cells(self, executor):
        for name in P.TABLES:
            cells = executor.table(name)
            assert set(cells) == set(P.TABLES[name])
            assert all(v > 0 for v in cells.values())

    def test_table8_keys(self, executor):
        assert set(executor.table8()) == set(P.TABLE8)


class TestTaskCost:
    def test_total_is_sum(self, executor):
        cost = executor.model.task_cost(stage("table7"), workers=1)
        assert cost.total_s == pytest.approx(
            cost.ppe_s + cost.spe_s + cost.comm_s
        )

    def test_ppe_only_has_no_spe_time(self, executor):
        cost = executor.model.task_cost(stage("table1a"), workers=1)
        assert cost.spe_s == 0.0
        assert cost.comm_s == 0.0
        assert cost.offloads == 0

    def test_offload_all_reduces_offload_count(self, executor):
        only_nv = executor.model.task_cost(stage("table6"), workers=1)
        all_three = executor.model.task_cost(stage("table7"), workers=1)
        assert all_three.offloads < only_nv.offloads


class TestDrawingVariants:
    def test_ascii_tree_protein(self):
        aln = ProteinAlignment.from_sequences(
            {"pA": "ACDEF", "pB": "ACDEG", "pC": "ACDEH", "pD": "ACDEI"}
        )
        pats = aln.compress()
        tree = Tree.from_tip_names(pats.taxa, np.random.default_rng(0))
        art = ascii_tree(tree)
        for name in pats.taxa:
            assert name in art

    def test_timeline_for_llp_run(self, executor):
        result = executor.llp_devs(2, spes_per_task=4)
        text = render_timeline(result.chip, width=30)
        assert "spe0" in text and "spe4" in text


class TestAlignmentIO:
    def test_pathlike_source(self, tmp_path):
        aln = synthetic_dataset(n_taxa=4, n_sites=40, seed=2)
        path = tmp_path / "aln.fasta"
        path.write_text(aln.to_fasta())
        again = Alignment.from_fasta(pathlib.Path(path))
        assert again.n_taxa == 4

    def test_text_source_with_newlines(self):
        text = ">a\nACGT\n>b\nTGCA\n>c\nACGT\n"
        aln = Alignment.from_fasta(text)
        assert aln.n_taxa == 3


class TestSimMPIEdges:
    def test_more_workers_than_tasks(self):
        from repro.cell import Simulator, Timeout
        from repro.sched import CellTask, MasterWorker

        sim = Simulator()
        tasks = [
            CellTask(0, spe_s=1.0, ppe_s=0.0, comm_s=0.0, offloads=1,
                     n_batches=1)
        ]
        executed = []

        def execute(worker, task):
            executed.append(worker)
            yield Timeout(task.spe_s)

        driver = MasterWorker(sim, tasks, n_workers=5, execute=execute)
        makespan = driver.run()
        assert len(executed) == 1
        assert makespan >= 1.0
        sim.assert_quiescent()

    def test_zero_tasks_terminates(self):
        from repro.cell import Simulator, Timeout
        from repro.sched import MasterWorker

        sim = Simulator()

        def execute(worker, task):  # pragma: no cover - never called
            yield Timeout(1.0)

        driver = MasterWorker(sim, [], n_workers=3, execute=execute)
        driver.run()
        assert driver.completed == []


class TestModelEdges:
    def test_poisson_eigenvalues_structure(self):
        eigs = np.sort(PoissonAA().eigenvalues)
        assert abs(eigs[-1]) < 1e-9
        # The Poisson 20-state model has a 19-fold degenerate eigenvalue.
        assert np.allclose(eigs[:-1], eigs[0], atol=1e-9)

    def test_gamma_rates_name(self):
        assert GammaRates(0.5, 4).name.startswith("GAMMA")
