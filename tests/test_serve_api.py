"""The job API: request validation and the end-to-end HTTP service.

The e2e test drives the real asyncio server over a loopback socket:
submit -> stream SSE progress events -> fetch the result, then resubmit
the same alignment (shuffled taxa, duplicated sites) and assert a cache
hit that schedules no new cluster run.
"""

import asyncio
import json

import pytest

from repro.cluster import BootstopConfig
from repro.phylo import synthetic_dataset
from repro.serve import ApiError, JobService, ServeApp, parse_submission, \
    spec_from_request


def body(**overrides) -> bytes:
    payload = {
        "alignment": ">a\nACGT\n>b\nACGA\n>c\nTCGA\n",
        "model": {"n_inferences": 1, "n_bootstraps": 2, "seed": 7},
    }
    payload.update(overrides)
    return json.dumps(payload).encode()


class TestParseSubmission:
    def test_happy_path(self):
        alignment, spec, client, priority = parse_submission(body(
            client="alice", priority=3,
        ))
        assert alignment.startswith(">a")
        assert (spec.n_inferences, spec.n_bootstraps, spec.seed) == (1, 2, 7)
        assert spec.bootstop is None
        assert (client, priority) == ("alice", 3)

    def test_default_client_and_priority(self):
        _, _, client, priority = parse_submission(body())
        assert (client, priority) == ("anonymous", 10)

    @pytest.mark.parametrize("raw, code", [
        (b"not json", "body_not_json"),
        (b"[1, 2]", "body_not_object"),
        (json.dumps({"model": {}}).encode(), "alignment_missing"),
        (body(alignment=""), "alignment_missing"),
        (body(model=None), "model_invalid"),
        (json.dumps({"alignment": ">a\nAC\n"}).encode(), "model_missing"),
        (body(model={"n_inferences": 1, "n_bootstraps": 2, "seed": 0,
                     "warp_factor": 9}), "model_unknown_field"),
        (body(model={"n_inferences": 0, "n_bootstraps": 2, "seed": 0}),
         "model_invalid"),
        (body(model={"n_inferences": 1, "seed": 0}), "model_missing_field"),
        (body(priority=-1), "priority_invalid"),
        (body(priority=True), "priority_invalid"),
        (body(client=""), "client_invalid"),
        (body(bootstop="yes"), "bootstop_invalid"),
        (body(bootstop={"check_every": 0}), "bootstop_invalid"),
    ])
    def test_rejections_carry_stable_codes(self, raw, code):
        with pytest.raises(ApiError) as excinfo:
            parse_submission(raw)
        assert excinfo.value.code == code
        assert excinfo.value.status in (400, 413)

    def test_bootstop_true_uses_defaults(self):
        spec = spec_from_request(
            {"n_inferences": 1, "n_bootstraps": 200, "seed": 1},
            bootstop=True,
        )
        assert spec.bootstop == BootstopConfig()

    def test_bootstop_config_object(self):
        spec = spec_from_request(
            {"n_inferences": 1, "n_bootstraps": 200, "seed": 1},
            bootstop={"check_every": 25, "threshold": 0.05},
        )
        assert spec.bootstop.check_every == 25
        assert spec.bootstop.threshold == 0.05


# -- end-to-end over a real socket -------------------------------------------


async def _http(host, port, method, path, payload=None):
    reader, writer = await asyncio.open_connection(host, port)
    head = f"{method} {path} HTTP/1.1\r\nHost: test\r\n"
    if payload is not None:
        head += f"Content-Length: {len(payload)}\r\n"
    head += "\r\n"
    writer.write(head.encode() + (payload or b""))
    await writer.drain()
    raw = await reader.read()
    writer.close()
    status = int(raw.split(b" ", 2)[1])
    head_blob, _, body_blob = raw.partition(b"\r\n\r\n")
    return status, head_blob.decode("latin-1"), body_blob


def _sse_events(blob: bytes):
    return [line.split(": ", 1)[1]
            for line in blob.decode().splitlines()
            if line.startswith("event: ")]


@pytest.fixture(scope="module")
def service_fasta():
    return synthetic_dataset(n_taxa=6, n_sites=120, seed=3).to_fasta()


class TestServeEndToEnd:
    def test_submit_stream_result_and_cache_hit(self, tmp_path,
                                                service_fasta,
                                                cluster_workers):
        async def scenario():
            app = ServeApp(
                JobService(str(tmp_path / "root"),
                           n_workers=cluster_workers),
                port=0,
            )
            await app.start()
            h, p = app.host, app.port
            try:
                status, _, blob = await _http(h, p, "GET", "/healthz")
                assert status == 200 and json.loads(blob)["ok"] is True

                submission = json.dumps({
                    "alignment": service_fasta,
                    "model": {"n_inferences": 1, "n_bootstraps": 2,
                              "seed": 11},
                    "client": "alice",
                }).encode()
                status, _, blob = await _http(h, p, "POST", "/jobs",
                                              submission)
                assert status == 201
                job = json.loads(blob)
                assert job["cached"] is False

                # The SSE stream runs to the journal's terminal event.
                status, head, blob = await _http(
                    h, p, "GET", f"/jobs/{job['job_id']}/events")
                assert status == 200
                assert "text/event-stream" in head
                events = _sse_events(blob)
                assert events[0] == "run_started"
                assert events[-1] == "run_finished"
                assert "replicate_done" in events

                # The SSE stream ends at the journal's run_finished
                # record; the job record flips to "done" in the executor
                # thread a moment later, so tolerate a brief 409 window.
                for _ in range(50):
                    status, _, blob = await _http(
                        h, p, "GET", f"/jobs/{job['job_id']}/result")
                    if status != 409:
                        break
                    await asyncio.sleep(0.05)
                assert status == 200
                result = json.loads(blob)
                assert result["best_newick"].endswith(";")
                assert result["n_bootstraps_used"] == 2
                assert result["consensus_newick"].endswith(";")
                assert isinstance(result["supports"], list)

                status, _, blob = await _http(
                    h, p, "GET", f"/jobs/{job['job_id']}")
                assert status == 200
                assert json.loads(blob)["state"] == "done"

                # Duplicate submission: same content, different
                # presentation (taxa reversed, one site duplicated).
                lines = service_fasta.strip().split("\n")
                records = list(zip(lines[::2], lines[1::2]))
                shuffled = "".join(
                    f"{name}\n{seq + seq[0]}\n"
                    for name, seq in reversed(records)
                )
                dup = json.dumps({
                    "alignment": shuffled,
                    "model": {"n_inferences": 1, "n_bootstraps": 2,
                              "seed": 11},
                    "client": "bob",
                }).encode()
                status, _, blob = await _http(h, p, "POST", "/jobs", dup)
                assert status == 200  # hit, not created
                job2 = json.loads(blob)
                assert job2["cached"] is True
                assert job2["digest"] == job["digest"]

                # The hit scheduled no cluster work and streams a
                # single synthetic terminal event.
                status, _, blob = await _http(h, p, "GET", "/stats")
                stats = json.loads(blob)
                assert stats["runs_executed"] == 1
                assert stats["scheduler"]["dispatched"] == 1
                status, _, blob = await _http(
                    h, p, "GET", f"/jobs/{job2['job_id']}/events")
                assert _sse_events(blob) == ["cached_result"]
                status, _, blob = await _http(
                    h, p, "GET", f"/jobs/{job2['job_id']}/result")
                assert status == 200
                assert json.loads(blob) == result

                status, _, blob = await _http(h, p, "GET", "/jobs")
                assert [j["state"] for j in json.loads(blob)["jobs"]] == \
                    ["done", "done"]

                # Error surface.
                status, _, _ = await _http(h, p, "GET", "/jobs/nope")
                assert status == 404
                status, _, blob = await _http(h, p, "POST", "/jobs",
                                              b"not json")
                assert status == 400
                assert json.loads(blob)["error"] == "body_not_json"
                status, _, _ = await _http(h, p, "GET", "/nothing")
                assert status == 404
                bad_alignment = json.dumps({
                    "alignment": ">a\nACGT\n>a\nACGT\n",
                    "model": {"n_inferences": 1, "n_bootstraps": 0,
                              "seed": 0},
                }).encode()
                status, _, blob = await _http(h, p, "POST", "/jobs",
                                              bad_alignment)
                assert status == 400
                assert json.loads(blob)["error"] == "alignment_invalid"
            finally:
                await app.stop()

        asyncio.run(scenario())

    def test_restarted_service_recovers_queued_jobs(self, tmp_path,
                                                    service_fasta):
        """A submit-then-die server leaves a queued record; the next
        service over the same root re-enqueues and completes it."""
        from repro.cluster import JobSpec

        root = str(tmp_path / "root")
        first = JobService(root, n_workers=2)
        record, hit = first.submit(
            service_fasta, JobSpec(n_inferences=1, n_bootstraps=0, seed=2),
            client="alice",
        )
        assert not hit
        # The first service dies here without running anything.
        second = JobService(root, n_workers=2)
        recovered = second.recover()
        assert [r.job_id for r in recovered] == [record.job_id]
        done = second.run_next()
        assert done.state == "done"
        assert second.result(record.job_id)["best_newick"].endswith(";")

    def test_backpressure_surfaces_as_429_with_retry_after(
            self, tmp_path, service_fasta):
        """Submissions over the queue watermark bounce with a 429, a
        ``Retry-After`` header, and no durable trace — while cache hits
        sail past the full queue."""
        from repro.cluster import JobSpec

        root = str(tmp_path / "root")
        # Complete one job out of band so its result is cached before
        # the bounded server comes up.
        warm = JobService(root, n_workers=2)
        cached_spec = JobSpec(n_inferences=1, n_bootstraps=0, seed=21)
        warm.submit(service_fasta, cached_spec, client="alice")
        assert warm.run_next().state == "done"

        def submission(seed, client):
            return json.dumps({
                "alignment": service_fasta,
                "model": {"n_inferences": 1, "n_bootstraps": 0,
                          "seed": seed},
                "client": client,
            }).encode()

        async def scenario():
            service = JobService(root, n_workers=2, max_queued_total=1)
            app = ServeApp(service, port=0)
            # Freeze dispatch for the whole scenario: admitted jobs stay
            # *queued*, so every admission decision below is
            # deterministic, not a race against the executor.
            app._max_concurrent = 0
            await app.start()
            h, p = app.host, app.port
            try:
                status, _, _ = await _http(h, p, "POST", "/jobs",
                                           submission(22, "alice"))
                assert status == 201  # fills the queue to the watermark

                status, head, blob = await _http(h, p, "POST", "/jobs",
                                                 submission(23, "bob"))
                assert status == 429
                assert "429 Too Many Requests" in head
                assert "Retry-After: 5" in head
                err = json.loads(blob)
                assert err["error"] == "queue_full"
                assert err["retry_after_s"] == 5.0
                assert "total queue is full (1/1)" in err["message"]

                # The rejection left no record behind: /jobs still lists
                # exactly the warm-up job and the one queued job.
                status, _, blob = await _http(h, p, "GET", "/jobs")
                assert status == 200
                assert len(json.loads(blob)["jobs"]) == 2

                # A duplicate of the cached job bypasses the watermark.
                status, _, blob = await _http(h, p, "POST", "/jobs",
                                              submission(21, "carol"))
                assert status == 200
                assert json.loads(blob)["cached"] is True

                status, _, blob = await _http(h, p, "GET", "/stats")
                assert status == 200
                stats = json.loads(blob)
                assert stats["scheduler"]["rejected"] == 1
                assert stats["scheduler"]["max_queued_total"] == 1
            finally:
                await app.stop()

        asyncio.run(scenario())
