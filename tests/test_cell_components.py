"""Tests for the Cell component models: local store, MFC, EIB, mailboxes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cell import (
    BufferPool,
    CellBlade,
    CellTiming,
    DEFAULT_TIMING,
    DirectSignal,
    DMAError,
    EIB,
    KernelInvocation,
    LocalStore,
    LocalStoreOverflow,
    Mailbox,
    MFC,
    Simulator,
    Timeout,
)


class TestLocalStore:
    def test_capacity_accounting(self):
        store = LocalStore(256 * 1024)
        store.reserve("code", 117 * 1024)
        assert store.free_bytes == 139 * 1024
        assert store.used_bytes == 117 * 1024

    def test_overflow_raises(self):
        store = LocalStore(1024)
        store.reserve("a", 1000)
        with pytest.raises(LocalStoreOverflow, match="overlays"):
            store.reserve("b", 100)

    def test_duplicate_label_rejected(self):
        store = LocalStore(1024)
        store.reserve("x", 10)
        with pytest.raises(ValueError, match="already"):
            store.reserve("x", 10)

    def test_release_and_reuse(self):
        store = LocalStore(1024)
        store.reserve("x", 1000)
        store.release("x")
        store.reserve("y", 1024)
        assert store.free_bytes == 0

    def test_release_unknown(self):
        with pytest.raises(KeyError):
            LocalStore(100).release("nope")

    def test_resize(self):
        store = LocalStore(1000)
        store.reserve("heap", 100)
        store.resize("heap", 800)
        assert store.used_bytes == 800
        with pytest.raises(LocalStoreOverflow):
            store.resize("heap", 1200)

    def test_high_water_mark(self):
        store = LocalStore(1000)
        store.reserve("a", 600)
        store.release("a")
        store.reserve("b", 100)
        assert store.high_water_bytes == 600

    @given(st.lists(st.integers(min_value=1, max_value=5000), max_size=20))
    def test_accounting_never_negative(self, sizes):
        store = LocalStore(64 * 1024)
        for i, size in enumerate(sizes):
            try:
                store.reserve(f"seg{i}", size)
            except LocalStoreOverflow:
                pass
            assert 0 <= store.used_bytes <= store.capacity_bytes


class TestBufferPool:
    def test_paper_configuration_fits(self):
        # 117 KB code + stack + 2 x 2 KB double buffers.
        store = LocalStore(DEFAULT_TIMING.local_store_bytes)
        store.reserve("code", DEFAULT_TIMING.offloaded_code_bytes)
        store.reserve("stack", 16 * 1024)
        pool = BufferPool(store, n_buffers=2, buffer_bytes=2 * 1024)
        assert pool.available == 2
        assert store.free_bytes > 100 * 1024

    def test_iterations_per_fill_matches_paper(self):
        # "a 2 KByte buffer ... enough to store the data needed for 16
        #  loop iterations" => 128 bytes per iteration.
        store = LocalStore(64 * 1024)
        pool = BufferPool(store, 2, 2 * 1024)
        assert pool.iterations_per_fill(128) == 16

    def test_acquire_release_cycle(self):
        store = LocalStore(64 * 1024)
        pool = BufferPool(store, 2, 1024)
        a = pool.acquire()
        b = pool.acquire()
        with pytest.raises(LocalStoreOverflow):
            pool.acquire()
        pool.release_buffer(a)
        assert pool.acquire() == a
        pool.release_buffer(b)

    def test_double_release_rejected(self):
        store = LocalStore(64 * 1024)
        pool = BufferPool(store, 1, 512)
        i = pool.acquire()
        pool.release_buffer(i)
        with pytest.raises(ValueError):
            pool.release_buffer(i)

    def test_close_returns_bytes(self):
        store = LocalStore(8 * 1024)
        pool = BufferPool(store, 2, 2 * 1024)
        assert store.used_bytes == 4 * 1024
        pool.close()
        assert store.used_bytes == 0


class TestMFCRules:
    def make_mfc(self):
        sim = Simulator()
        return sim, MFC(sim, EIB(sim))

    def test_small_sizes_allowed(self):
        _, mfc = self.make_mfc()
        for size in (1, 2, 4, 8, 16, 32, 16 * 1024):
            mfc.validate_size(size)

    def test_bad_sizes_rejected(self):
        _, mfc = self.make_mfc()
        for size in (3, 5, 7, 9, 12, 17, 100):
            with pytest.raises(DMAError):
                mfc.validate_size(size)

    def test_oversize_rejected(self):
        _, mfc = self.make_mfc()
        with pytest.raises(DMAError, match="DMA list"):
            mfc.validate_size(16 * 1024 + 16)

    def test_nonpositive_rejected(self):
        _, mfc = self.make_mfc()
        with pytest.raises(DMAError):
            mfc.validate_size(0)

    def test_dma_list_entry_limit(self):
        _, mfc = self.make_mfc()
        with pytest.raises(DMAError, match="2048"):
            mfc.dma_list([16] * 2049)

    def test_empty_dma_list(self):
        _, mfc = self.make_mfc()
        with pytest.raises(DMAError, match="empty"):
            mfc.dma_list([])

    def test_bad_tag(self):
        _, mfc = self.make_mfc()
        with pytest.raises(DMAError, match="tag"):
            mfc.dma_get(16, tag=32)

    def test_bad_direction(self):
        from repro.cell.mfc import DMACommand
        _, mfc = self.make_mfc()
        with pytest.raises(DMAError, match="direction"):
            mfc._issue(DMACommand(16, 0, "sideways"))

    @given(st.integers(min_value=1, max_value=20000))
    def test_size_rule_property(self, size):
        _, mfc = self.make_mfc()
        legal = size in (1, 2, 4, 8) or (
            size % 16 == 0 and size <= 16 * 1024
        )
        if legal:
            mfc.validate_size(size)
        else:
            with pytest.raises(DMAError):
                mfc.validate_size(size)


class TestMFCTransfers:
    def test_transfer_completes_and_accounts(self):
        sim = Simulator()
        eib = EIB(sim)
        mfc = MFC(sim, eib)

        def proc():
            mfc.dma_get(4096, tag=3)
            yield from mfc.wait_tag(3)

        sim.spawn(proc())
        elapsed = sim.run()
        assert mfc.bytes_moved == 4096
        assert mfc.commands_served == 1
        # latency + bytes / ring bandwidth
        expected = DEFAULT_TIMING.dma_latency_s + 4096 / eib.ring_bandwidth
        assert abs(elapsed - expected) < 1e-12

    def test_wait_only_blocks_own_tag(self):
        sim = Simulator()
        mfc = MFC(sim, EIB(sim))
        done = []

        def proc():
            mfc.dma_get(16, tag=1)
            mfc.dma_get(16 * 1024, tag=2)
            yield from mfc.wait_tag(1)
            done.append(("tag1", mfc.tag_pending(1), mfc.tag_pending(2)))
            yield from mfc.wait_tag(2)
            done.append(("tag2", mfc.tag_pending(2)))

        sim.spawn(proc())
        sim.run()
        assert done[0] == ("tag1", 0, 1)
        assert done[1] == ("tag2", 0)

    def test_dma_list_moves_all_bytes(self):
        sim = Simulator()
        mfc = MFC(sim, EIB(sim))

        def proc():
            mfc.dma_list([16 * 1024] * 8, tag=5)
            yield from mfc.wait_tag(5)

        sim.spawn(proc())
        sim.run()
        assert mfc.bytes_moved == 8 * 16 * 1024

    def test_wait_on_drained_tag_returns_immediately(self):
        sim = Simulator()
        mfc = MFC(sim, EIB(sim))

        def proc():
            yield from mfc.wait_tag(7)
            return sim.now

        p = sim.spawn(proc())
        sim.run()
        assert p.done_event.value == 0.0


class TestEIB:
    def test_bandwidth_ceiling(self):
        # 8 concurrent 1 MB transfers cannot beat aggregate bandwidth.
        sim = Simulator()
        eib = EIB(sim)
        n, size = 8, 2 ** 20

        def mover():
            yield from eib.transfer(size)

        for _ in range(n):
            sim.spawn(mover())
        elapsed = sim.run()
        floor = n * size / DEFAULT_TIMING.eib_bandwidth_bytes_per_s
        assert elapsed >= floor - 1e-12
        assert eib.bytes_transferred == n * size

    def test_four_rings_run_concurrently(self):
        sim = Simulator()
        eib = EIB(sim)
        size = 2 ** 20

        def mover():
            yield from eib.transfer(size)

        for _ in range(4):
            sim.spawn(mover())
        elapsed = sim.run()
        # Exactly one ring-transfer time: all four proceed in parallel.
        assert abs(elapsed - size / eib.ring_bandwidth) < 1e-9

    def test_fifth_transfer_queues(self):
        sim = Simulator()
        eib = EIB(sim)
        size = 2 ** 20

        def mover():
            yield from eib.transfer(size)

        for _ in range(5):
            sim.spawn(mover())
        elapsed = sim.run()
        assert abs(elapsed - 2 * size / eib.ring_bandwidth) < 1e-9

    def test_utilization_bounded(self):
        sim = Simulator()
        eib = EIB(sim)

        def mover():
            yield from eib.transfer(10 * 2 ** 20)

        sim.spawn(mover())
        sim.run()
        assert 0.0 < eib.utilization() <= 1.0


class TestMailboxAndSignal:
    def test_mailbox_depth_four(self):
        sim = Simulator()
        mbox = Mailbox(sim)
        blocked_at = []

        def ppe():
            for i in range(5):
                yield from mbox.ppe_write(i)
            blocked_at.append(sim.now)

        sim.spawn(ppe())
        sim.run()
        # Fifth write blocks forever (nobody reads): process unfinished.
        assert blocked_at == []
        assert len(mbox.inbound) == 4

    def test_round_trip_latency_hierarchy(self):
        # Direct signalling must beat mailboxes (paper section 5.2.6).
        def measure(use_mailbox):
            sim = Simulator()
            mbox = Mailbox(sim)
            signal = DirectSignal(sim)
            reply = DirectSignal(sim, name="r")

            def ppe():
                for i in range(100):
                    if use_mailbox:
                        yield from mbox.ppe_write(i)
                        yield from mbox.ppe_read()
                    else:
                        yield from signal.write(i)
                        yield from reply.wait()

            def spe():
                while True:
                    if use_mailbox:
                        yield from mbox.spe_read()
                        yield from mbox.spe_write("ok")
                    else:
                        yield from signal.wait()
                        yield from reply.write("ok")

            sim.spawn(spe())
            sim.spawn(ppe())
            return sim.run(until=1.0)

        assert measure(False) < measure(True)

    def test_signal_delivers_value(self):
        sim = Simulator()
        signal = DirectSignal(sim)
        got = []

        def reader():
            value = yield from signal.wait()
            got.append(value)

        def writer():
            yield Timeout(1e-6)
            yield from signal.write({"kernel": "newview"})

        sim.spawn(reader())
        sim.spawn(writer())
        sim.run()
        assert got == [{"kernel": "newview"}]


class TestSPEAndPPE:
    def test_spe_requires_loaded_code(self):
        blade = CellBlade()
        spe = blade.chip.spes[0]

        def proc():
            yield from spe.execute(KernelInvocation("newview", 1e-6))

        blade.sim.spawn(proc())
        with pytest.raises(RuntimeError, match="not loaded"):
            blade.sim.run()

    def test_spe_busy_accounting(self):
        blade = CellBlade()
        spe = blade.chip.spes[0]
        spe.load_offloaded_code()

        def proc():
            yield from spe.execute(KernelInvocation("newview", 5e-6))
            yield from spe.execute(KernelInvocation("evaluate", 3e-6))

        blade.sim.spawn(proc())
        blade.sim.run()
        assert spe.kernel_count == 2
        assert abs(spe.busy_time - 8e-6) < 1e-12

    def test_double_buffering_beats_synchronous(self):
        def run(db):
            blade = CellBlade()
            spe = blade.chip.spes[0]
            spe.load_offloaded_code()

            def proc():
                invocation = KernelInvocation(
                    "newview", compute_s=200e-6, dma_bytes_in=32 * 1024
                )
                yield from spe.execute(invocation, double_buffering=db)

            blade.sim.spawn(proc())
            return blade.sim.run()

        assert run(True) < run(False)

    def test_ppe_smt_slowdown(self):
        timing = DEFAULT_TIMING
        blade = CellBlade()
        ppe = blade.chip.ppe

        def worker():
            yield from ppe.compute(1.0)

        blade.sim.spawn(worker())
        blade.sim.spawn(worker())
        elapsed = blade.sim.run()
        assert abs(elapsed - timing.ppe_smt_slowdown) < 1e-9

    def test_ppe_single_thread_full_speed(self):
        blade = CellBlade()

        def worker():
            yield from blade.chip.ppe.compute(1.0)

        blade.sim.spawn(worker())
        assert abs(blade.sim.run() - 1.0) < 1e-12

    def test_ppe_third_process_queues(self):
        blade = CellBlade()
        ppe = blade.chip.ppe

        def worker():
            yield from ppe.compute(1.0)

        for _ in range(3):
            blade.sim.spawn(worker())
        elapsed = blade.sim.run()
        # Two threads busy (contended), third waits for a slot.
        assert elapsed > DEFAULT_TIMING.ppe_smt_slowdown

    def test_context_switch_counted(self):
        blade = CellBlade()

        def worker():
            yield from blade.chip.ppe.context_switch()

        blade.sim.spawn(worker())
        blade.sim.run()
        assert blade.chip.ppe.context_switches == 1


class TestBlade:
    def test_geometry(self):
        blade = CellBlade(n_chips=2)
        assert len(blade.all_spes) == 16
        assert len(blade.chips) == 2

    def test_invalid_chip_count(self):
        with pytest.raises(ValueError):
            CellBlade(n_chips=3)

    def test_load_all_threads(self):
        blade = CellBlade()
        blade.chip.load_all_spe_threads()
        assert all(s.thread_loaded for s in blade.chip.spes)
        assert all(
            s.local_store.used_bytes
            == DEFAULT_TIMING.offloaded_code_bytes + 16 * 1024
            for s in blade.chip.spes
        )

    def test_utilization_report_keys(self):
        blade = CellBlade()
        report = blade.chip.utilization_report()
        assert "ppe" in report and "eib" in report
        assert sum(1 for k in report if k.startswith("spe")) == 8

    def test_paper_peak_constants(self):
        t = DEFAULT_TIMING
        assert t.peak_dp_gflops == 21.03
        assert t.peak_sp_gflops == 230.4
        assert t.eib_bandwidth_bytes_per_s == 204.8e9
        assert t.clock_hz == 3.2e9
        assert t.n_spes == 8
