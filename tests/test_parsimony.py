"""Tests for Fitch parsimony and stepwise-addition starting trees."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phylo import (
    Alignment,
    Tree,
    fitch_score,
    random_starting_trees,
    stepwise_addition_tree,
)
from repro.phylo.parsimony import _FitchDirections


def patterns_of(seqs):
    return Alignment.from_sequences(seqs).compress()


class TestFitchScore:
    def test_identical_sequences_score_zero(self):
        pats = patterns_of({"a": "ACGT", "b": "ACGT", "c": "ACGT"})
        tree = Tree.from_tip_names(pats.taxa, np.random.default_rng(0))
        assert fitch_score(tree, pats) == 0.0

    def test_single_difference_costs_one(self):
        pats = patterns_of({"a": "AAAA", "b": "AAAA", "c": "AAAT"})
        tree = Tree.from_tip_names(pats.taxa, np.random.default_rng(0))
        assert fitch_score(tree, pats) == 1.0

    def test_known_four_taxon_case(self):
        # Site with states A,A,T,T: 1 change on the grouping ((a,b),(c,d)),
        # and also 1 on any other 4-taxon topology (Fitch min = 1).
        pats = patterns_of({"a": "A", "b": "A", "c": "T", "d": "T"})
        tree = Tree.from_newick("((a,b),(c,d));")
        assert fitch_score(tree, pats) == 1.0

    def test_incongruent_site_costs_more(self):
        # States A,T,A,T on ((a,b),(c,d)) needs 2 changes.
        pats = patterns_of({"a": "A", "b": "T", "c": "A", "d": "T"})
        tree = Tree.from_newick("((a,b),(c,d));")
        assert fitch_score(tree, pats) == 2.0
        good = Tree.from_newick("((a,c),(b,d));")
        assert fitch_score(good, pats) == 1.0

    def test_weights_multiply_score(self):
        pats = patterns_of({"a": "AT", "b": "AT", "c": "TT"})
        tree = Tree.from_tip_names(pats.taxa, np.random.default_rng(0))
        base = fitch_score(tree, pats)
        doubled = fitch_score(tree, pats, weights=pats.weights * 2)
        assert doubled == 2 * base

    def test_ambiguity_is_free_when_compatible(self):
        # N can take any state, so it never forces a change.
        pats = patterns_of({"a": "A", "b": "N", "c": "A"})
        tree = Tree.from_tip_names(pats.taxa, np.random.default_rng(0))
        assert fitch_score(tree, pats) == 0.0

    def test_score_independent_of_evaluation_branch(self):
        from repro.phylo.parsimony import _combine

        rng = np.random.default_rng(5)
        pats = patterns_of(
            {f"t{i}": "".join(rng.choice(list("ACGT"), 20)) for i in range(7)}
        )
        tree = Tree.from_tip_names(pats.taxa, rng)
        directions = _FitchDirections(tree, pats)
        scores = set()
        for branch in tree.branches:
            u, v = branch.nodes
            su, cu = directions._value(u, branch) if u.is_tip else \
                directions.direction(u, branch)
            sv, cv = directions._value(v, branch) if v.is_tip else \
                directions.direction(v, branch)
            _, score = _combine(su, cu, sv, cv, pats.weights)
            scores.add(score)
        assert len(scores) == 1


class TestInsertionScore:
    def test_matches_attach_and_rescore(self):
        # The O(patterns) insertion score must equal a full-tree Fitch
        # recompute after actually attaching the new tip.
        rng = np.random.default_rng(7)
        seqs = {
            f"t{i}": "".join(rng.choice(list("ACGT"), 15)) for i in range(6)
        }
        pats = patterns_of(seqs)  # all six taxa
        tree = Tree.from_tip_names(pats.taxa[:5], rng)  # five in the tree
        new_name = pats.taxa[5]
        tip_row = pats.patterns[pats.taxon_index(new_name)]
        checked = 0
        tested_splits = set()
        while True:
            directions = _FitchDirections(tree, pats)
            candidate = None
            for branch in tree.branches:
                side = frozenset(tree.subtree_tips(branch.nodes[0], branch))
                split = min(
                    side, frozenset(tree.tip_names()) - side,
                    key=lambda s: (len(s), sorted(s)),
                )
                if split not in tested_splits:
                    candidate, split_key = branch, split
                    break
            if candidate is None:
                break
            tested_splits.add(split_key)
            predicted = directions.insertion_score(candidate, tip_row)
            new_tip = tree.attach_tip(new_name, candidate, 0.1)
            actual = fitch_score(tree, pats)
            assert predicted == actual
            tree.remove_tip(new_tip)
            checked += 1
        assert checked == 2 * 5 - 3  # every branch of the 5-taxon tree


class TestStepwiseAddition:
    def test_tree_is_valid_and_complete(self, small_patterns, rng):
        tree = stepwise_addition_tree(small_patterns, rng)
        tree.validate()
        assert sorted(tree.tip_names()) == sorted(small_patterns.taxa)

    def test_beats_random_tree_on_average(self, medium_patterns):
        rng = np.random.default_rng(21)
        mp_scores, random_scores = [], []
        for i in range(5):
            mp = stepwise_addition_tree(
                medium_patterns, np.random.default_rng(i)
            )
            rn = Tree.from_tip_names(
                medium_patterns.taxa, np.random.default_rng(1000 + i)
            )
            mp_scores.append(fitch_score(mp, medium_patterns))
            random_scores.append(fitch_score(rn, medium_patterns))
        assert np.mean(mp_scores) < np.mean(random_scores)

    def test_randomized_orders_give_distinct_trees(self, medium_patterns):
        trees = random_starting_trees(medium_patterns, 4, seed=3)
        newicks = {t.to_newick(include_lengths=False) for t in trees}
        assert len(newicks) > 1

    def test_deterministic_per_seed(self, small_patterns):
        t1 = random_starting_trees(small_patterns, 2, seed=9)
        t2 = random_starting_trees(small_patterns, 2, seed=9)
        for a, b in zip(t1, t2):
            assert a.to_newick() == b.to_newick()

    def test_needs_three_taxa(self):
        pats = patterns_of({"a": "ACGT", "b": "ACGT"})
        with pytest.raises(ValueError, match="3 taxa"):
            stepwise_addition_tree(pats, np.random.default_rng(0))

    @given(st.integers(0, 100))
    def test_score_never_worse_than_sites_times_taxa(self, seed):
        rng = np.random.default_rng(seed)
        seqs = {
            f"t{i}": "".join(rng.choice(list("ACGT"), 10)) for i in range(5)
        }
        pats = patterns_of(seqs)
        tree = stepwise_addition_tree(pats, rng)
        score = fitch_score(tree, pats)
        assert 0 <= score <= 10 * 5  # loose sanity bound
