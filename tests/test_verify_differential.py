"""Tests of the differential fuzzing harness (repro.verify.differential).

The quick smoke runs in tier-1; the 200-case acceptance run carries
``@pytest.mark.verify`` and is executed by the CI ``verify`` job (or
locally with ``pytest -m verify``).
"""

import numpy as np
import pytest

from repro.phylo.engine.backends.compiled import compiled_available
from repro.verify import (
    DifferentialFailure,
    compare_case,
    random_case,
    run_differential,
)

#: Every backend the fast side of the diff runs on, including partitioned
#: stripe counts that do and do not divide typical pattern counts.  The
#: "reference" entry diffs the oracle backend against the (stateless,
#: cache-free) oracle itself — a self-consistency check of the core's
#: dirty tracking.  The compiled backend joins the sweep whenever a
#: kernel flavor (numba or a C compiler) is available on the host.
BACKEND_SPECS = ["einsum", "reference", "partitioned:1", "partitioned:2",
                 "partitioned:7",
                 pytest.param("compiled:2", marks=pytest.mark.skipif(
                     compiled_available() is None,
                     reason="no compiled kernel flavor available"))]


def test_random_case_is_deterministic():
    a, b = random_case(7), random_case(7)
    assert a.description == b.description
    assert a.tree.to_newick(digits=17) == b.tree.to_newick(digits=17)
    assert (a.patterns.patterns == b.patterns.patterns).all()


def test_random_cases_cover_model_and_rate_space():
    """The seed sweep must exercise every model family and rate mode."""
    descriptions = " ".join(random_case(i).description for i in range(40))
    for token in ("JC69", "K80", "HKY85", "GTR", "uniform", "gamma", "cat"):
        assert token.lower() in descriptions.lower(), token


def test_compare_case_smoke():
    result = compare_case(random_case(3))
    assert result.ok, result.failures
    assert result.comparisons  # lnL + newview + derivatives all recorded
    assert result.max_rel_err < 1e-9


@pytest.mark.parametrize("backend", BACKEND_SPECS)
def test_compare_case_every_backend(backend):
    """lnL within 1e-9 of the oracle and bit-identical scale counts,
    whatever backend the fast engine runs on."""
    for seed in (3, 11, 19):
        result = compare_case(random_case(seed), backend=backend)
        assert result.ok, (backend, result.failures)
        assert result.max_rel_err < 1e-9


@pytest.mark.parametrize("backend", BACKEND_SPECS)
def test_run_differential_accepts_backend(backend):
    report = run_differential(n_cases=4, seed=50, backend=backend)
    assert not report.failures, report.summary()


def test_run_differential_quick():
    report = run_differential(n_cases=15, seed=0)
    assert not report.failures, report.summary()
    assert report.max_rel_err < 1e-9
    assert "all cases agree" in report.summary()


def test_impossible_tolerance_reports_reproducible_seed():
    """With a sub-ULP tolerance the harness must fail and carry the
    seed needed to reproduce the failing case."""
    report = run_differential(n_cases=5, seed=100, rel_tol=0.0)
    assert report.failures
    summary = report.summary()
    assert "reproduce:" in summary
    failing_seed = report.failures[0].seed
    assert f"--seed {failing_seed}" in summary
    # ...and the seed does reproduce the divergence.
    again = compare_case(random_case(failing_seed), rel_tol=0.0)
    assert not again.ok

    with pytest.raises(DifferentialFailure, match="reproduce:"):
        run_differential(n_cases=5, seed=100, rel_tol=0.0,
                         raise_on_failure=True)


@pytest.mark.verify
def test_differential_acceptance_200_cases():
    """The acceptance bar: 200 random (alignment, tree, model) cases
    with fast-vs-oracle agreement within 1e-9 relative tolerance."""
    report = run_differential(n_cases=200, seed=0, rel_tol=1e-9)
    assert not report.failures, report.summary()
    assert report.max_rel_err < 1e-9


@pytest.mark.verify
@pytest.mark.parametrize("backend", BACKEND_SPECS)
def test_differential_acceptance_every_backend(backend):
    """The same acceptance bar for every registered backend (fewer cases
    per backend; the seed ranges are disjoint from the 200-case run so
    the sweep widens coverage instead of repeating it)."""
    report = run_differential(n_cases=40, seed=1000, rel_tol=1e-9,
                              backend=backend)
    assert not report.failures, f"[{backend}] {report.summary()}"
    assert report.max_rel_err < 1e-9
