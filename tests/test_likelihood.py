"""Tests for the likelihood engine: newview / evaluate / makenewz."""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.phylo import (
    Alignment,
    CatRates,
    GammaRates,
    JC69,
    LikelihoodEngine,
    Tree,
    UniformRate,
    default_gtr,
    estimate_site_rates,
    synthetic_dataset,
)
from repro.phylo.dna import TIP_PARTIAL_ROWS
from repro.phylo.tree import Tree as _Tree


# ---------------------------------------------------------------------------
# brute-force oracle: enumerate all internal state assignments
# ---------------------------------------------------------------------------


def brute_force_loglik(tree, patterns, model, rate_model):
    """Exact likelihood by summing over all internal-node state vectors.

    Only feasible for tiny trees (k internal nodes -> 4^k terms per
    pattern per category), but completely independent of the engine's
    pruning, caching and scaling machinery.
    """
    inner = tree.inner_nodes
    root = inner[0]
    # Orient every branch away from the root: (parent, child) pairs.
    oriented = [
        (entry.other(node), node, entry)
        for node, entry in tree.postorder(root)
        if entry is not None
    ]
    tip_rows = {
        t.index: TIP_PARTIAL_ROWS[
            patterns.patterns[patterns.taxon_index(t.name)]
        ]
        for t in tree.tips
    }
    pi = model.pi
    total = 0.0
    for s in range(patterns.n_patterns):
        site_lik = 0.0
        for rate, cat_w in zip(rate_model.rates, rate_model.weights):
            pmats = {
                b.index: model.transition_matrices(b.length, [rate])[0]
                for b in tree.branches
            }
            cat_lik = 0.0
            for assignment in itertools.product(range(4), repeat=len(inner)):
                states = {n.index: a for n, a in zip(inner, assignment)}
                term = pi[states[root.index]]
                for parent, child, branch in oriented:
                    p = pmats[branch.index]
                    row = p[states[parent.index]]
                    if child.is_tip:
                        term *= float(row @ tip_rows[child.index][s])
                    else:
                        term *= row[states[child.index]]
                cat_lik += term
            site_lik += cat_w * cat_lik
        total += patterns.weights[s] * math.log(site_lik)
    return total


def tiny_dataset(n_taxa=4, n_sites=40, seed=5):
    aln = synthetic_dataset(n_taxa=n_taxa, n_sites=n_sites, seed=seed,
                            invariant_fraction=0.2, gamma_alpha=1.0,
                            mean_branch_length=0.15)
    return aln.compress()


class TestAgainstBruteForce:
    @pytest.mark.parametrize("n_taxa", [4, 5])
    def test_matches_enumeration_gtr_gamma(self, n_taxa):
        patterns = tiny_dataset(n_taxa=n_taxa)
        model = default_gtr()
        rates = GammaRates(0.8, 2)
        tree = Tree.from_tip_names(patterns.taxa, np.random.default_rng(1))
        engine = LikelihoodEngine(patterns, model, rates, tree)
        expected = brute_force_loglik(tree, patterns, model, rates)
        assert abs(engine.evaluate() - expected) < 1e-8
        engine.detach()

    def test_matches_enumeration_jc_uniform(self):
        patterns = tiny_dataset(n_taxa=4, seed=9)
        model = JC69()
        rates = UniformRate()
        tree = Tree.from_tip_names(patterns.taxa, np.random.default_rng(2))
        engine = LikelihoodEngine(patterns, model, rates, tree)
        expected = brute_force_loglik(tree, patterns, model, rates)
        assert abs(engine.evaluate() - expected) < 1e-8
        engine.detach()


class TestTwoTaxonAnalytic:
    def _two_taxon(self, seq_a, seq_b, t):
        tree = _Tree()
        a = tree._new_node("a")
        b = tree._new_node("b")
        tree._new_branch(a, b, t)
        patterns = Alignment.from_sequences({"a": seq_a, "b": seq_b}).compress()
        return tree, patterns

    def test_jc69_distance_formula(self):
        # lnL per site: match  -> log(1/4 (1/4 + 3/4 e^{-4t/3}))
        #               differ -> log(1/4 (1/4 - 1/4 e^{-4t/3}))
        t = 0.4
        tree, patterns = self._two_taxon("AACG", "AACT", t)
        engine = LikelihoodEngine(patterns, JC69(), UniformRate(), tree)
        e = math.exp(-4.0 * t / 3.0)
        match = math.log(0.25 * (0.25 + 0.75 * e))
        mismatch = math.log(0.25 * (0.25 - 0.25 * e))
        expected = 3 * match + 1 * mismatch
        assert abs(engine.evaluate() - expected) < 1e-10
        engine.detach()


class TestReversibilityInvariance:
    def test_loglik_same_at_every_branch(self, engine):
        values = [engine.evaluate(b) for b in engine.tree.branches]
        assert max(values) - min(values) < 1e-8

    def test_invariance_with_cat_model(self):
        patterns = tiny_dataset(n_taxa=6, n_sites=80, seed=3)
        model = default_gtr()
        tree = Tree.from_tip_names(patterns.taxa, np.random.default_rng(3))
        site_rates = np.linspace(0.2, 3.0, patterns.n_patterns)
        cat = CatRates(site_rates, n_categories=4)
        engine = LikelihoodEngine(patterns, model, cat, tree)
        values = [engine.evaluate(b) for b in tree.branches]
        assert max(values) - min(values) < 1e-8
        engine.detach()


class TestCaching:
    def test_cache_matches_fresh_engine_after_edits(self, small_patterns):
        model = default_gtr()
        rates = GammaRates(0.7, 4)
        tree = Tree.from_tip_names(
            small_patterns.taxa, np.random.default_rng(10)
        )
        engine = LikelihoodEngine(small_patterns, model, rates, tree)
        engine.evaluate()  # populate caches
        rng = np.random.default_rng(11)
        for _ in range(10):
            branch = tree.branches[rng.integers(len(tree.branches))]
            tree.set_length(branch, float(rng.random()) + 0.01)
            cached = engine.evaluate()
            fresh = LikelihoodEngine(
                small_patterns, model, rates, tree
            )
            assert abs(cached - fresh.evaluate()) < 1e-9
            fresh.detach()
        engine.detach()

    def test_cache_correct_after_nni(self, small_patterns):
        model = default_gtr()
        rates = GammaRates(0.7, 4)
        tree = Tree.from_tip_names(
            small_patterns.taxa, np.random.default_rng(12)
        )
        engine = LikelihoodEngine(small_patterns, model, rates, tree)
        engine.evaluate()
        internal = next(
            b for b in tree.branches
            if not b.nodes[0].is_tip and not b.nodes[1].is_tip
        )
        tree.nni(internal)
        fresh = LikelihoodEngine(small_patterns, model, rates, tree)
        assert abs(engine.evaluate() - fresh.evaluate()) < 1e-9
        engine.detach()
        fresh.detach()

    def test_second_evaluate_does_no_newview(self, engine):
        engine.evaluate()
        calls = engine.newview_calls
        engine.evaluate()
        assert engine.newview_calls == calls

    def test_length_change_invalidates_partially(self, engine):
        engine.evaluate(engine.tree.branches[0])
        calls_full = engine.newview_calls
        # Dirty one tip branch: only CLVs containing it recompute.
        tip_branch = engine.tree.tips[0].branches[0]
        engine.tree.set_length(tip_branch, tip_branch.length * 1.5)
        engine.evaluate(engine.tree.branches[0])
        recomputed = engine.newview_calls - calls_full
        assert 0 < recomputed < calls_full

    def test_model_change_invalidates_everything(self, engine):
        before = engine.evaluate()
        engine.set_model(JC69())
        after = engine.evaluate()
        assert before != after

    def test_detach_stops_observation(self, small_patterns, small_tree):
        model = default_gtr()
        engine = LikelihoodEngine(
            small_patterns, model, GammaRates(0.7, 4), small_tree
        )
        engine.evaluate()
        engine.detach()
        # Editing the tree after detach must not crash the engine.
        small_tree.set_length(small_tree.branches[0], 0.42)


class TestScalingDeepTrees:
    def test_deep_tree_triggers_scaling_and_stays_finite(self):
        # Each tip multiplies a factor < 1 into the CLV product, so a
        # large tree with long branches (P rows near stationary, ~0.25)
        # pushes pattern likelihoods below RAxML's 2^-256 threshold.
        n = 160
        aln = synthetic_dataset(n_taxa=n, n_sites=20, seed=8,
                                mean_branch_length=1.5,
                                invariant_fraction=0.0, gamma_alpha=None)
        patterns = aln.compress()
        tree = Tree.from_tip_names(
            patterns.taxa, np.random.default_rng(4), mean_branch_length=1.5
        )
        engine = LikelihoodEngine(
            patterns, default_gtr(), UniformRate(), tree
        )
        value = engine.evaluate()
        assert np.isfinite(value)
        total_scaled = sum(
            entry.scale_counts.sum()
            for entry in engine._clv_cache.values()
        )
        assert total_scaled > 0  # rescaling actually happened
        engine.detach()


class TestMakenewz:
    def test_improves_or_holds_likelihood(self, engine):
        before = engine.evaluate()
        branch = engine.tree.branches[0]
        _, after = engine.makenewz(branch)
        assert after >= before - 1e-9

    def test_finds_zero_derivative(self, engine):
        branch = engine.tree.branches[2]
        t, _ = engine.makenewz(branch, max_iterations=50, tolerance=1e-10)
        # Perturbing in either direction should not improve.
        base = engine.evaluate(branch)
        for factor in (0.98, 1.02):
            engine.tree.set_length(branch, t * factor)
            assert engine.evaluate(branch) <= base + 1e-6
        engine.tree.set_length(branch, t)

    def test_updates_tree_length(self, engine):
        branch = engine.tree.branches[1]
        engine.tree.set_length(branch, 3.0)  # start far from optimum
        t, _ = engine.makenewz(branch)
        assert branch.length == t
        assert t < 3.0

    def test_optimize_all_branches_monotone(self, engine):
        first = engine.optimize_all_branches(passes=1)
        second = engine.optimize_all_branches(passes=2)
        assert second >= first - 1e-9

    def test_matches_grid_search(self, engine):
        branch = engine.tree.branches[4]
        t_opt, lnl_opt = engine.makenewz(branch, max_iterations=50)
        grid = np.geomspace(1e-4, 5.0, 200)
        best_grid = -np.inf
        for t in grid:
            engine.tree.set_length(branch, float(t))
            best_grid = max(best_grid, engine.evaluate(branch))
        engine.tree.set_length(branch, t_opt)
        assert lnl_opt >= best_grid - 1e-3


class TestCATMode:
    def test_cat_engine_runs(self):
        patterns = tiny_dataset(n_taxa=6, n_sites=100, seed=13)
        tree = Tree.from_tip_names(patterns.taxa, np.random.default_rng(14))
        model = default_gtr()
        site_rates = estimate_site_rates(patterns, model, tree,
                                         rate_grid=np.geomspace(0.25, 4, 7))
        cat = CatRates(site_rates, n_categories=4)
        engine = LikelihoodEngine(patterns, model, cat, tree)
        value = engine.evaluate()
        assert np.isfinite(value)
        engine.detach()

    def test_cat_faster_than_gamma_in_patterncats(self):
        # CAT collapses the category axis: one category per pattern.
        patterns = tiny_dataset(n_taxa=5, n_sites=60, seed=15)
        tree = Tree.from_tip_names(patterns.taxa, np.random.default_rng(16))
        model = default_gtr()
        cat = CatRates(np.ones(patterns.n_patterns) +
                       np.arange(patterns.n_patterns) * 0.01, 4)
        engine = LikelihoodEngine(patterns, model, cat, tree)
        clv_entry = engine.clv(
            tree.inner_nodes[0], tree.inner_nodes[0].branches[0]
        )
        assert clv_entry.clv.shape[1] == 1  # singleton category axis
        engine.detach()

    def test_cat_requires_full_assignment(self):
        patterns = tiny_dataset(n_taxa=4, seed=17)
        tree = Tree.from_tip_names(patterns.taxa, np.random.default_rng(18))
        bad = CatRates(np.ones(3) + np.arange(3), 2)  # wrong length
        with pytest.raises(ValueError, match="every pattern"):
            LikelihoodEngine(patterns, default_gtr(), bad, tree)

    def test_mode_switch_rejected(self):
        patterns = tiny_dataset(n_taxa=4, seed=19)
        tree = Tree.from_tip_names(patterns.taxa, np.random.default_rng(20))
        engine = LikelihoodEngine(patterns, default_gtr(),
                                  GammaRates(0.7, 4), tree)
        cat = CatRates(np.linspace(0.5, 2, patterns.n_patterns), 4)
        with pytest.raises(ValueError, match="switch"):
            engine.set_rate_model(cat)
        engine.detach()


class TestSiteLogLikelihoods:
    def test_sum_matches_evaluate(self, engine):
        per_pattern = engine.site_log_likelihoods()
        total = float(engine.patterns.weights @ per_pattern)
        assert abs(total - engine.evaluate()) < 1e-9

    def test_estimate_site_rates_range(self, small_patterns, small_tree):
        grid = np.geomspace(0.25, 4.0, 5)
        rates = estimate_site_rates(
            small_patterns, default_gtr(), small_tree, rate_grid=grid
        )
        assert rates.shape == (small_patterns.n_patterns,)
        assert set(np.unique(rates)).issubset(set(grid))


class TestErrors:
    def test_engine_requires_tree(self, small_patterns):
        with pytest.raises(ValueError, match="tree"):
            LikelihoodEngine(small_patterns, default_gtr(), GammaRates(0.7, 4))

    def test_clv_of_tip_rejected(self, engine):
        tip = engine.tree.tips[0]
        with pytest.raises(ValueError, match="tip"):
            engine.clv(tip, tip.branches[0])
