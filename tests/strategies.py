"""Shared hypothesis strategies and instance builders for the suite.

Factored out of test_likelihood_properties.py / test_tree_stateful.py so
property tests, the stateful tree machine, and the repro.verify
differential tests all draw from one vocabulary of random phylogenetic
instances.  Profiles (``ci`` / ``dev`` / ``thorough``) are registered in
conftest.py; select one with ``REPRO_HYPOTHESIS_PROFILE``.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np
from hypothesis import strategies as st

from repro.phylo import (
    GTR,
    HKY85,
    JC69,
    K80,
    Alignment,
    CatRates,
    GammaRates,
    Tree,
    UniformRate,
)

__all__ = [
    "base_frequencies",
    "branch_lengths",
    "frequency",
    "gtr_rates",
    "kappas",
    "positive_rate",
    "random_patterns",
    "random_instance",
    "random_phylo_instance",
    "seeds",
    "substitution_models",
    "rate_models",
]

#: A positive exchangeability-rate parameter of a GTR matrix.
positive_rate = st.floats(min_value=0.1, max_value=8.0)
#: One (unnormalized) equilibrium base frequency.
frequency = st.floats(min_value=0.05, max_value=1.0)
#: The six GTR exchangeabilities.
gtr_rates = st.tuples(*([positive_rate] * 6))
#: The four equilibrium frequencies (models normalize them).
base_frequencies = st.tuples(*([frequency] * 4))
#: Transition/transversion ratios for K80/HKY85.
kappas = st.floats(min_value=0.5, max_value=6.0)
#: Branch lengths spanning near-zero to long (the tree clamps further).
branch_lengths = st.floats(min_value=1e-6, max_value=5.0)
#: Seeds for numpy Generators embedded in drawn instances.
seeds = st.integers(min_value=0, max_value=10_000)


@st.composite
def substitution_models(draw):
    """Any of the four named DNA models with drawn parameters."""
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return JC69()
    if kind == 1:
        return K80(kappa=draw(kappas))
    if kind == 2:
        return HKY85(kappa=draw(kappas), frequencies=draw(base_frequencies))
    return GTR(draw(gtr_rates), draw(base_frequencies))


@st.composite
def rate_models(draw, n_patterns=None):
    """Uniform or Gamma rates; CAT too when *n_patterns* is known."""
    upper = 2 if n_patterns is None else 3
    kind = draw(st.integers(0, upper - 1))
    if kind == 0:
        return UniformRate()
    if kind == 1:
        return GammaRates(
            alpha=draw(st.floats(min_value=0.2, max_value=2.0)),
            n_categories=draw(st.sampled_from([2, 4])),
        )
    site_seed = draw(seeds)
    site_rates = np.random.default_rng(site_seed).uniform(
        0.25, 4.0, n_patterns
    )
    return CatRates(site_rates, n_categories=draw(st.sampled_from([2, 3])))


def random_sequences(rng: np.random.Generator, n_taxa: int,
                     n_sites: int) -> Dict[str, str]:
    """``{name: sequence}`` of uniform random DNA."""
    return {
        f"t{i}": "".join(rng.choice(list("ACGT"), n_sites))
        for i in range(n_taxa)
    }


def random_patterns(rng: np.random.Generator, n_taxa: int = 8,
                    n_sites: int = 60):
    """A compressed random alignment (the stateful machine's builder)."""
    return Alignment.from_sequences(
        random_sequences(rng, n_taxa, n_sites)
    ).compress()


def random_instance(seed: int, n_taxa: int, n_sites: int,
                    rates: Tuple[float, ...], freqs: Tuple[float, ...]):
    """A (patterns, tree, GTR model) triple derived from one seed."""
    rng = np.random.default_rng(seed)
    patterns = random_patterns(rng, n_taxa, n_sites)
    tree = Tree.from_tip_names(patterns.taxa, rng)
    model = GTR(rates, freqs)
    return patterns, tree, model


def random_phylo_instance(seed: int, model, n_taxa: int = 7,
                          n_sites: int = 50, gamma: bool = False):
    """A full (patterns, tree, model, rate_model) quadruple for a seed.

    Pairs a drawn substitution model with a seed-derived alignment and
    random tree; ``gamma=True`` adds 4-category Gamma rates so both the
    integrated and the multi-category kernel shapes get exercised.
    """
    rng = np.random.default_rng(seed)
    patterns = random_patterns(rng, n_taxa, n_sites)
    tree = Tree.from_tip_names(patterns.taxa, rng)
    rate_model = GammaRates(0.6, 4) if gamma else None
    return patterns, tree, model, rate_model
