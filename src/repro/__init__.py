"""repro — reproduction of *RAxML-Cell: Parallel Phylogenetic Tree
Inference on the Cell Broadband Engine* (Blagojevic et al., IPPS 2007).

Subpackages
-----------
``repro.phylo``
    A working maximum-likelihood phylogenetics library (the application
    the paper ports): alignments, substitution models, the
    ``newview``/``evaluate``/``makenewz`` kernel trio, parsimony starting
    trees, SPR hill climbing, bootstrapping.
``repro.cell``
    A discrete-event simulator of the Cell Broadband Engine: PPE, SPEs
    with 256 KB local stores, MFC DMA engines, the EIB, and mailboxes.
``repro.platforms``
    Execution-time models for the comparison platforms of the paper's
    Figure 3 (Intel Xeon with HyperThreading, IBM Power5).
``repro.sched``
    The paper's scheduling models: simulated MPI master-worker, EDTLP,
    LLP, and the dynamic multigrain scheduler MGPS.
``repro.port``
    The RAxML-Cell port itself: the seven staged optimizations, the
    calibrated kernel cost model, workload tracing, and the executor
    that turns a real search trace into simulated execution times.
``repro.harness``
    One entry point per paper table/figure, with paper-vs-measured
    reporting (see EXPERIMENTS.md).
"""

__version__ = "1.0.0"

__all__ = ["phylo", "cell", "platforms", "sched", "port", "harness"]
