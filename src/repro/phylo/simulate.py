"""Sequence evolution simulation.

The paper benchmarks on ``42_SC`` — 42 organisms, DNA sequences of 1167
nucleotides, with ~250 distinct site patterns.  That alignment is not
redistributable, so the reproduction generates a synthetic stand-in by
simulating evolution under GTR+Gamma along a random tree.  Every quantity
the paper's evaluation depends on is a function of the alignment's
*dimensions* (taxa -> tree size -> kernel call counts; patterns -> loop
trip counts), which the simulator reproduces exactly; see DESIGN.md.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .alignment import Alignment
from .dna import STATES
from .models import SubstitutionModel, GTR
from .tree import Tree

__all__ = ["evolve_alignment", "synthetic_dataset", "random_tree", "default_gtr"]


def default_gtr() -> SubstitutionModel:
    """A mildly asymmetric GTR model used for synthetic data generation."""
    return GTR(
        exchangeabilities=(1.3, 3.8, 0.9, 1.1, 4.2, 1.0),
        frequencies=(0.29, 0.21, 0.24, 0.26),
    )


def random_tree(
    names: Sequence[str],
    rng: Optional[np.random.Generator] = None,
    mean_branch_length: float = 0.08,
) -> Tree:
    """A random unrooted topology with exponential branch lengths."""
    return Tree.from_tip_names(names, rng or np.random.default_rng(),
                               mean_branch_length=mean_branch_length)


def evolve_alignment(
    tree: Tree,
    model: SubstitutionModel,
    n_sites: int,
    rng: Optional[np.random.Generator] = None,
    gamma_alpha: Optional[float] = 0.8,
    invariant_fraction: float = 0.35,
) -> Alignment:
    """Simulate DNA sequences along *tree* under *model*.

    Per-site rates are drawn from a continuous Gamma(alpha, alpha)
    distribution; a fraction of sites is forced invariant (rate 0), which
    is what keeps the distinct-pattern count of real alignments (and of
    ``42_SC``) far below the site count.

    Returns an :class:`~repro.phylo.alignment.Alignment` with one row per
    tip of *tree*, in tip-name order of insertion.
    """
    rng = rng or np.random.default_rng()
    if n_sites < 1:
        raise ValueError("need at least one site")
    n_states = model.n_states

    rates = (
        rng.gamma(shape=gamma_alpha, scale=1.0 / gamma_alpha, size=n_sites)
        if gamma_alpha is not None
        else np.ones(n_sites)
    )
    if invariant_fraction > 0:
        invariant = rng.random(n_sites) < invariant_fraction
        rates[invariant] = 0.0

    pi = model.pi
    # Root the traversal at an arbitrary inner node.
    root = next(n for n in tree.nodes if not n.is_tip)
    root_states = rng.choice(n_states, size=n_sites, p=pi)

    states: dict = {root.index: root_states}
    sequences: dict = {}
    # Pre-order: parents before children.
    order = list(reversed(tree.postorder(root)))
    for node, entry in order:
        if entry is None:
            continue  # the root itself
        parent = entry.other(node)
        parent_states = states[parent.index]
        # Per-site transition matrices P(rate_s * t): shape (n_sites, 4, 4).
        p = model.transition_matrices(entry.length, rates)
        rows = p[np.arange(n_sites), parent_states, :]  # (n_sites, 4)
        # Guard against round-off: clip and renormalize before sampling.
        rows = np.clip(rows, 0.0, None)
        rows = rows / rows.sum(axis=1, keepdims=True)
        draws = rng.random(n_sites)
        child_states = (rows.cumsum(axis=1) < draws[:, None]).sum(axis=1)
        child_states = np.minimum(child_states, n_states - 1)
        if node.is_tip:
            sequences[node.name] = child_states
        else:
            states[node.index] = child_states

    if n_states == 4:
        letters = STATES
    else:
        from .protein import AA_STATES

        if n_states != len(AA_STATES):
            raise ValueError(
                f"no alphabet for a {n_states}-state model (4 = DNA, "
                f"{len(AA_STATES)} = amino acids)"
            )
        letters = AA_STATES
    alphabet = np.frombuffer(letters.encode(), dtype=np.uint8)
    named = {
        name: alphabet[states_arr].tobytes().decode()
        for name, states_arr in sequences.items()
    }
    if n_states == 4:
        return Alignment.from_sequences(named)
    from .protein import ProteinAlignment

    return ProteinAlignment.from_sequences(named)


def synthetic_dataset(
    n_taxa: int = 42,
    n_sites: int = 1167,
    seed: int = 42,
    model: Optional[SubstitutionModel] = None,
    mean_branch_length: float = 0.03,
    gamma_alpha: Optional[float] = 0.3,
    invariant_fraction: float = 0.5,
) -> Alignment:
    """A seeded synthetic dataset; defaults mimic the paper's ``42_SC``.

    With the default parameters (short branches, strong rate variation,
    half the sites invariant — typical of a conserved single-gene DNA
    alignment) the 42-taxon, 1167-site alignment compresses to ~239
    distinct patterns — matching the paper's "the number of distinct
    data patterns in a DNA alignment is on the order of 250".
    """
    rng = np.random.default_rng(np.random.SeedSequence([seed, n_taxa, n_sites]))
    names = [f"T{i:03d}" for i in range(n_taxa)]
    tree = random_tree(names, rng, mean_branch_length=mean_branch_length)
    return evolve_alignment(
        tree,
        model or default_gtr(),
        n_sites,
        rng,
        gamma_alpha=gamma_alpha,
        invariant_fraction=invariant_fraction,
    )
