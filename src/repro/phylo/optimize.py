"""Model-parameter optimization (the part of RAxML around the kernels).

RAxML alternates three optimization phases until convergence: branch
lengths (``makenewz``, already in :mod:`repro.phylo.likelihood`), the
Gamma shape parameter ``alpha``, and the GTR exchangeability rates.
This module supplies the latter two plus the alternating driver.

All optimizers are derivative-free single-parameter searches (Brent's
method via scipy), applied coordinate-wise for the five free GTR rates
— the same structure RAxML uses, which is robust because the likelihood
is smooth and unimodal in each parameter near the optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy.optimize import minimize_scalar

from .engine import LikelihoodEngine
from .models import SubstitutionModel
from .rates import GammaRates

__all__ = [
    "optimize_alpha",
    "optimize_gamma_inv",
    "optimize_exchangeabilities",
    "optimize_model",
    "ModelOptimizationResult",
]

#: Search bounds for the Gamma shape parameter (RAxML uses a similar
#: clamp; below ~0.02 the discretization degenerates).
ALPHA_BOUNDS = (0.02, 100.0)

#: Search bounds for a single exchangeability rate (relative to GT = 1).
RATE_BOUNDS = (1e-4, 100.0)


@dataclass
class ModelOptimizationResult:
    """Outcome of a full model-optimization run."""

    log_likelihood: float
    model: SubstitutionModel
    alpha: Optional[float]
    rounds: int


def optimize_alpha(
    engine: LikelihoodEngine,
    current_alpha: float,
    n_categories: Optional[int] = None,
    tolerance: float = 1e-4,
) -> Tuple[float, float]:
    """ML estimate of the Gamma shape alpha on the engine's fixed tree.

    Returns ``(alpha, log_likelihood)``.  The engine's rate model is
    replaced in place.  Requires an integrated (non-CAT) rate model.
    """
    if engine.rate_model.is_per_site:
        raise ValueError("alpha optimization applies to the Gamma model")
    n_categories = n_categories or engine.rate_model.n_categories

    def negative_lnl(log_alpha: float) -> float:
        alpha = float(np.exp(log_alpha))
        engine.set_rate_model(GammaRates(alpha, n_categories))
        return -engine.evaluate()

    lo, hi = np.log(ALPHA_BOUNDS[0]), np.log(ALPHA_BOUNDS[1])
    result = minimize_scalar(
        negative_lnl, bounds=(lo, hi), method="bounded",
        options={"xatol": tolerance},
    )
    best_alpha = float(np.exp(result.x))
    engine.set_rate_model(GammaRates(best_alpha, n_categories))
    return best_alpha, engine.evaluate()


def optimize_gamma_inv(
    engine: LikelihoodEngine,
    alpha: float = 1.0,
    p_invariant: float = 0.1,
    n_categories: Optional[int] = None,
    sweeps: int = 2,
    tolerance: float = 1e-4,
) -> Tuple[float, float, float]:
    """Joint ML fit of the Gamma shape and invariant-site proportion.

    Alternates bounded Brent searches on ``log alpha`` and
    ``p_invariant`` (the GTR+I+G model).  Returns
    ``(alpha, p_invariant, log_likelihood)`` and leaves the engine on
    the fitted rate model.
    """
    from .rates import GammaInvRates

    if engine.rate_model.is_per_site:
        raise ValueError("GTR+I+G optimization applies to integrated models")
    n_gamma = n_categories or 4

    def set_and_score(a: float, p: float) -> float:
        engine.set_rate_model(GammaInvRates(a, p, n_gamma))
        return engine.evaluate()

    best = set_and_score(alpha, p_invariant)
    for _ in range(sweeps):
        result = minimize_scalar(
            lambda la: -set_and_score(float(np.exp(la)), p_invariant),
            bounds=(np.log(ALPHA_BOUNDS[0]), np.log(ALPHA_BOUNDS[1])),
            method="bounded", options={"xatol": tolerance},
        )
        alpha = float(np.exp(result.x))
        result = minimize_scalar(
            lambda p: -set_and_score(alpha, float(p)),
            bounds=(0.0, 0.9), method="bounded",
            options={"xatol": tolerance},
        )
        p_invariant = float(result.x)
        now = set_and_score(alpha, p_invariant)
        if now - best < tolerance:
            best = now
            break
        best = now
    return alpha, p_invariant, best


def optimize_exchangeabilities(
    engine: LikelihoodEngine,
    tolerance: float = 1e-3,
    max_sweeps: int = 3,
) -> Tuple[SubstitutionModel, float]:
    """Coordinate-descent ML fit of the five free GTR rates.

    The sixth rate (GT) stays pinned at 1 — the usual identifiability
    convention.  Returns ``(model, log_likelihood)`` and updates the
    engine's model in place.
    """
    best = engine.evaluate()
    for _ in range(max_sweeps):
        improved = False
        for index in range(5):  # GT (index 5) is the reference rate
            rates = list(engine.model.exchangeabilities)

            def negative_lnl(log_rate: float) -> float:
                trial = list(rates)
                trial[index] = float(np.exp(log_rate))
                engine.set_model(engine.model.with_exchangeabilities(trial))
                return -engine.evaluate()

            lo, hi = np.log(RATE_BOUNDS[0]), np.log(RATE_BOUNDS[1])
            result = minimize_scalar(
                negative_lnl, bounds=(lo, hi), method="bounded",
                options={"xatol": tolerance},
            )
            rates[index] = float(np.exp(result.x))
            engine.set_model(engine.model.with_exchangeabilities(rates))
            now = engine.evaluate()
            if now > best + 1e-9:
                best = now
                improved = True
        if not improved:
            break
    return engine.model, best


def optimize_model(
    engine: LikelihoodEngine,
    optimize_rates: bool = True,
    optimize_shape: bool = True,
    branch_passes: int = 2,
    max_rounds: int = 5,
    tolerance: float = 0.01,
    gradient_smoothing: bool = False,
) -> ModelOptimizationResult:
    """RAxML's alternating optimization: branches / alpha / GTR rates.

    Each round smooths all branch lengths, re-fits alpha (if the rate
    model is Gamma) and re-fits the exchangeabilities; rounds repeat
    until the likelihood gain drops below *tolerance*.
    ``gradient_smoothing`` routes the branch-smoothing steps through the
    one-pass full-tree gradient (``mode="gradient"``) instead of the
    per-branch Newton sweeps.
    """
    mode = "gradient" if gradient_smoothing else "newton"
    best = engine.optimize_all_branches(passes=branch_passes, mode=mode)
    alpha: Optional[float] = None
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        before = best
        if optimize_shape and not engine.rate_model.is_per_site:
            # Recover the current alpha from the model name if possible;
            # otherwise restart from 1.0 (the optimizer is global anyway).
            alpha, best = optimize_alpha(engine, alpha or 1.0)
        if optimize_rates:
            _, best = optimize_exchangeabilities(engine)
        best = engine.optimize_all_branches(passes=branch_passes, mode=mode)
        if best - before < tolerance:
            break
    return ModelOptimizationResult(
        log_likelihood=best,
        model=engine.model,
        alpha=alpha,
        rounds=rounds,
    )
