"""Tree presentation: ASCII rendering and annotated newick output.

Small utilities a downstream user expects from a tree-inference
package: terminal-friendly cladograms (used by the CLI) and newick
serialization with bootstrap support values attached to internal
branches (the standard way RAxML publishes its ``bipartitions`` file).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional

from .tree import Branch, Node, Tree

__all__ = ["ascii_tree", "newick_with_support"]


def ascii_tree(tree: Tree, width: int = 60) -> str:
    """Render an unrooted tree as an ASCII cladogram.

    The tree is displayed rooted at an arbitrary inner node (branch
    lengths scale the horizontal extent; the display root is marked).
    """
    root = next((n for n in tree.nodes if not n.is_tip), tree.nodes[0])

    # Depth (cumulative branch length) of every node from the root.
    depths: Dict[int, float] = {root.index: 0.0}
    order: List[tuple] = []  # (node, entry) pre-order
    stack = [(root, None)]
    while stack:
        node, entry = stack.pop()
        order.append((node, entry))
        for branch in node.branches:
            if branch is not entry:
                child = branch.other(node)
                depths[child.index] = depths[node.index] + branch.length
                stack.append((child, branch))

    max_depth = max(depths.values()) or 1.0
    scale = max(width - 20, 10) / max_depth

    lines: List[str] = []

    def render(node: Node, entry: Optional[Branch], prefix: str,
               is_last: bool) -> None:
        connector = "" if entry is None else ("`-- " if is_last else "|-- ")
        length = 0.0 if entry is None else entry.length
        bar = "-" * max(int(round(length * scale)), 0)
        label = node.name if node.is_tip else "+"
        if entry is None:
            lines.append(f"{label}  (display root)")
        else:
            lines.append(f"{prefix}{connector}{bar}{label}")
        children = [b for b in node.branches if b is not entry]
        child_prefix = prefix + ("    " if is_last or entry is None else "|   ")
        for i, branch in enumerate(children):
            render(branch.other(node), branch, child_prefix,
                   i == len(children) - 1)

    render(root, None, "", True)
    return "\n".join(lines)


def newick_with_support(
    tree: Tree,
    supports: Dict[FrozenSet[str], float],
    digits: int = 6,
    percent: bool = True,
) -> str:
    """Newick with bootstrap supports as internal-node labels.

    ``supports`` maps canonical bipartitions (as produced by
    :meth:`Tree.bipartitions` / :func:`repro.phylo.support_values`) to
    values in ``[0, 1]``.  Matching internal branches get the support
    as a node label (RAxML's bipartition-file convention); percentages
    are rounded integers when ``percent`` is true.
    """
    all_names = frozenset(tree.tip_names())
    anchor = min(all_names)

    def split_of(node: Node, entry: Branch) -> FrozenSet[str]:
        side = frozenset(tree.subtree_tips(node, entry))
        return all_names - side if anchor in side else side

    def fmt_support(value: float) -> str:
        return str(int(round(value * 100))) if percent else f"{value:.3f}"

    root = next((n for n in tree.nodes if not n.is_tip), None)
    if root is None:
        return tree.to_newick(digits=digits)

    def render(node: Node, entry: Branch) -> str:
        if node.is_tip:
            return f"{node.name}:{entry.length:.{digits}g}"
        parts = [
            render(b.other(node), b) for b in node.branches if b is not entry
        ]
        label = ""
        split = split_of(node, entry)
        if split in supports:
            label = fmt_support(supports[split])
        return f"({','.join(parts)}){label}:{entry.length:.{digits}g}"

    parts = [render(b.other(root), b) for b in root.branches]
    return f"({','.join(parts)});"
