"""Preallocated CLV storage: the NumPy analogue of SPE local-store buffers.

The paper's double-buffering optimization (section 5.2.4) works because
the SPE kernels write into *preallocated* local-store buffers instead of
touching the allocator on every ``newview()``.  The reproduction's
likelihood engine used to allocate a fresh ``(n_patterns, n_cats, n)``
array per cached CLV — thousands of heap round trips per hill-climb
sweep.  :class:`ClvArena` replaces that churn with a slab allocator:

* CLV slots live in large C-contiguous blocks of shape
  ``(slots, n_patterns, n_cats, n_states)`` (plus a matching ``int64``
  block for the per-pattern scale counters);
* a free list recycles slots released by cache invalidation, so a
  steady-state search performs **zero** new slot allocations — the
  ``grown`` counter stays flat, which the engine benchmark asserts;
* every acquire/release/growth event is counted, and the counters are
  exported through :meth:`LikelihoodEngine.perf_counters` into the
  workload traces.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

__all__ = ["ClvArena", "ClvSlot"]


class ClvSlot:
    """One recyclable CLV buffer: a view into an arena block."""

    __slots__ = ("index", "clv", "scale_counts", "free")

    def __init__(self, index: int, clv: np.ndarray, scale_counts: np.ndarray):
        self.index = index
        self.clv = clv  # (n_patterns, n_cats, n_states) view
        self.scale_counts = scale_counts  # (n_patterns,) int64 view
        self.free = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "free" if self.free else "in-use"
        return f"<ClvSlot {self.index} {state} {self.clv.shape}>"


class ClvArena:
    """A growable pool of CLV slots with free-list recycling.

    Parameters
    ----------
    n_patterns, n_cats, n_states:
        Shape of each slot's CLV buffer.
    initial_slots:
        Slots preallocated up front.  The pool doubles when exhausted
        (each growth allocates one new contiguous block; existing slot
        views stay valid because blocks are never reallocated).
    """

    def __init__(self, n_patterns: int, n_cats: int, n_states: int,
                 initial_slots: int = 16):
        if min(n_patterns, n_cats, n_states) < 1:
            raise ValueError("arena dimensions must be positive")
        if initial_slots < 1:
            raise ValueError("need at least one initial slot")
        self.n_patterns = n_patterns
        self.n_cats = n_cats
        self.n_states = n_states
        self._blocks: List[np.ndarray] = []
        self._scale_blocks: List[np.ndarray] = []
        self._slots: List[ClvSlot] = []
        self._free: List[int] = []
        #: perf counters (exported via the engine into traces)
        self.acquires = 0
        self.releases = 0
        self.grown = 0  # block allocations, including the initial one
        self.high_water = 0
        self._grow(initial_slots)

    # -- pool management -----------------------------------------------------

    def _grow(self, count: int) -> None:
        block = np.empty(
            (count, self.n_patterns, self.n_cats, self.n_states),
            dtype=np.float64, order="C",
        )
        scales = np.empty((count, self.n_patterns), dtype=np.int64)
        self._blocks.append(block)
        self._scale_blocks.append(scales)
        base = len(self._slots)
        for i in range(count):
            slot = ClvSlot(base + i, block[i], scales[i])
            self._slots.append(slot)
            self._free.append(slot.index)
        self.grown += 1

    @property
    def capacity(self) -> int:
        return len(self._slots)

    @property
    def in_use(self) -> int:
        return len(self._slots) - len(self._free)

    # -- slot lifecycle -------------------------------------------------------

    def acquire(self) -> ClvSlot:
        """Hand out a slot, growing the pool (doubling) if exhausted."""
        if not self._free:
            self._grow(max(len(self._slots), 1))
        slot = self._slots[self._free.pop()]
        slot.free = False
        self.acquires += 1
        self.high_water = max(self.high_water, self.in_use)
        return slot

    def release(self, slot: ClvSlot) -> None:
        """Return a slot to the free list for recycling."""
        if slot is not self._slots[slot.index]:
            raise ValueError("slot does not belong to this arena")
        if slot.free:
            raise ValueError(f"slot {slot.index} released twice")
        slot.free = True
        self._free.append(slot.index)
        self.releases += 1

    def release_all(self) -> None:
        """Reclaim every outstanding slot (cache-wide invalidation)."""
        for slot in self._slots:
            if not slot.free:
                self.release(slot)

    # -- diagnostics ----------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        return {
            "arena_capacity": self.capacity,
            "arena_in_use": self.in_use,
            "arena_acquires": self.acquires,
            "arena_releases": self.releases,
            "arena_grown": self.grown,
            "arena_high_water": self.high_water,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ClvArena {self.in_use}/{self.capacity} slots "
            f"({self.n_patterns}x{self.n_cats}x{self.n_states})>"
        )
