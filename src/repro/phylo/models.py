"""Time-reversible substitution models (nucleotide and general n-state).

A general time-reversible (GTR-class) model over ``n`` states is defined
by ``n(n-1)/2`` exchangeability rates and ``n`` stationary frequencies.
The instantaneous rate matrix ``Q`` is normalized so that one unit of
branch length equals one expected substitution per site.  Because ``Q``
is reversible it is diagonalizable through a symmetric similarity
transform, which gives numerically stable transition-probability
matrices::

    P(t) = R  diag(exp(lambda * t))  L

with ``R = diag(pi)^-1/2 U`` and ``L = U^T diag(pi)^1/2`` for the
orthonormal eigenvectors ``U`` of the symmetrized matrix.  The same
decomposition yields analytic first and second derivatives of ``P`` with
respect to ``t``, which :mod:`repro.phylo.likelihood` uses for
Newton-Raphson branch-length optimization (the paper's ``makenewz()``).

The classic four-state DNA models (:func:`JC69`, :func:`K80`,
:func:`HKY85`, :func:`GTR`) are factories over this machinery; the
amino-acid models live in :mod:`repro.phylo.protein`.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .dna import NUM_STATES

__all__ = [
    "SubstitutionModel",
    "PMatrixCache",
    "GTR",
    "HKY85",
    "K80",
    "JC69",
    "RATE_PAIR_ORDER",
]

#: Order of the six nucleotide exchangeability parameters: the upper
#: triangle of the symmetric exchangeability matrix in state order
#: A,C,G,T.  (General n-state models use the same upper-triangle,
#: row-major convention.)
RATE_PAIR_ORDER = (
    ("A", "C"),
    ("A", "G"),
    ("A", "T"),
    ("C", "G"),
    ("C", "T"),
    ("G", "T"),
)


def _upper_triangle_indices(n: int):
    return [(i, j) for i in range(n) for j in range(i + 1, n)]


@dataclass(frozen=True)
class SubstitutionModel:
    """A normalized reversible substitution model over ``n`` states.

    Parameters
    ----------
    exchangeabilities:
        ``n(n-1)/2`` relative rates, upper triangle of the symmetric
        exchangeability matrix in row-major order.  For DNA (n = 4)
        this is :data:`RATE_PAIR_ORDER`: AC, AG, AT, CG, CT, GT, with
        GT conventionally fixed at 1.
    frequencies:
        Stationary state frequencies (positive; renormalized to sum to
        one).  Their count determines the state-space size.
    name:
        Display name.
    """

    exchangeabilities: Tuple[float, ...]
    frequencies: Tuple[float, ...]
    name: str = "GTR"

    # Derived, filled by __post_init__ (kept out of comparisons).
    _eigenvalues: np.ndarray = field(init=False, repr=False, compare=False, default=None)
    _right: np.ndarray = field(init=False, repr=False, compare=False, default=None)
    _left: np.ndarray = field(init=False, repr=False, compare=False, default=None)
    _q: np.ndarray = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        rates = np.asarray(self.exchangeabilities, dtype=np.float64)
        freqs = np.asarray(self.frequencies, dtype=np.float64)
        if freqs.ndim != 1 or len(freqs) < 2:
            raise ValueError("need at least two state frequencies")
        n = len(freqs)
        expected_rates = n * (n - 1) // 2
        if rates.shape != (expected_rates,):
            raise ValueError(
                f"a {n}-state model needs exactly {expected_rates} "
                f"exchangeability rates, got {rates.shape}"
            )
        if (rates <= 0).any():
            raise ValueError("exchangeability rates must be positive")
        if (freqs <= 0).any():
            raise ValueError("state frequencies must be positive")
        freqs = freqs / freqs.sum()
        object.__setattr__(self, "frequencies", tuple(freqs))
        object.__setattr__(self, "exchangeabilities", tuple(rates))

        # Build the exchangeability matrix S (symmetric, zero diagonal).
        s = np.zeros((n, n))
        for rate, (i, j) in zip(rates, _upper_triangle_indices(n)):
            s[i, j] = s[j, i] = rate
        q = s * freqs[None, :]
        np.fill_diagonal(q, 0.0)
        np.fill_diagonal(q, -q.sum(axis=1))
        # Normalize: expected rate  -sum_i pi_i q_ii  == 1.
        scale = -(freqs * np.diag(q)).sum()
        q = q / scale

        # Symmetrize: B = D^1/2 Q D^-1/2 with D = diag(pi).
        sqrt_pi = np.sqrt(freqs)
        b = (sqrt_pi[:, None] * q) / sqrt_pi[None, :]
        b = 0.5 * (b + b.T)  # clean round-off asymmetry
        eigenvalues, u = np.linalg.eigh(b)
        right = u / sqrt_pi[:, None]  # D^-1/2 U
        left = u.T * sqrt_pi[None, :]  # U^T D^1/2

        object.__setattr__(self, "_eigenvalues", eigenvalues)
        object.__setattr__(self, "_right", right)
        object.__setattr__(self, "_left", left)
        object.__setattr__(self, "_q", q)

    # -- core API ----------------------------------------------------------

    @property
    def n_states(self) -> int:
        """Size of the state space (4 for DNA, 20 for amino acids)."""
        return len(self.frequencies)

    @property
    def pi(self) -> np.ndarray:
        """Stationary frequencies as an array."""
        return np.asarray(self.frequencies)

    @property
    def rate_matrix(self) -> np.ndarray:
        """The normalized instantaneous rate matrix ``Q``."""
        return self._q.copy()

    @property
    def eigenvalues(self) -> np.ndarray:
        """Eigenvalues of ``Q`` (one is ~0; the rest negative)."""
        return self._eigenvalues.copy()

    def transition_matrices(self, branch_length: float, rates) -> np.ndarray:
        """Per-category transition matrices ``P(r_c * t)``.

        Parameters
        ----------
        branch_length:
            Branch length ``t`` in expected substitutions per site.
        rates:
            Iterable of per-category rate multipliers ``r_c``.

        Returns
        -------
        Array of shape ``(n_categories, n, n)``.  Rows of each matrix
        sum to one.  This is the quantity the paper's small
        ``newview()`` loop (4-25 iterations, 36 FLOPs each) computes
        per call.
        """
        if branch_length < 0:
            raise ValueError("branch length must be non-negative")
        rates = np.asarray(rates, dtype=np.float64)
        exponent = np.exp(
            self._eigenvalues[None, :] * (rates[:, None] * branch_length)
        )  # (cats, n)
        return np.einsum("ik,ck,kj->cij", self._right, exponent, self._left)

    def transition_derivatives(
        self, branch_length: float, rates
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``P``, ``dP/dt`` and ``d2P/dt2`` for each rate category.

        The derivative of ``exp(lambda r t)`` w.r.t. ``t`` is
        ``lambda r exp(lambda r t)``, so all three share one eigenbasis
        evaluation.  Used by Newton-Raphson branch optimization.
        """
        if branch_length < 0:
            raise ValueError("branch length must be non-negative")
        rates = np.asarray(rates, dtype=np.float64)
        lam = self._eigenvalues[None, :] * rates[:, None]  # (cats, n)
        e = np.exp(lam * branch_length)
        p = np.einsum("ik,ck,kj->cij", self._right, e, self._left)
        dp = np.einsum("ik,ck,kj->cij", self._right, lam * e, self._left)
        d2p = np.einsum("ik,ck,kj->cij", self._right, lam * lam * e, self._left)
        return p, dp, d2p

    def transition_matrices_batch(self, branch_lengths, rates) -> np.ndarray:
        """:meth:`transition_matrices` for ``K`` branch lengths at once.

        Returns ``(K, n_categories, n, n)`` — one eigenbasis projection
        covers every candidate, which is how the batched SPR scorer
        builds its per-candidate transition stacks in one BLAS call.
        """
        ts = np.asarray(branch_lengths, dtype=np.float64)
        if (ts < 0).any():
            raise ValueError("branch lengths must be non-negative")
        rates = np.asarray(rates, dtype=np.float64)
        exponent = np.exp(
            self._eigenvalues[None, None, :]
            * rates[None, :, None]
            * ts[:, None, None]
        )  # (K, cats, n)
        return np.einsum("ik,qck,kj->qcij", self._right, exponent, self._left)

    def transition_derivatives_batch(
        self, branch_lengths, rates
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """:meth:`transition_derivatives` for ``K`` branch lengths at once.

        Returns three ``(K, n_categories, n, n)`` stacks sharing one
        eigenbasis evaluation; feeds the vectorized Newton-Raphson of
        the batched SPR scorer.
        """
        ts = np.asarray(branch_lengths, dtype=np.float64)
        if (ts < 0).any():
            raise ValueError("branch lengths must be non-negative")
        rates = np.asarray(rates, dtype=np.float64)
        lam = self._eigenvalues[None, :] * rates[:, None]  # (cats, n)
        e = np.exp(lam[None, :, :] * ts[:, None, None])  # (K, cats, n)
        lam_e = lam[None, :, :] * e
        p = np.einsum("ik,qck,kj->qcij", self._right, e, self._left)
        dp = np.einsum("ik,qck,kj->qcij", self._right, lam_e, self._left)
        d2p = np.einsum(
            "ik,qck,kj->qcij", self._right, lam[None, :, :] * lam_e, self._left
        )
        return p, dp, d2p

    def with_frequencies(self, frequencies) -> "SubstitutionModel":
        """The same exchangeabilities with different frequencies."""
        return SubstitutionModel(
            self.exchangeabilities, tuple(np.asarray(frequencies)), self.name
        )

    def with_exchangeabilities(self, exchangeabilities) -> "SubstitutionModel":
        """The same frequencies with different exchangeability rates."""
        return SubstitutionModel(
            tuple(np.asarray(exchangeabilities)), self.frequencies, self.name
        )


class PMatrixCache:
    """Memoized ``P`` / ``(P, dP, d2P)`` stacks for one (model, rates) pair.

    The eigendecomposition is already computed once per
    :class:`SubstitutionModel`; what a search recomputes thousands of
    times over is the *projection* ``R diag(exp(lambda r t)) L`` — once
    per ``newview`` and once per Newton iteration of ``makenewz``.
    Branch lengths revisit the same values constantly (SPR candidates
    are reverted to their pre-move lengths, `MIN_BRANCH_LENGTH` clamps
    collapse many branches onto one value, Newton restarts from the
    stored length), so an LRU table keyed by the **quantized** branch
    length turns most of those projections into dictionary hits.

    Parameters
    ----------
    model:
        The substitution model whose eigensystem backs the entries.
    rates:
        Per-category (Gamma) or per-pattern (CAT) rate multipliers; the
        cache is only valid for this exact vector — the owner must call
        :meth:`invalidate` (or build a fresh cache) when either the
        model or the rates change.
    quantum:
        *Relative* branch-length quantization step.  Lengths whose
        relative difference is below one quantum share an entry
        computed at a *canonical* quantized length — never at the first
        length seen, so a cache rebuilt after :meth:`invalidate`
        reproduces every entry bit for bit regardless of lookup order
        (the chaos recovery ladder relies on this).  The key is the
        float's mantissa rounded to ``ceil(-log2(quantum))`` bits plus
        its binary exponent, and the canonical length is that rounded
        mantissa re-scaled with :func:`math.ldexp` (exactly
        representable, so no second rounding).  Quantization must be
        relative, not absolute: branches live anywhere between the
        ``1e-8`` clamp and ~10 substitutions/site, and an absolute
        snap of ``5e-13`` near the clamp is a ``5e-5`` *relative*
        perturbation — enough to push differential-oracle comparisons
        past 1e-9.  ``1e-12`` relative is far below every optimizer
        tolerance in the system (Newton uses 1e-8), so sharing never
        changes a decision.
    capacity:
        Maximum entries per table (matrices and derivative stacks are
        tracked separately); least-recently-used entries are evicted.

    ``hits`` / ``misses`` count lookups cumulatively — they survive
    :meth:`invalidate` so traces can report whole-run cache efficiency.
    """

    def __init__(self, model: "SubstitutionModel", rates,
                 quantum: float = 1e-12, capacity: int = 2048):
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.model = model
        self.rates = np.asarray(rates, dtype=np.float64)
        self.quantum = quantum
        self._mantissa_bits = max(1, int(math.ceil(-math.log2(quantum))))
        self._mantissa_scale = float(2 ** self._mantissa_bits)
        self.capacity = capacity
        self._matrices: "OrderedDict[Tuple[int, int], np.ndarray]" = OrderedDict()
        self._derivatives: "OrderedDict[Tuple[int, int], Tuple[np.ndarray, np.ndarray, np.ndarray]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def _key(self, branch_length: float) -> Tuple[int, int]:
        # frexp splits t into mantissa in [0.5, 1) and a binary
        # exponent; rounding only the mantissa keys (and later
        # canonicalizes) the length to a fixed *relative* precision.
        mantissa, exponent = math.frexp(branch_length)
        return int(round(mantissa * self._mantissa_scale)), exponent

    def _canonical(self, key: Tuple[int, int]) -> float:
        # Exactly representable: an integer mantissa of at most
        # ``_mantissa_bits + 1`` bits scaled by a power of two.
        return math.ldexp(key[0], key[1] - self._mantissa_bits)

    def matrices(self, branch_length: float) -> np.ndarray:
        """Cached :meth:`SubstitutionModel.transition_matrices`."""
        key = self._key(branch_length)
        entry = self._matrices.get(key)
        if entry is not None:
            self.hits += 1
            self._matrices.move_to_end(key)
            return entry
        derived = self._derivatives.get(key)
        if derived is not None:  # the derivative stack includes P
            self.hits += 1
            self._derivatives.move_to_end(key)
            return derived[0]
        self.misses += 1
        entry = self.model.transition_matrices(
            self._canonical(key), self.rates
        )
        entry.setflags(write=False)
        self._matrices[key] = entry
        if len(self._matrices) > self.capacity:
            self._matrices.popitem(last=False)
        return entry

    def derivatives(
        self, branch_length: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Cached :meth:`SubstitutionModel.transition_derivatives`."""
        key = self._key(branch_length)
        entry = self._derivatives.get(key)
        if entry is not None:
            self.hits += 1
            self._derivatives.move_to_end(key)
            return entry
        self.misses += 1
        entry = self.model.transition_derivatives(
            self._canonical(key), self.rates
        )
        for part in entry:
            part.setflags(write=False)
        self._derivatives[key] = entry
        if len(self._derivatives) > self.capacity:
            self._derivatives.popitem(last=False)
        return entry

    def invalidate(self) -> None:
        """Drop every entry (model-parameter or rate change)."""
        self._matrices.clear()
        self._derivatives.clear()
        self.invalidations += 1

    def counters(self) -> Dict[str, int]:
        return {
            "pmat_hits": self.hits,
            "pmat_misses": self.misses,
            "pmat_entries": len(self._matrices) + len(self._derivatives),
            "pmat_invalidations": self.invalidations,
        }

    def __len__(self) -> int:
        return len(self._matrices) + len(self._derivatives)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PMatrixCache {len(self)} entries, "
            f"{self.hits} hits / {self.misses} misses>"
        )


# -- named nucleotide model factories -----------------------------------------


def GTR(
    exchangeabilities: Sequence[float],
    frequencies: Sequence[float],
) -> SubstitutionModel:
    """General time-reversible DNA model (Tavare 1986), RAxML's default."""
    if len(frequencies) != NUM_STATES:
        raise ValueError("GTR is the four-state nucleotide model")
    return SubstitutionModel(tuple(exchangeabilities), tuple(frequencies), "GTR")


def HKY85(kappa: float = 2.0, frequencies: Optional[Sequence[float]] = None) -> SubstitutionModel:
    """Hasegawa-Kishino-Yano model: transition/transversion ratio *kappa*."""
    if frequencies is None:
        frequencies = (0.25,) * 4
    # Transitions: A<->G and C<->T.
    return SubstitutionModel(
        (1.0, kappa, 1.0, 1.0, kappa, 1.0), tuple(frequencies), "HKY85"
    )


def K80(kappa: float = 2.0) -> SubstitutionModel:
    """Kimura two-parameter model: HKY85 with equal base frequencies."""
    return SubstitutionModel(
        (1.0, kappa, 1.0, 1.0, kappa, 1.0), (0.25,) * 4, "K80"
    )


def JC69() -> SubstitutionModel:
    """Jukes-Cantor: all rates and frequencies equal."""
    return SubstitutionModel((1.0,) * 6, (0.25,) * 4, "JC69")
