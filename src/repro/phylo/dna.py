"""Nucleotide state encoding.

DNA characters are encoded as 4-bit ambiguity masks over the state order
``A, C, G, T`` (bit 0 = A .. bit 3 = T), the same representation RAxML and
most ML codes use internally.  A fully determined base has exactly one bit
set; IUPAC ambiguity codes and gaps set several bits.  The mask of a tip
character directly yields its conditional-likelihood row: a 0/1 indicator
over the four states.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "STATES",
    "NUM_STATES",
    "AMBIGUITY_CODES",
    "GAP_MASK",
    "encode_sequence",
    "decode_mask",
    "is_valid_sequence",
    "mask_matrix",
    "tip_partials",
    "TIP_PARTIAL_ROWS",
]

#: Canonical state order.  Index ``i`` of every likelihood vector refers to
#: ``STATES[i]``.
STATES = "ACGT"

#: Number of nucleotide states.
NUM_STATES = 4

#: Mask meaning "any state" (gap / unknown).
GAP_MASK = 0b1111

#: IUPAC nucleotide codes (plus gap characters) to 4-bit masks.
AMBIGUITY_CODES = {
    "A": 0b0001,
    "C": 0b0010,
    "G": 0b0100,
    "T": 0b1000,
    "U": 0b1000,  # RNA uracil treated as T
    "R": 0b0101,  # A or G (purine)
    "Y": 0b1010,  # C or T (pyrimidine)
    "S": 0b0110,  # G or C
    "W": 0b1001,  # A or T
    "K": 0b1100,  # G or T
    "M": 0b0011,  # A or C
    "B": 0b1110,  # not A
    "D": 0b1101,  # not C
    "H": 0b1011,  # not G
    "V": 0b0111,  # not T
    "N": GAP_MASK,
    "X": GAP_MASK,
    "?": GAP_MASK,
    "-": GAP_MASK,
    ".": GAP_MASK,
    "O": GAP_MASK,
}

# Build a 256-entry lookup table: byte value of (upper-cased) character to
# mask, with 0 marking invalid characters.
_CHAR_TO_MASK = np.zeros(256, dtype=np.uint8)
for _ch, _mask in AMBIGUITY_CODES.items():
    _CHAR_TO_MASK[ord(_ch)] = _mask
    _CHAR_TO_MASK[ord(_ch.lower())] = _mask

# Reverse table mask -> canonical character (most specific representation).
_MASK_TO_CHAR = ["?"] * 16
for _ch in "ACGTRYSWKMBDHVN":
    _MASK_TO_CHAR[AMBIGUITY_CODES[_ch]] = _ch
_MASK_TO_CHAR[0] = "!"  # invalid marker, never produced by encode

#: Precomputed (16, 4) matrix of tip conditional-likelihood rows: row ``m``
#: is the 0/1 indicator over states allowed by mask ``m``.  Row 0 (invalid)
#: is all zeros.
TIP_PARTIAL_ROWS = np.zeros((16, NUM_STATES), dtype=np.float64)
for _m in range(1, 16):
    for _i in range(NUM_STATES):
        if _m & (1 << _i):
            TIP_PARTIAL_ROWS[_m, _i] = 1.0
TIP_PARTIAL_ROWS.setflags(write=False)


def encode_sequence(sequence: str) -> np.ndarray:
    """Encode a DNA string into a ``uint8`` array of 4-bit ambiguity masks.

    Raises ``ValueError`` if the sequence contains a character that is not
    an IUPAC nucleotide code or gap symbol.
    """
    if not sequence.isascii():
        bad = sorted({ch for ch in sequence if not ch.isascii()})
        raise ValueError(f"invalid nucleotide characters: {bad!r}")
    raw = np.frombuffer(sequence.encode("ascii"), dtype=np.uint8)
    masks = _CHAR_TO_MASK[raw]
    if (masks == 0).any():
        bad = sorted({sequence[i] for i in np.nonzero(masks == 0)[0]})
        raise ValueError(f"invalid nucleotide characters: {bad!r}")
    return masks


def decode_mask(masks: np.ndarray) -> str:
    """Decode an array of 4-bit masks back to an IUPAC string.

    Fully ambiguous masks decode to ``N`` (the gap/unknown distinction is
    not preserved by the mask representation).
    """
    return "".join(_MASK_TO_CHAR[int(m)] for m in masks)


def is_valid_sequence(sequence: str) -> bool:
    """Return True if every character of *sequence* is a valid DNA code."""
    if not sequence.isascii():
        return False
    raw = np.frombuffer(sequence.encode("ascii"), dtype=np.uint8)
    return bool((_CHAR_TO_MASK[raw] != 0).all())


def mask_matrix(sequences) -> np.ndarray:
    """Encode an iterable of equal-length DNA strings as a 2-D mask matrix.

    Returns an array of shape ``(n_sequences, n_sites)``.
    """
    rows = [encode_sequence(s) for s in sequences]
    if rows and any(len(r) != len(rows[0]) for r in rows):
        raise ValueError("sequences have unequal lengths")
    return np.vstack(rows) if rows else np.zeros((0, 0), dtype=np.uint8)


def tip_partials(masks: np.ndarray) -> np.ndarray:
    """Expand an array of masks into tip conditional-likelihood rows.

    Input shape ``(n_sites,)`` produces output shape ``(n_sites, 4)`` where
    each row is the 0/1 indicator over permitted states.
    """
    return TIP_PARTIAL_ROWS[masks]
