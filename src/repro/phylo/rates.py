"""Among-site rate heterogeneity models.

RAxML supports two treatments of rate variation across alignment sites,
both reproduced here:

* **Gamma** (Yang 1994): site rates follow a discretized Gamma(alpha,
  alpha) distribution with equal-probability categories; every site sums
  its likelihood over all categories.  This is the model behind the
  paper's "CAT or Gamma models of rate heterogeneity" remark, and the
  per-category loop is the small (4-25 iteration) loop of ``newview()``.
* **CAT** (Stamatakis 2006): each site is *assigned* to one of ``k`` rate
  categories, so the per-site kernel touches a single category — cheaper
  and more cache-friendly, which is exactly why the paper's large loop
  executes 44 (Gamma) vs fewer FLOPs per iteration under CAT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.stats import gamma as _gamma_dist

__all__ = [
    "RateModel",
    "GammaRates",
    "GammaInvRates",
    "UniformRate",
    "CatRates",
    "discrete_gamma_rates",
]


def discrete_gamma_rates(alpha: float, n_categories: int, median: bool = False) -> np.ndarray:
    """Discretize Gamma(alpha, alpha) into equal-probability category rates.

    Uses the category *mean* method of Yang (1994) by default (the RAxML
    choice), or the quantile-median method when ``median=True``.  The
    returned rates are normalized to mean 1 so branch lengths keep their
    expected-substitutions interpretation.
    """
    if alpha <= 0:
        raise ValueError("gamma shape alpha must be positive")
    if n_categories < 1:
        raise ValueError("need at least one rate category")
    if n_categories == 1:
        return np.ones(1)
    dist = _gamma_dist(a=alpha, scale=1.0 / alpha)
    edges = dist.ppf(np.linspace(0.0, 1.0, n_categories + 1))
    if median:
        mids = dist.ppf((np.arange(n_categories) + 0.5) / n_categories)
        rates = mids
    else:
        # Mean of each slice: alpha/beta * [I(k+1 shape) cdf difference].
        upper_dist = _gamma_dist(a=alpha + 1.0, scale=1.0 / alpha)
        cdf_hi = upper_dist.cdf(edges[1:])
        cdf_lo = upper_dist.cdf(edges[:-1])
        rates = (cdf_hi - cdf_lo) * n_categories
    return rates / rates.mean()


@dataclass(frozen=True)
class RateModel:
    """Base class: a set of per-category rates plus category weighting.

    ``site_categories`` is ``None`` for models where each site integrates
    over all categories (Gamma), or an assignment array for CAT.
    """

    rates: np.ndarray
    weights: np.ndarray
    site_categories: Optional[np.ndarray] = None
    name: str = "custom"

    def __post_init__(self) -> None:
        rates = np.asarray(self.rates, dtype=np.float64)
        weights = np.asarray(self.weights, dtype=np.float64)
        if rates.ndim != 1 or weights.shape != rates.shape:
            raise ValueError("rates and weights must be 1-D and equal length")
        if (rates < 0).any():
            raise ValueError("category rates must be non-negative")
        if abs(weights.sum() - 1.0) > 1e-9:
            raise ValueError("category weights must sum to 1")
        object.__setattr__(self, "rates", rates)
        object.__setattr__(self, "weights", weights)

    @property
    def n_categories(self) -> int:
        return len(self.rates)

    @property
    def is_per_site(self) -> bool:
        """True for CAT-style per-site category assignment."""
        return self.site_categories is not None


def UniformRate() -> RateModel:
    """No rate heterogeneity: a single category of rate 1."""
    return RateModel(np.ones(1), np.ones(1), name="uniform")


def GammaRates(alpha: float = 1.0, n_categories: int = 4, median: bool = False) -> RateModel:
    """Discrete Gamma model (the RAxML/paper default of four categories)."""
    rates = discrete_gamma_rates(alpha, n_categories, median=median)
    weights = np.full(n_categories, 1.0 / n_categories)
    return RateModel(rates, weights, name=f"GAMMA({alpha:g},{n_categories})")


def GammaInvRates(alpha: float = 1.0, p_invariant: float = 0.2,
                  n_categories: int = 4) -> RateModel:
    """Gamma rate heterogeneity plus a proportion of invariant sites.

    The classic "GTR+I+G" treatment: with probability ``p_invariant`` a
    site evolves at rate zero; the remaining probability mass is spread
    over the discrete Gamma categories, whose rates are inflated by
    ``1 / (1 - p_invariant)`` so the expected rate stays one (branch
    lengths keep their substitutions-per-site meaning).
    """
    if not 0.0 <= p_invariant < 1.0:
        raise ValueError("p_invariant must be in [0, 1)")
    if p_invariant == 0.0:
        return GammaRates(alpha, n_categories)
    gamma = discrete_gamma_rates(alpha, n_categories)
    rates = np.concatenate([[0.0], gamma / (1.0 - p_invariant)])
    weights = np.concatenate(
        [[p_invariant], np.full(n_categories, (1.0 - p_invariant) / n_categories)]
    )
    return RateModel(
        rates, weights, name=f"GAMMA+I({alpha:g},{p_invariant:g},{n_categories})"
    )


def CatRates(site_rates: np.ndarray, n_categories: int = 4) -> RateModel:
    """CAT approximation: bin per-site rates into ``k`` categories.

    Sites are sorted by their (externally estimated) rates and split into
    equal-population bins; each bin's representative rate is the mean of
    its member rates, renormalized so the weighted mean rate is one.

    Parameters
    ----------
    site_rates:
        A positive rate estimate per site/pattern.
    n_categories:
        Number of CAT categories (RAxML default 25; tests use fewer).
    """
    site_rates = np.asarray(site_rates, dtype=np.float64)
    if site_rates.ndim != 1 or site_rates.size == 0:
        raise ValueError("site_rates must be a non-empty 1-D array")
    if (site_rates <= 0).any():
        raise ValueError("site rates must be positive")
    k = min(n_categories, len(np.unique(site_rates)))
    order = np.argsort(site_rates, kind="stable")
    assignment = np.empty(len(site_rates), dtype=np.intp)
    bins = np.array_split(order, k)
    rates = np.empty(k)
    for c, members in enumerate(bins):
        assignment[members] = c
        rates[c] = site_rates[members].mean()
    counts = np.bincount(assignment, minlength=k).astype(np.float64)
    weights = counts / counts.sum()
    # Normalize so the expected rate over sites is 1.
    rates = rates / (rates * weights).sum()
    return RateModel(rates, weights, site_categories=assignment, name=f"CAT({k})")
