"""Pairwise evolutionary distances and Neighbor-Joining trees.

RAxML-world analyses lean on distance methods in two places: quick
starting trees (when parsimony is overkill) and sanity checks of ML
results.  This module provides:

* :func:`jc69_distance` — the analytic Jukes-Cantor distance,
* :func:`ml_distance` — the ML distance under any reversible model and
  rate mixture, found by Newton-Raphson on the two-sequence likelihood
  (the same ``makenewz`` mathematics applied to a single branch),
* :func:`distance_matrix` — all pairs, pattern-weighted,
* :func:`neighbor_joining` — Saitou & Nei's NJ, returning a
  :class:`~repro.phylo.tree.Tree`.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from . import kernels
from .alignment import PatternAlignment
from .dna import TIP_PARTIAL_ROWS
from .models import SubstitutionModel, JC69
from .rates import RateModel, UniformRate
from .tree import MAX_BRANCH_LENGTH, MIN_BRANCH_LENGTH, Tree

__all__ = [
    "jc69_distance",
    "ml_distance",
    "distance_matrix",
    "neighbor_joining",
]

#: Distance assigned to saturated pairs (p-distance >= 3/4).
SATURATION_DISTANCE = 5.0


def _pair_stats(patterns: PatternAlignment, i: int, j: int
                ) -> Tuple[float, float]:
    """(weighted mismatches, weighted comparable sites) for a pair.

    Sites where either sequence is ambiguous in a way that overlaps the
    other's state set are counted as matches (conservative, standard).
    """
    a = patterns.patterns[i]
    b = patterns.patterns[j]
    mismatch = (a & b) == 0
    weights = patterns.weights
    return float(weights[mismatch].sum()), float(weights.sum())


def jc69_distance(patterns: PatternAlignment, i: int, j: int) -> float:
    """Jukes-Cantor distance: ``-3/4 ln(1 - 4p/3)`` on the p-distance."""
    mismatches, total = _pair_stats(patterns, i, j)
    if total == 0:
        raise ValueError("no comparable sites")
    p = mismatches / total
    if p >= 0.75:
        return SATURATION_DISTANCE
    if p == 0.0:
        return 0.0
    return -0.75 * math.log(1.0 - 4.0 * p / 3.0)


def ml_distance(
    patterns: PatternAlignment,
    i: int,
    j: int,
    model: Optional[SubstitutionModel] = None,
    rate_model: Optional[RateModel] = None,
    max_iterations: int = 50,
    tolerance: float = 1e-8,
) -> float:
    """ML distance between two sequences by Newton-Raphson.

    Maximizes the two-sequence log likelihood over the single branch
    length — exactly ``makenewz`` on a two-tip tree.  Starts from the
    JC69 estimate.
    """
    model = model or JC69()
    rate_model = rate_model or UniformRate()
    if rate_model.is_per_site:
        raise ValueError("ml_distance expects an integrated rate model")
    n_cats = rate_model.n_categories
    u = np.broadcast_to(
        TIP_PARTIAL_ROWS[patterns.patterns[i]][:, None, :],
        (patterns.n_patterns, n_cats, 4),
    )
    v = np.broadcast_to(
        TIP_PARTIAL_ROWS[patterns.patterns[j]][:, None, :],
        (patterns.n_patterns, n_cats, 4),
    )
    scale = np.zeros(patterns.n_patterns, dtype=np.int64)
    t = min(max(jc69_distance(patterns, i, j), MIN_BRANCH_LENGTH),
            MAX_BRANCH_LENGTH)
    best_t, best_lnl = t, -np.inf
    for _ in range(max_iterations):
        terms = model.transition_derivatives(t, rate_model.rates)
        lnl, d1, d2 = kernels.branch_derivatives(
            terms, model.pi, rate_model.weights, patterns.weights,
            u, v, scale,
        )
        if lnl > best_lnl:
            best_lnl, best_t = lnl, t
        if abs(d1) < tolerance:
            break
        new_t = t - d1 / d2 if d2 < 0 else (t * 2.0 if d1 > 0 else t * 0.5)
        new_t = min(max(new_t, MIN_BRANCH_LENGTH), MAX_BRANCH_LENGTH)
        if abs(new_t - t) < tolerance:
            t = new_t
            break
        t = new_t
    return best_t


def distance_matrix(
    patterns: PatternAlignment,
    method: str = "ml",
    model: Optional[SubstitutionModel] = None,
    rate_model: Optional[RateModel] = None,
) -> np.ndarray:
    """Symmetric pairwise distance matrix over the alignment's taxa."""
    n = patterns.n_taxa
    out = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            if method == "ml":
                d = ml_distance(patterns, i, j, model, rate_model)
            elif method == "jc":
                d = jc69_distance(patterns, i, j)
            else:
                raise ValueError(f"unknown distance method {method!r}")
            out[i, j] = out[j, i] = d
    return out


def neighbor_joining(matrix: np.ndarray, names: List[str]) -> Tree:
    """Saitou & Nei neighbor joining; returns an unrooted tree.

    Negative branch-length estimates (possible with NJ on noisy
    distances) are clamped to the minimum branch length.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    n = len(names)
    if matrix.shape != (n, n):
        raise ValueError("matrix shape does not match the name list")
    if n < 3:
        raise ValueError("neighbor joining needs at least 3 taxa")
    if not np.allclose(matrix, matrix.T, atol=1e-9):
        raise ValueError("distance matrix must be symmetric")
    if (np.diag(matrix) != 0).any():
        raise ValueError("distance matrix diagonal must be zero")

    # Work on growing newick fragments; lengths formatted at the end.
    labels = [f"{name}" for name in names]
    dist = matrix.copy()
    active = list(range(n))
    fragments = {k: labels[k] for k in active}

    def fmt(length: float) -> str:
        return f":{max(length, MIN_BRANCH_LENGTH):.10g}"

    while len(active) > 3:
        m = len(active)
        sub = dist[np.ix_(active, active)]
        totals = sub.sum(axis=1)
        q = (m - 2) * sub - totals[:, None] - totals[None, :]
        np.fill_diagonal(q, np.inf)
        a_idx, b_idx = np.unravel_index(np.argmin(q), q.shape)
        a, b = active[a_idx], active[b_idx]
        d_ab = dist[a, b]
        limb_a = 0.5 * d_ab + (totals[a_idx] - totals[b_idx]) / (2 * (m - 2))
        limb_b = d_ab - limb_a
        # New internal node u replaces a; distances via the NJ update.
        new_fragment = (
            f"({fragments[a]}{fmt(limb_a)},{fragments[b]}{fmt(limb_b)})"
        )
        for k in active:
            if k in (a, b):
                continue
            d_uk = 0.5 * (dist[a, k] + dist[b, k] - d_ab)
            dist[a, k] = dist[k, a] = max(d_uk, 0.0)
        fragments[a] = new_fragment
        active.remove(b)

    # Final three-way join (the unrooted trifurcation).
    x, y, z = active
    lx = 0.5 * (dist[x, y] + dist[x, z] - dist[y, z])
    ly = 0.5 * (dist[x, y] + dist[y, z] - dist[x, z])
    lz = 0.5 * (dist[x, z] + dist[y, z] - dist[x, y])
    newick = (
        f"({fragments[x]}{fmt(lx)},{fragments[y]}{fmt(ly)},"
        f"{fragments[z]}{fmt(lz)});"
    )
    return Tree.from_newick(newick)
