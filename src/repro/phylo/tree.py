"""Unrooted binary phylogenetic trees.

Trees are stored as explicit node/branch graphs: tips have degree one,
inner nodes degree three, so a tree over ``n`` taxa has ``n - 2`` inner
nodes and ``2n - 3`` branches.  Branch objects carry a never-reused
integer id; topology edits *retire* old branches and create new ones, and
registered observers are told about every retirement or length change.
The likelihood engine uses that protocol to invalidate exactly the
conditional-likelihood vectors whose subtree was touched — the same lazy
recomputation discipline that keeps RAxML's ``newview()`` call count (the
paper reports 230,500 calls for one ``42_SC`` inference) far below a
recompute-everything strategy.

Supported edits are the two used by RAxML's rapid hill climbing: NNI
(nearest-neighbour interchange) and SPR (subtree pruning and regrafting).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

__all__ = ["Node", "Branch", "Tree", "robinson_foulds"]

#: Smallest / largest branch lengths ever stored (RAxML uses comparable
#: clamps to keep the likelihood finite).
MIN_BRANCH_LENGTH = 1e-8
MAX_BRANCH_LENGTH = 50.0


class Node:
    """A vertex of the tree: a tip (named, degree 1) or inner node."""

    __slots__ = ("index", "name", "branches")

    def __init__(self, index: int, name: Optional[str] = None):
        self.index = index
        self.name = name
        self.branches: List["Branch"] = []

    @property
    def is_tip(self) -> bool:
        return self.name is not None

    @property
    def degree(self) -> int:
        return len(self.branches)

    def neighbors(self) -> List["Node"]:
        return [b.other(self) for b in self.branches]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.name if self.is_tip else f"inner{self.index}"
        return f"<Node {label} deg={self.degree}>"


class Branch:
    """An edge with a length; ids are unique and never reused."""

    __slots__ = ("index", "_nodes", "_length", "retired")

    def __init__(self, index: int, a: Node, b: Node, length: float):
        self.index = index
        self._nodes = (a, b)
        self._length = float(length)
        self.retired = False

    @property
    def nodes(self) -> Tuple[Node, Node]:
        return self._nodes

    @property
    def length(self) -> float:
        return self._length

    def other(self, node: Node) -> Node:
        a, b = self._nodes
        if node is a:
            return b
        if node is b:
            return a
        raise ValueError("node is not an endpoint of this branch")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        a, b = self._nodes
        return f"<Branch {self.index} {a.index}-{b.index} len={self._length:.4g}>"


class Tree:
    """A mutable unrooted binary tree over named tips.

    Observers registered via :meth:`add_observer` receive
    ``callback(branch_id)`` whenever a branch is retired (removed from the
    topology) or its length changes; a cached quantity that depends on
    that branch is then stale.
    """

    def __init__(self) -> None:
        self._nodes: List[Node] = []
        self._branches: Dict[int, Branch] = {}
        self._next_node = 0
        self._next_branch = 0
        self._observers: List[Callable[[int], None]] = []
        self.revision = 0

    # -- construction ------------------------------------------------------

    @classmethod
    def from_tip_names(cls, names: Sequence[str], rng: Optional[np.random.Generator] = None,
                       mean_branch_length: float = 0.1) -> "Tree":
        """A random topology by sequential random taxon addition."""
        names = list(names)
        if len(set(names)) != len(names):
            raise ValueError("duplicate taxon names")
        if len(names) < 3:
            raise ValueError("an unrooted tree needs at least 3 taxa")
        rng = rng or np.random.default_rng()

        def draw() -> float:
            return float(rng.exponential(mean_branch_length)) + MIN_BRANCH_LENGTH

        tree = cls()
        order = list(names)
        rng.shuffle(order)
        tips = [tree._new_node(n) for n in order[:3]]
        center = tree._new_node()
        for t in tips:
            tree._new_branch(t, center, draw())
        for name in order[3:]:
            target = tree.branches[rng.integers(len(tree.branches))]
            tree.attach_tip(name, target, draw(), draw())
        tree.validate()
        return tree

    @classmethod
    def from_newick(cls, text: str) -> "Tree":
        """Parse a newick string into an unrooted tree.

        A rooted (bifurcating-root) input is unrooted by suppressing the
        root node and merging its two incident edges.
        """
        parser = _NewickParser(text)
        tree = cls()
        root_children = parser.parse()

        def build(item) -> Tuple[Node, float]:
            name, length, children = item
            if not children:
                if not name:
                    raise ValueError("newick tip without a name")
                return tree._new_node(name), length
            node = tree._new_node()
            if len(children) == 1:
                raise ValueError("unary (degree-2) newick node not supported")
            for child in children:
                child_node, child_len = build(child)
                tree._new_branch(node, child_node, child_len)
            return node, length

        if len(root_children) < 2:
            raise ValueError("newick root must have at least two children")
        if len(root_children) == 2:
            # Rooted input: connect the two root subtrees directly.
            left, llen = build(root_children[0])
            right, rlen = build(root_children[1])
            tree._new_branch(left, right, llen + rlen)
        else:
            root = tree._new_node()
            for child in root_children:
                child_node, child_len = build(child)
                tree._new_branch(root, child_node, child_len)
        tree.validate()
        return tree

    # -- observers ----------------------------------------------------------

    def add_observer(self, callback: Callable[[int], None]) -> None:
        """Register a callback invoked with each dirtied branch id."""
        self._observers.append(callback)

    def remove_observer(self, callback: Callable[[int], None]) -> None:
        self._observers.remove(callback)

    def _notify(self, branch_id: int) -> None:
        for cb in self._observers:
            cb(branch_id)

    # -- primitive graph edits ----------------------------------------------

    def _new_node(self, name: Optional[str] = None) -> Node:
        node = Node(self._next_node, name)
        self._next_node += 1
        self._nodes.append(node)
        return node

    def _new_branch(self, a: Node, b: Node, length: float) -> Branch:
        length = min(max(length, MIN_BRANCH_LENGTH), MAX_BRANCH_LENGTH)
        branch = Branch(self._next_branch, a, b, length)
        self._next_branch += 1
        self._branches[branch.index] = branch
        a.branches.append(branch)
        b.branches.append(branch)
        self.revision += 1
        return branch

    def _retire_branch(self, branch: Branch) -> None:
        if branch.retired:
            raise ValueError("branch already retired")
        branch.retired = True
        del self._branches[branch.index]
        for node in branch.nodes:
            node.branches.remove(branch)
        self.revision += 1
        self._notify(branch.index)

    def _drop_node(self, node: Node) -> None:
        if node.branches:
            raise ValueError("cannot drop a connected node")
        self._nodes.remove(node)

    # -- accessors ------------------------------------------------------------

    @property
    def nodes(self) -> List[Node]:
        return list(self._nodes)

    @property
    def branches(self) -> List[Branch]:
        return list(self._branches.values())

    @property
    def tips(self) -> List[Node]:
        return [n for n in self._nodes if n.is_tip]

    @property
    def inner_nodes(self) -> List[Node]:
        return [n for n in self._nodes if not n.is_tip]

    @property
    def n_tips(self) -> int:
        return sum(1 for n in self._nodes if n.is_tip)

    def tip_names(self) -> List[str]:
        return sorted(n.name for n in self._nodes if n.is_tip)

    def find_tip(self, name: str) -> Node:
        for node in self._nodes:
            if node.name == name:
                return node
        raise KeyError(f"no tip named {name!r}")

    def branch_by_id(self, branch_id: int) -> Branch:
        return self._branches[branch_id]

    def total_length(self) -> float:
        """Sum of all branch lengths (the 'tree length')."""
        return sum(b.length for b in self._branches.values())

    def set_length(self, branch: Branch, length: float) -> None:
        """Change a branch length (clamped), notifying observers."""
        if branch.retired:
            raise ValueError("cannot set length of a retired branch")
        length = min(max(float(length), MIN_BRANCH_LENGTH), MAX_BRANCH_LENGTH)
        if length != branch._length:
            branch._length = length
            self.revision += 1
            self._notify(branch.index)

    # -- traversal -------------------------------------------------------------

    def postorder(self, node: Node, entry: Optional[Branch] = None
                  ) -> List[Tuple[Node, Optional[Branch]]]:
        """Post-order traversal of the subtree at *node* away from *entry*.

        Yields ``(node, entry_branch)`` pairs, children before parents.
        With ``entry=None`` the whole tree is traversed from *node*.
        """
        out: List[Tuple[Node, Optional[Branch]]] = []
        stack: List[Tuple[Node, Optional[Branch], bool]] = [(node, entry, False)]
        while stack:
            current, came_from, expanded = stack.pop()
            if expanded:
                out.append((current, came_from))
                continue
            stack.append((current, came_from, True))
            for branch in current.branches:
                if branch is not came_from:
                    stack.append((branch.other(current), branch, False))
        return out

    def subtree_branches(self, node: Node, entry: Branch) -> Set[int]:
        """Ids of all branches in the subtree at *node* away from *entry*."""
        ids: Set[int] = set()
        stack = [(node, entry)]
        while stack:
            current, came_from = stack.pop()
            for branch in current.branches:
                if branch is not came_from:
                    ids.add(branch.index)
                    stack.append((branch.other(current), branch))
        return ids

    def subtree_tips(self, node: Node, entry: Branch) -> Set[str]:
        """Tip names in the subtree at *node* away from *entry*."""
        names: Set[str] = set()
        stack = [(node, entry)]
        while stack:
            current, came_from = stack.pop()
            if current.is_tip:
                names.add(current.name)
            for branch in current.branches:
                if branch is not came_from:
                    stack.append((branch.other(current), branch))
        return names

    def path_between(self, a: Node, b: Node) -> List[Branch]:
        """The unique branch path from *a* to *b*."""
        parent: Dict[int, Tuple[Node, Branch]] = {}
        stack = [a]
        seen = {a.index}
        while stack:
            current = stack.pop()
            if current is b:
                break
            for branch in current.branches:
                nxt = branch.other(current)
                if nxt.index not in seen:
                    seen.add(nxt.index)
                    parent[nxt.index] = (current, branch)
                    stack.append(nxt)
        if b.index not in parent and a is not b:
            raise ValueError("nodes are not connected")
        path: List[Branch] = []
        current = b
        while current is not a:
            prev, branch = parent[current.index]
            path.append(branch)
            current = prev
        path.reverse()
        return path

    # -- topology edits ----------------------------------------------------------

    def attach_tip(self, name: str, target: Branch, tip_length: float,
                   split_at: Optional[float] = None) -> Node:
        """Attach a new tip in the middle of *target* (stepwise addition).

        The target branch is split by a fresh inner node; its length is
        divided evenly unless *split_at* gives the portion assigned to the
        first endpoint.  Returns the new tip node.
        """
        a, b = target.nodes
        old_len = target.length
        first = old_len / 2.0 if split_at is None else float(split_at)
        first = min(max(first, MIN_BRANCH_LENGTH), max(old_len - MIN_BRANCH_LENGTH, MIN_BRANCH_LENGTH))
        self._retire_branch(target)
        junction = self._new_node()
        tip = self._new_node(name)
        self._new_branch(a, junction, first)
        self._new_branch(junction, b, max(old_len - first, MIN_BRANCH_LENGTH))
        self._new_branch(junction, tip, tip_length)
        return tip

    def remove_tip(self, tip: Node) -> None:
        """Detach a tip and suppress the degree-2 node left behind."""
        if not tip.is_tip:
            raise ValueError("remove_tip needs a tip node")
        if self.n_tips <= 3:
            raise ValueError("cannot shrink below 3 tips")
        (tip_branch,) = tip.branches
        junction = tip_branch.other(tip)
        self._retire_branch(tip_branch)
        self._drop_node(tip)
        self._suppress_degree2(junction)

    def _suppress_degree2(self, node: Node) -> None:
        """Replace a degree-2 inner node by a single merged branch."""
        if node.is_tip or node.degree != 2:
            raise ValueError("can only suppress an inner node of degree 2")
        b1, b2 = node.branches
        a = b1.other(node)
        b = b2.other(node)
        merged_len = b1.length + b2.length
        self._retire_branch(b1)
        self._retire_branch(b2)
        self._drop_node(node)
        self._new_branch(a, b, merged_len)

    def prune_subtree(self, branch: Branch, keep_side: Node) -> Tuple[Node, float]:
        """Cut *branch*, detaching the subtree on the far side of *keep_side*.

        Returns ``(subtree_root, old_branch_length)``.  The degree-2 node
        left on the kept side is suppressed.  The pruned part keeps its
        internal structure and dangles from ``subtree_root``.
        """
        moved_root = branch.other(keep_side)
        old_len = branch.length
        attach_node = keep_side
        if attach_node.is_tip or attach_node.degree - 1 != 2:
            raise ValueError(
                "pruning here would not leave a suppressible junction; "
                "choose a branch whose kept endpoint is an inner node"
            )
        self._retire_branch(branch)
        self._suppress_degree2(attach_node)
        return moved_root, old_len

    def regraft_subtree(self, subtree_root: Node, target: Branch,
                        connect_length: float) -> Branch:
        """Re-insert a dangling subtree into the middle of *target*.

        Returns the new branch connecting the subtree to the tree.
        """
        a, b = target.nodes
        half = target.length / 2.0
        self._retire_branch(target)
        junction = self._new_node()
        self._new_branch(a, junction, max(half, MIN_BRANCH_LENGTH))
        self._new_branch(junction, b, max(half, MIN_BRANCH_LENGTH))
        return self._new_branch(junction, subtree_root, connect_length)

    def spr(self, prune_branch: Branch, keep_side: Node, target: Branch) -> Branch:
        """Subtree-pruning-and-regrafting in one step.

        The subtree on the far side of *keep_side* across *prune_branch*
        is moved into the middle of *target*.  *target* must lie in the
        kept part of the tree and must not be incident to *keep_side*.
        Returns the new connecting branch.
        """
        moved_root = prune_branch.other(keep_side)
        if target is prune_branch:
            raise ValueError("target equals the pruned branch")
        if keep_side in target.nodes:
            raise ValueError("target adjacent to the prune point is a no-op")
        if target.index in self.subtree_branches(moved_root, prune_branch):
            raise ValueError("target lies inside the pruned subtree")
        subtree_root, old_len = self.prune_subtree(prune_branch, keep_side)
        return self.regraft_subtree(subtree_root, target, old_len)

    def nni(self, branch: Branch, variant: int = 0) -> None:
        """Nearest-neighbour interchange around an internal *branch*.

        Each internal branch admits two alternative topologies
        (``variant`` 0 or 1), produced by swapping one subtree of each
        endpoint.
        """
        u, v = branch.nodes
        if u.is_tip or v.is_tip:
            raise ValueError("NNI requires an internal branch")
        u_sides = [b for b in u.branches if b is not branch]
        v_sides = [b for b in v.branches if b is not branch]
        bu = u_sides[0]
        bv = v_sides[variant % 2]
        su, sv = bu.other(u), bv.other(v)
        lu, lv = bu.length, bv.length
        self._retire_branch(bu)
        self._retire_branch(bv)
        self._new_branch(u, sv, lv)
        self._new_branch(v, su, lu)

    # -- bipartitions and distances ------------------------------------------------

    def bipartitions(self) -> Set[FrozenSet[str]]:
        """Non-trivial bipartitions, each as the tip-name side not
        containing the lexicographically smallest taxon (canonical)."""
        all_names = frozenset(self.tip_names())
        anchor = min(all_names)
        splits: Set[FrozenSet[str]] = set()
        for branch in self._branches.values():
            a, b = branch.nodes
            side = frozenset(self.subtree_tips(a, branch))
            if len(side) < 2 or len(side) > len(all_names) - 2:
                continue  # trivial split
            if anchor in side:
                side = all_names - side
            splits.add(side)
        return splits

    # -- serialization ------------------------------------------------------------

    def to_newick(self, include_lengths: bool = True, digits: int = 6) -> str:
        """Serialize as newick with a trifurcating root at an inner node."""
        root = next((n for n in self._nodes if not n.is_tip), None)

        def fmt(length: float) -> str:
            return f":{length:.{digits}g}" if include_lengths else ""

        if root is None:
            # Degenerate 2-tip tree (only via manual construction).
            a, b = self._nodes
            branch = a.branches[0]
            return f"({a.name}{fmt(branch.length)},{b.name}{fmt(branch.length)});"

        def render(node: Node, entry: Branch) -> str:
            if node.is_tip:
                return f"{node.name}{fmt(entry.length)}"
            parts = [render(b.other(node), b) for b in node.branches if b is not entry]
            return f"({','.join(parts)}){fmt(entry.length)}"

        parts = [render(b.other(root), b) for b in root.branches]
        return f"({','.join(parts)});"

    def copy(self) -> "Tree":
        """A structurally independent deep copy (fresh ids, no observers)."""
        return Tree.from_newick(self.to_newick(digits=17))

    # -- validation ------------------------------------------------------------------

    def validate(self) -> None:
        """Assert structural invariants; raises ``ValueError`` on breakage."""
        n_tips = self.n_tips
        if n_tips < 2:
            raise ValueError("tree needs at least 2 tips")
        for node in self._nodes:
            expected = 1 if node.is_tip else 3
            if node.degree != expected:
                raise ValueError(
                    f"node {node!r} has degree {node.degree}, expected {expected}"
                )
        expected_branches = 2 * n_tips - 3 if n_tips >= 3 else 1
        if len(self._branches) != expected_branches:
            raise ValueError(
                f"{len(self._branches)} branches for {n_tips} tips "
                f"(expected {expected_branches})"
            )
        # Connectivity: a traversal from any node must reach every node.
        reached = {n.index for n, _ in self.postorder(self._nodes[0])}
        if len(reached) != len(self._nodes):
            raise ValueError("tree is not connected")
        for branch in self._branches.values():
            if not (MIN_BRANCH_LENGTH <= branch.length <= MAX_BRANCH_LENGTH):
                raise ValueError(f"branch length out of range: {branch!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Tree tips={self.n_tips} branches={len(self._branches)}>"


def robinson_foulds(a: Tree, b: Tree, normalized: bool = False) -> float:
    """Robinson-Foulds distance: bipartitions present in exactly one tree.

    With ``normalized=True`` the count is divided by the maximum possible
    ``2 (n - 3)``, giving a value in ``[0, 1]``.
    """
    if a.tip_names() != b.tip_names():
        raise ValueError("trees are over different taxon sets")
    sa, sb = a.bipartitions(), b.bipartitions()
    distance = len(sa ^ sb)
    if not normalized:
        return float(distance)
    denom = 2.0 * (a.n_tips - 3)
    return distance / denom if denom > 0 else 0.0


class _NewickParser:
    """Recursive-descent parser for a practical newick subset.

    Supports nesting, names (unquoted, ``[A-Za-z0-9_.|-]``), branch
    lengths after ``:``, and a trailing semicolon.  Comments in square
    brackets are stripped.
    """

    def __init__(self, text: str):
        self.text = self._strip_comments(text.strip())
        self.pos = 0

    @staticmethod
    def _strip_comments(text: str) -> str:
        out, depth = [], 0
        for ch in text:
            if ch == "[":
                depth += 1
            elif ch == "]":
                if depth == 0:
                    raise ValueError("unbalanced ']' in newick")
                depth -= 1
            elif depth == 0:
                out.append(ch)
        if depth:
            raise ValueError("unbalanced '[' in newick")
        return "".join(out)

    def parse(self):
        if not self.text.startswith("("):
            raise ValueError("newick must start with '('")
        _name, _length, children = self._parse_clade()
        self._skip_ws()
        if self.pos < len(self.text) and self.text[self.pos] == ";":
            self.pos += 1
        self._skip_ws()
        if self.pos != len(self.text):
            raise ValueError(f"trailing characters in newick: {self.text[self.pos:]!r}")
        return children

    def _parse_clade(self):
        self._skip_ws()
        children = []
        if self._peek() == "(":
            self.pos += 1
            while True:
                children.append(self._parse_clade())
                self._skip_ws()
                ch = self._peek()
                if ch == ",":
                    self.pos += 1
                elif ch == ")":
                    self.pos += 1
                    break
                else:
                    raise ValueError(f"expected ',' or ')' at position {self.pos}")
        name = self._parse_name()
        length = self._parse_length()
        return name, length, children

    def _peek(self) -> str:
        if self.pos >= len(self.text):
            raise ValueError("unexpected end of newick input")
        return self.text[self.pos]

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def _parse_name(self) -> str:
        self._skip_ws()
        start = self.pos
        while self.pos < len(self.text) and (
            self.text[self.pos].isalnum() or self.text[self.pos] in "_.|-+#"
        ):
            self.pos += 1
        return self.text[start : self.pos]

    def _parse_length(self) -> float:
        self._skip_ws()
        if self.pos < len(self.text) and self.text[self.pos] == ":":
            self.pos += 1
            start = self.pos
            while self.pos < len(self.text) and (
                self.text[self.pos].isdigit() or self.text[self.pos] in ".eE+-"
            ):
                self.pos += 1
            try:
                return float(self.text[start : self.pos])
            except ValueError:
                raise ValueError(
                    f"bad branch length at position {start}: "
                    f"{self.text[start:self.pos]!r}"
                ) from None
        return 0.05  # default length for inputs without lengths
