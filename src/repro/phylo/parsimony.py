"""Fitch parsimony and randomized stepwise-addition starting trees.

RAxML begins every independent tree search from a *randomized stepwise
addition sequence Maximum Parsimony tree* (paper section 1): taxa are
added in random order, each at the placement minimizing the Fitch
parsimony score.  Because Fitch state sets are 4-bit masks, the whole
computation runs as vectorized bitwise AND/OR over pattern columns.

The per-direction decomposition used here mirrors the likelihood
engine's CLV directions: for every ``(node, entry_branch)`` we keep the
Fitch state-set column and the number of mutations *inside* that
subtree.  Scoring a tentative tip insertion on any branch then costs
O(patterns) instead of a full-tree pass.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .alignment import PatternAlignment
from .tree import Branch, Node, Tree

__all__ = [
    "fitch_score",
    "stepwise_addition_tree",
    "random_starting_trees",
]

_DirKey = Tuple[int, int]
_DirVal = Tuple[np.ndarray, float]  # (state-set masks per pattern, internal score)


def _combine(
    a_sets: np.ndarray, a_score: float, b_sets: np.ndarray, b_score: float,
    weights: np.ndarray,
) -> _DirVal:
    """Fitch parent of two child state-set columns."""
    inter = a_sets & b_sets
    union = a_sets | b_sets
    empty = inter == 0
    score = a_score + b_score + float(weights[empty].sum())
    return np.where(empty, union, inter), score


class _FitchDirections:
    """Memoized per-direction Fitch sets over a fixed tree snapshot."""

    def __init__(self, tree: Tree, patterns: PatternAlignment,
                 weights: Optional[np.ndarray] = None):
        self.tree = tree
        self.patterns = patterns
        self.weights = patterns.weights if weights is None else np.asarray(weights)
        self._tip_row = {
            node.index: patterns.parsimony_masks(
                patterns.taxon_index(node.name)
            )
            for node in tree.tips
        }
        self._memo: Dict[_DirKey, _DirVal] = {}

    def direction(self, node: Node, entry: Branch) -> _DirVal:
        """State sets and internal score of the subtree at *node* away
        from *entry* (iterative post-order with memoization)."""
        key = (node.index, entry.index)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        stack: List[Tuple[Node, Branch, bool]] = [(node, entry, False)]
        while stack:
            current, came_from, expanded = stack.pop()
            ckey = (current.index, came_from.index)
            if not expanded:
                if current.is_tip or ckey in self._memo:
                    continue
                stack.append((current, came_from, True))
                for branch in current.branches:
                    if branch is not came_from:
                        stack.append((branch.other(current), branch, False))
            else:
                children = [b for b in current.branches if b is not came_from]
                (q1, b1), (q2, b2) = (
                    (children[0].other(current), children[0]),
                    (children[1].other(current), children[1]),
                )
                s1, c1 = self._value(q1, b1)
                s2, c2 = self._value(q2, b2)
                self._memo[ckey] = _combine(s1, c1, s2, c2, self.weights)
        return self._memo[key]

    def _value(self, node: Node, entry: Branch) -> _DirVal:
        if node.is_tip:
            return self._tip_row[node.index], 0.0
        return self._memo[(node.index, entry.index)]

    def tree_score(self) -> float:
        """Parsimony score of the whole tree (evaluated at any branch)."""
        branch = self.tree.branches[0]
        u, v = branch.nodes
        su, cu = (
            (self._tip_row[u.index], 0.0) if u.is_tip else self.direction(u, branch)
        )
        sv, cv = (
            (self._tip_row[v.index], 0.0) if v.is_tip else self.direction(v, branch)
        )
        _, score = _combine(su, cu, sv, cv, self.weights)
        return score

    def insertion_score(self, branch: Branch, tip_row: np.ndarray) -> float:
        """Exact tree score after inserting a new tip mid-*branch*.

        Uses additivity of the Fitch score: both existing sides keep
        their internal scores; only the two joins at the new junction add
        mutations.
        """
        u, v = branch.nodes
        su, cu = (
            (self._tip_row[u.index], 0.0) if u.is_tip else self.direction(u, branch)
        )
        sv, cv = (
            (self._tip_row[v.index], 0.0) if v.is_tip else self.direction(v, branch)
        )
        joined, score = _combine(su, cu, sv, cv, self.weights)
        _, total = _combine(joined, score, tip_row, 0.0, self.weights)
        return total


def fitch_score(tree: Tree, patterns: PatternAlignment,
                weights: Optional[np.ndarray] = None) -> float:
    """Weighted Fitch parsimony score (number of state changes) of *tree*."""
    return _FitchDirections(tree, patterns, weights).tree_score()


def stepwise_addition_tree(
    patterns: PatternAlignment,
    rng: Optional[np.random.Generator] = None,
    default_branch_length: float = 0.1,
) -> Tree:
    """Randomized stepwise-addition maximum-parsimony starting tree.

    Taxa are added in a random order; each is placed on the branch where
    the Fitch score of the grown tree is minimal, ties broken uniformly
    at random.  This is RAxML's starting-tree construction, which gives
    every independent inference a distinct entry point into tree space.
    """
    rng = rng or np.random.default_rng()
    names = list(patterns.taxa)
    if len(names) < 3:
        raise ValueError("need at least 3 taxa")
    order = list(names)
    rng.shuffle(order)

    tree = Tree()
    tips = [tree._new_node(n) for n in order[:3]]
    center = tree._new_node()
    for t in tips:
        tree._new_branch(t, center, default_branch_length)

    for name in order[3:]:
        tip_row = patterns.parsimony_masks(patterns.taxon_index(name))
        directions = _FitchDirections(tree, patterns)
        scores = np.array(
            [directions.insertion_score(b, tip_row) for b in tree.branches]
        )
        best = np.flatnonzero(scores == scores.min())
        choice = int(best[rng.integers(len(best))])
        tree.attach_tip(name, tree.branches[choice], default_branch_length)
    tree.validate()
    return tree


def random_starting_trees(
    patterns: PatternAlignment,
    count: int,
    seed: int = 0,
    default_branch_length: float = 0.1,
) -> List[Tree]:
    """Distinct randomized stepwise-addition trees (one per inference)."""
    return [
        stepwise_addition_tree(
            patterns,
            np.random.default_rng(np.random.SeedSequence([seed, i])),
            default_branch_length,
        )
        for i in range(count)
    ]
