"""Command-line interface for the phylogenetics library.

RAxML-flavoured usage::

    python -m repro.phylo.cli infer -s data.phy -n 3 -b 10 -o out.nwk
    python -m repro.phylo.cli simulate --taxa 42 --sites 1167 -o synth.fasta
    python -m repro.phylo.cli distances -s data.fasta --method ml --nj
    python -m repro.phylo.cli report
    python -m repro.phylo.cli cluster run -s data.phy -n 2 -b 20 \
        --journal run.jsonl --workers 4
    python -m repro.phylo.cli cluster resume --journal run.jsonl
    python -m repro.phylo.cli cluster status --journal run.jsonl
    python -m repro.phylo.cli verify --check
    python -m repro.phylo.cli verify --fuzz 200
    python -m repro.phylo.cli serve --root /var/lib/repro-serve --port 8642

``infer`` runs the full workflow of the paper's section 3.1: ``-n``
independent searches from randomized stepwise-addition parsimony
starting trees plus ``-b`` non-parametric bootstraps, then maps support
values onto the best tree.  ``cluster`` runs the same workflow on the
fault-tolerant master-worker queue (:mod:`repro.cluster`) with an
append-only journal: an interrupted run resumed from its journal is
bit-identical to an uninterrupted one.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from .alignment import Alignment
from .distances import distance_matrix, neighbor_joining
from .inference import run_full_analysis
from .models import GTR, HKY85, JC69, K80
from .rates import GammaRates
from .search import SearchConfig
from .simulate import synthetic_dataset

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-phylo",
        description="Maximum-likelihood phylogenetic inference "
        "(RAxML-Cell reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    infer = sub.add_parser("infer", help="run tree searches + bootstraps")
    infer.add_argument("-s", "--sequences", required=True,
                       help="alignment file (FASTA or PHYLIP)")
    infer.add_argument("-n", "--runs", type=int, default=1,
                       help="independent inferences (default 1)")
    infer.add_argument("-b", "--bootstraps", type=int, default=0,
                       help="bootstrap replicates (default 0)")
    infer.add_argument("-m", "--model", default="GTR",
                       choices=["GTR", "JC69", "K80", "HKY85"],
                       help="substitution model (default GTR, empirical "
                       "base frequencies; ignored with --aa, which uses "
                       "Poisson+F)")
    infer.add_argument("--aa", action="store_true",
                       help="treat the input as amino-acid sequences")
    infer.add_argument("--alpha", type=float, default=1.0,
                       help="Gamma shape (default 1.0)")
    infer.add_argument("--categories", type=int, default=4,
                       help="Gamma rate categories (default 4)")
    infer.add_argument("--radius", type=int, default=3,
                       help="initial SPR rearrangement radius (default 3)")
    infer.add_argument("--max-radius", type=int, default=6,
                       help="maximum SPR radius (default 6)")
    infer.add_argument("--rounds", type=int, default=8,
                       help="maximum SPR rounds (default 8)")
    infer.add_argument("--seed", type=int, default=0, help="RNG seed")
    infer.add_argument("--draw", action="store_true",
                       help="print an ASCII cladogram of the best tree")
    infer.add_argument("-o", "--output",
                       help="write the best tree (newick) here; with "
                       "bootstraps, internal nodes carry support labels")

    simulate = sub.add_parser("simulate", help="generate a synthetic "
                              "alignment (42_SC-style)")
    simulate.add_argument("--taxa", type=int, default=42)
    simulate.add_argument("--sites", type=int, default=1167)
    simulate.add_argument("--seed", type=int, default=42)
    simulate.add_argument("--format", choices=["fasta", "phylip"],
                          default="fasta")
    simulate.add_argument("-o", "--output", help="output file (default "
                          "stdout)")

    distances = sub.add_parser("distances", help="pairwise distances / "
                               "neighbor-joining tree")
    distances.add_argument("-s", "--sequences", required=True)
    distances.add_argument("--method", choices=["jc", "ml"], default="jc")
    distances.add_argument("--nj", action="store_true",
                           help="print a neighbor-joining tree instead of "
                           "the matrix")

    sub.add_parser("report", help="run the full paper-vs-measured report")

    cluster = sub.add_parser(
        "cluster", help="fault-tolerant journalled master-worker runs"
    )
    csub = cluster.add_subparsers(dest="cluster_command", required=True)

    crun = csub.add_parser("run", help="start a journalled cluster run")
    crun.add_argument("-s", "--sequences", required=True,
                      help="alignment file (FASTA or PHYLIP)")
    crun.add_argument("-n", "--runs", type=int, default=1,
                      help="independent inferences (default 1)")
    crun.add_argument("-b", "--bootstraps", type=int, default=0,
                      help="bootstrap replicates (default 0)")
    crun.add_argument("-m", "--model", default="GTR",
                      choices=["GTR", "JC69", "K80", "HKY85"],
                      help="substitution model (default GTR)")
    crun.add_argument("--aa", action="store_true",
                      help="treat the input as amino-acid sequences")
    crun.add_argument("--alpha", type=float, default=1.0,
                      help="Gamma shape (default 1.0)")
    crun.add_argument("--categories", type=int, default=4,
                      help="Gamma rate categories (default 4)")
    crun.add_argument("--radius", type=int, default=3,
                      help="initial SPR rearrangement radius (default 3)")
    crun.add_argument("--max-radius", type=int, default=6,
                      help="maximum SPR radius (default 6)")
    crun.add_argument("--rounds", type=int, default=8,
                      help="maximum SPR rounds (default 8)")
    crun.add_argument("--seed", type=int, default=0, help="RNG seed")
    crun.add_argument("--workers", type=int, default=2,
                      help="worker processes (default 2)")
    crun.add_argument("--batch-size", type=int, default=4,
                      help="bootstraps per coarse task before the "
                      "multigrain scheduler splits them (default 4)")
    crun.add_argument("--journal", required=True,
                      help="append-only JSONL run journal path")
    crun.add_argument("--shards", type=int, default=None, metavar="N",
                      help="shard the journal into N per-worker-group "
                      "WAL files behind a manifest (removes the single-"
                      "file append funnel; enables work stealing between "
                      "shard queues; default: one shared journal)")
    crun.add_argument("-o", "--output",
                      help="write the best tree (newick, with support "
                      "labels when bootstrapping) here")

    cresume = csub.add_parser("resume",
                              help="resume an interrupted run bit-"
                              "identically from its journal")
    cresume.add_argument("--journal", required=True)
    cresume.add_argument("--workers", type=int, default=None,
                         help="worker processes (default: as journalled)")
    cresume.add_argument("-o", "--output", help="best-tree output path")

    crun.add_argument("--bootstop", action="store_true",
                      help="autoMRE bootstopping: treat -b as a budget and "
                      "stop early once support values converge")
    crun.add_argument("--bootstop-check-every", type=int, default=50,
                      metavar="K",
                      help="convergence checkpoint spacing in replicates "
                      "(default 50)")
    crun.add_argument("--bootstop-threshold", type=float, default=0.03,
                      metavar="T",
                      help="mean support distance threshold per permuted "
                      "half-split (default 0.03)")

    cstatus = csub.add_parser("status",
                              help="summarize a run journal (streaming "
                              "partial results included)")
    cstatus.add_argument("--journal", required=True)

    ccompact = csub.add_parser(
        "compact",
        help="atomically rewrite a journal keeping only the records "
        "resume needs (header, first result per replicate, footer)",
    )
    ccompact.add_argument("--journal", required=True)

    verify = sub.add_parser(
        "verify",
        help="differential / metamorphic / golden-corpus verification",
        description="Check the fast likelihood engine against the "
        "loop-based oracle (repro.verify). Default: validate the "
        "committed golden corpus and run a short differential fuzz; "
        "--write regenerates the corpus after an intentional numeric "
        "change.",
    )
    verify.add_argument("--check", action="store_true",
                        help="only validate the committed golden corpus")
    verify.add_argument("--write", action="store_true",
                        help="regenerate the golden corpus in place")
    verify.add_argument("--fuzz", type=int, default=None, metavar="N",
                        help="differential fuzz case count (default 25; "
                        "0 disables; acceptance bar is 200)")
    verify.add_argument("--seed", type=int, default=0,
                        help="base fuzz seed; case i uses seed+i "
                        "(default 0)")
    verify.add_argument("--rel-tol", type=float, default=1e-9,
                        help="fast-vs-oracle relative tolerance "
                        "(default 1e-9)")
    verify.add_argument("--corpus-dir", default=None,
                        help="golden corpus directory (default "
                        "tests/golden/ in the checkout)")
    verify.add_argument("--backend", default=None, metavar="NAME",
                        help="kernel backend for the fast engine in the "
                        "fuzz pass: a registered name (einsum, reference, "
                        "partitioned, partitioned:N) or 'all' to fuzz "
                        "every registered backend (default: the "
                        "REPRO_ENGINE_BACKEND override, else einsum)")

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault-injection campaigns (repro.chaos)",
        description="Run K-seed chaos campaigns against fault-free "
        "baselines. Every run must either complete bit-identical to "
        "the baseline (or loudly degraded within tolerance) or fail "
        "with a typed error; any silent corruption or untyped failure "
        "exits nonzero.",
    )
    chaos.add_argument("--seeds", type=int, default=25,
                       help="campaign seeds per flavour (default 25)")
    chaos.add_argument("--mode",
                       choices=["engine", "cluster", "serve", "resilience",
                                "both", "all"],
                       default="both",
                       help="which fault layer to campaign against: "
                       "engine, cluster, serve (server-kill/restart "
                       "loops), resilience (live HTTP server under "
                       "hostile clients + wedged workers), both = "
                       "engine+cluster, all = every layer (default both)")
    chaos.add_argument("--backend", default=None, metavar="NAME",
                       help="kernel backend for the engine campaign, or "
                       "'all' for einsum + reference + partitioned:2 "
                       "(+ compiled:2 when a compiled flavor is "
                       "available) (default: the REPRO_ENGINE_BACKEND "
                       "override, else einsum)")
    chaos.add_argument("--workers", type=int, default=2,
                       help="cluster campaign worker processes "
                       "(default 2)")
    chaos.add_argument("--shards", type=int, default=None, metavar="N",
                       help="run the cluster campaign against N-shard "
                       "journals (the fault-free baseline stays single-"
                       "file, so a surviving digest also proves the "
                       "shard merge-replay is equivalent)")
    chaos.add_argument("--start-seed", type=int, default=0,
                       help="first campaign seed (default 0)")
    chaos.add_argument("--workdir", default=None,
                       help="cluster campaign journal directory (default: "
                       "a fresh temp dir)")
    chaos.add_argument("--json", action="store_true",
                       help="print the full JSON reports instead of "
                       "summaries")
    chaos.add_argument("--bench", default=None, metavar="PATH",
                       help="merge campaign stats into this benchmark "
                       "JSON file as the 'chaos_campaign' section "
                       "(e.g. BENCH_engine.json)")

    serve = sub.add_parser(
        "serve",
        help="run the async inference service (repro.serve)",
        description="Serve tree inference over HTTP/JSON: POST /jobs "
        "submits an alignment + model + seed, GET /jobs/{id}/events "
        "streams the run journal as server-sent events, and GET "
        "/jobs/{id}/result returns the best tree with supports and "
        "consensus. Results are cached content-addressed, so duplicate "
        "submissions return instantly; an interrupted server resumes "
        "its jobs bit-identically on restart.",
    )
    serve.add_argument("--root", required=True,
                       help="service state directory (jobs, journals, "
                       "result cache, alignments)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8642,
                       help="bind port (default 8642; 0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=2,
                       help="cluster worker processes per job (default 2)")
    serve.add_argument("--max-inflight-per-client", type=int, default=1,
                       help="concurrent jobs allowed per client "
                       "(default 1)")
    serve.add_argument("--max-queued", type=int, default=None,
                       metavar="N",
                       help="total queued-job watermark: submissions "
                       "beyond N queued jobs are rejected with 429 + "
                       "Retry-After (default: unbounded)")
    serve.add_argument("--drain-grace", type=float, default=10.0,
                       metavar="SECONDS",
                       help="graceful-drain budget on SIGTERM/SIGINT: "
                       "in-flight jobs get this long to reach a "
                       "checkpoint before the process exits (they "
                       "resume bit-identically on restart; default 10)")
    serve.add_argument("--max-job-memory-mb", type=float, default=None,
                       metavar="MB",
                       help="admission-time memory ceiling: submissions "
                       "whose estimated working set exceeds this are "
                       "rejected with 413 job_too_large (default: no "
                       "ceiling)")
    serve.add_argument("--max-queued-per-client", type=int, default=None,
                       metavar="N",
                       help="per-client queued-job watermark (default: "
                       "unbounded)")
    return parser


def _load_alignment(path: str, amino_acids: bool = False):
    with open(path) as fh:
        text = fh.read()
    stripped = text.lstrip()
    if amino_acids:
        from .protein import ProteinAlignment

        if stripped.startswith(">"):
            return ProteinAlignment.from_fasta(text)
        return ProteinAlignment.from_phylip(text)
    if stripped.startswith(">"):
        return Alignment.from_fasta(text)
    return Alignment.from_phylip(text)


def _model_for(name: str, patterns):
    if name == "GTR":
        return GTR((1.0, 2.5, 1.0, 1.0, 2.5, 1.0),
                   tuple(patterns.base_frequencies()))
    if name == "JC69":
        return JC69()
    if name == "K80":
        return K80()
    if name == "HKY85":
        return HKY85(2.0, tuple(patterns.base_frequencies()))
    raise ValueError(f"unknown model {name}")


def _cmd_infer(args) -> int:
    alignment = _load_alignment(args.sequences, amino_acids=args.aa)
    patterns = alignment.compress()
    kind = "AA" if args.aa else "DNA"
    print(f"alignment: {alignment.n_taxa} taxa x {alignment.n_sites} "
          f"{kind} sites ({patterns.n_patterns} patterns)")
    config = SearchConfig(
        initial_radius=args.radius,
        max_radius=args.max_radius,
        max_rounds=args.rounds,
    )
    if args.aa:
        from .inference import default_model_for

        model = default_model_for(patterns)
    else:
        model = _model_for(args.model, patterns)
    analysis = run_full_analysis(
        patterns,
        n_inferences=args.runs,
        n_bootstraps=args.bootstraps,
        model=model,
        rate_model=GammaRates(args.alpha, args.categories),
        config=config,
        seed=args.seed,
    )
    _print_analysis(analysis)
    if args.draw:
        from .drawing import ascii_tree
        from .tree import Tree

        print()
        print(ascii_tree(Tree.from_newick(analysis.best.newick)))
    if args.output:
        _write_best_tree(analysis, args.output)
    return 0


def _cmd_simulate(args) -> int:
    alignment = synthetic_dataset(n_taxa=args.taxa, n_sites=args.sites,
                                  seed=args.seed)
    text = (alignment.to_fasta() if args.format == "fasta"
            else alignment.to_phylip())
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output} ({args.taxa} taxa x {args.sites} sites, "
              f"{alignment.compress().n_patterns} patterns)")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_distances(args) -> int:
    alignment = _load_alignment(args.sequences)
    patterns = alignment.compress()
    matrix = distance_matrix(patterns, method=args.method)
    if args.nj:
        tree = neighbor_joining(matrix, patterns.taxa)
        print(tree.to_newick())
        return 0
    width = max(len(t) for t in patterns.taxa) + 2
    print("".ljust(width) + "".join(t.rjust(10) for t in patterns.taxa))
    for i, name in enumerate(patterns.taxa):
        row = "".join(f"{matrix[i, j]:10.4f}" for j in range(patterns.n_taxa))
        print(name.ljust(width) + row)
    return 0


def _cmd_report(_args) -> int:
    from ..harness.report import render_report

    print(render_report())
    return 0


def _print_analysis(analysis) -> None:
    for result in analysis.inferences:
        marker = "  *best*" if result is analysis.best else ""
        print(f"inference {result.replicate}: "
              f"lnL = {result.log_likelihood:.4f}{marker}")
    if analysis.bootstraps:
        print(f"bootstraps: {len(analysis.bootstraps)}")
        for split, support in sorted(analysis.supports.items(),
                                     key=lambda kv: -kv[1]):
            print(f"  support {support * 100:5.1f}%  "
                  f"{{{','.join(sorted(split))}}}")
    print(f"best tree:\n{analysis.best.newick}")


def _write_best_tree(analysis, output: str) -> None:
    from ..cluster.checkpoint import atomic_write

    out_newick = analysis.best.newick
    if analysis.bootstraps:
        from .drawing import newick_with_support
        from .tree import Tree

        out_newick = newick_with_support(
            Tree.from_newick(analysis.best.newick), analysis.supports
        )
    # Atomic (temp + fsync + rename): a crash mid-write can never leave
    # a torn best-tree file where a previous good one stood.
    atomic_write(output, out_newick + "\n")
    print(f"wrote {output}")


def _cmd_cluster(args) -> int:
    from ..cluster import JobSpec, resume_job, run_job

    if args.cluster_command == "status":
        from ..harness.report import render_cluster_status

        print(render_cluster_status(args.journal))
        return 0

    if args.cluster_command == "compact":
        from ..cluster.checkpoint import compact_journal

        state = compact_journal(args.journal)
        done = len(state.payloads)
        print(f"compacted {args.journal}: {done} replicate record(s) kept"
              + (f", {state.corrupt_records} corrupt record(s) dropped"
                 if state.corrupt_records else ""))
        return 0

    if args.cluster_command == "run":
        bootstop = None
        if args.bootstop:
            from ..cluster import BootstopConfig

            bootstop = BootstopConfig(
                check_every=args.bootstop_check_every,
                threshold=args.bootstop_threshold,
            )
        spec = JobSpec(
            n_inferences=args.runs,
            n_bootstraps=args.bootstraps,
            seed=args.seed,
            batch_size=args.batch_size,
            alignment_path=args.sequences,
            aa=args.aa,
            model_name="default" if args.aa else args.model,
            alpha=args.alpha,
            categories=args.categories,
            config=SearchConfig(
                initial_radius=args.radius,
                max_radius=args.max_radius,
                max_rounds=args.rounds,
            ),
            bootstop=bootstop,
        )
        analysis = run_job(spec, n_workers=args.workers,
                           journal_path=args.journal,
                           n_shards=args.shards)
    else:  # resume
        analysis = resume_job(args.journal, n_workers=args.workers)
    _print_analysis(analysis)
    if args.output:
        _write_best_tree(analysis, args.output)
    print(f"journal: {args.journal}")
    return 0


def _cmd_verify(args) -> int:
    from pathlib import Path

    from ..verify import check_corpus, run_differential, write_corpus

    if args.check and args.write:
        print("verify: --check and --write are mutually exclusive",
              file=sys.stderr)
        return 2
    corpus_dir = Path(args.corpus_dir) if args.corpus_dir else None

    if args.write:
        for path in write_corpus(corpus_dir):
            print(f"wrote {path}")
        return 0

    mismatches = check_corpus(corpus_dir)
    if mismatches:
        print(f"golden corpus: {len(mismatches)} mismatch(es)")
        for message in mismatches:
            print(f"  {message}")
        print("(regenerate with `repro-phylo verify --write` only after "
              "an intentional numeric change)")
        return 1
    print("golden corpus: OK")
    if args.check:
        return 0

    n_cases = 25 if args.fuzz is None else args.fuzz
    if n_cases:
        from .engine import available_backends

        if args.backend == "all":
            backends = available_backends()
        else:
            backends = [args.backend]  # None = session default
        failed = False
        for backend in backends:
            report = run_differential(
                n_cases=n_cases, seed=args.seed, rel_tol=args.rel_tol,
                backend=backend,
            )
            label = backend if backend is not None else "default"
            print(f"[backend={label}] {report.summary()}")
            if report.failures:
                failed = True
        if failed:
            return 1
    return 0


def _cmd_chaos(args) -> int:
    from ..chaos import (
        run_cluster_campaign,
        run_engine_campaign,
        run_resilience_campaign,
        run_serve_campaign,
    )

    reports = []
    if args.mode in ("engine", "both", "all"):
        if args.backend == "all":
            backends = ["einsum", "reference", "partitioned:2"]
            from .engine import available_backends

            if "compiled" in available_backends():
                backends.append("compiled:2")
        else:
            backends = [args.backend]  # None = session default
        for backend in backends:
            reports.append(run_engine_campaign(
                n_seeds=args.seeds, backend=backend,
                start_seed=args.start_seed,
            ))
    if args.mode in ("cluster", "both", "all"):
        reports.append(run_cluster_campaign(
            n_seeds=args.seeds, n_workers=args.workers,
            workdir=args.workdir, start_seed=args.start_seed,
            n_shards=args.shards,
        ))
    if args.mode in ("serve", "all"):
        reports.append(run_serve_campaign(
            n_seeds=args.seeds, n_workers=args.workers,
            workdir=args.workdir, start_seed=args.start_seed,
        ))
    if args.mode in ("resilience", "all"):
        reports.append(run_resilience_campaign(
            n_seeds=args.seeds, n_workers=args.workers,
            workdir=args.workdir, start_seed=args.start_seed,
        ))

    for report in reports:
        if args.json:
            print(report.to_json_text())
        else:
            print(report.summary())

    if args.bench:
        import json as _json
        import os as _os

        from ..harness.report import merge_bench_section

        # Merge per campaign label, never replace the section wholesale:
        # CI runs engine, cluster, and resilience arms as separate
        # invocations against the same file, and each must keep the
        # others' committed stats.
        campaigns = {}
        if _os.path.isfile(args.bench):
            with open(args.bench) as fh:
                campaigns = dict(
                    _json.load(fh).get("chaos_campaign", {})
                    .get("campaigns", {})
                )
        for report in reports:
            campaigns[report.label] = {
                "n_seeds": args.seeds,
                "start_seed": args.start_seed,
                "n_runs": len(report.runs),
                "counts": report.counts,
                "faults_fired": report.faults_fired,
                "ok": report.ok,
            }
        merge_bench_section(args.bench, "chaos_campaign",
                            {"campaigns": campaigns})
        print(f"merged chaos_campaign section into {args.bench}")

    return 0 if all(report.ok for report in reports) else 1


def _cmd_serve(args) -> int:
    import asyncio

    from ..serve import serve_forever

    print(f"repro-serve: root={args.root} listening on "
          f"{args.host}:{args.port} (ctrl-c to stop; queued and running "
          f"jobs resume on restart)")
    try:
        asyncio.run(serve_forever(
            args.root, host=args.host, port=args.port,
            n_workers=args.workers,
            max_inflight_per_client=args.max_inflight_per_client,
            max_queued_total=args.max_queued,
            max_queued_per_client=args.max_queued_per_client,
            drain_grace_s=args.drain_grace,
            max_job_memory_mb=args.max_job_memory_mb,
        ))
    except KeyboardInterrupt:
        print(f"serve: interrupted; unfinished jobs remain resumable "
              f"under {args.root}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "infer": _cmd_infer,
        "simulate": _cmd_simulate,
        "distances": _cmd_distances,
        "report": _cmd_report,
        "cluster": _cmd_cluster,
        "verify": _cmd_verify,
        "chaos": _cmd_chaos,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
