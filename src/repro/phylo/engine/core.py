"""The likelihood engine core: ``newview()``, ``evaluate()``, ``makenewz()``.

This module reimplements the three functions that consume 98.77 % of
RAxML's runtime (76.8 % / 19.16 % / 2.37 % per the paper's gprof profile):

* :meth:`LikelihoodEngine.newview` computes the conditional likelihood
  vector (CLV) at an inner node by Felsenstein's pruning algorithm, with
  the four specialized cases the paper describes (both children tips, one
  child a tip, none) and numerical rescaling of underflowing patterns.
* :meth:`LikelihoodEngine.evaluate` computes the log likelihood of the
  tree at a branch by summing over the two CLVs facing it.  For a
  time-reversible model the value is identical at every branch — a
  property the test suite checks.
* :meth:`LikelihoodEngine.makenewz` optimizes one branch length by
  Newton-Raphson with analytic first and second derivatives.

The core holds everything *structural* — CLV cache and arena, quantized
P-matrix LRU, dirty tracking through the tree's observer protocol,
post-order traversal, Newton iteration, batched SPR scoring — and routes
every numerical kernel through a pluggable
:class:`~repro.phylo.engine.protocol.KernelBackend` (the reproduction of
the paper's PPE/SPE offload seam).  Swapping the backend swaps the
arithmetic, never the search behaviour.

CLVs are cached per *direction* ``(node, entry_branch)`` and invalidated
through the tree's branch-dirtying observer protocol, reproducing
RAxML's lazy recomputation (and hence realistic ``newview()`` call
counts in the workload traces fed to the Cell simulator).

Both rate-heterogeneity treatments are supported: Gamma (every site
integrates over all categories; shared per-category transition matrices)
and CAT (one category per site; per-pattern transition matrices).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

import numpy as np

from ...chaos import injector as _chaos
from ...chaos import plan as _chaos_plan
from .. import kernels
from ..alignment import PatternAlignment
from ..arena import ClvArena, ClvSlot
from ..models import PMatrixCache, SubstitutionModel
from ..rates import RateModel, UniformRate
from ..tree import Branch, Node, Tree, MAX_BRANCH_LENGTH, MIN_BRANCH_LENGTH
from .protocol import (
    EngineNumericalError,
    KernelBackend,
    KernelExecutionError,
    resolve_backend,
)

__all__ = ["LikelihoodEngine", "NewviewCase", "estimate_site_rates"]


class NewviewCase:
    """The four execution paths of ``newview()`` (paper section 5.2.3)."""

    TIP_TIP = "tip_tip"
    TIP_INNER = "tip_inner"
    INNER_TIP = "inner_tip"
    INNER_INNER = "inner_inner"


@dataclass
class _CachedCLV:
    clv: np.ndarray  # (n_patterns, n_cats, n) — a view into an arena slot
    scale_counts: np.ndarray  # (n_patterns,) int64 — same slot
    deps: FrozenSet[int]  # branch ids this CLV depends on
    slot: Optional[ClvSlot] = None  # arena slot backing the views


class LikelihoodEngine:
    """Maximum-likelihood scoring of a tree on a pattern alignment.

    Parameters
    ----------
    patterns:
        The compressed alignment.
    model:
        Substitution model.
    rate_model:
        Among-site rate model (uniform, Gamma, or CAT).  For CAT the
        ``site_categories`` assignment must cover every pattern.
    tree:
        The tree to score; the engine registers itself as an observer and
        must remain attached while the tree is edited.
    tracer:
        Optional object receiving ``record_newview`` /
        ``record_evaluate`` / ``record_makenewz`` calls; used by
        :mod:`repro.port.trace` to build platform-simulation workloads.
    backend:
        Kernel backend: a registry name (``"einsum"``, ``"reference"``,
        ``"partitioned"``, or ``"name:N"``), a live
        :class:`KernelBackend`, or ``None`` to honour the
        ``REPRO_ENGINE_BACKEND`` environment override (default
        ``einsum``).  Prefer :func:`repro.phylo.engine.create_engine`
        for construction.
    degrade_after:
        Degradation ladder budget: a detected numerical fault
        (``FloatingPointError`` from the kernels' non-finite guards, or
        a :class:`KernelExecutionError` from the backend) first triggers
        cache invalidation and a recompute — bit-identical when the
        fault was transient.  After ``degrade_after`` recomputes inside
        one guarded operation still fault, the engine walks a fallback
        chain determined by the starting backend — ``compiled`` and
        ``partitioned`` fall to ``einsum`` then ``reference``, ``einsum``
        falls to ``reference``, ``reference`` has nowhere to go — one
        rung per further fault (sticky, counted by the ``degraded`` perf
        counter and recorded in ``degradation_path``) instead of
        crashing the search; when the chain is exhausted and the fault
        persists, the typed :class:`EngineNumericalError` is raised.
    """

    def __init__(
        self,
        patterns: PatternAlignment,
        model: SubstitutionModel,
        rate_model: Optional[RateModel] = None,
        tree: Optional[Tree] = None,
        tracer=None,
        backend: Union[None, str, KernelBackend] = None,
        degrade_after: int = 3,
    ):
        if tree is None:
            raise ValueError("a tree is required")
        self.patterns = patterns
        self.model = model
        self.rate_model = rate_model or UniformRate()
        self.tree = tree
        self.tracer = tracer
        #: the numerical kernel backend behind every hot-path call
        self._backend = resolve_backend(backend)
        #: state-space size (4 for DNA, 20 for amino acids)
        self._n_states = model.n_states
        #: per-code tip indicator rows (None = the DNA mask table)
        self._tip_table = getattr(patterns, "tip_code_table", None)

        if self.rate_model.is_per_site:
            if len(self.rate_model.site_categories) != patterns.n_patterns:
                raise ValueError(
                    "CAT site_categories must assign every pattern a category"
                )
            #: per-pattern rate multipliers (CAT mode)
            self._site_rates = self.rate_model.rates[self.rate_model.site_categories]
            self._cat_weights = np.ones(1)
            self._n_cats = 1
        else:
            self._site_rates = None
            self._cat_weights = self.rate_model.weights
            self._n_cats = self.rate_model.n_categories

        self._tip_index: Dict[int, int] = {}
        for node in tree.tips:
            self._tip_index[node.index] = patterns.taxon_index(node.name)

        self._clv_cache: Dict[Tuple[int, int], _CachedCLV] = {}
        #: quantized-branch-length P-matrix cache.  Always constructed —
        #: even for backends that project their own matrices — so
        #: ``perf_counters()`` reports the identical key set for every
        #: backend (a backend with ``uses_pmat_cache=False`` simply
        #: leaves the hit/miss counters at zero).
        self._pmats = PMatrixCache(model, self._rates_for_pmat())
        #: preallocated CLV slot pool with free-list recycling
        self._arena = ClvArena(
            patterns.n_patterns, self._n_cats, self._n_states
        )
        #: scratch buffers for the two propagated child terms of newview
        #: (steady-state sweeps reuse these instead of allocating)
        self._term_scratch = (
            np.empty((patterns.n_patterns, self._n_cats, self._n_states)),
            np.empty((patterns.n_patterns, self._n_cats, self._n_states)),
        )
        #: shared zero scale-count vector handed out for tip sides
        self._zero_scale = np.zeros(patterns.n_patterns, dtype=np.int64)
        self._zero_scale.setflags(write=False)
        tree.add_observer(self._on_branch_dirty)

        #: running counters (cheap, always on) — used for sanity checks
        self.newview_calls = 0
        self.evaluate_calls = 0
        self.makenewz_calls = 0
        self.spr_batch_calls = 0
        self.spr_batch_candidates = 0
        self.gradient_sweeps = 0
        self.gradient_traversals_saved = 0
        self.gradient_fallbacks = 0
        #: graceful-degradation state (see the class docstring)
        self._degrade_after = degrade_after
        self._in_guard = False
        self._original_backend: Optional[KernelBackend] = None
        self._retired_backends: List[KernelBackend] = []
        self._fallback_chain = self._fallback_chain_for(self._backend.name)
        #: backend names the ladder has fallen through, in order
        self.degradation_path: List[str] = []
        self.numerical_faults = 0
        self.fault_recoveries = 0
        self.degraded_evaluations = 0
        #: optional cooperative cancellation token (any object with a
        #: ``check()`` method); polled at the top of every guarded
        #: kernel dispatch so a deadline trips between operations, not
        #: inside one.
        self.cancel = None

        if tracer is not None and hasattr(tracer, "add_counter_source"):
            tracer.add_counter_source(self.perf_counters)

    # -- lifecycle ----------------------------------------------------------

    @property
    def backend(self) -> KernelBackend:
        """The live kernel backend (read-only)."""
        return self._backend

    def detach(self) -> None:
        """Unregister from the tree, drop all caches, release the backend."""
        self.tree.remove_observer(self._on_branch_dirty)
        self._drop_all_clvs()
        self._pmats.invalidate()
        self._backend.close()
        for retired in self._retired_backends:
            retired.close()
        if self._original_backend is not None:
            self._original_backend.close()

    # -- graceful degradation -------------------------------------------------

    @property
    def is_degraded(self) -> bool:
        """True once the engine has fallen down the backend ladder."""
        return self._original_backend is not None

    @staticmethod
    def _fallback_chain_for(name: str) -> List[str]:
        """The remaining ladder rungs below a backend: everything above
        ``einsum`` (compiled, partitioned, third-party) falls to einsum
        first — same engine caches, no thread pool, no foreign calls —
        then to the independent ``reference`` implementation."""
        if name == "reference":
            return []
        if name == "einsum":
            return ["reference"]
        return ["einsum", "reference"]

    def _degrade(self) -> bool:
        """Step one rung down the fallback chain (sticky until detach);
        returns False when the chain is exhausted.

        Displaced backends are kept so :meth:`detach` can release their
        resources (thread pools), and so the degradation is visible to
        diagnostics.  Every cache is dropped: a backend owning its own
        transition-matrix projection (reference) must not see cached
        P-matrices from the failed backend, and CLVs computed by the
        faulting backend must not leak into the replacement's results.
        """
        if not self._fallback_chain:
            return False
        next_name = self._fallback_chain.pop(0)
        if self._original_backend is None:
            self._original_backend = self._backend
        else:
            self._retired_backends.append(self._backend)
        self._backend = resolve_backend(next_name)
        self.degradation_path.append(next_name)
        self.invalidate_all()
        return True

    def _guarded(self, label: str, fn):
        """Run ``fn`` under the degradation ladder.

        Detected faults (non-finite kernel guards, backend execution
        failures) invalidate every cache and recompute; after
        ``degrade_after`` faulting recomputes, every further fault steps
        the engine one rung down the backend fallback chain (compiled →
        einsum → reference) and tries again.  Nested guarded calls
        (e.g. ``clv`` inside ``evaluate``) run bare so one operation has
        exactly one ladder.
        """
        if self._in_guard:
            return fn()
        if self.cancel is not None:
            self.cancel.check()
        self._in_guard = True
        try:
            attempt = 0
            while True:
                try:
                    result = fn()
                except (FloatingPointError, KernelExecutionError) as exc:
                    attempt += 1
                    self.numerical_faults += 1
                    self.invalidate_all()
                    if attempt <= self._degrade_after:
                        continue
                    if self._degrade():
                        continue
                    origin = (self._original_backend or self._backend).name
                    ladder = " -> ".join([origin] + self.degradation_path)
                    raise EngineNumericalError(
                        f"{label}: numerical fault persisted through "
                        f"{attempt - 1} cache-invalidating recomputes and "
                        f"the backend degradation ladder ({ladder}): {exc}"
                    ) from exc
                if attempt:
                    self.fault_recoveries += 1
                if self.is_degraded:
                    self.degraded_evaluations += 1
                return result
        finally:
            self._in_guard = False

    def invalidate_all(self) -> None:
        """Drop every cache (e.g. after a model-parameter change)."""
        self._drop_all_clvs()
        self._reset_pmats()

    def _drop_all_clvs(self) -> None:
        self._clv_cache.clear()
        self._arena.release_all()

    def _reset_pmats(self) -> None:
        """Re-point the P-matrix cache at the current model/rates.

        Cumulative hit/miss counters survive so whole-run cache
        efficiency stays visible in :meth:`perf_counters`.
        """
        self._pmats.model = self.model
        self._pmats.rates = np.asarray(
            self._rates_for_pmat(), dtype=np.float64
        )
        self._pmats.invalidate()

    def set_model(self, model: SubstitutionModel) -> None:
        """Swap the substitution model and drop caches."""
        self.model = model
        self.invalidate_all()

    def set_rate_model(self, rate_model: RateModel) -> None:
        """Swap the rate model (same mode/category layout) and drop caches."""
        if rate_model.is_per_site != self.rate_model.is_per_site:
            raise ValueError("cannot switch between integrated and CAT modes")
        self.rate_model = rate_model
        if rate_model.is_per_site:
            self._site_rates = rate_model.rates[rate_model.site_categories]
        else:
            self._cat_weights = rate_model.weights
            self._n_cats = rate_model.n_categories
        self._ensure_buffers()
        self.invalidate_all()

    def _ensure_buffers(self) -> None:
        """Recreate arena/scratch buffers if the CLV shape changed
        (e.g. a rate model with a different category count)."""
        if self._arena.n_cats == self._n_cats:
            return
        shape = (self.patterns.n_patterns, self._n_cats, self._n_states)
        self._clv_cache.clear()  # old entries view the old arena's blocks
        self._arena = ClvArena(*shape)
        self._term_scratch = (np.empty(shape), np.empty(shape))

    def _push_context(self, name: str):
        """Tell the tracer (if any) that nested kernel calls follow."""
        if self.tracer is not None and hasattr(self.tracer, "push_context"):
            return self.tracer.push_context(name)
        return None

    def _pop_context(self, token) -> None:
        if token is not None:
            self.tracer.pop_context(token)

    def _on_branch_dirty(self, branch_id: int) -> None:
        # The P-matrix cache is keyed by (quantized) length, not branch
        # id, so a dirtied branch simply looks up its new length there.
        stale = [
            key
            for key, entry in self._clv_cache.items()
            if branch_id in entry.deps or key[1] == branch_id
        ]
        for key in stale:
            entry = self._clv_cache.pop(key)
            if entry.slot is not None:
                self._arena.release(entry.slot)

    # -- transition matrices -------------------------------------------------

    def _rates_for_pmat(self) -> np.ndarray:
        if self._site_rates is not None:
            return self._site_rates
        return self.rate_model.rates

    def _transition_matrices(self, length: float) -> np.ndarray:
        """Transition matrices at *length*: ``(n_cats, n, n)`` for the
        integrated modes, ``(n_patterns, n, n)`` for CAT.  Served from
        the quantized-length :class:`PMatrixCache` (branches sharing a
        length share one stack) — unless the backend opts out of the
        cache to own its projection end to end (the reference oracle)."""
        if self._backend.uses_pmat_cache:
            mats = self._pmats.matrices(length)
            if _chaos._ACTIVE is not None and _chaos.fire(
                _chaos_plan.ENGINE_PMAT_CORRUPT
            ):
                # Corrupt the cached entry *in place*: the damage
                # persists across lookups until invalidate_all() drops
                # the cache — exactly the recovery path under test.
                mats.setflags(write=True)
                mats[...] = np.nan
                mats.setflags(write=False)
            return mats
        return self._backend.transition_matrices(
            self.model, self._rates_for_pmat(), length
        )

    def _transition_derivatives(
        self, length: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(P, dP/dt, d2P/dt2)`` stacks at *length*."""
        if self._backend.uses_pmat_cache:
            return self._pmats.derivatives(length)
        return self._backend.transition_derivatives(
            self.model, self._rates_for_pmat(), length
        )

    def _transition_derivatives_batch(
        self, lengths: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batched ``(P, dP, d2P)`` stacks, one per candidate length."""
        if self._backend.uses_pmat_cache:
            return self.model.transition_derivatives_batch(
                lengths, self._rates_for_pmat()
            )
        return self._backend.transition_derivatives_batch(
            self.model, self._rates_for_pmat(), lengths
        )

    def _pmat(self, branch: Branch) -> np.ndarray:
        return self._transition_matrices(branch.length)

    # -- CLV computation -----------------------------------------------------

    def _is_tip(self, node: Node) -> bool:
        return node.is_tip

    def _tip_masks(self, node: Node) -> np.ndarray:
        return self.patterns.patterns[self._tip_index[node.index]]

    def _tip_clv(self, node: Node) -> np.ndarray:
        """Tip CLV expanded to ``(n_patterns, n_cats, n_states)``."""
        rows = self.patterns.tip_partials(self._tip_index[node.index])
        return np.broadcast_to(
            rows[:, None, :],
            (self.patterns.n_patterns, self._n_cats, self._n_states),
        )

    def _propagated(
        self, node: Node, via: Branch, out: Optional[np.ndarray] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """CLV of the subtree at *node* away from *via*, propagated across
        *via*.  Returns ``(term, scale_counts)``; with ``out`` the term is
        written into the caller's buffer."""
        return self._term_across(node, via, self._pmat(via), out=out)

    def _term_across(
        self, node: Node, via: Branch, p: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Propagate the CLV at *node* away from *via* across matrices *p*.

        Tip sides return the engine's shared read-only zero scale-count
        vector (callers only ever add it)."""
        per_site = self._site_rates is not None
        if node.is_tip:
            term = self._backend.tip_terms(
                p, self._tip_masks(node), self._tip_table,
                out=out, per_site=per_site,
            )
            return term, self._zero_scale
        entry = self.clv(node, via)
        term = self._backend.inner_terms(
            p, entry.clv, out=out, per_site=per_site
        )
        return term, entry.scale_counts

    def clv(self, node: Node, entry: Branch) -> _CachedCLV:
        """The cached CLV at inner *node* for the subtree away from *entry*.

        Missing CLVs (including any missing descendants) are computed
        bottom-up; each computation is one ``newview()`` invocation.
        Guarded: a detected numerical fault drops every cache and
        recomputes (see the ``degrade_after`` ladder).
        """
        return self._guarded("clv", lambda: self._clv_fill(node, entry))

    def _clv_fill(self, node: Node, entry: Branch) -> _CachedCLV:
        if node.is_tip:
            raise ValueError("tips have no stored CLV; use _propagated")
        cached = self._clv_cache.get((node.index, entry.index))
        if cached is not None:
            return cached
        # Gather the missing directions below (node, entry) in post-order.
        order: List[Tuple[Node, Branch]] = []
        stack: List[Tuple[Node, Branch, bool]] = [(node, entry, False)]
        while stack:
            current, came_from, expanded = stack.pop()
            if expanded:
                order.append((current, came_from))
                continue
            if current.is_tip or (current.index, came_from.index) in self._clv_cache:
                continue
            stack.append((current, came_from, True))
            for branch in current.branches:
                if branch is not came_from:
                    stack.append((branch.other(current), branch, False))
        for current, came_from in order:
            self._newview(current, came_from)
        return self._clv_cache[(node.index, entry.index)]

    def newview(self, node: Node, entry: Branch) -> Tuple[np.ndarray, np.ndarray]:
        """Public ``newview()``: ``(clv, scale_counts)`` copies at a
        direction.  The differential harness calls this on the oracle
        engine; copies keep the caller isolated from arena recycling."""
        cached = self.clv(node, entry)
        return cached.clv.copy(), cached.scale_counts.copy()

    def _newview(self, node: Node, entry: Branch) -> _CachedCLV:
        """Compute and cache one CLV (a single ``newview()`` invocation)."""
        children = [b for b in node.branches if b is not entry]
        if len(children) != 2:
            raise ValueError("newview requires an inner node of degree 3")
        (b1, b2) = children
        q1, q2 = b1.other(node), b2.other(node)
        # Children are already cached (clv() fills post-order), so nested
        # newviews cannot clobber the two scratch term buffers.
        term1, sc1 = self._propagated(q1, b1, out=self._term_scratch[0])
        term2, sc2 = self._propagated(q2, b2, out=self._term_scratch[1])
        slot = self._arena.acquire()
        try:
            self._backend.newview_combine(term1, term2, out=slot.clv)
            np.add(sc1, sc2, out=slot.scale_counts)
            if _chaos._ACTIVE is not None:
                self._chaos_newview_hooks(slot)
            scaled = self._backend.scale_clv(slot.clv, slot.scale_counts)
        except BaseException:
            # The slot is not yet cached: release it or it leaks from
            # the arena's free list (and every retry leaks another).
            self._arena.release(slot)
            raise

        deps = frozenset(self.tree.subtree_branches(node, entry))
        entry_cache = _CachedCLV(
            clv=slot.clv, scale_counts=slot.scale_counts, deps=deps, slot=slot
        )
        self._clv_cache[(node.index, entry.index)] = entry_cache

        self.newview_calls += 1
        if self.tracer is not None:
            if q1.is_tip and q2.is_tip:
                case = NewviewCase.TIP_TIP
            elif q1.is_tip:
                case = NewviewCase.TIP_INNER
            elif q2.is_tip:
                case = NewviewCase.INNER_TIP
            else:
                case = NewviewCase.INNER_INNER
            self.tracer.record_newview(
                case=case,
                n_patterns=self.patterns.n_patterns,
                n_cats=self._n_cats,
                scaled=scaled,
            )
        return entry_cache

    # -- chaos injection hooks ------------------------------------------------
    #
    # Active only under repro.chaos.inject(); the disabled path is the
    # single module-global is-None check at each call site.

    def _chaos_newview_hooks(self, slot: ClvSlot) -> None:
        """Visit the engine-numerics fault sites for one fresh CLV."""
        injector = _chaos._ACTIVE
        if injector is None:  # pragma: no cover - racy deactivation
            return
        if injector.fire(_chaos_plan.ENGINE_CLV_POISON):
            spec = injector.spec(_chaos_plan.ENGINE_CLV_POISON)
            value = np.inf if spec is not None and spec.value == "inf" \
                else np.nan
            # Poison the first stripe (a quarter of the patterns): the
            # non-finite guard in scale_clv must catch it.
            stripe = max(1, slot.clv.shape[0] // 4)
            slot.clv[:stripe] = value
        if injector.fire(_chaos_plan.ENGINE_UNDERFLOW):
            self._force_underflow(slot)

    def _force_underflow(self, slot: ClvSlot) -> None:
        """Push eligible patterns below the rescaling threshold.

        Bit-transparent by construction: eligible patterns are scaled by
        exactly ``2**-256`` with their scale counts pre-decremented, so
        ``scale_clv``'s mandatory rescale (an exact power-of-two
        multiply) restores both to the original bits.  Eligibility keeps
        the round trip exact: the pattern max must already be at or
        above the rescale threshold (a pattern the fault-free run would
        have rescaled here must keep its organic scaling, not the
        injected round trip) and strictly below 1.0 (so the pushed-down
        max lands strictly below the threshold), and every nonzero
        entry at least ``2**-700`` (so no entry goes subnormal and loses
        mantissa bits on the way down).
        """
        clv = slot.clv
        flat = clv.reshape(clv.shape[0], -1)
        pattern_max = flat.max(axis=1)
        nonzero_min = np.where(flat > 0.0, flat, np.inf).min(axis=1)
        eligible = (
            (pattern_max >= kernels.SCALE_THRESHOLD)
            & (pattern_max < 1.0)
            & (nonzero_min >= 2.0**-700)
        )
        if not eligible.any():
            return
        clv[eligible] *= 2.0**-256
        slot.scale_counts[eligible] -= 1

    # -- evaluate ------------------------------------------------------------

    def _side(self, node: Node, branch: Branch) -> Tuple[np.ndarray, np.ndarray]:
        """Unpropagated CLV facing *branch* from *node*'s side."""
        if node.is_tip:
            return self._tip_clv(node), np.zeros(
                self.patterns.n_patterns, dtype=np.int64
            )
        entry = self.clv(node, branch)
        return entry.clv, entry.scale_counts

    def evaluate(self, branch: Optional[Branch] = None) -> float:
        """Log likelihood of the tree, computed at *branch*.

        For a reversible model the result is branch-independent; the
        default uses an arbitrary branch.  Guarded: a non-finite result
        or a backend execution failure walks the degradation ladder
        (recompute, then reference fallback) before surfacing a typed
        :class:`EngineNumericalError`.
        """
        return self._guarded("evaluate", lambda: self._evaluate_impl(branch))

    def _evaluate_impl(self, branch: Optional[Branch] = None) -> float:
        if branch is None:
            branch = self.tree.branches[0]
        u, v = branch.nodes
        # Keep the tip (if any) on the un-propagated side: RAxML's cheap case.
        if v.is_tip and not u.is_tip:
            u, v = v, u
        # CLV refreshes triggered from here are nested inside this offload
        # unit (no PPE<->SPE communication once evaluate lives on the SPE).
        context = self._push_context("evaluate")
        try:
            u_clv, u_sc = self._side(u, branch)
            v_term, v_sc = self._propagated(
                v, branch, out=self._term_scratch[0]
            )
        finally:
            self._pop_context(context)
        result = self._backend.evaluate_loglik(
            self.model.pi,
            self._cat_weights,
            self.patterns.weights,
            u_clv,
            v_term,
            u_sc + v_sc,
        )
        if not np.isfinite(result):
            raise FloatingPointError(
                f"non-finite log likelihood: {result!r}"
            )
        self.evaluate_calls += 1
        if self.tracer is not None:
            self.tracer.record_evaluate(
                n_patterns=self.patterns.n_patterns, n_cats=self._n_cats
            )
        return result

    def log_likelihood(self) -> float:
        """Alias for :meth:`evaluate` at a default branch."""
        return self.evaluate()

    #: oracle-compat alias (the pre-refactor ReferenceEngine called it
    #: ``loglik``); keeps old verification call sites working unchanged.
    loglik = evaluate

    def site_log_likelihoods(self, branch: Optional[Branch] = None) -> np.ndarray:
        """Per-pattern log likelihoods (diagnostics; CAT rate estimation)."""
        if branch is None:
            branch = self.tree.branches[0]
        u, v = branch.nodes
        if v.is_tip and not u.is_tip:
            u, v = v, u
        u_clv, u_sc = self._side(u, branch)
        v_term, v_sc = self._propagated(v, branch)
        per_cat = np.einsum(
            "sci,i->sc", u_clv * v_term, self.model.pi, optimize=True
        )
        site_lik = per_cat @ self._cat_weights
        return np.log(site_lik) - (u_sc + v_sc) * kernels.LOG_SCALE_FACTOR

    # -- makenewz ------------------------------------------------------------

    def branch_derivatives(
        self, branch: Branch, length: Optional[float] = None
    ) -> Tuple[float, float, float]:
        """``(lnL, d lnL/dt, d2 lnL/dt2)`` at *branch*, evaluated at
        ``length`` (default: the branch's current length) without
        touching the tree.  One ``makenewz`` derivative probe — exposed
        so the differential harness compares Newton inputs across
        backends instead of groping at engine internals.  Guarded."""
        return self._guarded(
            "branch_derivatives",
            lambda: self._branch_derivatives_impl(branch, length),
        )

    def _branch_derivatives_impl(
        self, branch: Branch, length: Optional[float] = None
    ) -> Tuple[float, float, float]:
        u, v = branch.nodes
        u_clv, u_sc = self._side(u, branch)
        v_clv, v_sc = self._side(v, branch)
        t = branch.length if length is None else length
        return self._derivatives_at(t, u_clv, v_clv, u_sc + v_sc)

    def _derivatives_at(
        self, length: float, u_clv, v_clv, scale
    ) -> Tuple[float, float, float]:
        lnl, d1, d2 = self._backend.branch_derivatives(
            self._transition_derivatives(length),
            self.model.pi,
            self._cat_weights,
            self.patterns.weights,
            u_clv,
            v_clv,
            scale,
            per_site=self._site_rates is not None,
        )
        if not (np.isfinite(lnl) and np.isfinite(d1) and np.isfinite(d2)):
            raise FloatingPointError(
                f"non-finite branch derivatives: ({lnl!r}, {d1!r}, {d2!r})"
            )
        return lnl, d1, d2

    def makenewz(
        self,
        branch: Branch,
        max_iterations: int = 32,
        tolerance: float = 1e-8,
    ) -> Tuple[float, float]:
        """Optimize one branch length by Newton-Raphson.

        Returns ``(new_length, log_likelihood)``.  The tree is updated in
        place (which dirties dependent CLVs through the observer
        protocol).  Mirrors RAxML's ``makenewz()``: it first ensures the
        CLVs facing the branch exist (calling ``newview()`` as needed),
        then iterates Newton steps with safeguards.  Guarded: the tree
        is only mutated on success (the final ``set_length``), so a
        ladder retry restarts from an unmodified tree.
        """
        return self._guarded(
            "makenewz",
            lambda: self._makenewz_impl(branch, max_iterations, tolerance),
        )

    def _makenewz_impl(
        self,
        branch: Branch,
        max_iterations: int = 32,
        tolerance: float = 1e-8,
    ) -> Tuple[float, float]:
        u, v = branch.nodes
        context = self._push_context("makenewz")
        try:
            u_clv, u_sc = self._side(u, branch)
            v_clv, v_sc = self._side(v, branch)
        finally:
            self._pop_context(context)
        scale = u_sc + v_sc

        t = branch.length
        best_t, best_lnl = t, -np.inf
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            lnl, d1, d2 = self._derivatives_at(t, u_clv, v_clv, scale)
            if lnl > best_lnl:
                best_lnl, best_t = lnl, t
            if abs(d1) < tolerance:
                break
            if d2 < 0.0:
                step = d1 / d2
                new_t = t - step
            else:
                # Not locally concave: move in the uphill direction.
                new_t = t * 2.0 if d1 > 0 else t * 0.5
            new_t = min(max(new_t, MIN_BRANCH_LENGTH), MAX_BRANCH_LENGTH)
            if abs(new_t - t) < tolerance:
                t = new_t
                break
            t = new_t

        # Score the final point too (the loop may end right after a step).
        lnl, _, _ = self._derivatives_at(t, u_clv, v_clv, scale)
        if lnl > best_lnl:
            best_lnl, best_t = lnl, t

        self.tree.set_length(branch, best_t)
        self.makenewz_calls += 1
        if self.tracer is not None:
            self.tracer.record_makenewz(
                n_patterns=self.patterns.n_patterns,
                n_cats=self._n_cats,
                iterations=iterations,
            )
        return best_t, best_lnl

    # -- full-tree branch gradient (two-sweep) --------------------------------

    def branch_gradient_full(
        self,
        lengths: Optional[np.ndarray] = None,
        root: Optional[Node] = None,
    ) -> Tuple[List[Branch], np.ndarray, np.ndarray, np.ndarray]:
        """``(lnL, dlnL/dt, d2lnL/dt2)`` for **every** branch at once.

        Two sweeps (Ji et al., "Gradients do grow on trees") materialize
        all ``3(N-2)`` directional CLVs in O(N) ``newview()`` calls — a
        postorder sweep for the downward directions and a preorder sweep
        for the outward ("rootward") ones, both landing in the ordinary
        CLV arena — after which each branch's derivative is the same
        bilinear form ``makenewz`` probes one branch at a time.  The
        whole gradient is then a single fused ``K``-stacked backend
        contraction (``K = 2N - 3``), instead of ``K`` separate
        likelihood traversals.

        Rescaling is handled identically to the per-branch path: both
        side CLVs come out of the same ``_newview`` pipeline, so their
        scale counts match the serial computation bit for bit, and the
        per-branch combined count is the exact integer sum ``u_sc +
        v_sc``.

        Returns ``(branches, lnl, d1, d2)`` where ``branches`` is the
        tree's branch list (fixing the ``k`` order) and the three
        ``(K,)`` arrays align with it.  Each ``lnl[k]`` is the same tree
        likelihood evaluated at branch ``k`` (pulley principle).
        ``lengths`` (optional, ``(K,)``) evaluates the derivatives at
        trial lengths without touching the tree; ``root`` (optional,
        inner node) picks the sweep root — the result is invariant to
        the choice, which the metamorphic invariants assert.  Guarded.
        """
        return self._guarded(
            "branch_gradient_full",
            lambda: self._branch_gradient_impl(lengths, root),
        )

    def _fill_directional_clvs(self, root: Node) -> None:
        """Materialize every directional CLV with two sweeps from *root*.

        Postorder sweep: children before parents, computing each inner
        node's *downward* CLV (its subtree away from the branch toward
        the sweep root).  Preorder sweep (reverse postorder, parents
        before children): each branch's *outward* CLV — the rest of the
        tree as seen from the branch's root-facing endpoint — whose
        dependencies are exactly the parent's other downward CLVs (ready
        after the first sweep) plus the parent's own outward CLV (ready
        earlier in this sweep).
        """
        order = self.tree.postorder(root)
        for node, entry in order:
            if entry is not None and not node.is_tip:
                self._clv_fill(node, entry)
        for node, entry in reversed(order):
            if entry is None:
                continue
            parent = entry.other(node)
            if not parent.is_tip:
                self._clv_fill(parent, entry)

    def _branch_gradient_impl(
        self, lengths: Optional[np.ndarray], root: Optional[Node]
    ) -> Tuple[List[Branch], np.ndarray, np.ndarray, np.ndarray]:
        branches = self.tree.branches
        if not branches:
            raise ValueError("tree has no branches to differentiate")
        if root is None:
            root = self.tree.inner_nodes[0]
        elif root.is_tip:
            raise ValueError("gradient sweep root must be an inner node")
        n_branches = len(branches)
        s, c, n = self.patterns.n_patterns, self._n_cats, self._n_states
        if lengths is None:
            ts = np.array([b.length for b in branches], dtype=np.float64)
        else:
            ts = np.asarray(lengths, dtype=np.float64)
            if ts.shape != (n_branches,):
                raise ValueError(
                    f"lengths must have shape ({n_branches},), got {ts.shape}"
                )
        newviews_before = self.newview_calls
        context = self._push_context("branch_gradient")
        try:
            self._fill_directional_clvs(root)
            u_stack = np.empty((n_branches, s, c, n), dtype=np.float64)
            v_stack = np.empty((n_branches, s, c, n), dtype=np.float64)
            scale_stack = np.empty((n_branches, s), dtype=np.int64)
            for k, branch in enumerate(branches):
                u, v = branch.nodes
                u_clv, u_sc = self._side(u, branch)
                v_clv, v_sc = self._side(v, branch)
                u_stack[k] = u_clv
                v_stack[k] = v_clv
                np.add(u_sc, v_sc, out=scale_stack[k])
        finally:
            self._pop_context(context)
        lnl, d1, d2 = self._backend.branch_gradient_full(
            self._transition_derivatives_batch(ts),
            self.model.pi,
            self._cat_weights,
            self.patterns.weights,
            u_stack,
            v_stack,
            scale_stack,
            per_site=self._site_rates is not None,
        )
        if not (
            np.isfinite(lnl).all()
            and np.isfinite(d1).all()
            and np.isfinite(d2).all()
        ):
            raise FloatingPointError("non-finite full-tree branch gradient")
        self.gradient_sweeps += 1
        # A per-branch smoothing pass would pay one likelihood traversal
        # per branch; the sweep pays one.
        self.gradient_traversals_saved += n_branches - 1
        if self.tracer is not None and hasattr(self.tracer, "record_gradient"):
            self.tracer.record_gradient(
                k=n_branches,
                n_patterns=s,
                n_cats=self._n_cats,
                newviews=self.newview_calls - newviews_before,
            )
        return branches, lnl, d1, d2

    # -- batched SPR candidate scoring ---------------------------------------

    def score_spr_candidates(
        self,
        prune_branch: Branch,
        keep_side: Node,
        targets: List[Branch],
        max_iterations: int = 8,
        tolerance: float = 1e-8,
    ) -> Tuple[np.ndarray, np.ndarray, Branch]:
        """Preview-score every SPR insertion of one pruned subtree at once.

        The serial search applies each of the K candidate moves in turn,
        Newton-optimizes the junction branches, evaluates, and reverts.
        This method instead prunes the subtree *once*, builds the
        junction CLV for every candidate target (two propagations and a
        combine each, sharing P-matrix-cache entries for the split-target
        half lengths), then runs a vectorized Newton-Raphson on all K
        connect-branch lengths simultaneously through the backend's
        ``branch_derivatives_batch`` — one ``(K, s, c, n)`` tensor
        contraction per iteration instead of K independent kernel
        trips.  The tree is restored exactly before returning (same
        geometry; fresh branch ids, like the serial revert).

        Returns ``(scores, lengths, new_prune_branch)``: per-candidate
        preview log likelihoods (connect branch optimized, the two target
        halves fixed at their split lengths), the optimized connect
        lengths, and the recreated prune branch (``nodes[0]`` is the
        junction, matching :func:`Tree.regraft_subtree`).

        Guarded: a numerical fault mid-batch restores the tree (same
        regraft as the normal path) *before* the ladder retries, so a
        recompute never sees a half-pruned tree.  The retry picks up the
        recreated prune branch/junction from the restore.
        """
        if keep_side.is_tip:
            raise ValueError("keep_side must be the inner junction node")
        state = {"prune": prune_branch, "keep": keep_side}
        return self._guarded(
            "spr_batch",
            lambda: self._score_spr_impl(
                state, targets, max_iterations, tolerance
            ),
        )

    def _score_spr_impl(
        self,
        state: Dict[str, object],
        targets: List[Branch],
        max_iterations: int,
        tolerance: float,
    ) -> Tuple[np.ndarray, np.ndarray, Branch]:
        prune_branch: Branch = state["prune"]
        keep_side: Node = state["keep"]
        moved_root = prune_branch.other(keep_side)

        # Snapshot the subtree-side CLV before pruning retires its entry.
        if moved_root.is_tip:
            sub_clv = self._tip_clv(moved_root)
            sub_scale = self._zero_scale
        else:
            entry = self.clv(moved_root, prune_branch)
            sub_clv = entry.clv.copy()
            sub_scale = entry.scale_counts.copy()

        bx, by = [b for b in keep_side.branches if b is not prune_branch]
        origin_x, origin_y = bx.other(keep_side), by.other(keep_side)
        lx, ly, lsub = bx.length, by.length, prune_branch.length
        target_info = [(t, t.nodes[0], t.nodes[1], t.length) for t in targets]

        self.tree.prune_subtree(prune_branch, keep_side=keep_side)

        def restore() -> Branch:
            """Regraft the pruned subtree exactly (fresh ids, original
            geometry).  Shared by the normal path and the fault path so
            a ladder retry never sees a half-pruned tree."""
            merged = None
            for b in origin_x.branches:
                if b.other(origin_x) is origin_y:
                    merged = b
                    break
            if merged is None:  # pragma: no cover - structural invariant
                raise RuntimeError(
                    "pruning did not merge the junction branches"
                )
            new_connect = self.tree.regraft_subtree(moved_root, merged, lsub)
            junction = new_connect.nodes[0]
            for b in junction.branches:
                far = b.other(junction)
                if far is moved_root:
                    self.tree.set_length(b, lsub)
                elif far is origin_x:
                    self.tree.set_length(b, lx)
                elif far is origin_y:
                    self.tree.set_length(b, ly)
            return new_connect

        n_candidates = len(target_info)
        s, c, n = self.patterns.n_patterns, self._n_cats, self._n_states
        try:
            u_stack = np.empty((n_candidates, s, c, n))
            scale_stack = np.empty((n_candidates, s), dtype=np.int64)
            context = self._push_context("spr_batch")
            try:
                for k, (t, x, y, length) in enumerate(target_info):
                    half = max(length * 0.5, MIN_BRANCH_LENGTH)
                    p_half = self._transition_matrices(half)
                    # Fill both side CLVs first: nested newviews use the
                    # same scratch buffers the terms are about to occupy.
                    if not x.is_tip:
                        self.clv(x, t)
                    if not y.is_tip:
                        self.clv(y, t)
                    tx, scx = self._term_across(
                        x, t, p_half, out=self._term_scratch[0]
                    )
                    ty, scy = self._term_across(
                        y, t, p_half, out=self._term_scratch[1]
                    )
                    self._backend.newview_combine(tx, ty, out=u_stack[k])
                    np.add(scx, scy, out=scale_stack[k])
                    self._backend.scale_clv(u_stack[k], scale_stack[k])
                    scale_stack[k] += sub_scale
            finally:
                self._pop_context(context)

            v_stack = np.broadcast_to(sub_clv, u_stack.shape)
            pi = self.model.pi
            weights = self.patterns.weights
            per_site = self._site_rates is not None

            def derivatives_at(ts: np.ndarray):
                lnl, d1, d2 = self._backend.branch_derivatives_batch(
                    self._transition_derivatives_batch(ts),
                    pi, self._cat_weights, weights, u_stack, v_stack,
                    scale_stack, per_site=per_site,
                )
                if not (
                    np.isfinite(lnl).all()
                    and np.isfinite(d1).all()
                    and np.isfinite(d2).all()
                ):
                    raise FloatingPointError(
                        "non-finite batched branch derivatives"
                    )
                return lnl, d1, d2

            # Vectorized Newton-Raphson mirroring makenewz's updates.
            start = min(max(lsub, MIN_BRANCH_LENGTH), MAX_BRANCH_LENGTH)
            ts = np.full(n_candidates, start)
            best_ts = ts.copy()
            best_lnl = np.full(n_candidates, -np.inf)
            active = np.ones(n_candidates, dtype=bool)
            iterations = 0
            for iterations in range(1, max_iterations + 1):
                lnl, d1, d2 = derivatives_at(ts)
                better = lnl > best_lnl
                best_lnl = np.where(better, lnl, best_lnl)
                best_ts = np.where(better, ts, best_ts)
                small_d1 = np.abs(d1) < tolerance
                newton = d2 < 0.0
                new_t = np.where(
                    newton,
                    ts - d1 / np.where(newton, d2, 1.0),
                    np.where(d1 > 0.0, ts * 2.0, ts * 0.5),
                )
                np.clip(
                    new_t, MIN_BRANCH_LENGTH, MAX_BRANCH_LENGTH, out=new_t
                )
                small_step = np.abs(new_t - ts) < tolerance
                move = active & ~small_d1
                ts = np.where(move, new_t, ts)
                active &= ~(small_d1 | small_step)
                if not active.any():
                    break
            # Score the final point too (a step may end the loop).
            lnl, _, _ = derivatives_at(ts)
            better = lnl > best_lnl
            best_lnl = np.where(better, lnl, best_lnl)
            best_ts = np.where(better, ts, best_ts)
        except BaseException:
            # Restore before the degradation ladder retries, and hand
            # it the recreated prune branch/junction to retry with.
            new_connect = restore()
            state["prune"] = new_connect
            state["keep"] = new_connect.nodes[0]
            raise

        new_connect = restore()

        self.spr_batch_calls += 1
        self.spr_batch_candidates += n_candidates
        if self.tracer is not None and hasattr(self.tracer, "record_spr_batch"):
            self.tracer.record_spr_batch(
                k=n_candidates,
                n_patterns=s,
                n_cats=self._n_cats,
                iterations=iterations,
            )
        return best_lnl, best_ts, new_connect

    # -- diagnostics ----------------------------------------------------------

    def perf_counters(self) -> Dict[str, int]:
        """Hot-path performance counters (cache, arena, backend, batching).

        Exposed to tracers through ``add_counter_source`` so workload
        traces carry the engine-efficiency numbers alongside the kernel
        mix.  The key set is identical for every backend: engine
        counters, ``pmat_*`` cache counters, ``arena_*`` counters, and
        the fixed ``backend_*`` quadruple.
        """
        counters = {
            "newview_calls": self.newview_calls,
            "evaluate_calls": self.evaluate_calls,
            "makenewz_calls": self.makenewz_calls,
            "spr_batch_calls": self.spr_batch_calls,
            "spr_batch_candidates": self.spr_batch_candidates,
            "gradient_sweeps": self.gradient_sweeps,
            "gradient_traversals_saved": self.gradient_traversals_saved,
            "gradient_fallbacks": self.gradient_fallbacks,
            "clv_cache_entries": len(self._clv_cache),
            "numerical_faults": self.numerical_faults,
            "fault_recoveries": self.fault_recoveries,
            "degraded": self.degraded_evaluations,
        }
        counters.update(self._pmats.counters())
        counters.update(self._arena.counters())
        counters.update(self._backend.perf_counters())
        return counters

    #: global Newton steps allotted per requested smoothing pass in
    #: gradient mode.  One per-branch pass performs up to 32 Newton
    #: updates *per branch*; a global step updates every branch at once,
    #: so a handful of steps per pass lets the two modes converge to the
    #: same optimum under the same pass budget.
    GRADIENT_STEPS_PER_PASS = 8

    def optimize_all_branches(
        self, passes: int = 3, tolerance: float = 1e-6,
        mode: str = "newton",
    ) -> float:
        """Smooth every branch length (RAxML 'smoothings').

        ``mode="newton"`` (the default) is the classic round robin: one
        per-branch :meth:`makenewz` Newton optimization per branch per
        pass, each paying its own likelihood traversal.
        ``mode="gradient"`` replaces the round robin with simultaneous
        Newton steps from :meth:`branch_gradient_full`: one two-sweep
        evaluation yields derivatives for all ``2N-3`` branches and
        every branch steps at once (Jacobi style, with ``makenewz``'s
        safeguards applied element-wise).  A global step that *loses*
        likelihood reverts its lengths and falls back to the per-branch
        round robin (counted in ``gradient_fallbacks``), so gradient
        mode never finishes worse than a Newton pass would.

        Stops early when a pass (or global step) improves the likelihood
        by less than *tolerance*.  Returns the final log likelihood.
        """
        if mode == "gradient":
            return self._smooth_gradient(passes, tolerance)
        if mode != "newton":
            raise ValueError(f"unknown smoothing mode: {mode!r}")
        return self._smooth_newton(passes, tolerance)

    def _smooth_newton(self, passes: int, tolerance: float) -> float:
        last = -np.inf
        lnl = last
        for _ in range(passes):
            for branch in self.tree.branches:
                _, lnl = self.makenewz(branch)
            if lnl - last < tolerance:
                break
            last = lnl
        return lnl

    def _smooth_gradient(self, passes: int, tolerance: float) -> float:
        # Phase 1 — bulk smoothing: simultaneous Newton steps from the
        # full-tree gradient (one two-sweep traversal per step, instead
        # of one traversal per branch).
        max_steps = max(1, passes) * self.GRADIENT_STEPS_PER_PASS
        # The gradient phase owns the bulk descent, not the endgame:
        # once a whole simultaneous step gains less than this, the
        # per-branch polish below finishes cheaper (coupled branches —
        # e.g. the flat valley around a zero-length internal branch —
        # make Jacobi steps crawl where the round robin just stops).
        stall_tol = max(tolerance, 1e-4)
        last = -np.inf
        prev_ts: Optional[np.ndarray] = None
        just_damped = False
        for step in range(max_steps):
            branches, g_lnl, d1, d2 = self.branch_gradient_full()
            lnl = float(g_lnl[0])
            if prev_ts is not None and lnl < last - 1e-9:
                # Safeguard tripped: the simultaneous step lost
                # likelihood (branch-update interactions).  Damp the
                # step toward the previous lengths; if even heavily
                # damped steps lose, abandon the gradient phase and let
                # the per-branch polish below take over.
                accepted, lnl = self._backtrack_gradient_step(
                    branches, prev_ts, last, stall_tol
                )
                if not accepted:
                    self.gradient_fallbacks += 1
                    break
                last = lnl
                prev_ts = None  # damped point accepted as the new base
                just_damped = True
                continue
            # A sweep right after an accepted damped step re-measures
            # the damped point itself (gain ~0 by construction), so the
            # step-gain convergence check is meaningless there once.
            if not just_damped and lnl - last < stall_tol:
                break
            just_damped = False
            last = lnl
            ts = np.array([b.length for b in branches], dtype=np.float64)
            # Element-wise makenewz safeguards: Newton where locally
            # concave, uphill doubling/halving otherwise, converged
            # branches frozen, all steps clamped to the length bounds.
            concave = d2 < 0.0
            newton = ts - d1 / np.where(concave, d2, 1.0)
            uphill = np.where(d1 > 0.0, ts * 2.0, ts * 0.5)
            new_ts = np.where(concave, newton, uphill)
            new_ts = np.where(np.abs(d1) < 1e-8, ts, new_ts)
            np.clip(new_ts, MIN_BRANCH_LENGTH, MAX_BRANCH_LENGTH, out=new_ts)
            if np.max(np.abs(new_ts - ts)) < 1e-8:
                break
            prev_ts = ts
            for branch, t in zip(branches, new_ts):
                self.tree.set_length(branch, float(t))
        # Phase 2 — per-branch polish: finish with the classic round
        # robin so gradient mode terminates at the *same* fixed point as
        # newton mode (a per-branch pass gaining less than *tolerance*).
        # When phase 1 converged this is nearly free: unchanged lengths
        # trigger no CLV invalidations, so each makenewz stops at its
        # first |d1| check against warm caches.
        return self._smooth_newton(passes, tolerance)

    def _backtrack_gradient_step(
        self,
        branches: List[Branch],
        base_ts: np.ndarray,
        target_lnl: float,
        tolerance: float,
    ) -> Tuple[bool, float]:
        """Halve an overshooting simultaneous step until it improves.

        The tree currently holds the overshot lengths; *base_ts* holds
        the pre-step ones.  Each halving costs one :meth:`evaluate`
        traversal (not a full gradient sweep).  A damped step is only
        accepted when it gains at least *tolerance* — a marginal gain
        would trip the caller's convergence check and end the smoothing
        at a point per-branch Newton would still improve.  On failure
        the tree is restored to *base_ts* and the caller falls back to
        per-branch ``makenewz``.
        """
        applied_ts = np.array([b.length for b in branches], dtype=np.float64)
        for attempt in range(1, 5):
            trial = base_ts + (applied_ts - base_ts) * 0.5**attempt
            np.clip(trial, MIN_BRANCH_LENGTH, MAX_BRANCH_LENGTH, out=trial)
            for branch, t in zip(branches, trial):
                self.tree.set_length(branch, float(t))
            lnl = self.evaluate()
            if lnl >= target_lnl + tolerance:
                return True, lnl
        for branch, t in zip(branches, base_ts):
            self.tree.set_length(branch, float(t))
        return False, target_lnl


def estimate_site_rates(
    patterns: PatternAlignment,
    model: SubstitutionModel,
    tree: Tree,
    rate_grid: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-pattern ML rate estimates over a grid (for building CAT models).

    For each candidate rate the whole tree is scored with a single
    rate category, and each pattern picks the rate maximizing its own
    likelihood — a simplified version of RAxML's per-site rate
    optimization that feeds :func:`repro.phylo.rates.CatRates`.
    """
    if rate_grid is None:
        rate_grid = np.geomspace(1.0 / 16.0, 16.0, 25)
    per_rate = np.empty((len(rate_grid), patterns.n_patterns))
    for k, rate in enumerate(rate_grid):
        rate_model = RateModel(np.array([rate]), np.ones(1), name=f"fixed({rate:g})")
        engine = LikelihoodEngine(patterns, model, rate_model, tree)
        per_rate[k] = engine.site_log_likelihoods()
        engine.detach()
    best = rate_grid[np.argmax(per_rate, axis=0)]
    return np.asarray(best, dtype=np.float64)
