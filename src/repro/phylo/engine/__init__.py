"""Layered likelihood engine: structural core + pluggable kernel backends.

Public surface:

* :func:`create_engine` — the one construction path (factory honouring
  the ``REPRO_ENGINE_BACKEND`` environment override).
* :class:`LikelihoodEngine` — the engine core (CLV cache/arena,
  P-matrix LRU, traversal, Newton, SPR batching).
* :class:`KernelBackend` / :func:`register_backend` /
  :func:`available_backends` / :func:`resolve_backend` — the backend
  protocol and registry (``einsum``, ``reference``, ``partitioned``).
"""

from .protocol import (
    BACKEND_COUNTER_KEYS,
    BACKEND_ENV_VAR,
    DEFAULT_BACKEND,
    KernelBackend,
    available_backends,
    create_engine,
    register_backend,
    resolve_backend,
)
from .core import LikelihoodEngine, NewviewCase, estimate_site_rates

__all__ = [
    "BACKEND_COUNTER_KEYS",
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "KernelBackend",
    "LikelihoodEngine",
    "NewviewCase",
    "available_backends",
    "create_engine",
    "estimate_site_rates",
    "register_backend",
    "resolve_backend",
]
