"""The kernel-backend protocol: the engine's offload boundary.

The paper's central restructuring is an *interface*: RAxML's three hot
functions (``newview``, ``makenewz``, ``evaluate``) were cut at a seam so
their compute bodies could run on SPE workers while the PPE kept the
tree, the caches, and the search logic.  :class:`KernelBackend` is that
seam in the reproduction: everything numerical that the likelihood
engine does per site pattern flows through one of its methods, and the
engine core (:mod:`repro.phylo.engine.core`) holds everything else —
CLV cache and arena, P-matrix LRU, dirty tracking, traversal order,
Newton iteration, SPR batching.

Four backends register here:

``einsum``
    The vectorized NumPy kernels of :mod:`repro.phylo.kernels` — the
    fast default (the "SIMD-vectorized SPE kernel" analogue).
``reference``
    Deliberately slow plain-Python loops sharing **no** vectorized code
    with ``einsum`` (it even projects its own transition matrices
    element-wise, bypassing the engine's P-matrix cache).  Backing the
    differential oracle: same core, two backends, so the oracle can no
    longer drift from the engine surface.
``partitioned``
    The paper's PPE→SPE work partitioning: site patterns are sharded
    into contiguous stripes and every kernel runs stripe-parallel on a
    thread pool (NumPy releases the GIL inside the einsum bodies), with
    partial log likelihoods reduced over fixed pattern blocks in a
    thread-count-invariant order — exactly as the SPE version reduces
    its partial results in fixed PPE order.
``compiled``
    The partitioned dispatcher with nogil machine-code inner kernels
    (numba ``@njit(nogil=True)`` or an on-demand-compiled C library) so
    stripe threads genuinely overlap.  Registered with an availability
    *probe*: hosts without numba or a C compiler simply do not list it,
    and requesting it by name raises a typed error.

Select a backend with :func:`create_engine`'s ``backend=`` argument, the
``REPRO_ENGINE_BACKEND`` environment variable (``name``, ``name:N`` where
``N`` sets the stripe/thread count, or ``name:N:inner`` where ``inner``
picks the partitioned dispatcher's inner kernels, e.g.
``partitioned:2:compiled``), or by passing an already-built
:class:`KernelBackend` instance.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

__all__ = [
    "BACKEND_ENV_VAR",
    "DEFAULT_BACKEND",
    "EngineNumericalError",
    "KernelBackend",
    "KernelExecutionError",
    "available_backends",
    "backend_availability",
    "create_engine",
    "register_backend",
    "resolve_backend",
]


class KernelExecutionError(RuntimeError):
    """A kernel backend failed to *execute* (as opposed to producing a
    numerically bad result): a stripe worker raised, a thread pool died.
    The engine core treats it like a detected numerical fault — drop
    caches, recompute, and escalate down the degradation ladder."""


class EngineNumericalError(RuntimeError):
    """The engine exhausted its degradation ladder (recompute, then
    per-evaluation fallback to the ``reference`` backend) and still hit
    numerical faults.  The typed end state: a caller seeing this knows
    the result was *not* silently wrong — there is no result."""

#: Environment variable overriding the default backend for every engine
#: built without an explicit ``backend=``: ``einsum``, ``reference``,
#: ``partitioned``, or ``partitioned:N`` (N stripes on N threads).
BACKEND_ENV_VAR = "REPRO_ENGINE_BACKEND"

#: Backend used when neither the caller nor the environment chooses.
DEFAULT_BACKEND = "einsum"

#: Counter keys every backend must report (satellite contract: golden
#: perf-counter checks and the benchmark harness never special-case the
#: backend).  Values are cumulative since backend construction.
BACKEND_COUNTER_KEYS = (
    "backend_kernel_calls",
    "backend_stripe_tasks",
    "backend_stripes",
    "backend_threads",
    "backend_warmup_us",
)


class KernelBackend:
    """Abstract numerical backend behind :class:`LikelihoodEngine`.

    Array-shape conventions (``s`` patterns, ``c`` rate categories,
    ``n`` states, ``K`` stacked branch candidates):

    * CLVs and propagated terms: ``(s, c, n)`` (batched: ``(K, s, c, n)``).
    * Integrated-mode transition matrices: ``(c, n, n)``; CAT
      (``per_site=True``) matrices: ``(s, n, n)`` — one per pattern,
      with the CLV keeping a singleton category axis.
    * Scale counts: ``(s,)`` ``int64`` (batched: ``(K, s)``).

    Implementations must be *deterministic*: two calls on the same
    inputs return bit-identical results (the partitioned backend fixes
    its stripe boundaries and reduction order up front for exactly this
    reason).  Scale counts must be bit-identical **across** backends —
    the underflow threshold comparison is exact, so striping or loop
    order must not change which patterns rescale.
    """

    #: Registry name (overridden per subclass).
    name: str = "abstract"

    #: When True the engine core serves transition matrices from its
    #: quantized-length :class:`~repro.phylo.models.PMatrixCache`.  The
    #: reference backend sets this False and projects its own matrices
    #: element-wise, keeping the oracle independent of the vectorized
    #: eigenbasis projection *and* of the cache's quantization.
    uses_pmat_cache: bool = True

    # -- newview kernels -----------------------------------------------------

    def tip_terms(
        self,
        p: np.ndarray,
        masks: np.ndarray,
        code_table: Optional[np.ndarray],
        out: Optional[np.ndarray] = None,
        per_site: bool = False,
    ) -> np.ndarray:
        """Propagate tip states across a branch: ``sum_j P[.,i,j] tip[s,j]``."""
        raise NotImplementedError

    def inner_terms(
        self,
        p: np.ndarray,
        clv: np.ndarray,
        out: Optional[np.ndarray] = None,
        per_site: bool = False,
    ) -> np.ndarray:
        """Propagate an inner CLV across a branch: ``sum_j P[.,i,j] clv[s,c,j]``."""
        raise NotImplementedError

    def newview_combine(
        self,
        left_term: np.ndarray,
        right_term: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Combine two propagated child terms into the parent CLV."""
        raise NotImplementedError

    def scale_clv(self, clv: np.ndarray, scale_counts: np.ndarray) -> int:
        """Rescale underflowing patterns in place; returns how many scaled."""
        raise NotImplementedError

    # -- evaluate kernels ----------------------------------------------------

    def evaluate_loglik(
        self,
        pi: np.ndarray,
        cat_weights: np.ndarray,
        pattern_weights: np.ndarray,
        u_term: np.ndarray,
        v_term: np.ndarray,
        scale_counts: np.ndarray,
    ) -> float:
        """Weighted log likelihood at a branch."""
        raise NotImplementedError

    def evaluate_loglik_batch(
        self,
        pi: np.ndarray,
        cat_weights: np.ndarray,
        pattern_weights: np.ndarray,
        u_terms: np.ndarray,
        v_terms: np.ndarray,
        scale_counts: np.ndarray,
    ) -> np.ndarray:
        """:meth:`evaluate_loglik` over ``K`` stacked branch candidates."""
        raise NotImplementedError

    # -- makenewz kernels ----------------------------------------------------

    def branch_derivatives(
        self,
        model_terms: Tuple[np.ndarray, np.ndarray, np.ndarray],
        pi: np.ndarray,
        cat_weights: np.ndarray,
        pattern_weights: np.ndarray,
        u_clv: np.ndarray,
        v_clv: np.ndarray,
        scale_counts: np.ndarray,
        per_site: bool = False,
    ) -> Tuple[float, float, float]:
        """``(lnL, d lnL/dt, d2 lnL/dt2)`` at one branch length."""
        raise NotImplementedError

    def branch_derivatives_batch(
        self,
        model_terms: Tuple[np.ndarray, np.ndarray, np.ndarray],
        pi: np.ndarray,
        cat_weights: np.ndarray,
        pattern_weights: np.ndarray,
        u_clv: np.ndarray,
        v_clv: np.ndarray,
        scale_counts: np.ndarray,
        per_site: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """:meth:`branch_derivatives` over ``K`` stacked candidates."""
        raise NotImplementedError

    def branch_gradient_full(
        self,
        model_terms: Tuple[np.ndarray, np.ndarray, np.ndarray],
        pi: np.ndarray,
        cat_weights: np.ndarray,
        pattern_weights: np.ndarray,
        u_clvs: np.ndarray,
        v_clvs: np.ndarray,
        scale_counts: np.ndarray,
        per_site: bool = False,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fused full-tree gradient contraction over ``K = 2N - 3`` branches.

        Same operand layout as :meth:`branch_derivatives_batch` — the
        engine stacks one ``(u_clv, v_clv, scale_counts)`` triple per
        branch (directional CLVs from its two-sweep traversal) and one
        transition stack per branch length — but semantically this is
        the *whole-tree* gradient, not an SPR candidate batch: entry
        ``k`` of each returned ``(K,)`` array is ``(lnL, dlnL/dt,
        d2lnL/dt2)`` for branch ``k``.  The default delegates to
        :meth:`branch_derivatives_batch`, which is numerically exact
        (both are ``K`` independent bilinear forms); backends override
        it to count the sweep distinctly or to fuse it differently.
        """
        return self.branch_derivatives_batch(
            model_terms, pi, cat_weights, pattern_weights,
            u_clvs, v_clvs, scale_counts, per_site=per_site)

    # -- transition-matrix seam (only when uses_pmat_cache is False) ---------

    def transition_matrices(self, model, rates: np.ndarray,
                            branch_length: float) -> np.ndarray:
        """Backend-owned ``P(r t)`` projection (oracle independence)."""
        raise NotImplementedError

    def transition_derivatives(
        self, model, rates: np.ndarray, branch_length: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backend-owned ``(P, dP/dt, d2P/dt2)`` projection."""
        raise NotImplementedError

    def transition_derivatives_batch(
        self, model, rates: np.ndarray, branch_lengths: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backend-owned batched ``(P, dP, d2P)`` stacks (``K`` lengths)."""
        raise NotImplementedError

    # -- instrumentation -----------------------------------------------------

    def perf_counters(self) -> Dict[str, int]:
        """Backend counters.  Every backend reports the exact key set
        :data:`BACKEND_COUNTER_KEYS` so downstream perf-counter
        consumers (golden corpus, benchmark gates, traces) never
        special-case the backend."""
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (thread pools); idempotent."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


# -- registry -----------------------------------------------------------------

_REGISTRY: Dict[str, Callable[..., KernelBackend]] = {}

#: Optional availability probes by backend name.  A probe returns a
#: truthy value (conventionally a short detail string, e.g. the compiled
#: kernel flavor) when the backend can actually be constructed on this
#: host, and ``None``/falsy when it cannot.
_PROBES: Dict[str, Callable[[], object]] = {}


def register_backend(name: str, probe: Optional[Callable[[], object]] = None):
    """Class/factory decorator adding a backend to the registry.

    ``probe`` (optional) is a zero-argument availability check: backends
    that depend on host capabilities (a JIT, a C compiler) register one
    so :func:`available_backends` only lists what would really build.
    Probes run lazily — never at registration/import time.
    """

    def decorate(factory: Callable[..., KernelBackend]):
        _REGISTRY[name] = factory
        if probe is not None:
            _PROBES[name] = probe
        return factory

    return decorate


def _ensure_registered() -> None:
    # The built-in backends register on import; deferred so that
    # protocol.py itself stays import-cycle free.
    if "einsum" not in _REGISTRY:
        from . import backends  # noqa: F401  (import side effect)


def _probe(name: str) -> bool:
    probe = _PROBES.get(name)
    if probe is None:
        return True
    try:
        return bool(probe())
    except Exception:
        return False


def available_backends() -> List[str]:
    """Sorted names of every registered backend *usable on this host*
    (backends whose availability probe fails are omitted)."""
    _ensure_registered()
    return sorted(name for name in _REGISTRY if _probe(name))


def backend_availability() -> Dict[str, object]:
    """Every registered backend name mapped to its availability: ``True``
    (no probe — always constructible), the probe's truthy detail (e.g.
    the compiled flavor name), or ``False`` when the probe fails."""
    _ensure_registered()
    report: Dict[str, object] = {}
    for name in sorted(_REGISTRY):
        probe = _PROBES.get(name)
        if probe is None:
            report[name] = True
            continue
        try:
            detail = probe()
        except Exception:
            detail = None
        report[name] = detail if detail else False
    return report


def resolve_backend(
    spec: Union[None, str, KernelBackend] = None, **options
) -> KernelBackend:
    """Turn a backend spec into a live :class:`KernelBackend`.

    ``spec`` may be an instance (returned as-is), a registry name, a
    ``name:N`` string (N = partitioned stripe/thread count), a
    ``name:N:inner`` string (``inner`` = the partitioned dispatcher's
    inner striped kernels, e.g. ``partitioned:2:compiled``), or ``None``
    — which consults :data:`BACKEND_ENV_VAR` and finally falls back to
    :data:`DEFAULT_BACKEND`.  Keyword options are forwarded to the
    backend factory.
    """
    if isinstance(spec, KernelBackend):
        if options:
            raise ValueError(
                "backend options cannot be combined with a backend instance"
            )
        return spec
    _ensure_registered()
    if spec is None:
        spec = os.environ.get(BACKEND_ENV_VAR, "").strip() or DEFAULT_BACKEND
    name, _, rest = spec.partition(":")
    if rest:
        arg, _, inner = rest.partition(":")
        try:
            workers = int(arg)
        except ValueError:
            raise ValueError(
                f"malformed backend spec {spec!r}: expected name, name:N, "
                f"or name:N:inner"
            ) from None
        options.setdefault("n_stripes", workers)
        options.setdefault("n_threads", workers)
        if inner:
            options.setdefault("inner", inner)
    factory = _REGISTRY.get(name)
    if factory is None:
        raise ValueError(
            f"unknown engine backend {name!r}; available: "
            f"{', '.join(available_backends())}"
        )
    return factory(**options)


def create_engine(
    patterns,
    model,
    rate_model=None,
    tree=None,
    tracer=None,
    backend: Union[None, str, KernelBackend] = None,
    **backend_options,
):
    """Build a :class:`~repro.phylo.engine.core.LikelihoodEngine` on the
    chosen kernel backend.

    This is the one construction path every caller (search, inference,
    cluster workers, verification, CLI) goes through; ``backend=None``
    honours the ``REPRO_ENGINE_BACKEND`` environment override, so a
    whole test suite or cluster run can be re-pointed at another
    backend without touching call sites.
    """
    from .core import LikelihoodEngine

    return LikelihoodEngine(
        patterns,
        model,
        rate_model,
        tree,
        tracer=tracer,
        backend=resolve_backend(backend, **backend_options),
    )
