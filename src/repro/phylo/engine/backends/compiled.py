"""The ``compiled`` kernel backend: nogil machine-code likelihood loops.

This is the BEAGLE-style architecture-specific implementation slot
behind the one :class:`~..protocol.KernelBackend` API (and the
reproduction's answer to the paper's SIMD-vectorized SPE kernels): the
hot loops run as compiled code that releases the GIL, so the
partitioned dispatcher's stripe threads finally overlap for real
instead of serialising on the interpreter.

Two flavors implement the same striped-kernels interface:

``numba``
    :mod:`._compiled_numba` — ``@njit(nogil=True, cache=True)``
    kernels.  Preferred when numba is importable
    (``pip install repro[compiled]``).
``cc``
    :mod:`._compiled_cc` — a C translation unit compiled on demand with
    the host C compiler and called through ctypes (which drops the GIL
    for every foreign call).  The fallback for hosts without numba;
    needs only a working ``cc``.

Selection is ``REPRO_COMPILED_FLAVOR``: ``auto`` (default; numba then
cc), ``numba``, ``cc``, or ``disabled`` (the backend reports itself
unavailable — used by tests and as a kill switch).  Every flavor is
self-checked against the einsum kernels at load (1e-12) and the one-time
build/JIT cost is surfaced as the ``backend_warmup_us`` perf counter so
benchmarks never charge compile time to the first likelihood call.

When no flavor is available the registry's availability probe reports
the backend absent (``available_backends()`` omits it) and resolving
``compiled`` — by name or via ``REPRO_ENGINE_BACKEND`` — raises the
typed :class:`CompiledBackendUnavailable` naming every flavor's reason;
nothing falls back silently.  The engine-level fallback is the
*degradation ladder* (compiled → einsum → reference), which only
engages on detected numerical faults at runtime.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional

from ..protocol import register_backend
from .partitioned import PartitionedBackend

__all__ = [
    "FLAVOR_ENV_VAR",
    "CompiledBackend",
    "CompiledBackendUnavailable",
    "compiled_available",
    "load_compiled_kernels",
]

#: Environment override for the kernel flavor: auto | numba | cc | disabled.
FLAVOR_ENV_VAR = "REPRO_COMPILED_FLAVOR"

_FLAVOR_ORDER = ("numba", "cc")


class CompiledBackendUnavailable(RuntimeError):
    """No compiled kernel flavor could be loaded (or the flavor was
    explicitly disabled).  The typed error the registry/factory raises
    when ``compiled`` is requested on a host that cannot provide it."""


#: Loaded flavor singletons: one warmup per flavor per process.
_LOADED: Dict[str, object] = {}
#: Why a flavor failed to load (so availability errors are actionable).
_FAILURES: Dict[str, str] = {}


def _requested_flavor() -> str:
    return os.environ.get(FLAVOR_ENV_VAR, "").strip().lower() or "auto"


def _load_flavor(flavor: str):
    """Load (or reuse) one flavor's kernel table, self-checked and with
    its one-time warmup cost recorded.  Raises on any failure."""
    cached = _LOADED.get(flavor)
    if cached is not None:
        return cached
    from ._compiled_cc import run_self_check

    started = time.perf_counter()
    if flavor == "numba":
        from ._compiled_numba import NumbaKernels

        kernel_table = NumbaKernels()
    elif flavor == "cc":
        from ._compiled_cc import CcKernels

        kernel_table = CcKernels()
    else:
        raise CompiledBackendUnavailable(
            f"unknown compiled kernel flavor {flavor!r}; expected one of "
            f"auto, numba, cc, disabled"
        )
    # The self-check doubles as the JIT/compile warmup: for numba it
    # compiles every kernel, for cc it exercises the fresh library.
    run_self_check(kernel_table)
    kernel_table._warmup_us = int((time.perf_counter() - started) * 1e6)
    _LOADED[flavor] = kernel_table
    return kernel_table


def load_compiled_kernels(flavor: Optional[str] = None):
    """The compiled striped-kernels table for *flavor* (default: the
    ``REPRO_COMPILED_FLAVOR`` environment selection).

    ``auto`` tries numba then cc and raises
    :class:`CompiledBackendUnavailable` naming every flavor's failure
    when none loads; an explicit flavor propagates its own failure.
    """
    choice = (flavor or _requested_flavor()).lower()
    if choice == "disabled":
        raise CompiledBackendUnavailable(
            f"compiled backend disabled via {FLAVOR_ENV_VAR}=disabled"
        )
    if choice != "auto":
        try:
            return _load_flavor(choice)
        except CompiledBackendUnavailable:
            raise
        except Exception as exc:
            _FAILURES[choice] = str(exc)
            raise CompiledBackendUnavailable(
                f"compiled kernel flavor {choice!r} failed to load: {exc}"
            ) from exc
    reasons = []
    for candidate in _FLAVOR_ORDER:
        try:
            return _load_flavor(candidate)
        except Exception as exc:
            _FAILURES[candidate] = str(exc)
            reasons.append(f"{candidate}: {exc}")
    raise CompiledBackendUnavailable(
        "no compiled kernel flavor available — "
        + "; ".join(reasons)
        + " (install numba via `pip install repro[compiled]` or provide "
        "a C compiler)"
    )


def compiled_available() -> Optional[str]:
    """The flavor name the ``compiled`` backend would use right now, or
    ``None`` when unavailable.  This is the registry availability probe:
    honest (it actually loads and self-checks the flavor) but one-time
    per process thanks to the flavor cache."""
    try:
        return load_compiled_kernels().flavor
    except CompiledBackendUnavailable:
        return None


@register_backend("compiled", probe=compiled_available)
class CompiledBackend(PartitionedBackend):
    """Pattern stripes dispatched into nogil compiled kernels.

    Subclasses the partitioned dispatcher — stripe bounds, fixed
    pattern-block reductions, ordered pairwise reduction, the chaos
    ``backend.stripe_raise`` site, and the perf-counter contract are
    all inherited — and swaps the inner striped-kernels implementation
    from einsum to the loaded compiled flavor.  ``compiled:N`` runs N
    stripes on N pool threads exactly like ``partitioned:N``; unlike
    the einsum inner kernels, the compiled bodies hold the GIL for
    none of their runtime, so N > 1 scales on multi-core hosts.
    """

    name = "compiled"

    def __init__(self, n_stripes: Optional[int] = None,
                 n_threads: Optional[int] = None,
                 flavor: Optional[str] = None,
                 block: Optional[int] = None) -> None:
        super().__init__(
            n_stripes, n_threads, inner=load_compiled_kernels(flavor),
            block=block,
        )
