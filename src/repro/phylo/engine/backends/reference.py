"""The loop-based oracle backend.

Every kernel is written as plain Python loops over patterns, rate
categories and states, sharing **no** vectorized code path with the
``einsum`` backend — it even projects its own transition matrices
element-wise (``uses_pmat_cache = False``), so the engine's einsum-based
``SubstitutionModel.transition_matrices`` and the quantized P-matrix
cache are both off this path.  The one shared numeric artifact is the
model's eigensystem: verifying it independently would mean
reimplementing ``eigh``.

The arithmetic *order* of every accumulation deliberately reproduces the
original standalone ``ReferenceEngine`` (pre-refactor), so the committed
golden corpus' oracle log likelihoods remain bit-identical.  The scaling
discipline matches the fast kernels exactly (threshold ``2^-256``, exact
power-of-two multiplier, NaN/Inf guard), so scale counts agree with
every other backend bit for bit.

Orders of magnitude slower than ``einsum`` by design; use tiny
instances (a handful of taxa, tens of patterns).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...dna import TIP_PARTIAL_ROWS
from ...kernels import LOG_SCALE_FACTOR, SCALE_FACTOR, SCALE_THRESHOLD
from ..protocol import KernelBackend, register_backend

__all__ = ["ReferenceBackend"]


@register_backend("reference")
class ReferenceBackend(KernelBackend):
    """Deliberately slow scalar loops — the differential oracle."""

    name = "reference"
    uses_pmat_cache = False

    def __init__(self) -> None:
        self.kernel_calls = 0

    # -- transition-matrix projection (element-wise) -------------------------

    def _project(self, model, rates, t: float, order: int
                 ) -> List[List[List[float]]]:
        """``d^order/dt^order P(r t)`` for every rate row, as lists.

        ``P[r][i][j] = sum_k R[i][k] (lam_k r)^order exp(lam_k r t) L[k][j]``.
        """
        eigenvalues = [float(x) for x in model._eigenvalues]
        right = model._right.tolist()
        left = model._left.tolist()
        n = len(eigenvalues)
        out = []
        for r in (float(x) for x in rates):
            mat = [[0.0] * n for _ in range(n)]
            weights = []
            for lam in eigenvalues:
                lam_r = lam * r
                weights.append((lam_r ** order) * math.exp(lam_r * t))
            for i in range(n):
                row_r = right[i]
                row = mat[i]
                for j in range(n):
                    acc = 0.0
                    for k in range(n):
                        acc += row_r[k] * weights[k] * left[k][j]
                    row[j] = acc
            out.append(mat)
        return out

    def transition_matrices(self, model, rates, branch_length: float
                            ) -> np.ndarray:
        if branch_length < 0:
            raise ValueError("branch length must be non-negative")
        return np.asarray(
            self._project(model, rates, branch_length, 0), dtype=np.float64
        )

    def transition_derivatives(self, model, rates, branch_length: float
                               ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if branch_length < 0:
            raise ValueError("branch length must be non-negative")
        return tuple(
            np.asarray(self._project(model, rates, branch_length, order),
                       dtype=np.float64)
            for order in (0, 1, 2)
        )

    def transition_derivatives_batch(self, model, rates, branch_lengths
                                     ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        stacks = [self.transition_derivatives(model, rates, float(t))
                  for t in branch_lengths]
        return tuple(
            np.asarray([stack[order] for stack in stacks])
            for order in (0, 1, 2)
        )

    # -- newview -------------------------------------------------------------

    @staticmethod
    def _p_row(p: List, s: int, c: int, per_site: bool) -> List[List[float]]:
        """The (n, n) transition matrix for pattern *s*, category *c*."""
        return p[s] if per_site else p[c]

    def _propagate(self, p, source, out: np.ndarray, per_site: bool) -> None:
        """``out[s,c,i] = sum_j P[.,i,j] source[s][c][j]`` by scalar loops."""
        n_patterns, n_cats, n = out.shape
        p = np.asarray(p).tolist()
        for s in range(n_patterns):
            for c in range(n_cats):
                mat = self._p_row(p, s, c, per_site)
                src = source[s][c]
                dst = [0.0] * n
                for i in range(n):
                    acc = 0.0
                    row = mat[i]
                    for j in range(n):
                        acc += row[j] * src[j]
                    dst[i] = acc
                out[s, c] = dst

    def tip_terms(self, p, masks, code_table, out=None, per_site=False):
        self.kernel_calls += 1
        table = TIP_PARTIAL_ROWS if code_table is None else code_table
        rows = table[np.asarray(masks)].tolist()  # (s, n)
        if per_site:
            n_patterns = len(rows)
            n_cats = 1
        else:
            n_patterns = len(rows)
            n_cats = len(np.asarray(p))
        n = len(rows[0]) if rows else 0
        if out is None:
            out = np.empty((n_patterns, n_cats, n), dtype=np.float64)
        source = [[rows[s]] * out.shape[1] for s in range(n_patterns)]
        self._propagate(p, source, out, per_site)
        return out

    def inner_terms(self, p, clv, out=None, per_site=False):
        self.kernel_calls += 1
        if out is None:
            out = np.empty_like(np.asarray(clv), dtype=np.float64)
        self._propagate(p, np.asarray(clv).tolist(), out, per_site)
        return out

    def newview_combine(self, left_term, right_term, out=None):
        self.kernel_calls += 1
        left = np.asarray(left_term).tolist()
        right = np.asarray(right_term).tolist()
        n_patterns = len(left)
        if out is None:
            out = np.empty_like(np.asarray(left_term), dtype=np.float64)
        for s in range(n_patterns):
            ls, rs = left[s], right[s]
            for c in range(len(ls)):
                t1, t2 = ls[c], rs[c]
                out[s, c] = [t1[i] * t2[i] for i in range(len(t1))]
        return out

    def scale_clv(self, clv, scale_counts) -> int:
        self.kernel_calls += 1
        n_patterns, n_cats, n = clv.shape
        values = clv.tolist()
        count = 0
        for s in range(n_patterns):
            pattern_max = 0.0
            for c in range(n_cats):
                row = values[s][c]
                for i in range(n):
                    value = row[i]
                    if not math.isfinite(value):
                        raise FloatingPointError(
                            f"non-finite CLV entries at pattern {s} (NaN/Inf "
                            f"reached the underflow-rescaling check)"
                        )
                    if value > pattern_max:
                        pattern_max = value
            if pattern_max < SCALE_THRESHOLD:
                for c in range(n_cats):
                    row = values[s][c]
                    for i in range(n):
                        row[i] *= SCALE_FACTOR
                    clv[s, c] = row
                scale_counts[s] += 1
                count += 1
        return count

    # -- evaluate ------------------------------------------------------------

    def evaluate_loglik(self, pi, cat_weights, pattern_weights, u_term,
                        v_term, scale_counts) -> float:
        self.kernel_calls += 1
        u = np.asarray(u_term).tolist()
        v = np.asarray(v_term).tolist()
        pi = [float(x) for x in pi]
        cw = [float(x) for x in cat_weights]
        n_patterns = len(u)
        n = len(pi)
        total = 0.0
        for s in range(n_patterns):
            site = 0.0
            us_row, vs_row = u[s], v[s]
            for c in range(len(cw)):
                us, vs = us_row[c], vs_row[c]
                cat = 0.0
                for i in range(n):
                    cat += pi[i] * us[i] * vs[i]
                site += cw[c] * cat
            if site <= 0.0:
                raise FloatingPointError(
                    "non-positive site likelihood (underflow?)"
                )
            total += float(pattern_weights[s]) * (
                math.log(site) - int(scale_counts[s]) * LOG_SCALE_FACTOR
            )
        return total

    def evaluate_loglik_batch(self, pi, cat_weights, pattern_weights,
                              u_terms, v_terms, scale_counts) -> np.ndarray:
        return np.asarray([
            self.evaluate_loglik(
                pi, cat_weights, pattern_weights, u_terms[k], v_terms[k],
                scale_counts[k],
            )
            for k in range(len(u_terms))
        ])

    # -- makenewz ------------------------------------------------------------

    def branch_derivatives(self, model_terms, pi, cat_weights,
                           pattern_weights, u_clv, v_clv, scale_counts,
                           per_site=False) -> Tuple[float, float, float]:
        self.kernel_calls += 1
        p, dp, d2p = (np.asarray(part).tolist() for part in model_terms)
        u = np.asarray(u_clv).tolist()
        v = np.asarray(v_clv).tolist()
        pi = [float(x) for x in pi]
        cw = [float(x) for x in cat_weights]
        n_patterns = len(u)
        n = len(pi)
        lnl = dlnl = d2lnl = 0.0
        for s in range(n_patterns):
            lik = d1 = d2 = 0.0
            for c in range(len(cw)):
                mat = self._p_row(p, s, c, per_site)
                dmat = self._p_row(dp, s, c, per_site)
                d2mat = self._p_row(d2p, s, c, per_site)
                us, vs = u[s][c], v[s][c]
                f = f1 = f2 = 0.0
                for i in range(n):
                    left = us[i] * pi[i]
                    row, drow, d2row = mat[i], dmat[i], d2mat[i]
                    for j in range(n):
                        vj = vs[j]
                        f += left * row[j] * vj
                        f1 += left * drow[j] * vj
                        f2 += left * d2row[j] * vj
                lik += cw[c] * f
                d1 += cw[c] * f1
                d2 += cw[c] * f2
            if lik <= 0.0:
                raise FloatingPointError(
                    "non-positive site likelihood in makenewz"
                )
            g1 = d1 / lik
            w = float(pattern_weights[s])
            lnl += w * (
                math.log(lik) - int(scale_counts[s]) * LOG_SCALE_FACTOR
            )
            dlnl += w * g1
            d2lnl += w * (d2 / lik - g1 * g1)
        return lnl, dlnl, d2lnl

    def branch_derivatives_batch(self, model_terms, pi, cat_weights,
                                 pattern_weights, u_clv, v_clv, scale_counts,
                                 per_site=False):
        p, dp, d2p = model_terms
        triples = [
            self.branch_derivatives(
                (p[k], dp[k], d2p[k]), pi, cat_weights, pattern_weights,
                u_clv[k], v_clv[k], scale_counts[k], per_site=per_site,
            )
            for k in range(len(p))
        ]
        return tuple(
            np.asarray([triple[part] for triple in triples])
            for part in range(3)
        )

    def branch_gradient_full(self, model_terms, pi, cat_weights,
                             pattern_weights, u_clvs, v_clvs, scale_counts,
                             per_site=False):
        """Plain-loop oracle for the full-tree gradient.

        One scalar :meth:`branch_derivatives` call per branch — no
        fused contraction, no shared intermediates — so the vectorized
        backends have an independent per-branch value to match to 1e-9.
        """
        return self.branch_derivatives_batch(
            model_terms, pi, cat_weights, pattern_weights, u_clvs, v_clvs,
            scale_counts, per_site=per_site,
        )

    # -- instrumentation -----------------------------------------------------

    def perf_counters(self) -> Dict[str, int]:
        return {
            "backend_kernel_calls": self.kernel_calls,
            "backend_stripe_tasks": 0,
            "backend_stripes": 1,
            "backend_threads": 1,
            "backend_warmup_us": 0,
        }
