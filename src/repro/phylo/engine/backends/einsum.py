"""The vectorized default backend: a thin adapter over
:mod:`repro.phylo.kernels`.

Every method delegates to the corresponding einsum kernel (with the
module-level, lock-guarded contraction-path cache), adding only the
per-backend call counter required by the shared instrumentation seam.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ... import kernels
from ..protocol import BACKEND_COUNTER_KEYS, KernelBackend, register_backend

__all__ = ["EinsumBackend"]


@register_backend("einsum")
class EinsumBackend(KernelBackend):
    """NumPy einsum kernels — the fast serial default."""

    name = "einsum"
    uses_pmat_cache = True

    def __init__(self) -> None:
        self.kernel_calls = 0

    # -- newview -------------------------------------------------------------

    def tip_terms(self, p, masks, code_table, out=None, per_site=False):
        self.kernel_calls += 1
        if per_site:
            return kernels.tip_terms_persite(p, masks, code_table, out=out)
        return kernels.tip_terms(p, masks, code_table, out=out)

    def inner_terms(self, p, clv, out=None, per_site=False):
        self.kernel_calls += 1
        if per_site:
            return kernels.inner_terms_persite(p, clv, out=out)
        return kernels.inner_terms(p, clv, out=out)

    def newview_combine(self, left_term, right_term, out=None):
        self.kernel_calls += 1
        return kernels.newview_combine(left_term, right_term, out=out)

    def scale_clv(self, clv, scale_counts) -> int:
        self.kernel_calls += 1
        return kernels.scale_clv(clv, scale_counts)

    # -- evaluate ------------------------------------------------------------

    def evaluate_loglik(self, pi, cat_weights, pattern_weights, u_term,
                        v_term, scale_counts) -> float:
        self.kernel_calls += 1
        return kernels.evaluate_loglik(
            pi, cat_weights, pattern_weights, u_term, v_term, scale_counts
        )

    def evaluate_loglik_batch(self, pi, cat_weights, pattern_weights,
                              u_terms, v_terms, scale_counts) -> np.ndarray:
        self.kernel_calls += 1
        return kernels.evaluate_loglik_batch(
            pi, cat_weights, pattern_weights, u_terms, v_terms, scale_counts
        )

    # -- makenewz ------------------------------------------------------------

    def branch_derivatives(self, model_terms, pi, cat_weights,
                           pattern_weights, u_clv, v_clv, scale_counts,
                           per_site=False) -> Tuple[float, float, float]:
        self.kernel_calls += 1
        if per_site:
            return kernels.branch_derivatives_persite(
                model_terms, pi, pattern_weights, u_clv, v_clv, scale_counts
            )
        return kernels.branch_derivatives(
            model_terms, pi, cat_weights, pattern_weights, u_clv, v_clv,
            scale_counts,
        )

    def branch_derivatives_batch(self, model_terms, pi, cat_weights,
                                 pattern_weights, u_clv, v_clv, scale_counts,
                                 per_site=False):
        self.kernel_calls += 1
        if per_site:
            return kernels.branch_derivatives_batch_persite(
                model_terms, pi, pattern_weights, u_clv, v_clv, scale_counts
            )
        return kernels.branch_derivatives_batch(
            model_terms, pi, cat_weights, pattern_weights, u_clv, v_clv,
            scale_counts,
        )

    def branch_gradient_full(self, model_terms, pi, cat_weights,
                             pattern_weights, u_clvs, v_clvs, scale_counts,
                             per_site=False):
        """Vectorized full-tree gradient: one fused einsum contraction."""
        self.kernel_calls += 1
        return kernels.branch_gradient_full(
            model_terms, pi, cat_weights, pattern_weights, u_clvs, v_clvs,
            scale_counts, per_site=per_site,
        )

    # -- instrumentation -----------------------------------------------------

    def perf_counters(self) -> Dict[str, int]:
        return {
            "backend_kernel_calls": self.kernel_calls,
            "backend_stripe_tasks": 0,
            "backend_stripes": 1,
            "backend_threads": 1,
            "backend_warmup_us": 0,
        }


# Consumers import the key tuple from the protocol; re-assert here that
# the adapter honours it (cheap, import-time only).
assert tuple(sorted(EinsumBackend().perf_counters())) == tuple(
    sorted(BACKEND_COUNTER_KEYS)
)
