"""Numba flavor of the compiled kernel backend.

The primary flavor when numba is importable (CI's dedicated matrix leg;
``pip install repro[compiled]``): the same likelihood hot loops as the
cc flavor, expressed as ``@njit(nogil=True, cache=True)`` functions.
``nogil=True`` is the load-bearing option — stripe threads of the
partitioned dispatcher run these bodies concurrently — and
``cache=True`` persists the compiled machine code across processes so
warmup is paid once per environment, not once per run.

Importing this module without numba raises :class:`ImportError`; the
flavor selector in :mod:`.compiled` treats that as "flavor absent" and
falls back to the cc flavor (or reports the backend unavailable).

Numerical semantics are identical to :mod:`._compiled_cc` — per-block
reduction partials, exact power-of-two rescaling, negative status codes
for non-finite/non-positive faults — and every load is verified by the
shared :func:`~._compiled_cc.run_self_check` before use.
"""

from __future__ import annotations

import numpy as np
from numba import njit

from ... import kernels
from ...dna import TIP_PARTIAL_ROWS

__all__ = ["NumbaKernels"]

_JIT = dict(nogil=True, cache=True)

#: Exact rescaling constants (powers of two; see kernels.py).
_THRESHOLD = kernels.SCALE_THRESHOLD
_FACTOR = kernels.SCALE_FACTOR


@njit(**_JIT)
def _nb_tip_terms(p, table, masks, out, s0, s1):
    c, n = p.shape[0], p.shape[2]
    m = table.shape[0]
    per_code = np.empty((m, c, n))
    for code in range(m):
        for cc in range(c):
            for i in range(n):
                acc = 0.0
                for j in range(n):
                    acc += p[cc, i, j] * table[code, j]
                per_code[code, cc, i] = acc
    for s in range(s0, s1):
        out[s] = per_code[masks[s]]


@njit(**_JIT)
def _nb_tip_terms_ps(p, table, masks, out, s0, s1):
    n = p.shape[2]
    for s in range(s0, s1):
        code = masks[s]
        for i in range(n):
            acc = 0.0
            for j in range(n):
                acc += p[s, i, j] * table[code, j]
            out[s, 0, i] = acc


@njit(**_JIT)
def _nb_inner_terms(p, clv, out, s0, s1, per_site):
    c, n = clv.shape[1], clv.shape[2]
    for s in range(s0, s1):
        for cc in range(c):
            pidx = s if per_site else cc
            for i in range(n):
                acc = 0.0
                for j in range(n):
                    acc += p[pidx, i, j] * clv[s, cc, j]
                out[s, cc, i] = acc


@njit(**_JIT)
def _nb_combine(left, right, out, e0, e1):
    for e in range(e0, e1):
        out[e] = left[e] * right[e]


@njit(**_JIT)
def _nb_scale_clv(clv, counts, s0, s1):
    cn = clv.shape[1]
    # Pass 1: detect non-finite rows before anything is rescaled
    # (matches the einsum kernel, which raises before mutating).
    for s in range(s0, s1):
        mx = 0.0
        for k in range(cn):
            v = clv[s, k]
            if np.isnan(v):
                return -(s + 1)
            if v > mx:
                mx = v
        if np.isinf(mx):
            return -(s + 1)
    total = 0
    for s in range(s0, s1):
        mx = 0.0
        for k in range(cn):
            if clv[s, k] > mx:
                mx = clv[s, k]
        if mx < _THRESHOLD:
            for k in range(cn):
                clv[s, k] *= _FACTOR
            counts[s] += 1
            total += 1
    return total


@njit(**_JIT)
def _nb_evaluate(pi, cw, pw, u, v, sc, lsf, b0, b1, block, partials):
    total, c, n = u.shape[0], u.shape[1], u.shape[2]
    for b in range(b0, b1):
        lo = b * block
        hi = min(lo + block, total)
        acc = 0.0
        for s in range(lo, hi):
            site = 0.0
            for cc in range(c):
                dot = 0.0
                for i in range(n):
                    dot += u[s, cc, i] * v[s, cc, i] * pi[i]
                site += cw[cc] * dot
            if not site > 0.0:
                return -(s + 1)
            acc += pw[s] * (np.log(site) - sc[s] * lsf)
        partials[b] = acc
    return 0


@njit(**_JIT)
def _nb_evaluate_batch(pi, cw, pw, u, v, sc, lsf, b0, b1, block, partials):
    k_count, total = sc.shape
    c, n = u.shape[2], u.shape[3]
    for b in range(b0, b1):
        lo = b * block
        hi = min(lo + block, total)
        for k in range(k_count):
            acc = 0.0
            for s in range(lo, hi):
                site = 0.0
                for cc in range(c):
                    dot = 0.0
                    for i in range(n):
                        dot += u[k, s, cc, i] * v[k, s, cc, i] * pi[i]
                    site += cw[cc] * dot
                if not site > 0.0:
                    return -(s + 1)
                acc += pw[s] * (np.log(site) - sc[k, s] * lsf)
            partials[b, k] = acc
    return 0


@njit(**_JIT)
def _nb_deriv(p, dp, d2p, pi, cw, pw, u, v, sc, lsf,
              b0, b1, block, per_site, partials):
    total, c, n = u.shape[0], u.shape[1], u.shape[2]
    for b in range(b0, b1):
        lo = b * block
        hi = min(lo + block, total)
        al = 0.0
        ad = 0.0
        a2 = 0.0
        for s in range(lo, hi):
            lik = 0.0
            d1 = 0.0
            d2 = 0.0
            for cc in range(c):
                pidx = s if per_site else cc
                f = 0.0
                f1 = 0.0
                f2 = 0.0
                for i in range(n):
                    li = u[s, cc, i] * pi[i]
                    t0 = 0.0
                    t1 = 0.0
                    t2 = 0.0
                    for j in range(n):
                        vj = v[s, cc, j]
                        t0 += p[pidx, i, j] * vj
                        t1 += dp[pidx, i, j] * vj
                        t2 += d2p[pidx, i, j] * vj
                    f += li * t0
                    f1 += li * t1
                    f2 += li * t2
                lik += cw[cc] * f
                d1 += cw[cc] * f1
                d2 += cw[cc] * f2
            if not lik > 0.0:
                return -(s + 1)
            g1 = d1 / lik
            al += pw[s] * (np.log(lik) - sc[s] * lsf)
            ad += pw[s] * g1
            a2 += pw[s] * (d2 / lik - g1 * g1)
        partials[b, 0] = al
        partials[b, 1] = ad
        partials[b, 2] = a2
    return 0


@njit(**_JIT)
def _nb_deriv_batch(p, dp, d2p, pi, cw, pw, u, v, sc, lsf,
                    b0, b1, block, per_site, partials):
    k_count, total = sc.shape
    c, n = u.shape[2], u.shape[3]
    for b in range(b0, b1):
        lo = b * block
        hi = min(lo + block, total)
        for k in range(k_count):
            al = 0.0
            ad = 0.0
            a2 = 0.0
            for s in range(lo, hi):
                lik = 0.0
                d1 = 0.0
                d2 = 0.0
                for cc in range(c):
                    pidx = s if per_site else cc
                    f = 0.0
                    f1 = 0.0
                    f2 = 0.0
                    for i in range(n):
                        li = u[k, s, cc, i] * pi[i]
                        t0 = 0.0
                        t1 = 0.0
                        t2 = 0.0
                        for j in range(n):
                            vj = v[k, s, cc, j]
                            t0 += p[k, pidx, i, j] * vj
                            t1 += dp[k, pidx, i, j] * vj
                            t2 += d2p[k, pidx, i, j] * vj
                        f += li * t0
                        f1 += li * t1
                        f2 += li * t2
                    lik += cw[cc] * f
                    d1 += cw[cc] * f1
                    d2 += cw[cc] * f2
                if not lik > 0.0:
                    return -(s + 1)
                g1 = d1 / lik
                al += pw[s] * (np.log(lik) - sc[k, s] * lsf)
                ad += pw[s] * g1
                a2 += pw[s] * (d2 / lik - g1 * g1)
            partials[b, 0, k] = al
            partials[b, 1, k] = ad
            partials[b, 2, k] = a2
    return 0


def _as_f64(a):
    a = np.asarray(a, dtype=np.float64)
    return a if a.flags.c_contiguous else np.ascontiguousarray(a)


def _as_i64(a):
    a = np.asarray(a, dtype=np.int64)
    return a if a.flags.c_contiguous else np.ascontiguousarray(a)


def _dense(a):
    """Materialise broadcast/strided views: numba's typed loops want
    plain owned arrays, and copies here are off the per-stripe hot path
    (once per kernel call, shared by every stripe)."""
    a = np.asarray(a, dtype=np.float64)
    if a.flags.c_contiguous:
        return a
    return np.ascontiguousarray(a)


class NumbaKernels:
    """The striped-kernels interface backed by njit(nogil) kernels.

    Same call-builder shape as :class:`~._compiled_cc.CcKernels`:
    each method validates and converts once, returning a closure the
    partitioned dispatcher invokes per stripe or block range from its
    pool threads (the njit bodies release the GIL).
    """

    flavor = "numba"

    def __init__(self) -> None:
        self._warmup_us = 0

    def warmup_us(self) -> int:
        return self._warmup_us

    # -- elementwise kernels -------------------------------------------------

    def tip_terms(self, p, masks, code_table, out, per_site):
        table = _as_f64(
            TIP_PARTIAL_ROWS if code_table is None else code_table
        )
        p = _as_f64(p)
        masks = _as_i64(masks)
        if per_site:
            def task(start, stop):
                _nb_tip_terms_ps(p, table, masks, out, start, stop)
        else:
            def task(start, stop):
                _nb_tip_terms(p, table, masks, out, start, stop)
        return task

    def inner_terms(self, p, clv, out, per_site):
        p = _as_f64(p)
        clv = _as_f64(clv)
        flag = bool(per_site)

        def task(start, stop):
            _nb_inner_terms(p, clv, out, start, stop, flag)
        return task

    def newview_combine(self, left, right, out):
        left = _dense(left).reshape(-1)
        right = _dense(right).reshape(-1)
        flat = out.reshape(-1)
        row = int(np.prod(out.shape[1:]))

        def task(start, stop):
            _nb_combine(left, right, flat, start * row, stop * row)
        return task

    def scale_clv(self, clv, scale_counts):
        flat = clv.reshape(clv.shape[0], -1)

        def task(start, stop):
            status = _nb_scale_clv(flat, scale_counts, start, stop)
            if status < 0:
                raise FloatingPointError(
                    f"non-finite CLV entries at pattern {-status - 1} "
                    f"(NaN/Inf reached the underflow-rescaling check)"
                )
            return int(status)
        return task

    # -- reduction kernels ---------------------------------------------------

    def evaluate(self, pi, cat_weights, pattern_weights, u, v,
                 scale_counts, block, partials):
        pi = _as_f64(pi)
        cw = _as_f64(cat_weights)
        pw = _as_f64(pattern_weights)
        u = _dense(u)
        v = _dense(v)
        sc = _as_i64(scale_counts)
        lsf = kernels.LOG_SCALE_FACTOR

        def task(b0, b1):
            status = _nb_evaluate(
                pi, cw, pw, u, v, sc, lsf, b0, b1, block, partials
            )
            if status < 0:
                raise FloatingPointError(
                    "non-positive site likelihood (underflow?)"
                )
        return task

    def evaluate_batch(self, pi, cat_weights, pattern_weights, u, v,
                       scale_counts, block, partials):
        pi = _as_f64(pi)
        cw = _as_f64(cat_weights)
        pw = _as_f64(pattern_weights)
        u = _dense(u)
        v = _dense(v)
        sc = _as_i64(scale_counts)
        lsf = kernels.LOG_SCALE_FACTOR

        def task(b0, b1):
            status = _nb_evaluate_batch(
                pi, cw, pw, u, v, sc, lsf, b0, b1, block, partials
            )
            if status < 0:
                raise FloatingPointError(
                    "non-positive site likelihood (underflow?)"
                )
        return task

    def derivatives(self, model_terms, pi, cat_weights, pattern_weights,
                    u, v, scale_counts, block, partials, per_site):
        p, dp, d2p = (_as_f64(t) for t in model_terms)
        pi = _as_f64(pi)
        cw = _as_f64(cat_weights)
        pw = _as_f64(pattern_weights)
        u = _dense(u)
        v = _dense(v)
        sc = _as_i64(scale_counts)
        lsf = kernels.LOG_SCALE_FACTOR
        flag = bool(per_site)

        def task(b0, b1):
            status = _nb_deriv(
                p, dp, d2p, pi, cw, pw, u, v, sc, lsf,
                b0, b1, block, flag, partials,
            )
            if status < 0:
                raise FloatingPointError(
                    "non-positive site likelihood in makenewz"
                )
        return task

    def derivatives_batch(self, model_terms, pi, cat_weights,
                          pattern_weights, u, v, scale_counts, block,
                          partials, per_site):
        p, dp, d2p = (_as_f64(t) for t in model_terms)
        pi = _as_f64(pi)
        cw = _as_f64(cat_weights)
        pw = _as_f64(pattern_weights)
        u = _dense(u)
        v = _dense(v)
        sc = _as_i64(scale_counts)
        lsf = kernels.LOG_SCALE_FACTOR
        flag = bool(per_site)

        def task(b0, b1):
            status = _nb_deriv_batch(
                p, dp, d2p, pi, cw, pw, u, v, sc, lsf,
                b0, b1, block, flag, partials,
            )
            if status < 0:
                raise FloatingPointError(
                    "non-positive site likelihood in makenewz"
                )
        return task
