"""C flavor of the compiled kernel backend: built on demand with the
host C compiler, loaded through :mod:`ctypes`.

This is the fallback flavor of the ``compiled`` backend for hosts
without numba (the primary flavor, :mod:`._compiled_numba`).  The
likelihood hot loops — tip/inner propagation, combine, the underflow
rescale check, evaluate and the makenewz derivative bodies — are one
self-contained C translation unit compiled once per source hash with
``cc -O3 -fPIC -shared`` into a per-user cache directory
(``REPRO_KERNEL_CACHE`` or ``~/.cache/repro-kernels``) and loaded via
ctypes, whose foreign calls release the GIL: the partitioned
dispatcher's stripe threads genuinely overlap inside these kernels,
which is the whole point of the backend.

Numerical contract (mirrors :mod:`repro.phylo.kernels` exactly):

* ``scale_clv`` reproduces the einsum kernel's semantics bit for bit:
  NaN anywhere in a pattern row (or a ``+inf`` row maximum) is a
  detected fault *before* any row is rescaled; rescaling multiplies by
  the exact power of two ``2**256``, so scaled rows are bit-identical
  to the einsum backend's.
* The reduction kernels (evaluate / derivatives) fill **per-block
  partial sums** — fixed ``block``-pattern reduction blocks whose
  within-block accumulation order never depends on stripe or thread
  count.  The dispatcher pairwise-sums the blocks in fixed order, so
  ``compiled:1/2/4`` report bit-identical log likelihoods.
* Faults are returned as a negative status ``-(pattern+1)`` and raised
  by the Python wrappers as the same :class:`FloatingPointError` family
  the einsum kernels use, so the engine's degradation ladder cannot
  tell the flavors apart.

Every load runs a small self-check against the einsum kernels (1e-12)
before the flavor is declared usable; the wall time of build + load +
self-check is surfaced as ``warmup_us``.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import time
from typing import Callable, Optional, Tuple

import numpy as np

from ... import kernels
from ...dna import TIP_PARTIAL_ROWS

__all__ = [
    "CcKernels",
    "CompiledKernelsError",
    "cache_dir",
    "find_compiler",
    "run_self_check",
]


class CompiledKernelsError(RuntimeError):
    """The C flavor could not be built, loaded, or self-checked."""


#: Environment override for the shared-library cache directory.
CACHE_ENV_VAR = "REPRO_KERNEL_CACHE"

C_SOURCE = r"""
#include <math.h>
#include <stdlib.h>
#include <string.h>

typedef long long i64;

/* RAxML's rescaling constants: exact powers of two (kernels.py). */
#define SCALE_THRESHOLD 0x1p-256
#define SCALE_FACTOR    0x1p+256

/* Tip propagation, integrated mode (tipVector trick): the product is
 * computed once per ambiguity code, then gathered per pattern.
 *   p: (c,n,n)  table: (m,n)  masks: (S,)  out: (S,c,n), rows [s0,s1) */
void rk_tip_terms(const double *p, const double *table, const i64 *masks,
                  double *out, i64 s0, i64 s1, i64 c, i64 n, i64 m)
{
    double *per_code = (double *)malloc((size_t)(m * c * n) * sizeof(double));
    for (i64 code = 0; code < m; code++) {
        const double *trow = table + code * n;
        for (i64 cc = 0; cc < c; cc++)
            for (i64 i = 0; i < n; i++) {
                const double *prow = p + (cc * n + i) * n;
                double acc = 0.0;
                for (i64 j = 0; j < n; j++)
                    acc += prow[j] * trow[j];
                per_code[(code * c + cc) * n + i] = acc;
            }
    }
    for (i64 s = s0; s < s1; s++)
        memcpy(out + s * c * n, per_code + masks[s] * c * n,
               (size_t)(c * n) * sizeof(double));
    free(per_code);
}

/* Tip propagation, CAT mode: per-pattern matrices.
 *   p: (S,n,n)  out: (S,1,n) */
void rk_tip_terms_ps(const double *p, const double *table, const i64 *masks,
                     double *out, i64 s0, i64 s1, i64 n)
{
    for (i64 s = s0; s < s1; s++) {
        const double *pm = p + s * n * n;
        const double *trow = table + masks[s] * n;
        double *orow = out + s * n;
        for (i64 i = 0; i < n; i++) {
            double acc = 0.0;
            for (i64 j = 0; j < n; j++)
                acc += pm[i * n + j] * trow[j];
            orow[i] = acc;
        }
    }
}

/* Inner propagation: p is (c,n,n) (integrated) or (S,n,n) (per_site).
 *   clv/out: (S,c,n), rows [s0,s1) */
void rk_inner_terms(const double *p, const double *clv, double *out,
                    i64 s0, i64 s1, i64 c, i64 n, i64 per_site)
{
    for (i64 s = s0; s < s1; s++)
        for (i64 cc = 0; cc < c; cc++) {
            const double *pm = per_site ? p + s * n * n : p + cc * n * n;
            const double *crow = clv + (s * c + cc) * n;
            double *orow = out + (s * c + cc) * n;
            for (i64 i = 0; i < n; i++) {
                double acc = 0.0;
                for (i64 j = 0; j < n; j++)
                    acc += pm[i * n + j] * crow[j];
                orow[i] = acc;
            }
        }
}

/* Elementwise combine over the flat element range [e0,e1). */
void rk_combine(const double *left, const double *right, double *out,
                i64 e0, i64 e1)
{
    for (i64 e = e0; e < e1; e++)
        out[e] = left[e] * right[e];
}

/* Underflow rescale over pattern rows [s0,s1); cn = cats*states.
 * Returns the number of rescaled rows, or -(s+1) for a non-finite row.
 * Two passes match numpy: no row is rescaled when any row is bad. */
i64 rk_scale_clv(double *clv, i64 *counts, i64 s0, i64 s1, i64 cn)
{
    for (i64 s = s0; s < s1; s++) {
        const double *row = clv + s * cn;
        double mx = 0.0;
        for (i64 k = 0; k < cn; k++) {
            double v = row[k];
            if (isnan(v)) return -(s + 1);
            if (v > mx) mx = v;
        }
        if (isinf(mx)) return -(s + 1);
    }
    i64 total = 0;
    for (i64 s = s0; s < s1; s++) {
        double *row = clv + s * cn;
        double mx = 0.0;
        for (i64 k = 0; k < cn; k++)
            if (row[k] > mx) mx = row[k];
        if (mx < SCALE_THRESHOLD) {
            for (i64 k = 0; k < cn; k++)
                row[k] *= SCALE_FACTOR;
            counts[s]++;
            total++;
        }
    }
    return total;
}

/* Weighted log likelihood, per reduction block.  u/v carry explicit
 * element strides for their pattern/category axes (the state axis must
 * be unit stride) so broadcast tip CLVs need no materialisation.
 * partials[b] gets the block-[b*block, min((b+1)*block, S)) sum.
 * Returns 0 or -(s+1) on a non-positive site likelihood. */
i64 rk_evaluate(const double *pi, const double *cw, const double *pw,
                const double *u, i64 us, i64 uc,
                const double *v, i64 vs, i64 vc,
                const i64 *sc, double lsf,
                i64 b0, i64 b1, i64 block, i64 S, i64 c, i64 n,
                double *partials)
{
    for (i64 b = b0; b < b1; b++) {
        i64 lo = b * block;
        i64 hi = lo + block < S ? lo + block : S;
        double acc = 0.0;
        for (i64 s = lo; s < hi; s++) {
            double site = 0.0;
            for (i64 cc = 0; cc < c; cc++) {
                const double *up = u + s * us + cc * uc;
                const double *vp = v + s * vs + cc * vc;
                double dot = 0.0;
                for (i64 i = 0; i < n; i++)
                    dot += up[i] * vp[i] * pi[i];
                site += cw[cc] * dot;
            }
            if (!(site > 0.0)) return -(s + 1);
            acc += pw[s] * (log(site) - (double)sc[s] * lsf);
        }
        partials[b] = acc;
    }
    return 0;
}

/* Batched evaluate over K stacked candidates; v may be a broadcast
 * stack (vk == 0).  sc: (K,S) contiguous.  partials: (nb,K) at
 * partials[b*K + k]. */
i64 rk_evaluate_batch(const double *pi, const double *cw, const double *pw,
                      const double *u, i64 uk, i64 us, i64 uc,
                      const double *v, i64 vk, i64 vs, i64 vc,
                      const i64 *sc, double lsf, i64 K,
                      i64 b0, i64 b1, i64 block, i64 S, i64 c, i64 n,
                      double *partials)
{
    for (i64 b = b0; b < b1; b++) {
        i64 lo = b * block;
        i64 hi = lo + block < S ? lo + block : S;
        for (i64 k = 0; k < K; k++) {
            const double *ub = u + k * uk;
            const double *vb = v + k * vk;
            const i64 *scb = sc + k * S;
            double acc = 0.0;
            for (i64 s = lo; s < hi; s++) {
                double site = 0.0;
                for (i64 cc = 0; cc < c; cc++) {
                    const double *up = ub + s * us + cc * uc;
                    const double *vp = vb + s * vs + cc * vc;
                    double dot = 0.0;
                    for (i64 i = 0; i < n; i++)
                        dot += up[i] * vp[i] * pi[i];
                    site += cw[cc] * dot;
                }
                if (!(site > 0.0)) return -(s + 1);
                acc += pw[s] * (log(site) - (double)scb[s] * lsf);
            }
            partials[b * K + k] = acc;
        }
    }
    return 0;
}

/* makenewz body: lnL and its first two branch-length derivatives,
 * per reduction block.  p/dp/d2p are (c,n,n) (integrated) or (S,n,n)
 * with c == 1 (per_site).  partials: (nb,3) at partials[b*3 + t]. */
i64 rk_deriv(const double *p, const double *dp, const double *d2p,
             const double *pi, const double *cw, const double *pw,
             const double *u, i64 us, i64 uc,
             const double *v, i64 vs, i64 vc,
             const i64 *sc, double lsf,
             i64 b0, i64 b1, i64 block, i64 S, i64 c, i64 n,
             i64 per_site, double *partials)
{
    for (i64 b = b0; b < b1; b++) {
        i64 lo = b * block;
        i64 hi = lo + block < S ? lo + block : S;
        double al = 0.0, ad = 0.0, a2 = 0.0;
        for (i64 s = lo; s < hi; s++) {
            double lik = 0.0, d1 = 0.0, d2 = 0.0;
            for (i64 cc = 0; cc < c; cc++) {
                i64 base = per_site ? s * n * n : cc * n * n;
                const double *pm = p + base;
                const double *dpm = dp + base;
                const double *d2pm = d2p + base;
                const double *up = u + s * us + cc * uc;
                const double *vp = v + s * vs + cc * vc;
                double f = 0.0, f1 = 0.0, f2 = 0.0;
                for (i64 i = 0; i < n; i++) {
                    double li = up[i] * pi[i];
                    double t0 = 0.0, t1 = 0.0, t2 = 0.0;
                    for (i64 j = 0; j < n; j++) {
                        double vj = vp[j];
                        t0 += pm[i * n + j] * vj;
                        t1 += dpm[i * n + j] * vj;
                        t2 += d2pm[i * n + j] * vj;
                    }
                    f += li * t0;
                    f1 += li * t1;
                    f2 += li * t2;
                }
                lik += cw[cc] * f;
                d1 += cw[cc] * f1;
                d2 += cw[cc] * f2;
            }
            if (!(lik > 0.0)) return -(s + 1);
            double g1 = d1 / lik;
            al += pw[s] * (log(lik) - (double)sc[s] * lsf);
            ad += pw[s] * g1;
            a2 += pw[s] * (d2 / lik - g1 * g1);
        }
        partials[b * 3 + 0] = al;
        partials[b * 3 + 1] = ad;
        partials[b * 3 + 2] = a2;
    }
    return 0;
}

/* Batched derivatives over K candidates.  p/dp/d2p are (K,c,n,n)
 * (integrated) or (K,S,n,n) with c == 1 (per_site); v may broadcast
 * (vk == 0); sc: (K,S).  partials: (nb,3,K) at partials[(b*3+t)*K+k]. */
i64 rk_deriv_batch(const double *p, const double *dp, const double *d2p,
                   const double *pi, const double *cw, const double *pw,
                   const double *u, i64 uk, i64 us, i64 uc,
                   const double *v, i64 vk, i64 vs, i64 vc,
                   const i64 *sc, double lsf, i64 K,
                   i64 b0, i64 b1, i64 block, i64 S, i64 c, i64 n,
                   i64 per_site, double *partials)
{
    i64 mat = n * n;
    i64 kstride = (per_site ? S : c) * mat;
    for (i64 b = b0; b < b1; b++) {
        i64 lo = b * block;
        i64 hi = lo + block < S ? lo + block : S;
        for (i64 k = 0; k < K; k++) {
            const double *ub = u + k * uk;
            const double *vb = v + k * vk;
            const i64 *scb = sc + k * S;
            const double *pk = p + k * kstride;
            const double *dpk = dp + k * kstride;
            const double *d2pk = d2p + k * kstride;
            double al = 0.0, ad = 0.0, a2 = 0.0;
            for (i64 s = lo; s < hi; s++) {
                double lik = 0.0, d1 = 0.0, d2 = 0.0;
                for (i64 cc = 0; cc < c; cc++) {
                    i64 base = per_site ? s * mat : cc * mat;
                    const double *pm = pk + base;
                    const double *dpm = dpk + base;
                    const double *d2pm = d2pk + base;
                    const double *up = ub + s * us + cc * uc;
                    const double *vp = vb + s * vs + cc * vc;
                    double f = 0.0, f1 = 0.0, f2 = 0.0;
                    for (i64 i = 0; i < n; i++) {
                        double li = up[i] * pi[i];
                        double t0 = 0.0, t1 = 0.0, t2 = 0.0;
                        for (i64 j = 0; j < n; j++) {
                            double vj = vp[j];
                            t0 += pm[i * n + j] * vj;
                            t1 += dpm[i * n + j] * vj;
                            t2 += d2pm[i * n + j] * vj;
                        }
                        f += li * t0;
                        f1 += li * t1;
                        f2 += li * t2;
                    }
                    lik += cw[cc] * f;
                    d1 += cw[cc] * f1;
                    d2 += cw[cc] * f2;
                }
                if (!(lik > 0.0)) return -(s + 1);
                double g1 = d1 / lik;
                al += pw[s] * (log(lik) - (double)scb[s] * lsf);
                ad += pw[s] * g1;
                a2 += pw[s] * (d2 / lik - g1 * g1);
            }
            partials[(b * 3 + 0) * K + k] = al;
            partials[(b * 3 + 1) * K + k] = ad;
            partials[(b * 3 + 2) * K + k] = a2;
        }
    }
    return 0;
}
"""

#: Base compile flags.  Deliberately *no* -ffast-math: the NaN/Inf
#: fault detection in rk_scale_clv and the exact power-of-two rescale
#: depend on strict IEEE semantics.
CFLAGS = ("-O3", "-fPIC", "-shared")

_VOID = None
_I64 = ctypes.c_longlong
_F64 = ctypes.c_double
_PTR = ctypes.c_void_p

#: name -> (restype, argtypes); p* = pointer, i = i64, d = double.
_SIGNATURES = {
    "rk_tip_terms": (_VOID, [_PTR] * 4 + [_I64] * 5),
    "rk_tip_terms_ps": (_VOID, [_PTR] * 4 + [_I64] * 3),
    "rk_inner_terms": (_VOID, [_PTR] * 3 + [_I64] * 5),
    "rk_combine": (_VOID, [_PTR] * 3 + [_I64] * 2),
    "rk_scale_clv": (_I64, [_PTR] * 2 + [_I64] * 3),
    "rk_evaluate": (
        _I64,
        [_PTR] * 3 + [_PTR, _I64, _I64] + [_PTR, _I64, _I64]
        + [_PTR, _F64] + [_I64] * 6 + [_PTR],
    ),
    "rk_evaluate_batch": (
        _I64,
        [_PTR] * 3 + [_PTR, _I64, _I64, _I64] + [_PTR, _I64, _I64, _I64]
        + [_PTR, _F64, _I64] + [_I64] * 6 + [_PTR],
    ),
    "rk_deriv": (
        _I64,
        [_PTR] * 6 + [_PTR, _I64, _I64] + [_PTR, _I64, _I64]
        + [_PTR, _F64] + [_I64] * 7 + [_PTR],
    ),
    "rk_deriv_batch": (
        _I64,
        [_PTR] * 6 + [_PTR, _I64, _I64, _I64] + [_PTR, _I64, _I64, _I64]
        + [_PTR, _F64, _I64] + [_I64] * 7 + [_PTR],
    ),
}


def cache_dir() -> str:
    """Where compiled shared libraries live (created on demand)."""
    path = os.environ.get(CACHE_ENV_VAR, "").strip()
    if not path:
        path = os.path.join(
            os.path.expanduser("~"), ".cache", "repro-kernels"
        )
    os.makedirs(path, exist_ok=True)
    return path


def find_compiler() -> Optional[str]:
    """The host C compiler: ``$CC`` if set, else cc/gcc/clang on PATH."""
    env = os.environ.get("CC", "").strip()
    if env:
        return env if shutil.which(env) else None
    for candidate in ("cc", "gcc", "clang"):
        path = shutil.which(candidate)
        if path:
            return path
    return None


def build_library() -> str:
    """Compile (or reuse) the kernel shared library; returns its path.

    The library file is keyed by a hash of source + flags, so upgrades
    of this module never load a stale binary, and the build is atomic
    (compile to a temp file, then ``os.replace``) so concurrent
    processes cannot observe a half-written library.
    """
    key = hashlib.sha256(
        (C_SOURCE + "\x00" + " ".join(CFLAGS)).encode()
    ).hexdigest()[:16]
    directory = cache_dir()
    lib_path = os.path.join(directory, f"repro_kernels_{key}.so")
    if os.path.exists(lib_path):
        return lib_path
    compiler = find_compiler()
    if compiler is None:
        raise CompiledKernelsError(
            "no C compiler found (checked $CC, cc, gcc, clang)"
        )
    fd, src_path = tempfile.mkstemp(suffix=".c", dir=directory)
    tmp_lib = src_path[:-2] + ".so"
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(C_SOURCE)
        cmd = [compiler, *CFLAGS, "-o", tmp_lib, src_path, "-lm"]
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=120
        )
        if proc.returncode != 0:
            raise CompiledKernelsError(
                f"kernel compilation failed ({' '.join(cmd)}):\n"
                f"{proc.stderr.strip()}"
            )
        os.replace(tmp_lib, lib_path)
    finally:
        for leftover in (src_path, tmp_lib):
            try:
                os.unlink(leftover)
            except OSError:
                pass
    return lib_path


def _as_f64(a: np.ndarray) -> np.ndarray:
    a = np.asarray(a, dtype=np.float64)
    return a if a.flags.c_contiguous else np.ascontiguousarray(a)


def _as_i64(a: np.ndarray) -> np.ndarray:
    a = np.asarray(a, dtype=np.int64)
    return a if a.flags.c_contiguous else np.ascontiguousarray(a)


def _strided(a: np.ndarray) -> Tuple[np.ndarray, Tuple[int, ...]]:
    """*a* with unit stride on its last axis, plus the element strides
    of every leading axis — zero strides (broadcast axes) pass through
    untouched, so tip CLVs and broadcast SPR stacks cost nothing."""
    a = np.asarray(a, dtype=np.float64)
    if a.strides[-1] != a.itemsize:
        a = np.ascontiguousarray(a)
    return a, tuple(s // a.itemsize for s in a.strides[:-1])


def _out_ok(out: np.ndarray) -> np.ndarray:
    if not (out.flags.c_contiguous and out.dtype == np.float64):
        raise ValueError(
            "compiled kernels require a C-contiguous float64 output buffer"
        )
    return out


class CcKernels:
    """The striped-kernels interface backed by the on-demand C library.

    Every method is a *call builder*: arguments are validated and
    converted once per kernel call, and the returned closure — invoked
    per stripe/block-range by the partitioned dispatcher, possibly from
    several pool threads at once — performs a single GIL-releasing
    foreign call.
    """

    flavor = "cc"

    def __init__(self) -> None:
        started = time.perf_counter()
        path = build_library()
        lib = ctypes.CDLL(path)
        for fname, (restype, argtypes) in _SIGNATURES.items():
            fn = getattr(lib, fname)
            fn.restype = restype
            fn.argtypes = argtypes
        self._lib = lib
        self.library_path = path
        self._self_check()
        self._warmup_us = int((time.perf_counter() - started) * 1e6)

    def warmup_us(self) -> int:
        return self._warmup_us

    # -- elementwise kernels (pattern-range tasks) ---------------------------

    def tip_terms(self, p, masks, code_table, out, per_site):
        table = _as_f64(
            TIP_PARTIAL_ROWS if code_table is None else code_table
        )
        p = _as_f64(p)
        masks = _as_i64(masks)
        out = _out_ok(out)
        n = p.shape[-1]
        if per_site:
            fn = self._lib.rk_tip_terms_ps
            args = (p.ctypes.data, table.ctypes.data, masks.ctypes.data,
                    out.ctypes.data)

            def task(start, stop, _args=args):
                fn(*_args, start, stop, n)
        else:
            c = p.shape[0]
            m = table.shape[0]
            fn = self._lib.rk_tip_terms
            args = (p.ctypes.data, table.ctypes.data, masks.ctypes.data,
                    out.ctypes.data)

            def task(start, stop, _args=args):
                fn(*_args, start, stop, c, n, m)
        task.refs = (p, table, masks, out)
        return task

    def inner_terms(self, p, clv, out, per_site):
        p = _as_f64(p)
        clv = _as_f64(clv)
        out = _out_ok(out)
        c, n = clv.shape[1], clv.shape[2]
        fn = self._lib.rk_inner_terms
        args = (p.ctypes.data, clv.ctypes.data, out.ctypes.data)
        flag = 1 if per_site else 0

        def task(start, stop, _args=args):
            fn(*_args, start, stop, c, n, flag)
        task.refs = (p, clv, out)
        return task

    def newview_combine(self, left, right, out):
        left = _as_f64(left)
        right = _as_f64(right)
        out = _out_ok(out)
        row = int(np.prod(out.shape[1:]))
        fn = self._lib.rk_combine
        args = (left.ctypes.data, right.ctypes.data, out.ctypes.data)

        def task(start, stop, _args=args):
            fn(*_args, start * row, stop * row)
        task.refs = (left, right, out)
        return task

    def scale_clv(self, clv, scale_counts):
        if not (clv.flags.c_contiguous and clv.dtype == np.float64):
            raise ValueError("scale_clv requires a contiguous float64 CLV")
        counts = scale_counts
        if not (counts.flags.c_contiguous and counts.dtype == np.int64):
            raise ValueError("scale_clv requires contiguous int64 counts")
        row = int(np.prod(clv.shape[1:]))
        fn = self._lib.rk_scale_clv
        args = (clv.ctypes.data, counts.ctypes.data)

        def task(start, stop, _args=args):
            status = fn(*_args, start, stop, row)
            if status < 0:
                raise FloatingPointError(
                    f"non-finite CLV entries at pattern {-status - 1} "
                    f"(NaN/Inf reached the underflow-rescaling check)"
                )
            return int(status)
        task.refs = (clv, counts)
        return task

    # -- reduction kernels (block-range tasks filling per-block partials) ----

    def evaluate(self, pi, cat_weights, pattern_weights, u, v,
                 scale_counts, block, partials):
        pi = _as_f64(pi)
        cw = _as_f64(cat_weights)
        pw = _as_f64(pattern_weights)
        u, (us, uc) = _strided(u)
        v, (vs, vc) = _strided(v)
        sc = _as_i64(scale_counts)
        total, c, n = sc.shape[0], u.shape[1], u.shape[2]
        fn = self._lib.rk_evaluate
        args = (pi.ctypes.data, cw.ctypes.data, pw.ctypes.data,
                u.ctypes.data, us, uc, v.ctypes.data, vs, vc,
                sc.ctypes.data, kernels.LOG_SCALE_FACTOR)

        def task(b0, b1, _args=args):
            status = fn(*_args, b0, b1, block, total, c, n,
                        partials.ctypes.data)
            if status < 0:
                raise FloatingPointError(
                    "non-positive site likelihood (underflow?)"
                )
        task.refs = (pi, cw, pw, u, v, sc, partials)
        return task

    def evaluate_batch(self, pi, cat_weights, pattern_weights, u, v,
                       scale_counts, block, partials):
        pi = _as_f64(pi)
        cw = _as_f64(cat_weights)
        pw = _as_f64(pattern_weights)
        u, (uk, us, uc) = _strided(u)
        v, (vk, vs, vc) = _strided(v)
        sc = _as_i64(scale_counts)
        k, total = sc.shape
        c, n = u.shape[2], u.shape[3]
        fn = self._lib.rk_evaluate_batch
        args = (pi.ctypes.data, cw.ctypes.data, pw.ctypes.data,
                u.ctypes.data, uk, us, uc, v.ctypes.data, vk, vs, vc,
                sc.ctypes.data, kernels.LOG_SCALE_FACTOR, k)

        def task(b0, b1, _args=args):
            status = fn(*_args, b0, b1, block, total, c, n,
                        partials.ctypes.data)
            if status < 0:
                raise FloatingPointError(
                    "non-positive site likelihood (underflow?)"
                )
        task.refs = (pi, cw, pw, u, v, sc, partials)
        return task

    def derivatives(self, model_terms, pi, cat_weights, pattern_weights,
                    u, v, scale_counts, block, partials, per_site):
        p, dp, d2p = (_as_f64(t) for t in model_terms)
        pi = _as_f64(pi)
        cw = _as_f64(cat_weights)
        pw = _as_f64(pattern_weights)
        u, (us, uc) = _strided(u)
        v, (vs, vc) = _strided(v)
        sc = _as_i64(scale_counts)
        total, c, n = sc.shape[0], u.shape[1], u.shape[2]
        fn = self._lib.rk_deriv
        flag = 1 if per_site else 0
        args = (p.ctypes.data, dp.ctypes.data, d2p.ctypes.data,
                pi.ctypes.data, cw.ctypes.data, pw.ctypes.data,
                u.ctypes.data, us, uc, v.ctypes.data, vs, vc,
                sc.ctypes.data, kernels.LOG_SCALE_FACTOR)

        def task(b0, b1, _args=args):
            status = fn(*_args, b0, b1, block, total, c, n, flag,
                        partials.ctypes.data)
            if status < 0:
                raise FloatingPointError(
                    "non-positive site likelihood in makenewz"
                )
        task.refs = (p, dp, d2p, pi, cw, pw, u, v, sc, partials)
        return task

    def derivatives_batch(self, model_terms, pi, cat_weights,
                          pattern_weights, u, v, scale_counts, block,
                          partials, per_site):
        p, dp, d2p = (_as_f64(t) for t in model_terms)
        pi = _as_f64(pi)
        cw = _as_f64(cat_weights)
        pw = _as_f64(pattern_weights)
        u, (uk, us, uc) = _strided(u)
        v, (vk, vs, vc) = _strided(v)
        sc = _as_i64(scale_counts)
        k, total = sc.shape
        c, n = u.shape[2], u.shape[3]
        fn = self._lib.rk_deriv_batch
        flag = 1 if per_site else 0
        args = (p.ctypes.data, dp.ctypes.data, d2p.ctypes.data,
                pi.ctypes.data, cw.ctypes.data, pw.ctypes.data,
                u.ctypes.data, uk, us, uc, v.ctypes.data, vk, vs, vc,
                sc.ctypes.data, kernels.LOG_SCALE_FACTOR, k)

        def task(b0, b1, _args=args):
            status = fn(*_args, b0, b1, block, total, c, n, flag,
                        partials.ctypes.data)
            if status < 0:
                raise FloatingPointError(
                    "non-positive site likelihood in makenewz"
                )
        task.refs = (p, dp, d2p, pi, cw, pw, u, v, sc, partials)
        return task

    # -- load-time self-check ------------------------------------------------

    def _self_check(self) -> None:
        run_self_check(self)


def run_self_check(flavor) -> None:
    """Diff every kernel of *flavor* (any striped-kernels implementation)
    against the einsum kernels on a tiny instance; a flavor that cannot
    reproduce the reference math to 1e-12 must never be selected.
    Shared by the cc and numba flavors — running it is also what
    triggers numba's JIT compilation, so warmup timing wraps it."""
    rng = np.random.default_rng(0xCC)
    s_count, c, n = 7, 3, 4
    try:
        p = rng.uniform(0.05, 1.0, (c, n, n))
        masks = rng.integers(1, 15, s_count)
        expect = kernels.tip_terms(p, masks, None)
        got = np.empty(expect.shape)
        flavor.tip_terms(p, masks, None, got, False)(0, s_count)
        _check("tip_terms", got, expect)

        pps = rng.uniform(0.05, 1.0, (s_count, n, n))
        expect = kernels.tip_terms_persite(pps, masks, None)
        got = np.empty(expect.shape)
        flavor.tip_terms(pps, masks, None, got, True)(0, s_count)
        _check("tip_terms_persite", got, expect)

        clv = rng.uniform(0.1, 1.0, (s_count, c, n))
        expect = kernels.inner_terms(p, clv)
        got = np.empty(expect.shape)
        flavor.inner_terms(p, clv, got, False)(0, s_count)
        _check("inner_terms", got, expect)

        left = rng.uniform(0.1, 1.0, (s_count, c, n))
        right = rng.uniform(0.1, 1.0, (s_count, c, n))
        got = np.empty_like(left)
        flavor.newview_combine(left, right, got)(0, s_count)
        _check("newview_combine", got, left * right)

        scaled = rng.uniform(0.1, 1.0, (s_count, c, n))
        scaled[2] *= 2.0 ** -300
        twin = scaled.copy()
        counts = np.zeros(s_count, dtype=np.int64)
        twin_counts = counts.copy()
        n_scaled = flavor.scale_clv(scaled, counts)(0, s_count)
        expect_scaled = kernels.scale_clv(twin, twin_counts)
        if (n_scaled != expect_scaled
                or not np.array_equal(scaled, twin)
                or not np.array_equal(counts, twin_counts)):
            raise CompiledKernelsError(
                "self-check failed: scale_clv diverged from the "
                "einsum kernel"
            )
        poisoned = rng.uniform(0.1, 1.0, (s_count, c, n))
        poisoned[4, 1, 2] = np.nan
        try:
            flavor.scale_clv(poisoned, counts.copy())(0, s_count)
        except FloatingPointError:
            pass
        else:
            raise CompiledKernelsError(
                "self-check failed: scale_clv missed a NaN CLV"
            )

        pi = rng.uniform(0.1, 0.4, n)
        pi /= pi.sum()
        cw = np.full(c, 1.0 / c)
        pw = rng.uniform(1.0, 4.0, s_count)
        u = rng.uniform(0.1, 1.0, (s_count, c, n))
        v = rng.uniform(0.1, 1.0, (s_count, c, n))
        sc = rng.integers(0, 3, s_count).astype(np.int64)
        expect = kernels.evaluate_loglik(pi, cw, pw, u, v, sc)
        partials = np.empty(1)
        flavor.evaluate(pi, cw, pw, u, v, sc, s_count, partials)(0, 1)
        _check("evaluate", partials[0], expect)

        dp = rng.normal(0.0, 0.1, (c, n, n))
        d2p = rng.normal(0.0, 0.1, (c, n, n))
        expect = kernels.branch_derivatives(
            (p, dp, d2p), pi, cw, pw, u, v, sc
        )
        partials = np.empty((1, 3))
        flavor.derivatives(
            (p, dp, d2p), pi, cw, pw, u, v, sc, s_count, partials, False
        )(0, 1)
        _check("derivatives", partials[0], np.asarray(expect))

        ones = np.ones(1)
        ups = rng.uniform(0.1, 1.0, (s_count, 1, n))
        vps = rng.uniform(0.1, 1.0, (s_count, 1, n))
        dps = rng.normal(0.0, 0.1, (s_count, n, n))
        d2ps = rng.normal(0.0, 0.1, (s_count, n, n))
        expect = kernels.branch_derivatives_persite(
            (pps, dps, d2ps), pi, pw, ups, vps, sc
        )
        partials = np.empty((1, 3))
        flavor.derivatives(
            (pps, dps, d2ps), pi, ones, pw, ups, vps, sc, s_count,
            partials, True,
        )(0, 1)
        _check("derivatives_persite", partials[0], np.asarray(expect))

        k = 2
        ub = rng.uniform(0.1, 1.0, (k, s_count, c, n))
        vb = np.broadcast_to(v, ub.shape)
        scb = rng.integers(0, 3, (k, s_count)).astype(np.int64)
        expect = kernels.evaluate_loglik_batch(pi, cw, pw, ub, vb, scb)
        partials = np.empty((1, k))
        flavor.evaluate_batch(
            pi, cw, pw, ub, vb, scb, s_count, partials
        )(0, 1)
        _check("evaluate_batch", partials[0], expect)

        pb = rng.uniform(0.05, 1.0, (k, c, n, n))
        dpb = rng.normal(0.0, 0.1, (k, c, n, n))
        d2pb = rng.normal(0.0, 0.1, (k, c, n, n))
        expect = kernels.branch_derivatives_batch(
            (pb, dpb, d2pb), pi, cw, pw, ub, vb, scb
        )
        partials = np.empty((1, 3, k))
        flavor.derivatives_batch(
            (pb, dpb, d2pb), pi, cw, pw, ub, vb, scb, s_count,
            partials, False,
        )(0, 1)
        _check("derivatives_batch", partials[0], np.asarray(expect))
    except (CompiledKernelsError, MemoryError):
        raise
    except Exception as exc:  # wrap anything unexpected with context
        raise CompiledKernelsError(
            f"self-check crashed in the {flavor.flavor!r} flavor: {exc}"
        ) from exc


def _check(label: str, got, expect, tol: float = 1e-12) -> None:
    got = np.asarray(got, dtype=np.float64)
    expect = np.asarray(expect, dtype=np.float64)
    scale = max(float(np.abs(expect).max()), 1.0)
    err = float(np.abs(got - expect).max()) / scale
    if not np.isfinite(err) or err > tol:
        raise CompiledKernelsError(
            f"self-check failed: {label} diverged from the einsum kernel "
            f"by {err:.3e} (> {tol:g})"
        )
