"""The pattern-striped thread-parallel backend.

This is the reproduction of the paper's PPE→SPE work partitioning
(section 5.2): the alignment's site patterns are cut into contiguous
stripes, every kernel call fans the stripes out to a thread pool, and
per-stripe partial results (log likelihoods, derivative accumulators,
scale counts) are reduced **in stripe order** — the same fixed-order
reduction the PPE performs over SPE partial results, which keeps runs
deterministic for a given stripe count.

Inside each stripe the arithmetic is exactly the einsum kernels of
:mod:`repro.phylo.kernels` operating on array views, so NumPy releases
the GIL in the hot contractions and the stripes genuinely overlap on
multi-core hosts.  Three determinism/accuracy properties fall out of the
striping discipline:

* **Scale counts are bit-identical to every other backend.**  The
  underflow test is an exact per-pattern comparison; striping only
  changes which loop visits a pattern, never the comparison itself.
* **CLVs are bit-identical to the einsum backend.**  Propagation and
  combine are elementwise per pattern.
* **Log likelihoods agree to summation round-off** (well inside the
  1e-9 verification tolerance): only the pattern-sum association
  changes, ``(stripe_0) + (stripe_1) + ...`` instead of one flat dot
  product.  For a fixed stripe count the grouping is fixed, so repeated
  runs are bit-identical regardless of thread count or scheduling.

Thread count only sets pool width (speed); stripe count sets the
reduction grouping (bits).  Both default to ``REPRO_ENGINE_THREADS`` or
``min(4, os.cpu_count())``.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

import numpy as np

from ....chaos import injector as _chaos
from ....chaos.plan import BACKEND_STRIPE_RAISE
from ... import kernels
from ..protocol import KernelBackend, KernelExecutionError, register_backend

__all__ = ["PartitionedBackend", "default_thread_count"]

#: Environment override for the default worker/stripe count.
THREADS_ENV_VAR = "REPRO_ENGINE_THREADS"


def default_thread_count() -> int:
    """Pool width when the caller does not choose: ``REPRO_ENGINE_THREADS``
    if set, else ``min(4, os.cpu_count())``."""
    env = os.environ.get(THREADS_ENV_VAR, "").strip()
    if env:
        return max(1, int(env))
    return max(1, min(4, os.cpu_count() or 1))


@register_backend("partitioned")
class PartitionedBackend(KernelBackend):
    """Contiguous pattern stripes on a ``ThreadPoolExecutor``."""

    name = "partitioned"
    uses_pmat_cache = True

    def __init__(self, n_stripes: Optional[int] = None,
                 n_threads: Optional[int] = None) -> None:
        if n_threads is None:
            n_threads = n_stripes if n_stripes is not None \
                else default_thread_count()
        if n_stripes is None:
            n_stripes = n_threads
        if n_stripes < 1 or n_threads < 1:
            raise ValueError("n_stripes and n_threads must be >= 1")
        self.n_stripes = int(n_stripes)
        self.n_threads = int(n_threads)
        self.kernel_calls = 0
        self.stripe_tasks = 0
        self._pool: Optional[ThreadPoolExecutor] = None
        self._bounds: Dict[int, List[Tuple[int, int]]] = {}

    # -- striping machinery --------------------------------------------------

    def _stripes(self, n_patterns: int) -> List[Tuple[int, int]]:
        """Fixed contiguous ``[start, stop)`` stripe bounds for a pattern
        count; the first ``n_patterns % n_stripes`` stripes carry one
        extra pattern.  Empty stripes are dropped so tiny instances do
        not spawn no-op tasks."""
        bounds = self._bounds.get(n_patterns)
        if bounds is None:
            base, extra = divmod(n_patterns, self.n_stripes)
            bounds = []
            start = 0
            for k in range(self.n_stripes):
                stop = start + base + (1 if k < extra else 0)
                if stop > start:
                    bounds.append((start, stop))
                start = stop
            self._bounds[n_patterns] = bounds
        return bounds

    def _run(self, task, bounds):
        """Run ``task(start, stop)`` over every stripe, returning results
        in stripe order.  A single stripe runs inline (no pool handoff);
        otherwise the lazily-built pool executes the stripes and
        ``Executor.map`` preserves submission order for the reduction.

        Any stripe failure — organic or a ``backend.stripe_raise``
        chaos injection — surfaces as the typed
        :class:`KernelExecutionError` so the engine's degradation
        ladder can treat it like a detected numerical fault.
        """
        self.stripe_tasks += len(bounds)
        # Decide the injected stripe failure once per kernel call (one
        # visit regardless of stripe count); the *middle* stripe raises,
        # modelling a worker dying mid-reduction with earlier partials
        # already produced.
        raise_at = -1
        if _chaos._ACTIVE is not None and _chaos.fire(BACKEND_STRIPE_RAISE):
            raise_at = len(bounds) // 2

        def stripe(index, start, stop):
            if index == raise_at:
                raise _chaos.InjectedFault(
                    f"injected stripe failure at stripe {index} "
                    f"[{start}:{stop}]"
                )
            return task(start, stop)

        try:
            if len(bounds) == 1:
                start, stop = bounds[0]
                return [stripe(0, start, stop)]
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.n_threads,
                    thread_name_prefix="repro-stripe",
                )
            return list(
                self._pool.map(
                    lambda ib: stripe(ib[0], *ib[1]), enumerate(bounds)
                )
            )
        except (FloatingPointError, KernelExecutionError):
            # scale_clv's non-finite guard must keep its type: the
            # engine distinguishes nothing, but tests and reports do.
            raise
        except Exception as exc:
            raise KernelExecutionError(
                f"stripe task failed on backend {self.name!r}: {exc}"
            ) from exc

    # -- newview -------------------------------------------------------------

    def tip_terms(self, p, masks, code_table, out=None, per_site=False):
        self.kernel_calls += 1
        n_patterns = len(masks)
        if out is None:
            n_cats = 1 if per_site else p.shape[0]
            n = p.shape[-1]
            out = np.empty((n_patterns, n_cats, n), dtype=np.float64)

        def task(start, stop):
            if per_site:
                kernels.tip_terms_persite(
                    p[start:stop], masks[start:stop], code_table,
                    out=out[start:stop],
                )
            else:
                kernels.tip_terms(
                    p, masks[start:stop], code_table, out=out[start:stop]
                )

        self._run(task, self._stripes(n_patterns))
        return out

    def inner_terms(self, p, clv, out=None, per_site=False):
        self.kernel_calls += 1
        if out is None:
            out = np.empty_like(clv)

        def task(start, stop):
            if per_site:
                kernels.inner_terms_persite(
                    p[start:stop], clv[start:stop], out=out[start:stop]
                )
            else:
                kernels.inner_terms(p, clv[start:stop], out=out[start:stop])

        self._run(task, self._stripes(clv.shape[0]))
        return out

    def newview_combine(self, left_term, right_term, out=None):
        self.kernel_calls += 1
        if out is None:
            out = np.empty_like(left_term)

        def task(start, stop):
            kernels.newview_combine(
                left_term[start:stop], right_term[start:stop],
                out=out[start:stop],
            )

        self._run(task, self._stripes(left_term.shape[0]))
        return out

    def scale_clv(self, clv, scale_counts) -> int:
        self.kernel_calls += 1

        def task(start, stop):
            return kernels.scale_clv(
                clv[start:stop], scale_counts[start:stop]
            )

        # Per-pattern exact comparisons: stripe-local counts sum to the
        # same total (and the same per-pattern counters) as one flat call.
        return sum(self._run(task, self._stripes(clv.shape[0])))

    # -- evaluate ------------------------------------------------------------

    def evaluate_loglik(self, pi, cat_weights, pattern_weights, u_term,
                        v_term, scale_counts) -> float:
        self.kernel_calls += 1

        def task(start, stop):
            return kernels.evaluate_loglik(
                pi, cat_weights, pattern_weights[start:stop],
                u_term[start:stop], v_term[start:stop],
                scale_counts[start:stop],
            )

        parts = self._run(task, self._stripes(u_term.shape[0]))
        total = 0.0
        for part in parts:  # fixed stripe-order reduction
            total += part
        return total

    def evaluate_loglik_batch(self, pi, cat_weights, pattern_weights,
                              u_terms, v_terms, scale_counts) -> np.ndarray:
        self.kernel_calls += 1

        def task(start, stop):
            return kernels.evaluate_loglik_batch(
                pi, cat_weights, pattern_weights[start:stop],
                u_terms[:, start:stop], v_terms[:, start:stop],
                scale_counts[:, start:stop],
            )

        parts = self._run(task, self._stripes(u_terms.shape[1]))
        total = np.zeros(u_terms.shape[0], dtype=np.float64)
        for part in parts:
            total += part
        return total

    # -- makenewz ------------------------------------------------------------

    def branch_derivatives(self, model_terms, pi, cat_weights,
                           pattern_weights, u_clv, v_clv, scale_counts,
                           per_site=False) -> Tuple[float, float, float]:
        self.kernel_calls += 1
        p, dp, d2p = model_terms

        def task(start, stop):
            if per_site:
                return kernels.branch_derivatives_persite(
                    (p[start:stop], dp[start:stop], d2p[start:stop]),
                    pi, pattern_weights[start:stop], u_clv[start:stop],
                    v_clv[start:stop], scale_counts[start:stop],
                )
            return kernels.branch_derivatives(
                (p, dp, d2p), pi, cat_weights, pattern_weights[start:stop],
                u_clv[start:stop], v_clv[start:stop],
                scale_counts[start:stop],
            )

        parts = self._run(task, self._stripes(u_clv.shape[0]))
        lnl = dlnl = d2lnl = 0.0
        for part in parts:
            lnl += part[0]
            dlnl += part[1]
            d2lnl += part[2]
        return lnl, dlnl, d2lnl

    def branch_derivatives_batch(self, model_terms, pi, cat_weights,
                                 pattern_weights, u_clv, v_clv, scale_counts,
                                 per_site=False):
        self.kernel_calls += 1
        p, dp, d2p = model_terms

        def task(start, stop):
            if per_site:
                return kernels.branch_derivatives_batch_persite(
                    (p[:, start:stop], dp[:, start:stop],
                     d2p[:, start:stop]),
                    pi, pattern_weights[start:stop], u_clv[:, start:stop],
                    v_clv[:, start:stop], scale_counts[:, start:stop],
                )
            return kernels.branch_derivatives_batch(
                (p, dp, d2p), pi, cat_weights, pattern_weights[start:stop],
                u_clv[:, start:stop], v_clv[:, start:stop],
                scale_counts[:, start:stop],
            )

        parts = self._run(task, self._stripes(u_clv.shape[1]))
        k = u_clv.shape[0]
        lnl = np.zeros(k, dtype=np.float64)
        dlnl = np.zeros(k, dtype=np.float64)
        d2lnl = np.zeros(k, dtype=np.float64)
        for part in parts:
            lnl += part[0]
            dlnl += part[1]
            d2lnl += part[2]
        return lnl, dlnl, d2lnl

    # -- instrumentation -----------------------------------------------------

    def perf_counters(self) -> Dict[str, int]:
        return {
            "backend_kernel_calls": self.kernel_calls,
            "backend_stripe_tasks": self.stripe_tasks,
            "backend_stripes": self.n_stripes,
            "backend_threads": self.n_threads,
        }

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
