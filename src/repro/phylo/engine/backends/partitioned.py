"""The pattern-striped thread-parallel backend.

This is the reproduction of the paper's PPE→SPE work partitioning
(section 5.2): the alignment's site patterns are cut into contiguous
stripes, every kernel call fans the stripes out to a thread pool, and
partial results are reduced in a **fixed order** — the same fixed-order
reduction the PPE performs over SPE partial results.

The dispatcher is split from the arithmetic: every stripe executes
through a pluggable *inner* striped-kernels implementation
(:class:`StripedKernels`).  The default inner is
:class:`EinsumStripedKernels` — the NumPy kernels of
:mod:`repro.phylo.kernels` on array views — and the ``compiled``
backend substitutes nogil machine-code kernels while inheriting every
dispatch/reduction/chaos behaviour in this module.

Determinism discipline:

* **Elementwise kernels** (tip/inner propagation, combine, the rescale
  check) stripe freely by ``n_stripes``: each pattern's result is
  independent of the striping, so the outputs are bit-identical for
  every stripe/thread count (and — with the einsum inner — to the flat
  ``einsum`` backend).
* **Reduction kernels** (evaluate, branch derivatives) accumulate into
  fixed ``REPRO_ENGINE_BLOCK``-pattern blocks (default 512) whose
  within-block summation order never depends on the stripe count;
  thread stripes are whole-block runs, and the per-block partials are
  combined by an ordered pairwise sum.  The reduction tree is therefore
  a function of the pattern count and block size **only**: ``:1``,
  ``:2`` and ``:4`` report bit-identical log likelihoods, and repeated
  runs are bit-identical whatever the thread scheduling.
* **Scale counts are bit-identical to every other backend**: the
  underflow test is an exact per-pattern comparison; striping only
  changes which loop visits a pattern, never the comparison itself.

Thread count only sets pool width (speed); one thread dispatches every
stripe inline with no pool handoff.  Both stripe and thread counts
default to ``REPRO_ENGINE_THREADS`` or ``min(4, os.cpu_count())``.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ....chaos import injector as _chaos
from ....chaos.plan import BACKEND_STRIPE_RAISE
from ... import kernels
from ..protocol import KernelBackend, KernelExecutionError, register_backend

__all__ = [
    "BLOCK_ENV_VAR",
    "EinsumStripedKernels",
    "PartitionedBackend",
    "StripedKernels",
    "default_block_size",
    "default_thread_count",
]

#: Environment override for the default worker/stripe count.
THREADS_ENV_VAR = "REPRO_ENGINE_THREADS"

#: Environment override for the reduction block size (bits-affecting:
#: the block grouping *is* the summation order of the log-likelihood
#: reduction, so runs comparing bits must share it).
BLOCK_ENV_VAR = "REPRO_ENGINE_BLOCK"

#: Fixed reduction block: 512 patterns per partial sum.  Large enough
#: that the einsum inner kernels amortize their per-block dispatch,
#: small enough that multi-thousand-pattern alignments still spread
#: reduction blocks across stripes.
DEFAULT_REDUCTION_BLOCK = 512


def default_thread_count() -> int:
    """Pool width when the caller does not choose: ``REPRO_ENGINE_THREADS``
    if set, else ``min(4, os.cpu_count())``."""
    env = os.environ.get(THREADS_ENV_VAR, "").strip()
    if env:
        return max(1, int(env))
    return max(1, min(4, os.cpu_count() or 1))


def default_block_size() -> int:
    """Reduction block size: ``REPRO_ENGINE_BLOCK`` if set, else 512."""
    env = os.environ.get(BLOCK_ENV_VAR, "").strip()
    if env:
        return max(1, int(env))
    return DEFAULT_REDUCTION_BLOCK


def _pairwise_sum(parts: List):
    """Ordered pairwise reduction: ``((p0+p1)+(p2+p3))+...``.

    The association depends only on ``len(parts)``, so for a fixed
    block count the result is bit-identical however the parts were
    computed (inline, 2 threads, 4 threads).  Works on floats and on
    numpy arrays (batched reductions)."""
    while len(parts) > 1:
        parts = [
            parts[i] + parts[i + 1] if i + 1 < len(parts) else parts[i]
            for i in range(0, len(parts), 2)
        ]
    return parts[0]


def _partition(n: int, parts: int) -> List[Tuple[int, int]]:
    """Contiguous ``[start, stop)`` runs splitting ``n`` items into at
    most ``parts`` pieces; the first ``n % parts`` runs carry one extra
    item and empty runs are dropped."""
    base, extra = divmod(n, parts)
    bounds = []
    start = 0
    for k in range(parts):
        stop = start + base + (1 if k < extra else 0)
        if stop > start:
            bounds.append((start, stop))
        start = stop
    return bounds


class StripedKernels:
    """The inner-kernel seam of the partitioned dispatcher.

    Implementations are *call builders*: each method validates and
    converts its arguments once per kernel call and returns a closure
    the dispatcher invokes per stripe (elementwise kernels, pattern
    ranges) or per block run (reduction kernels, block-index ranges) —
    possibly concurrently from pool threads, so closures must be
    thread-safe for disjoint ranges.

    Reduction closures fill ``partials`` — per-block partial sums over
    fixed ``block``-pattern blocks — and the dispatcher owns the
    ordered pairwise combination, so every inner implementation
    automatically inherits the thread-count-invariance guarantee.
    """

    #: Implementation name, surfaced in ``repr`` and diagnostics.
    flavor: str = "abstract"

    def warmup_us(self) -> int:
        """One-time build/JIT cost in microseconds (0 for pure NumPy)."""
        return 0

    def tip_terms(self, p, masks, code_table, out, per_site
                  ) -> Callable[[int, int], None]:
        raise NotImplementedError

    def inner_terms(self, p, clv, out, per_site
                    ) -> Callable[[int, int], None]:
        raise NotImplementedError

    def newview_combine(self, left, right, out
                        ) -> Callable[[int, int], None]:
        raise NotImplementedError

    def scale_clv(self, clv, scale_counts) -> Callable[[int, int], int]:
        raise NotImplementedError

    def evaluate(self, pi, cat_weights, pattern_weights, u, v,
                 scale_counts, block, partials
                 ) -> Callable[[int, int], None]:
        raise NotImplementedError

    def evaluate_batch(self, pi, cat_weights, pattern_weights, u, v,
                       scale_counts, block, partials
                       ) -> Callable[[int, int], None]:
        raise NotImplementedError

    def derivatives(self, model_terms, pi, cat_weights, pattern_weights,
                    u, v, scale_counts, block, partials, per_site
                    ) -> Callable[[int, int], None]:
        raise NotImplementedError

    def derivatives_batch(self, model_terms, pi, cat_weights,
                          pattern_weights, u, v, scale_counts, block,
                          partials, per_site
                          ) -> Callable[[int, int], None]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} flavor={self.flavor!r}>"


class EinsumStripedKernels(StripedKernels):
    """The default inner: :mod:`repro.phylo.kernels` on array views.

    NumPy releases the GIL inside the einsum contractions, so stripes
    overlap partially on multi-core hosts; the python-level dispatch
    around each contraction still serialises, which is exactly the
    bottleneck the compiled inner kernels remove.
    """

    flavor = "einsum"

    def tip_terms(self, p, masks, code_table, out, per_site):
        if per_site:
            def task(start, stop):
                kernels.tip_terms_persite(
                    p[start:stop], masks[start:stop], code_table,
                    out=out[start:stop],
                )
        else:
            def task(start, stop):
                kernels.tip_terms(
                    p, masks[start:stop], code_table, out=out[start:stop]
                )
        return task

    def inner_terms(self, p, clv, out, per_site):
        if per_site:
            def task(start, stop):
                kernels.inner_terms_persite(
                    p[start:stop], clv[start:stop], out=out[start:stop]
                )
        else:
            def task(start, stop):
                kernels.inner_terms(
                    p, clv[start:stop], out=out[start:stop]
                )
        return task

    def newview_combine(self, left, right, out):
        def task(start, stop):
            kernels.newview_combine(
                left[start:stop], right[start:stop], out=out[start:stop]
            )
        return task

    def scale_clv(self, clv, scale_counts):
        def task(start, stop):
            return kernels.scale_clv(
                clv[start:stop], scale_counts[start:stop]
            )
        return task

    def evaluate(self, pi, cat_weights, pattern_weights, u, v,
                 scale_counts, block, partials):
        total = scale_counts.shape[0]

        def task(b0, b1):
            for b in range(b0, b1):
                lo = b * block
                hi = min(lo + block, total)
                partials[b] = kernels.evaluate_loglik(
                    pi, cat_weights, pattern_weights[lo:hi],
                    u[lo:hi], v[lo:hi], scale_counts[lo:hi],
                )
        return task

    def evaluate_batch(self, pi, cat_weights, pattern_weights, u, v,
                       scale_counts, block, partials):
        total = scale_counts.shape[1]

        def task(b0, b1):
            for b in range(b0, b1):
                lo = b * block
                hi = min(lo + block, total)
                partials[b] = kernels.evaluate_loglik_batch(
                    pi, cat_weights, pattern_weights[lo:hi],
                    u[:, lo:hi], v[:, lo:hi], scale_counts[:, lo:hi],
                )
        return task

    def derivatives(self, model_terms, pi, cat_weights, pattern_weights,
                    u, v, scale_counts, block, partials, per_site):
        p, dp, d2p = model_terms
        total = scale_counts.shape[0]

        def task(b0, b1):
            for b in range(b0, b1):
                lo = b * block
                hi = min(lo + block, total)
                if per_site:
                    partials[b] = kernels.branch_derivatives_persite(
                        (p[lo:hi], dp[lo:hi], d2p[lo:hi]),
                        pi, pattern_weights[lo:hi], u[lo:hi], v[lo:hi],
                        scale_counts[lo:hi],
                    )
                else:
                    partials[b] = kernels.branch_derivatives(
                        (p, dp, d2p), pi, cat_weights,
                        pattern_weights[lo:hi], u[lo:hi], v[lo:hi],
                        scale_counts[lo:hi],
                    )
        return task

    def derivatives_batch(self, model_terms, pi, cat_weights,
                          pattern_weights, u, v, scale_counts, block,
                          partials, per_site):
        p, dp, d2p = model_terms
        total = scale_counts.shape[1]

        def task(b0, b1):
            for b in range(b0, b1):
                lo = b * block
                hi = min(lo + block, total)
                if per_site:
                    partials[b] = kernels.branch_derivatives_batch_persite(
                        (p[:, lo:hi], dp[:, lo:hi], d2p[:, lo:hi]),
                        pi, pattern_weights[lo:hi], u[:, lo:hi],
                        v[:, lo:hi], scale_counts[:, lo:hi],
                    )
                else:
                    partials[b] = kernels.branch_derivatives_batch(
                        (p, dp, d2p), pi, cat_weights,
                        pattern_weights[lo:hi], u[:, lo:hi], v[:, lo:hi],
                        scale_counts[:, lo:hi],
                    )
        return task


def _resolve_inner(
    inner: Union[None, str, StripedKernels]
) -> StripedKernels:
    """Turn the ``inner=`` option (``name:N:inner`` third token or a
    live object) into a striped-kernels implementation."""
    if inner is None or inner == "einsum":
        return EinsumStripedKernels()
    if inner == "compiled":
        from .compiled import load_compiled_kernels

        return load_compiled_kernels()
    if isinstance(inner, str):
        raise ValueError(
            f"unknown inner kernels {inner!r}; expected einsum or compiled"
        )
    return inner


@register_backend("partitioned")
class PartitionedBackend(KernelBackend):
    """Contiguous pattern stripes on a ``ThreadPoolExecutor``, with a
    pluggable inner striped-kernels implementation."""

    name = "partitioned"
    uses_pmat_cache = True

    def __init__(self, n_stripes: Optional[int] = None,
                 n_threads: Optional[int] = None,
                 inner: Union[None, str, StripedKernels] = None,
                 block: Optional[int] = None) -> None:
        if n_threads is None:
            n_threads = n_stripes if n_stripes is not None \
                else default_thread_count()
        if n_stripes is None:
            n_stripes = n_threads
        if n_stripes < 1 or n_threads < 1:
            raise ValueError("n_stripes and n_threads must be >= 1")
        self.n_stripes = int(n_stripes)
        self.n_threads = int(n_threads)
        self.block = int(block) if block is not None else default_block_size()
        if self.block < 1:
            raise ValueError("reduction block size must be >= 1")
        self._inner = _resolve_inner(inner)
        self.kernel_calls = 0
        self.stripe_tasks = 0
        self._pool: Optional[ThreadPoolExecutor] = None
        self._bounds: Dict[int, List[Tuple[int, int]]] = {}
        self._block_bounds: Dict[int, List[Tuple[int, int]]] = {}

    @property
    def inner_kernels(self) -> StripedKernels:
        """The live inner striped-kernels implementation (read-only)."""
        return self._inner

    # -- striping machinery --------------------------------------------------

    def _stripes(self, n_patterns: int) -> List[Tuple[int, int]]:
        """Fixed contiguous ``[start, stop)`` stripe bounds for a pattern
        count; the first ``n_patterns % n_stripes`` stripes carry one
        extra pattern.  Empty stripes are dropped so tiny instances do
        not spawn no-op tasks.  Elementwise kernels only — reductions
        stripe over whole blocks (:meth:`_block_spans`)."""
        bounds = self._bounds.get(n_patterns)
        if bounds is None:
            bounds = _partition(n_patterns, self.n_stripes)
            self._bounds[n_patterns] = bounds
        return bounds

    def _block_spans(self, n_patterns: int) -> List[Tuple[int, int]]:
        """Contiguous runs of *reduction-block indices* for a pattern
        count: ``ceil(n_patterns / block)`` blocks split across at most
        ``n_stripes`` tasks.  Thread stripes are whole-block runs, so
        which thread computes a block never changes the block's bits."""
        spans = self._block_bounds.get(n_patterns)
        if spans is None:
            n_blocks = -(-n_patterns // self.block)
            spans = _partition(n_blocks, self.n_stripes)
            self._block_bounds[n_patterns] = spans
        return spans

    def _n_blocks(self, n_patterns: int) -> int:
        return -(-n_patterns // self.block)

    def _run(self, task, spans):
        """Run ``task(start, stop)`` over every span, returning results
        in span order.  One thread (or one span) runs inline with no
        pool handoff; otherwise the lazily-built pool executes the
        spans and ``Executor.map`` preserves submission order.

        Any span failure — organic or a ``backend.stripe_raise`` chaos
        injection — surfaces as the typed :class:`KernelExecutionError`
        so the engine's degradation ladder can treat it like a detected
        numerical fault.
        """
        self.stripe_tasks += len(spans)
        # Decide the injected stripe failure once per kernel call (one
        # visit regardless of span count); the *middle* span raises,
        # modelling a worker dying mid-reduction with earlier partials
        # already produced.
        raise_at = -1
        if _chaos._ACTIVE is not None and _chaos.fire(BACKEND_STRIPE_RAISE):
            raise_at = len(spans) // 2

        def stripe(index, start, stop):
            if index == raise_at:
                raise _chaos.InjectedFault(
                    f"injected stripe failure at stripe {index} "
                    f"[{start}:{stop}]"
                )
            return task(start, stop)

        try:
            if self.n_threads == 1 or len(spans) == 1:
                return [
                    stripe(i, start, stop)
                    for i, (start, stop) in enumerate(spans)
                ]
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.n_threads,
                    thread_name_prefix="repro-stripe",
                )
            return list(
                self._pool.map(
                    lambda ib: stripe(ib[0], *ib[1]), enumerate(spans)
                )
            )
        except (FloatingPointError, KernelExecutionError):
            # scale_clv's non-finite guard must keep its type: the
            # engine distinguishes nothing, but tests and reports do.
            raise
        except Exception as exc:
            raise KernelExecutionError(
                f"stripe task failed on backend {self.name!r}: {exc}"
            ) from exc

    # -- newview -------------------------------------------------------------

    def tip_terms(self, p, masks, code_table, out=None, per_site=False):
        self.kernel_calls += 1
        n_patterns = len(masks)
        if out is None:
            n_cats = 1 if per_site else p.shape[0]
            n = p.shape[-1]
            out = np.empty((n_patterns, n_cats, n), dtype=np.float64)
        task = self._inner.tip_terms(p, masks, code_table, out, per_site)
        self._run(task, self._stripes(n_patterns))
        return out

    def inner_terms(self, p, clv, out=None, per_site=False):
        self.kernel_calls += 1
        if out is None:
            out = np.empty_like(clv)
        task = self._inner.inner_terms(p, clv, out, per_site)
        self._run(task, self._stripes(clv.shape[0]))
        return out

    def newview_combine(self, left_term, right_term, out=None):
        self.kernel_calls += 1
        if out is None:
            out = np.empty_like(left_term)
        task = self._inner.newview_combine(left_term, right_term, out)
        self._run(task, self._stripes(left_term.shape[0]))
        return out

    def scale_clv(self, clv, scale_counts) -> int:
        self.kernel_calls += 1
        task = self._inner.scale_clv(clv, scale_counts)
        # Per-pattern exact comparisons: stripe-local counts sum to the
        # same total (and the same per-pattern counters) as one flat call.
        return sum(self._run(task, self._stripes(clv.shape[0])))

    # -- evaluate ------------------------------------------------------------

    def evaluate_loglik(self, pi, cat_weights, pattern_weights, u_term,
                        v_term, scale_counts) -> float:
        self.kernel_calls += 1
        n_patterns = u_term.shape[0]
        partials = np.empty(self._n_blocks(n_patterns), dtype=np.float64)
        task = self._inner.evaluate(
            pi, cat_weights, pattern_weights, u_term, v_term,
            scale_counts, self.block, partials,
        )
        self._run(task, self._block_spans(n_patterns))
        return float(_pairwise_sum(list(partials)))

    def evaluate_loglik_batch(self, pi, cat_weights, pattern_weights,
                              u_terms, v_terms, scale_counts) -> np.ndarray:
        self.kernel_calls += 1
        n_patterns = u_terms.shape[1]
        n_blocks = self._n_blocks(n_patterns)
        partials = np.empty((n_blocks, u_terms.shape[0]), dtype=np.float64)
        task = self._inner.evaluate_batch(
            pi, cat_weights, pattern_weights, u_terms, v_terms,
            scale_counts, self.block, partials,
        )
        self._run(task, self._block_spans(n_patterns))
        return _pairwise_sum([partials[b] for b in range(n_blocks)])

    # -- makenewz ------------------------------------------------------------

    def branch_derivatives(self, model_terms, pi, cat_weights,
                           pattern_weights, u_clv, v_clv, scale_counts,
                           per_site=False) -> Tuple[float, float, float]:
        self.kernel_calls += 1
        n_patterns = u_clv.shape[0]
        n_blocks = self._n_blocks(n_patterns)
        partials = np.empty((n_blocks, 3), dtype=np.float64)
        task = self._inner.derivatives(
            model_terms, pi, cat_weights, pattern_weights, u_clv, v_clv,
            scale_counts, self.block, partials, per_site,
        )
        self._run(task, self._block_spans(n_patterns))
        total = _pairwise_sum([partials[b] for b in range(n_blocks)])
        return float(total[0]), float(total[1]), float(total[2])

    def branch_derivatives_batch(self, model_terms, pi, cat_weights,
                                 pattern_weights, u_clv, v_clv, scale_counts,
                                 per_site=False):
        self.kernel_calls += 1
        n_patterns = u_clv.shape[1]
        n_blocks = self._n_blocks(n_patterns)
        partials = np.empty(
            (n_blocks, 3, u_clv.shape[0]), dtype=np.float64
        )
        task = self._inner.derivatives_batch(
            model_terms, pi, cat_weights, pattern_weights, u_clv, v_clv,
            scale_counts, self.block, partials, per_site,
        )
        self._run(task, self._block_spans(n_patterns))
        total = _pairwise_sum([partials[b] for b in range(n_blocks)])
        return total[0], total[1], total[2]

    def branch_gradient_full(self, model_terms, pi, cat_weights,
                             pattern_weights, u_clvs, v_clvs, scale_counts,
                             per_site=False):
        """Striped full-tree gradient.

        Pattern blocks fan out across the pool; each worker reduces the
        fused ``K``-branch contraction over its fixed 512-pattern
        blocks, and the block partials are combined with the same
        ordered pairwise sum as every other reduction — so the gradient
        is bit-identical across thread counts, exactly like ``lnL``.
        (The compiled backend inherits this dispatcher; its inner
        ``derivatives_batch`` kernels are the nogil njit/cc flavors.)
        """
        return self.branch_derivatives_batch(
            model_terms, pi, cat_weights, pattern_weights, u_clvs, v_clvs,
            scale_counts, per_site=per_site,
        )

    # -- instrumentation -----------------------------------------------------

    def perf_counters(self) -> Dict[str, int]:
        return {
            "backend_kernel_calls": self.kernel_calls,
            "backend_stripe_tasks": self.stripe_tasks,
            "backend_stripes": self.n_stripes,
            "backend_threads": self.n_threads,
            "backend_warmup_us": self._inner.warmup_us(),
        }

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} name={self.name!r} "
            f"stripes={self.n_stripes} threads={self.n_threads} "
            f"inner={self._inner.flavor!r}>"
        )
