"""Built-in kernel backends.

Importing this package registers every built-in backend with the
protocol registry (each module's ``@register_backend`` decorator runs at
import time).  Third-party backends can register themselves the same
way before calling :func:`repro.phylo.engine.create_engine`.
"""

from .compiled import CompiledBackend
from .einsum import EinsumBackend
from .partitioned import PartitionedBackend
from .reference import ReferenceBackend

__all__ = [
    "CompiledBackend",
    "EinsumBackend",
    "PartitionedBackend",
    "ReferenceBackend",
]
