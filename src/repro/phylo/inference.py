"""High-level inference API: multiple inferences and bootstrapping.

This is the workload layer of the paper's master-worker scheme (section
3.1): a "publishable" analysis consists of several independent tree
searches on the original alignment — each from a distinct randomized
stepwise-addition parsimony starting tree — plus a larger number of
non-parametric bootstrap replicates used to attach confidence values to
the branches of the best-scoring tree.  Each search is one *task* in the
Cell port's task-level parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence

import numpy as np

from .alignment import Alignment, PatternAlignment
from .engine import create_engine
from .models import SubstitutionModel, GTR
from .parsimony import stepwise_addition_tree
from .rates import GammaRates, RateModel
from .search import SearchConfig, SearchResult, hill_climb
from .tree import Tree

__all__ = [
    "InferenceResult",
    "AnalysisResult",
    "assemble_analysis",
    "infer_tree",
    "multiple_inferences",
    "bootstrap_analysis",
    "support_values",
    "default_model_for",
]


@dataclass
class InferenceResult:
    """One completed tree search."""

    newick: str
    log_likelihood: float
    search: SearchResult
    newview_calls: int
    makenewz_calls: int
    evaluate_calls: int
    is_bootstrap: bool = False
    replicate: int = 0


@dataclass
class AnalysisResult:
    """A full analysis: best tree, all searches, branch supports.

    ``degraded`` marks a deadline-salvaged analysis: the best tree and
    supports were assembled from the replicates that *completed* before
    the run's deadline, not the full requested set.  Degraded analyses
    are served but never enter the content-addressed result cache.
    """

    best: InferenceResult
    inferences: List[InferenceResult]
    bootstraps: List[InferenceResult]
    supports: Dict[FrozenSet[str], float] = field(default_factory=dict)
    degraded: bool = False

    @property
    def best_tree(self) -> Tree:
        return Tree.from_newick(self.best.newick)


def default_model_for(patterns: PatternAlignment) -> SubstitutionModel:
    """The default model for an alignment's state space.

    DNA (4 states): GTR with empirical base frequencies — RAxML's
    default.  Amino acids (20 states): Poisson+F.
    """
    frequencies = patterns.base_frequencies()
    if len(frequencies) == 4:
        return GTR(
            exchangeabilities=(1.0, 2.5, 1.0, 1.0, 2.5, 1.0),
            frequencies=tuple(frequencies),
        )
    from .protein import PoissonAA

    return PoissonAA(tuple(frequencies))


def _as_patterns(alignment) -> PatternAlignment:
    if isinstance(alignment, PatternAlignment):
        return alignment
    compress = getattr(alignment, "compress", None)
    if compress is not None:
        # Alignment or ProteinAlignment (duck-typed: both compress to a
        # PatternAlignment subclass).
        return compress()
    raise TypeError("expected an alignment or pattern alignment")


def infer_tree(
    alignment,
    model: Optional[SubstitutionModel] = None,
    rate_model: Optional[RateModel] = None,
    config: Optional[SearchConfig] = None,
    seed: int = 0,
    tracer=None,
    is_bootstrap: bool = False,
    replicate: int = 0,
    backend=None,
    cancel=None,
) -> InferenceResult:
    """One complete ML tree search from a randomized parsimony start.

    Parameters mirror RAxML's defaults: GTR with empirical base
    frequencies and four discrete Gamma rate categories.  Pass a
    ``tracer`` (see :mod:`repro.port.trace`) to record the kernel-level
    workload for platform simulation.  ``backend`` selects the kernel
    backend (default: the ``REPRO_ENGINE_BACKEND`` environment
    override); chaos campaigns use it to sweep all backends through the
    same inference seeds.  ``cancel`` is a cooperative cancellation
    token threaded into the search loop (and the engine's guarded
    kernel dispatch); a tripped token unwinds with
    ``TaskCancelled`` and the partial replicate is discarded whole.
    """
    patterns = _as_patterns(alignment)
    model = model or default_model_for(patterns)
    rate_model = rate_model or GammaRates(alpha=1.0, n_categories=4)
    rng = np.random.default_rng(np.random.SeedSequence([seed, replicate]))

    if cancel is not None:
        cancel.check()
    tree = stepwise_addition_tree(patterns, rng)
    engine = create_engine(
        patterns, model, rate_model, tree, tracer=tracer, backend=backend
    )
    if cancel is not None:
        engine.cancel = cancel
    try:
        search = hill_climb(engine, config, rng, cancel=cancel)
        return InferenceResult(
            newick=search.newick,
            log_likelihood=search.log_likelihood,
            search=search,
            newview_calls=engine.newview_calls,
            makenewz_calls=engine.makenewz_calls,
            evaluate_calls=engine.evaluate_calls,
            is_bootstrap=is_bootstrap,
            replicate=replicate,
        )
    finally:
        engine.detach()


def multiple_inferences(
    alignment,
    count: int,
    model: Optional[SubstitutionModel] = None,
    rate_model: Optional[RateModel] = None,
    config: Optional[SearchConfig] = None,
    seed: int = 0,
    tracer=None,
) -> List[InferenceResult]:
    """Independent searches from distinct starting trees (paper sec. 3.1)."""
    patterns = _as_patterns(alignment)
    return [
        infer_tree(
            patterns,
            model=model,
            rate_model=rate_model,
            config=config,
            seed=seed,
            tracer=tracer,
            replicate=i,
        )
        for i in range(count)
    ]


def bootstrap_analysis(
    alignment,
    n_replicates: int,
    model: Optional[SubstitutionModel] = None,
    rate_model: Optional[RateModel] = None,
    config: Optional[SearchConfig] = None,
    seed: int = 0,
    tracer=None,
) -> List[InferenceResult]:
    """Non-parametric bootstrap searches on re-weighted alignments."""
    patterns = _as_patterns(alignment)
    results = []
    for i in range(n_replicates):
        rng = np.random.default_rng(np.random.SeedSequence([seed, 7919, i]))
        replicate = patterns.bootstrap_replicate(rng)
        results.append(
            infer_tree(
                replicate,
                model=model,
                rate_model=rate_model,
                config=config,
                seed=seed + 1,
                tracer=tracer,
                is_bootstrap=True,
                replicate=i,
            )
        )
    return results


def support_values(
    best_tree: Tree, bootstrap_trees: Sequence[Tree]
) -> Dict[FrozenSet[str], float]:
    """Bootstrap support (0..1) for each non-trivial split of *best_tree*."""
    if not bootstrap_trees:
        return {split: 0.0 for split in best_tree.bipartitions()}
    replicate_splits = [t.bipartitions() for t in bootstrap_trees]
    supports = {}
    for split in best_tree.bipartitions():
        hits = sum(1 for splits in replicate_splits if split in splits)
        supports[split] = hits / len(bootstrap_trees)
    return supports


def assemble_analysis(
    inferences: List[InferenceResult],
    bootstraps: List[InferenceResult],
) -> AnalysisResult:
    """Pick the best tree and attach supports (the analysis epilogue).

    The single assembly point shared by the serial workflow, the
    process-parallel facade, and the cluster aggregator — all three
    must agree bit for bit, so the best-tree tie-break (``max`` keeps
    the first, i.e. lowest-replicate, maximal element) and the support
    arithmetic live here once.  *inferences* and *bootstraps* must be
    in replicate order.
    """
    if not inferences:
        raise ValueError("need at least one inference to pick a best tree")
    best = max(inferences, key=lambda r: r.log_likelihood)
    supports = support_values(
        Tree.from_newick(best.newick),
        [Tree.from_newick(b.newick) for b in bootstraps],
    )
    return AnalysisResult(
        best=best, inferences=inferences, bootstraps=bootstraps,
        supports=supports,
    )


def run_full_analysis(
    alignment,
    n_inferences: int = 2,
    n_bootstraps: int = 4,
    model: Optional[SubstitutionModel] = None,
    rate_model: Optional[RateModel] = None,
    config: Optional[SearchConfig] = None,
    seed: int = 0,
    tracer=None,
) -> AnalysisResult:
    """The paper's full workflow: inferences + bootstraps + supports."""
    inferences = multiple_inferences(
        alignment, n_inferences, model, rate_model, config, seed, tracer
    )
    bootstraps = bootstrap_analysis(
        alignment, n_bootstraps, model, rate_model, config, seed, tracer
    )
    return assemble_analysis(inferences, bootstraps)
