"""The likelihood engine: ``newview()``, ``evaluate()``, ``makenewz()``.

This module reimplements the three functions that consume 98.77 % of
RAxML's runtime (76.8 % / 19.16 % / 2.37 % per the paper's gprof profile):

* :meth:`LikelihoodEngine.newview` computes the conditional likelihood
  vector (CLV) at an inner node by Felsenstein's pruning algorithm, with
  the four specialized cases the paper describes (both children tips, one
  child a tip, none) and numerical rescaling of underflowing patterns.
* :meth:`LikelihoodEngine.evaluate` computes the log likelihood of the
  tree at a branch by summing over the two CLVs facing it.  For a
  time-reversible model the value is identical at every branch — a
  property the test suite checks.
* :meth:`LikelihoodEngine.makenewz` optimizes one branch length by
  Newton-Raphson with analytic first and second derivatives.

CLVs are cached per *direction* ``(node, entry_branch)`` and invalidated
through the tree's branch-dirtying observer protocol, reproducing
RAxML's lazy recomputation (and hence realistic ``newview()`` call
counts in the workload traces fed to the Cell simulator).

Both rate-heterogeneity treatments are supported: Gamma (every site
integrates over all categories; shared per-category transition matrices)
and CAT (one category per site; per-pattern transition matrices).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from . import kernels
from .alignment import PatternAlignment
from .models import SubstitutionModel
from .rates import RateModel, UniformRate
from .tree import Branch, Node, Tree, MAX_BRANCH_LENGTH, MIN_BRANCH_LENGTH

__all__ = ["LikelihoodEngine", "NewviewCase", "estimate_site_rates"]


class NewviewCase:
    """The four execution paths of ``newview()`` (paper section 5.2.3)."""

    TIP_TIP = "tip_tip"
    TIP_INNER = "tip_inner"
    INNER_TIP = "inner_tip"
    INNER_INNER = "inner_inner"


@dataclass
class _CachedCLV:
    clv: np.ndarray  # (n_patterns, n_cats, 4)
    scale_counts: np.ndarray  # (n_patterns,) int64
    deps: FrozenSet[int]  # branch ids this CLV depends on


class LikelihoodEngine:
    """Maximum-likelihood scoring of a tree on a pattern alignment.

    Parameters
    ----------
    patterns:
        The compressed alignment.
    model:
        Substitution model.
    rate_model:
        Among-site rate model (uniform, Gamma, or CAT).  For CAT the
        ``site_categories`` assignment must cover every pattern.
    tree:
        The tree to score; the engine registers itself as an observer and
        must remain attached while the tree is edited.
    tracer:
        Optional object receiving ``record_newview`` /
        ``record_evaluate`` / ``record_makenewz`` calls; used by
        :mod:`repro.port.trace` to build platform-simulation workloads.
    """

    def __init__(
        self,
        patterns: PatternAlignment,
        model: SubstitutionModel,
        rate_model: Optional[RateModel] = None,
        tree: Optional[Tree] = None,
        tracer=None,
    ):
        if tree is None:
            raise ValueError("a tree is required")
        self.patterns = patterns
        self.model = model
        self.rate_model = rate_model or UniformRate()
        self.tree = tree
        self.tracer = tracer
        #: state-space size (4 for DNA, 20 for amino acids)
        self._n_states = model.n_states
        #: per-code tip indicator rows (None = the DNA mask table)
        self._tip_table = getattr(patterns, "tip_code_table", None)

        if self.rate_model.is_per_site:
            if len(self.rate_model.site_categories) != patterns.n_patterns:
                raise ValueError(
                    "CAT site_categories must assign every pattern a category"
                )
            #: per-pattern rate multipliers (CAT mode)
            self._site_rates = self.rate_model.rates[self.rate_model.site_categories]
            self._cat_weights = np.ones(1)
            self._n_cats = 1
        else:
            self._site_rates = None
            self._cat_weights = self.rate_model.weights
            self._n_cats = self.rate_model.n_categories

        self._tip_index: Dict[int, int] = {}
        for node in tree.tips:
            self._tip_index[node.index] = patterns.taxon_index(node.name)

        self._clv_cache: Dict[Tuple[int, int], _CachedCLV] = {}
        self._pmat_cache: Dict[int, np.ndarray] = {}
        tree.add_observer(self._on_branch_dirty)

        #: running counters (cheap, always on) — used for sanity checks
        self.newview_calls = 0
        self.evaluate_calls = 0
        self.makenewz_calls = 0

    # -- lifecycle ----------------------------------------------------------

    def detach(self) -> None:
        """Unregister from the tree and drop all caches."""
        self.tree.remove_observer(self._on_branch_dirty)
        self._clv_cache.clear()
        self._pmat_cache.clear()

    def invalidate_all(self) -> None:
        """Drop every cache (e.g. after a model-parameter change)."""
        self._clv_cache.clear()
        self._pmat_cache.clear()

    def set_model(self, model: SubstitutionModel) -> None:
        """Swap the substitution model and drop caches."""
        self.model = model
        self.invalidate_all()

    def set_rate_model(self, rate_model: RateModel) -> None:
        """Swap the rate model (same mode/category layout) and drop caches."""
        if rate_model.is_per_site != self.rate_model.is_per_site:
            raise ValueError("cannot switch between integrated and CAT modes")
        self.rate_model = rate_model
        if rate_model.is_per_site:
            self._site_rates = rate_model.rates[rate_model.site_categories]
        else:
            self._cat_weights = rate_model.weights
            self._n_cats = rate_model.n_categories
        self.invalidate_all()

    def _push_context(self, name: str):
        """Tell the tracer (if any) that nested kernel calls follow."""
        if self.tracer is not None and hasattr(self.tracer, "push_context"):
            return self.tracer.push_context(name)
        return None

    def _pop_context(self, token) -> None:
        if token is not None:
            self.tracer.pop_context(token)

    def _on_branch_dirty(self, branch_id: int) -> None:
        self._pmat_cache.pop(branch_id, None)
        stale = [
            key
            for key, entry in self._clv_cache.items()
            if branch_id in entry.deps or key[1] == branch_id
        ]
        for key in stale:
            del self._clv_cache[key]

    # -- transition matrices ---------------------------------------------------

    def _rates_for_pmat(self) -> np.ndarray:
        if self._site_rates is not None:
            return self._site_rates
        return self.rate_model.rates

    def _pmat(self, branch: Branch) -> np.ndarray:
        """Transition matrices for *branch*: ``(n_cats, 4, 4)`` for the
        integrated modes, ``(n_patterns, 4, 4)`` for CAT."""
        cached = self._pmat_cache.get(branch.index)
        if cached is None:
            cached = self.model.transition_matrices(
                branch.length, self._rates_for_pmat()
            )
            self._pmat_cache[branch.index] = cached
        return cached

    # -- CLV computation ----------------------------------------------------------

    def _is_tip(self, node: Node) -> bool:
        return node.is_tip

    def _tip_masks(self, node: Node) -> np.ndarray:
        return self.patterns.patterns[self._tip_index[node.index]]

    def _tip_clv(self, node: Node) -> np.ndarray:
        """Tip CLV expanded to ``(n_patterns, n_cats, n_states)``."""
        rows = self.patterns.tip_partials(self._tip_index[node.index])
        return np.broadcast_to(
            rows[:, None, :],
            (self.patterns.n_patterns, self._n_cats, self._n_states),
        )

    def _propagated(self, node: Node, via: Branch) -> Tuple[np.ndarray, np.ndarray]:
        """CLV of the subtree at *node* away from *via*, propagated across
        *via*.  Returns ``(term, scale_counts)``."""
        p = self._pmat(via)
        if node.is_tip:
            masks = self._tip_masks(node)
            if self._site_rates is not None:
                term = kernels.tip_terms_persite(p, masks, self._tip_table)
            else:
                term = kernels.tip_terms(p, masks, self._tip_table)
            return term, np.zeros(self.patterns.n_patterns, dtype=np.int64)
        entry = self.clv(node, via)
        if self._site_rates is not None:
            term = kernels.inner_terms_persite(p, entry.clv)
        else:
            term = kernels.inner_terms(p, entry.clv)
        return term, entry.scale_counts

    def clv(self, node: Node, entry: Branch) -> _CachedCLV:
        """The cached CLV at inner *node* for the subtree away from *entry*.

        Missing CLVs (including any missing descendants) are computed
        bottom-up; each computation is one ``newview()`` invocation.
        """
        if node.is_tip:
            raise ValueError("tips have no stored CLV; use _propagated")
        cached = self._clv_cache.get((node.index, entry.index))
        if cached is not None:
            return cached
        # Gather the missing directions below (node, entry) in post-order.
        order: List[Tuple[Node, Branch]] = []
        stack: List[Tuple[Node, Branch, bool]] = [(node, entry, False)]
        while stack:
            current, came_from, expanded = stack.pop()
            if expanded:
                order.append((current, came_from))
                continue
            if current.is_tip or (current.index, came_from.index) in self._clv_cache:
                continue
            stack.append((current, came_from, True))
            for branch in current.branches:
                if branch is not came_from:
                    stack.append((branch.other(current), branch, False))
        for current, came_from in order:
            self._newview(current, came_from)
        return self._clv_cache[(node.index, entry.index)]

    def _newview(self, node: Node, entry: Branch) -> _CachedCLV:
        """Compute and cache one CLV (a single ``newview()`` invocation)."""
        children = [b for b in node.branches if b is not entry]
        if len(children) != 2:
            raise ValueError("newview requires an inner node of degree 3")
        (b1, b2) = children
        q1, q2 = b1.other(node), b2.other(node)
        term1, sc1 = self._propagated(q1, b1)
        term2, sc2 = self._propagated(q2, b2)
        clv = kernels.newview_combine(term1, term2)
        scale_counts = sc1 + sc2
        scaled = kernels.scale_clv(clv, scale_counts)

        deps = frozenset(self.tree.subtree_branches(node, entry))
        entry_cache = _CachedCLV(clv=clv, scale_counts=scale_counts, deps=deps)
        self._clv_cache[(node.index, entry.index)] = entry_cache

        self.newview_calls += 1
        if self.tracer is not None:
            if q1.is_tip and q2.is_tip:
                case = NewviewCase.TIP_TIP
            elif q1.is_tip:
                case = NewviewCase.TIP_INNER
            elif q2.is_tip:
                case = NewviewCase.INNER_TIP
            else:
                case = NewviewCase.INNER_INNER
            self.tracer.record_newview(
                case=case,
                n_patterns=self.patterns.n_patterns,
                n_cats=self._n_cats,
                scaled=scaled,
            )
        return entry_cache

    # -- evaluate -------------------------------------------------------------------

    def _side(self, node: Node, branch: Branch) -> Tuple[np.ndarray, np.ndarray]:
        """Unpropagated CLV facing *branch* from *node*'s side."""
        if node.is_tip:
            return self._tip_clv(node), np.zeros(
                self.patterns.n_patterns, dtype=np.int64
            )
        entry = self.clv(node, branch)
        return entry.clv, entry.scale_counts

    def evaluate(self, branch: Optional[Branch] = None) -> float:
        """Log likelihood of the tree, computed at *branch*.

        For a reversible model the result is branch-independent; the
        default uses an arbitrary branch.
        """
        if branch is None:
            branch = self.tree.branches[0]
        u, v = branch.nodes
        # Keep the tip (if any) on the un-propagated side: RAxML's cheap case.
        if v.is_tip and not u.is_tip:
            u, v = v, u
        # CLV refreshes triggered from here are nested inside this offload
        # unit (no PPE<->SPE communication once evaluate lives on the SPE).
        context = self._push_context("evaluate")
        try:
            u_clv, u_sc = self._side(u, branch)
            v_term, v_sc = self._propagated(v, branch)
        finally:
            self._pop_context(context)
        result = kernels.evaluate_loglik(
            self.model.pi,
            self._cat_weights,
            self.patterns.weights,
            u_clv,
            v_term,
            u_sc + v_sc,
        )
        self.evaluate_calls += 1
        if self.tracer is not None:
            self.tracer.record_evaluate(
                n_patterns=self.patterns.n_patterns, n_cats=self._n_cats
            )
        return result

    def log_likelihood(self) -> float:
        """Alias for :meth:`evaluate` at a default branch."""
        return self.evaluate()

    def site_log_likelihoods(self, branch: Optional[Branch] = None) -> np.ndarray:
        """Per-pattern log likelihoods (diagnostics; CAT rate estimation)."""
        if branch is None:
            branch = self.tree.branches[0]
        u, v = branch.nodes
        if v.is_tip and not u.is_tip:
            u, v = v, u
        u_clv, u_sc = self._side(u, branch)
        v_term, v_sc = self._propagated(v, branch)
        per_cat = np.einsum(
            "sci,i->sc", u_clv * v_term, self.model.pi, optimize=True
        )
        site_lik = per_cat @ self._cat_weights
        return np.log(site_lik) - (u_sc + v_sc) * kernels.LOG_SCALE_FACTOR

    # -- makenewz ---------------------------------------------------------------------

    def makenewz(
        self,
        branch: Branch,
        max_iterations: int = 32,
        tolerance: float = 1e-8,
    ) -> Tuple[float, float]:
        """Optimize one branch length by Newton-Raphson.

        Returns ``(new_length, log_likelihood)``.  The tree is updated in
        place (which dirties dependent CLVs through the observer
        protocol).  Mirrors RAxML's ``makenewz()``: it first ensures the
        CLVs facing the branch exist (calling ``newview()`` as needed),
        then iterates Newton steps with safeguards.
        """
        u, v = branch.nodes
        context = self._push_context("makenewz")
        try:
            u_clv, u_sc = self._side(u, branch)
            v_clv, v_sc = self._side(v, branch)
        finally:
            self._pop_context(context)
        scale = u_sc + v_sc
        pi = self.model.pi
        weights = self.patterns.weights
        rates = self._rates_for_pmat()

        def derivatives_at(length: float):
            terms = self.model.transition_derivatives(length, rates)
            if self._site_rates is not None:
                return kernels.branch_derivatives_persite(
                    terms, pi, weights, u_clv, v_clv, scale
                )
            return kernels.branch_derivatives(
                terms, pi, self._cat_weights, weights, u_clv, v_clv, scale
            )

        t = branch.length
        best_t, best_lnl = t, -np.inf
        iterations = 0
        for iterations in range(1, max_iterations + 1):
            lnl, d1, d2 = derivatives_at(t)
            if lnl > best_lnl:
                best_lnl, best_t = lnl, t
            if abs(d1) < tolerance:
                break
            if d2 < 0.0:
                step = d1 / d2
                new_t = t - step
            else:
                # Not locally concave: move in the uphill direction.
                new_t = t * 2.0 if d1 > 0 else t * 0.5
            new_t = min(max(new_t, MIN_BRANCH_LENGTH), MAX_BRANCH_LENGTH)
            if abs(new_t - t) < tolerance:
                t = new_t
                break
            t = new_t

        # Score the final point too (the loop may end right after a step).
        lnl, _, _ = derivatives_at(t)
        if lnl > best_lnl:
            best_lnl, best_t = lnl, t

        self.tree.set_length(branch, best_t)
        self.makenewz_calls += 1
        if self.tracer is not None:
            self.tracer.record_makenewz(
                n_patterns=self.patterns.n_patterns,
                n_cats=self._n_cats,
                iterations=iterations,
            )
        return best_t, best_lnl

    def optimize_all_branches(
        self, passes: int = 3, tolerance: float = 1e-6
    ) -> float:
        """Round-robin Newton smoothing of every branch (RAxML 'smoothings').

        Stops early when a full pass improves the likelihood by less than
        *tolerance*.  Returns the final log likelihood.
        """
        last = -np.inf
        lnl = last
        for _ in range(passes):
            for branch in self.tree.branches:
                _, lnl = self.makenewz(branch)
            if lnl - last < tolerance:
                break
            last = lnl
        return lnl


def estimate_site_rates(
    patterns: PatternAlignment,
    model: SubstitutionModel,
    tree: Tree,
    rate_grid: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-pattern ML rate estimates over a grid (for building CAT models).

    For each candidate rate the whole tree is scored with a single
    rate category, and each pattern picks the rate maximizing its own
    likelihood — a simplified version of RAxML's per-site rate
    optimization that feeds :func:`repro.phylo.rates.CatRates`.
    """
    if rate_grid is None:
        rate_grid = np.geomspace(1.0 / 16.0, 16.0, 25)
    per_rate = np.empty((len(rate_grid), patterns.n_patterns))
    for k, rate in enumerate(rate_grid):
        rate_model = RateModel(np.array([rate]), np.ones(1), name=f"fixed({rate:g})")
        engine = LikelihoodEngine(patterns, model, rate_model, tree)
        per_rate[k] = engine.site_log_likelihoods()
        engine.detach()
    best = rate_grid[np.argmax(per_rate, axis=0)]
    return np.asarray(best, dtype=np.float64)
