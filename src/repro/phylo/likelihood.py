"""Back-compat shim: the likelihood engine now lives in
:mod:`repro.phylo.engine`.

The engine was split into a structural core
(:mod:`repro.phylo.engine.core` — CLV cache/arena, P-matrix LRU, dirty
tracking, traversal, Newton, SPR batching) and pluggable numerical
kernel backends behind the :class:`~repro.phylo.engine.protocol.KernelBackend`
protocol (``einsum`` / ``reference`` / ``partitioned``).  Import
:class:`LikelihoodEngine` from here for source compatibility, or —
preferred — build engines with :func:`repro.phylo.engine.create_engine`,
which honours the ``REPRO_ENGINE_BACKEND`` environment override.
"""

from __future__ import annotations

from .engine import available_backends, create_engine
from .engine.core import LikelihoodEngine, NewviewCase, estimate_site_rates

__all__ = [
    "LikelihoodEngine",
    "NewviewCase",
    "available_backends",
    "create_engine",
    "estimate_site_rates",
]
