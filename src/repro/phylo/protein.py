"""Amino-acid (protein) sequence support.

The paper's opening line covers "multiple alignments of DNA or AA
sequences"; this module supplies the AA half: a 20-state alphabet with
IUPAC ambiguity codes, protein alignments with the same site-pattern
compression and bootstrap machinery as the DNA path, and reversible
20-state substitution models.

Because 20 states do not fit the DNA path's 4-bit mask representation,
tips are encoded as indices into a small *code table* (one indicator
row per distinct character) — the likelihood engine and kernels accept
any such table, so the entire engine (newview/evaluate/makenewz, Gamma
and CAT rates, scaling) works unchanged.

Shipped models:

* :func:`PoissonAA` — equal exchangeabilities (the 20-state analogue of
  Jukes-Cantor), optionally with empirical frequencies ("Poisson+F").
* :func:`protein_model` — any user-supplied 190-rate matrix, e.g. a
  WAG/JTT/LG parameter file (the published matrices are data files this
  offline reproduction does not embed; loading them is one call).
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .alignment import PatternAlignment, parse_fasta, parse_phylip
from .models import SubstitutionModel

__all__ = [
    "AA_STATES",
    "AA_AMBIGUITY",
    "ProteinAlignment",
    "ProteinPatternAlignment",
    "PoissonAA",
    "protein_model",
    "encode_protein",
    "decode_protein",
]

#: Canonical amino-acid order (the standard one-letter alphabet order
#: used by PAML/RAxML matrices).
AA_STATES = "ARNDCQEGHILKMFPSTWYV"

#: IUPAC ambiguity codes: character -> set of allowed states.
AA_AMBIGUITY: Dict[str, str] = {
    "B": "ND",  # asparagine or aspartate
    "Z": "QE",  # glutamine or glutamate
    "J": "IL",  # isoleucine or leucine
    "X": AA_STATES,
    "?": AA_STATES,
    "-": AA_STATES,
    ".": AA_STATES,
    "*": AA_STATES,  # stop/unknown treated as missing
    "U": "C",  # selenocysteine folded into cysteine
    "O": "K",  # pyrrolysine folded into lysine
}

#: The full code alphabet: 20 plain states first, then ambiguity codes.
_CODE_CHARS: List[str] = list(AA_STATES) + list(AA_AMBIGUITY)
_CHAR_TO_CODE: Dict[str, int] = {c: i for i, c in enumerate(_CODE_CHARS)}

#: (n_codes, 20) indicator rows: row ``k`` marks the states code ``k``
#: permits.  This is the protein analogue of the DNA mask table.
AA_CODE_TABLE = np.zeros((len(_CODE_CHARS), len(AA_STATES)))
for _i, _aa in enumerate(AA_STATES):
    AA_CODE_TABLE[_i, _i] = 1.0
for _k, (_ch, _allowed) in enumerate(AA_AMBIGUITY.items(), start=len(AA_STATES)):
    for _aa in _allowed:
        AA_CODE_TABLE[_k, AA_STATES.index(_aa)] = 1.0
AA_CODE_TABLE.setflags(write=False)

#: 20-bit state-set masks per code (bit ``i`` = state ``AA_STATES[i]``):
#: the protein analogue of the DNA ambiguity masks, used by Fitch
#: parsimony (bitwise AND/OR work unchanged on wider integers).
AA_CODE_BITMASKS = (
    AA_CODE_TABLE.astype(np.uint32)
    * (np.uint32(1) << np.arange(len(AA_STATES), dtype=np.uint32))
).sum(axis=1).astype(np.uint32)
AA_CODE_BITMASKS.setflags(write=False)


def encode_protein(sequence: str) -> np.ndarray:
    """Encode an AA string into code indices (uint8)."""
    codes = np.empty(len(sequence), dtype=np.uint8)
    for i, ch in enumerate(sequence.upper()):
        code = _CHAR_TO_CODE.get(ch)
        if code is None:
            raise ValueError(f"invalid amino-acid character {ch!r}")
        codes[i] = code
    return codes


def decode_protein(codes: np.ndarray) -> str:
    """Decode code indices back to the one-letter alphabet."""
    return "".join(_CODE_CHARS[int(c)] for c in codes)


@dataclass
class ProteinAlignment:
    """A protein multiple sequence alignment (code-index matrix)."""

    taxa: List[str]
    data: np.ndarray  # (n_taxa, n_sites) of code indices

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data, dtype=np.uint8)
        if self.data.ndim != 2:
            raise ValueError("alignment data must be 2-D (taxa x sites)")
        if len(self.taxa) != self.data.shape[0]:
            raise ValueError("taxon-name count does not match rows")
        if len(set(self.taxa)) != len(self.taxa):
            raise ValueError("duplicate taxon names")
        if self.data.size and (self.data >= len(_CODE_CHARS)).any():
            raise ValueError("invalid amino-acid codes in alignment")

    @classmethod
    def from_sequences(cls, named: Dict[str, str]) -> "ProteinAlignment":
        rows = [encode_protein(s) for s in named.values()]
        if rows and any(len(r) != len(rows[0]) for r in rows):
            raise ValueError("sequences have unequal lengths")
        return cls(list(named), np.vstack(rows) if rows else
                   np.zeros((0, 0), dtype=np.uint8))

    @classmethod
    def from_fasta(cls, text: str) -> "ProteinAlignment":
        return cls.from_sequences(parse_fasta(text))

    @classmethod
    def from_phylip(cls, text: str) -> "ProteinAlignment":
        return cls.from_sequences(parse_phylip(text))

    @property
    def n_taxa(self) -> int:
        return self.data.shape[0]

    @property
    def n_sites(self) -> int:
        return self.data.shape[1]

    def sequence(self, taxon: str) -> str:
        return decode_protein(self.data[self.taxa.index(taxon)])

    def to_fasta(self) -> str:
        out = io.StringIO()
        for i, name in enumerate(self.taxa):
            out.write(f">{name}\n{decode_protein(self.data[i])}\n")
        return out.getvalue()

    def base_frequencies(self) -> np.ndarray:
        """Empirical AA frequencies (ambiguity mass split uniformly)."""
        rows = AA_CODE_TABLE[self.data]
        per_char = rows / rows.sum(axis=-1, keepdims=True)
        freqs = per_char.sum(axis=(0, 1))
        total = freqs.sum()
        if total == 0:
            return np.full(len(AA_STATES), 1.0 / len(AA_STATES))
        return freqs / total

    def compress(self) -> "ProteinPatternAlignment":
        """Merge identical columns into weighted site patterns."""
        if self.n_sites == 0:
            raise ValueError("cannot compress an empty alignment")
        columns = self.data.T
        patterns, site_to_pattern, counts = np.unique(
            columns, axis=0, return_inverse=True, return_counts=True
        )
        return ProteinPatternAlignment(
            taxa=list(self.taxa),
            patterns=np.ascontiguousarray(patterns.T),
            weights=counts.astype(np.float64),
            site_to_pattern=site_to_pattern.astype(np.intp),
            n_sites=self.n_sites,
        )


class ProteinPatternAlignment(PatternAlignment):
    """Pattern-compressed protein alignment (engine-compatible).

    Inherits the weighting/bootstrap machinery of the DNA
    :class:`~repro.phylo.alignment.PatternAlignment`; only the tip
    representation differs — ``patterns`` holds code indices and
    :attr:`tip_code_table` maps them to 20-state indicator rows.
    """

    def __post_init__(self) -> None:
        # Skip the DNA mask-range validation; codes index AA_CODE_TABLE.
        self.patterns = np.asarray(self.patterns, dtype=np.uint8)
        self.weights = np.asarray(self.weights, dtype=np.float64)
        if self.patterns.shape[1] != self.weights.shape[0]:
            raise ValueError("weights length must equal number of patterns")
        if (self.patterns >= len(_CODE_CHARS)).any():
            raise ValueError("invalid amino-acid codes")
        if self.weights.sum() and abs(self.weights.sum() - self.n_sites) > 1e-9:
            raise ValueError("pattern weights must sum to the site count")

    @property
    def tip_code_table(self) -> np.ndarray:
        return AA_CODE_TABLE

    def tip_partials(self, taxon_index: int) -> np.ndarray:
        cached = self._tip_partial_cache.get(taxon_index)
        if cached is None:
            cached = AA_CODE_TABLE[self.patterns[taxon_index]]
            cached.setflags(write=False)
            self._tip_partial_cache[taxon_index] = cached
        return cached

    def tip_is_unambiguous(self, taxon_index: int) -> bool:
        return bool((self.patterns[taxon_index] < len(AA_STATES)).all())

    def parsimony_masks(self, taxon_index: int) -> np.ndarray:
        """20-bit state-set masks for Fitch parsimony."""
        return AA_CODE_BITMASKS[self.patterns[taxon_index]]

    def base_frequencies(self) -> np.ndarray:
        rows = AA_CODE_TABLE[self.patterns]
        per_char = rows / rows.sum(axis=-1, keepdims=True)
        freqs = (per_char * self.weights[None, :, None]).sum(axis=(0, 1))
        total = freqs.sum()
        if total == 0:
            return np.full(len(AA_STATES), 1.0 / len(AA_STATES))
        return freqs / total

    def with_weights(self, weights: np.ndarray) -> "ProteinPatternAlignment":
        return ProteinPatternAlignment(
            taxa=self.taxa,
            patterns=self.patterns,
            weights=np.asarray(weights, dtype=np.float64),
            site_to_pattern=self.site_to_pattern,
            n_sites=self.n_sites,
            _tip_partial_cache=self._tip_partial_cache,
        )


def PoissonAA(frequencies: Optional[Sequence[float]] = None
              ) -> SubstitutionModel:
    """The Poisson amino-acid model: equal exchangeabilities.

    The 20-state analogue of Jukes-Cantor; with empirical
    ``frequencies`` this is the "Poisson+F" model.
    """
    n = len(AA_STATES)
    if frequencies is None:
        frequencies = (1.0 / n,) * n
    if len(frequencies) != n:
        raise ValueError("amino-acid models need 20 frequencies")
    return SubstitutionModel(
        (1.0,) * (n * (n - 1) // 2), tuple(frequencies), "PoissonAA"
    )


def protein_model(
    exchangeabilities: Sequence[float],
    frequencies: Sequence[float],
    name: str = "customAA",
) -> SubstitutionModel:
    """A reversible 20-state model from user-supplied parameters.

    ``exchangeabilities`` is the 190-entry upper triangle in
    :data:`AA_STATES` order (the layout of published WAG/JTT/LG files).
    """
    n = len(AA_STATES)
    if len(frequencies) != n:
        raise ValueError("amino-acid models need 20 frequencies")
    if len(exchangeabilities) != n * (n - 1) // 2:
        raise ValueError("amino-acid models need 190 exchangeabilities")
    return SubstitutionModel(
        tuple(exchangeabilities), tuple(frequencies), name
    )
