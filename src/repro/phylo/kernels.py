"""Numerical likelihood kernels (the paper's SPE-offloaded inner loops).

These functions are the compute bodies of RAxML's three hot functions:

* :func:`newview_combine` — the *large loop* of ``newview()``: for every
  site pattern and rate category, propagate the two child conditional
  likelihood vectors (CLVs) across their branches and multiply them.
  The paper reports 44 double-precision FLOPs per iteration of this loop
  (22 after SIMD vectorization).
* :func:`scale_clv` — the numerical-underflow rescaling check: the large
  ``if()`` with four ABS comparisons that consumed 45 % of ``newview()``
  on the SPE until it was cast to integer compares and vectorized.
* :func:`evaluate_loglik` — ``evaluate()``: dot the two CLVs facing a
  branch with the transition matrix and base frequencies, and sum
  weighted log site-likelihoods.
* :func:`branch_derivatives` — the per-iteration body of ``makenewz()``:
  first and second derivatives of the log likelihood with respect to one
  branch length, for Newton-Raphson.

Every vectorized kernel has a ``*_reference`` twin written as plain
Python loops.  The references are orders of magnitude slower and exist
only as oracles for the test suite.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from .dna import NUM_STATES, TIP_PARTIAL_ROWS

__all__ = [
    "SCALE_THRESHOLD",
    "SCALE_FACTOR",
    "LOG_SCALE_FACTOR",
    "contraction_path",
    "tip_terms",
    "inner_terms",
    "tip_terms_persite",
    "inner_terms_persite",
    "newview_combine",
    "scale_clv",
    "evaluate_loglik",
    "evaluate_loglik_batch",
    "branch_derivatives",
    "branch_derivatives_batch",
    "branch_derivatives_persite",
    "branch_derivatives_batch_persite",
    "branch_gradient_full",
    "newview_combine_reference",
    "evaluate_loglik_reference",
]

# -- einsum contraction-path cache --------------------------------------------
#
# ``np.einsum(..., optimize=True)`` re-derives the contraction order on
# every call; at thousands of kernel invocations per sweep the path
# search itself becomes measurable.  Paths depend only on the subscripts
# and operand shapes, so they are derived once and memoized.
#
# The cache is shared by every engine in the process — including the
# ``partitioned`` backend's stripe workers, which call these kernels
# concurrently from a thread pool — so population is guarded by a lock.
# Reads take the lock too: a plain dict ``get`` racing a concurrent
# resize is not guaranteed safe, and the lock cost is dwarfed by the
# einsum itself.  ``np.einsum_path`` is computed outside the lock (it is
# pure); a race at worst derives the same path twice.

_PATH_CACHE: Dict[Tuple, List] = {}
_PATH_CACHE_LOCK = threading.Lock()


def contraction_path(subscripts: str, *operands: np.ndarray) -> List:
    """The cached optimal contraction path for ``np.einsum(subscripts, ...)``.

    Thread-safe: concurrent stripe workers of the partitioned backend
    may populate the cache simultaneously.
    """
    key = (subscripts,) + tuple(op.shape for op in operands)
    with _PATH_CACHE_LOCK:
        path = _PATH_CACHE.get(key)
    if path is None:
        path = np.einsum_path(subscripts, *operands, optimize="optimal")[0]
        with _PATH_CACHE_LOCK:
            _PATH_CACHE[key] = path
    return path


def _einsum(subscripts: str, *operands: np.ndarray,
            out: Optional[np.ndarray] = None) -> np.ndarray:
    return np.einsum(subscripts, *operands,
                     optimize=contraction_path(subscripts, *operands), out=out)

#: Rescaling threshold: when every entry of a pattern's CLV falls below
#: this, the row is multiplied by :data:`SCALE_FACTOR`.  RAxML uses
#: ``2^-256`` / ``2^+256``; we keep the same constants.
SCALE_THRESHOLD = 2.0 ** -256
SCALE_FACTOR = 2.0 ** 256
LOG_SCALE_FACTOR = 256.0 * math.log(2.0)


def tip_terms(p: np.ndarray, masks: np.ndarray,
              code_table: Optional[np.ndarray] = None,
              out: Optional[np.ndarray] = None) -> np.ndarray:
    """Propagate tip states across a branch: ``sum_j P[c,i,j] tip[s,j]``.

    Because a tip column only takes one of a small set of codes (15
    ambiguity masks for DNA, ~25 for amino acids), the product is
    computed once per code and gathered — RAxML's ``tipVector`` trick,
    which is what makes the paper's tip-case loops so much cheaper than
    the inner-inner case.

    Parameters
    ----------
    p: ``(n_cats, n, n)`` transition matrices.
    masks: ``(n_patterns,)`` tip state codes (indices into the table).
    code_table: ``(n_codes, n)`` indicator rows per code; defaults to
        the DNA ambiguity-mask table.
    out: optional ``(n_patterns, n_cats, n)`` buffer to gather into.

    Returns
    -------
    ``(n_patterns, n_cats, n)`` propagated terms.
    """
    table = TIP_PARTIAL_ROWS if code_table is None else code_table
    per_code = _einsum("cij,mj->mci", p, table)  # (n_codes, cats, n)
    if out is None:
        return per_code[masks]
    np.take(per_code, masks, axis=0, out=out)
    return out


def inner_terms(p: np.ndarray, clv: np.ndarray,
                out: Optional[np.ndarray] = None) -> np.ndarray:
    """Propagate an inner CLV across a branch: ``sum_j P[c,i,j] clv[s,c,j]``."""
    return _einsum("cij,scj->sci", p, clv, out=out)


def tip_terms_persite(p: np.ndarray, masks: np.ndarray,
                      code_table: Optional[np.ndarray] = None,
                      out: Optional[np.ndarray] = None) -> np.ndarray:
    """CAT-mode tip propagation with per-pattern transition matrices.

    ``p`` has shape ``(n_patterns, n, n)`` (each site's own rate); the
    result keeps the singleton category axis: ``(n_patterns, 1, n)``.
    """
    table = TIP_PARTIAL_ROWS if code_table is None else code_table
    tips = table[masks]  # (s, n)
    if out is None:
        return _einsum("sij,sj->si", p, tips)[:, None, :]
    _einsum("sij,sj->si", p, tips, out=out[:, 0, :])
    return out


def inner_terms_persite(p: np.ndarray, clv: np.ndarray,
                        out: Optional[np.ndarray] = None) -> np.ndarray:
    """CAT-mode inner propagation with per-pattern transition matrices."""
    return _einsum("sij,scj->sci", p, clv, out=out)


def newview_combine(left_term: np.ndarray, right_term: np.ndarray,
                    out: Optional[np.ndarray] = None) -> np.ndarray:
    """Combine two propagated child terms into the parent CLV."""
    if out is None:
        return left_term * right_term
    return np.multiply(left_term, right_term, out=out)


def scale_clv(clv: np.ndarray, scale_counts: np.ndarray) -> int:
    """Rescale underflowing patterns in place; returns how many scaled.

    For every pattern whose maximum CLV entry (over categories and
    states) is below :data:`SCALE_THRESHOLD`, multiply the whole pattern
    row by :data:`SCALE_FACTOR` and increment its scale counter.  This is
    the vectorized form of the paper's section 5.2.3 conditional.

    A CLV containing NaN or +/-Inf raises :class:`FloatingPointError`
    immediately: NaN compares false against the threshold, so without
    the explicit check a poisoned CLV would silently skip rescaling and
    surface much later as an inscrutable log-likelihood failure.
    """
    pattern_max = np.max(clv, axis=(1, 2), initial=0.0)
    if not np.isfinite(pattern_max).all():
        bad = int(np.flatnonzero(~np.isfinite(pattern_max))[0])
        raise FloatingPointError(
            f"non-finite CLV entries at pattern {bad} (NaN/Inf reached the "
            f"underflow-rescaling check)"
        )
    needs = pattern_max < SCALE_THRESHOLD
    count = int(needs.sum())
    if count:
        clv[needs] *= SCALE_FACTOR
        scale_counts[needs] += 1
    return count


def evaluate_loglik(
    pi: np.ndarray,
    cat_weights: np.ndarray,
    pattern_weights: np.ndarray,
    u_term: np.ndarray,
    v_term: np.ndarray,
    scale_counts: np.ndarray,
) -> float:
    """Weighted log likelihood at a branch.

    ``u_term`` is the CLV (or tip indicator expanded to ``(s, c, 4)``) on
    one side of the branch; ``v_term`` is the *other* side already
    propagated across the branch's transition matrices.  ``scale_counts``
    is the combined per-pattern rescaling count of both sides.
    """
    per_cat = _einsum("sci,sci,i->sc", u_term, v_term, pi)
    site_lik = per_cat @ cat_weights
    if (site_lik <= 0).any():
        raise FloatingPointError("non-positive site likelihood (underflow?)")
    logs = np.log(site_lik) - scale_counts * LOG_SCALE_FACTOR
    return float(pattern_weights @ logs)


def evaluate_loglik_batch(
    pi: np.ndarray,
    cat_weights: np.ndarray,
    pattern_weights: np.ndarray,
    u_terms: np.ndarray,
    v_terms: np.ndarray,
    scale_counts: np.ndarray,
) -> np.ndarray:
    """:func:`evaluate_loglik` over ``K`` stacked branch candidates.

    ``u_terms``/``v_terms`` have shape ``(K, s, c, n)`` and
    ``scale_counts`` ``(K, s)``; one fused contraction scores every
    candidate.  Returns the ``(K,)`` log likelihoods — equal (to
    round-off) to calling :func:`evaluate_loglik` per candidate.
    """
    per_cat = _einsum("ksci,ksci,i->ksc", u_terms, v_terms, pi)
    site_lik = per_cat @ cat_weights  # (K, s)
    if (site_lik <= 0).any():
        raise FloatingPointError("non-positive site likelihood (underflow?)")
    logs = np.log(site_lik) - scale_counts * LOG_SCALE_FACTOR
    return logs @ pattern_weights


def branch_derivatives(
    model_terms: Tuple[np.ndarray, np.ndarray, np.ndarray],
    pi: np.ndarray,
    cat_weights: np.ndarray,
    pattern_weights: np.ndarray,
    u_clv: np.ndarray,
    v_clv: np.ndarray,
    scale_counts: np.ndarray,
) -> Tuple[float, float, float]:
    """Log-likelihood and its first two branch-length derivatives.

    ``model_terms`` is ``(P, dP/dt, d2P/dt2)``, each ``(n_cats, 4, 4)``.
    ``u_clv``/``v_clv`` are the CLVs facing the branch (tips already
    expanded).  Returns ``(lnL, d lnL/dt, d2 lnL/dt2)``.
    """
    p, dp, d2p = model_terms
    # w[s,c,i,j] contraction done in two steps to stay O(s*c*16).
    left = u_clv * pi[None, None, :]  # fold pi into the u side
    f = _einsum("sci,cij,scj->sc", left, p, v_clv)
    f1 = _einsum("sci,cij,scj->sc", left, dp, v_clv)
    f2 = _einsum("sci,cij,scj->sc", left, d2p, v_clv)
    lik = f @ cat_weights
    d1 = f1 @ cat_weights
    d2 = f2 @ cat_weights
    if (lik <= 0).any():
        raise FloatingPointError("non-positive site likelihood in makenewz")
    g1 = d1 / lik
    lnl = float(pattern_weights @ (np.log(lik) - scale_counts * LOG_SCALE_FACTOR))
    dlnl = float(pattern_weights @ g1)
    d2lnl = float(pattern_weights @ (d2 / lik - g1 * g1))
    return lnl, dlnl, d2lnl


def branch_derivatives_batch(
    model_terms: Tuple[np.ndarray, np.ndarray, np.ndarray],
    pi: np.ndarray,
    cat_weights: np.ndarray,
    pattern_weights: np.ndarray,
    u_clv: np.ndarray,
    v_clv: np.ndarray,
    scale_counts: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """:func:`branch_derivatives` over ``K`` stacked branch candidates.

    ``model_terms`` matrices have shape ``(K, n_cats, n, n)`` (one
    transition stack per candidate length); ``u_clv``/``v_clv`` are
    ``(K, s, c, n)`` and ``scale_counts`` is ``(K, s)``.  Returns three
    ``(K,)`` arrays ``(lnL, d lnL/dt, d2 lnL/dt2)`` equal (to round-off)
    to ``K`` serial :func:`branch_derivatives` calls — the fused
    multi-candidate contraction of the batched SPR scorer.
    """
    p, dp, d2p = model_terms
    left = u_clv * pi[None, None, None, :]
    f = _einsum("ksci,kcij,kscj->ksc", left, p, v_clv)
    f1 = _einsum("ksci,kcij,kscj->ksc", left, dp, v_clv)
    f2 = _einsum("ksci,kcij,kscj->ksc", left, d2p, v_clv)
    lik = f @ cat_weights  # (K, s)
    d1 = f1 @ cat_weights
    d2 = f2 @ cat_weights
    if (lik <= 0).any():
        raise FloatingPointError("non-positive site likelihood in makenewz")
    g1 = d1 / lik
    lnl = (np.log(lik) - scale_counts * LOG_SCALE_FACTOR) @ pattern_weights
    dlnl = g1 @ pattern_weights
    d2lnl = (d2 / lik - g1 * g1) @ pattern_weights
    return lnl, dlnl, d2lnl


def branch_derivatives_persite(
    model_terms: Tuple[np.ndarray, np.ndarray, np.ndarray],
    pi: np.ndarray,
    pattern_weights: np.ndarray,
    u_clv: np.ndarray,
    v_clv: np.ndarray,
    scale_counts: np.ndarray,
) -> Tuple[float, float, float]:
    """CAT-mode :func:`branch_derivatives`: per-pattern P matrices.

    ``model_terms`` matrices have shape ``(n_patterns, 4, 4)`` (each
    site's own rate); CLVs keep their singleton category axis.
    """
    p, dp, d2p = model_terms
    left = u_clv[:, 0, :] * pi[None, :]
    v = v_clv[:, 0, :]
    lik = _einsum("si,sij,sj->s", left, p, v)
    d1 = _einsum("si,sij,sj->s", left, dp, v)
    d2 = _einsum("si,sij,sj->s", left, d2p, v)
    if (lik <= 0).any():
        raise FloatingPointError("non-positive site likelihood in makenewz")
    g1 = d1 / lik
    lnl = float(pattern_weights @ (np.log(lik) - scale_counts * LOG_SCALE_FACTOR))
    dlnl = float(pattern_weights @ g1)
    d2lnl = float(pattern_weights @ (d2 / lik - g1 * g1))
    return lnl, dlnl, d2lnl


def branch_derivatives_batch_persite(
    model_terms: Tuple[np.ndarray, np.ndarray, np.ndarray],
    pi: np.ndarray,
    pattern_weights: np.ndarray,
    u_clv: np.ndarray,
    v_clv: np.ndarray,
    scale_counts: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CAT-mode :func:`branch_derivatives_batch`.

    ``model_terms`` matrices have shape ``(K, n_patterns, n, n)``;
    ``u_clv``/``v_clv`` keep the singleton category axis
    ``(K, s, 1, n)`` and ``scale_counts`` is ``(K, s)``.
    """
    p, dp, d2p = model_terms
    left = u_clv[:, :, 0, :] * pi[None, None, :]
    v = v_clv[:, :, 0, :]
    lik = _einsum("ksi,ksij,ksj->ks", left, p, v)
    d1 = _einsum("ksi,ksij,ksj->ks", left, dp, v)
    d2 = _einsum("ksi,ksij,ksj->ks", left, d2p, v)
    if (lik <= 0).any():
        raise FloatingPointError("non-positive site likelihood in makenewz")
    g1 = d1 / lik
    lnl = (np.log(lik) - scale_counts * LOG_SCALE_FACTOR) @ pattern_weights
    dlnl = g1 @ pattern_weights
    d2lnl = (d2 / lik - g1 * g1) @ pattern_weights
    return lnl, dlnl, d2lnl


def branch_gradient_full(
    model_terms: Tuple[np.ndarray, np.ndarray, np.ndarray],
    pi: np.ndarray,
    cat_weights: np.ndarray,
    pattern_weights: np.ndarray,
    u_clvs: np.ndarray,
    v_clvs: np.ndarray,
    scale_counts: np.ndarray,
    per_site: bool = False,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fused full-tree branch gradient: one contraction for all branches.

    The two-sweep scheme (Ji et al., "Gradients do grow on trees")
    reduces every branch's derivative to the same bilinear form as
    :func:`branch_derivatives` — a CLV on each side of the branch plus
    the transition stack ``(P, dP, d2P)`` at its length.  Once the
    directional CLVs exist for every branch direction, the whole
    gradient is one ``K``-stacked contraction where ``K = 2N - 3``;
    this function is that contraction.  Inputs follow
    :func:`branch_derivatives_batch` (`(K, s, c, n)` CLVs, ``(K, s)``
    scale counts, ``(K, c, n, n)`` — or ``(K, s, n, n)`` per-site —
    model stacks); returns three ``(K,)`` arrays
    ``(lnL, d lnL/dt, d2 lnL/dt2)``, one entry per branch.  Each
    ``lnL[k]`` is the *same* tree likelihood evaluated at branch ``k``
    (the pulley principle), which the verification layer exploits.
    """
    if per_site:
        return branch_derivatives_batch_persite(
            model_terms, pi, pattern_weights, u_clvs, v_clvs, scale_counts)
    return branch_derivatives_batch(
        model_terms, pi, cat_weights, pattern_weights,
        u_clvs, v_clvs, scale_counts)


# -- reference (scalar) implementations --------------------------------------


def newview_combine_reference(
    p_left: np.ndarray,
    p_right: np.ndarray,
    left: np.ndarray,
    right: np.ndarray,
) -> np.ndarray:
    """Scalar-loop oracle for the full newview computation.

    ``left``/``right`` are child CLVs of shape ``(s, c, 4)`` (tips must be
    expanded by the caller).  Returns the unscaled parent CLV.
    """
    n_patterns, n_cats, _ = left.shape
    out = np.zeros_like(left)
    for s in range(n_patterns):
        for c in range(n_cats):
            for i in range(NUM_STATES):
                acc_l = 0.0
                acc_r = 0.0
                for j in range(NUM_STATES):
                    acc_l += p_left[c, i, j] * left[s, c, j]
                    acc_r += p_right[c, i, j] * right[s, c, j]
                out[s, c, i] = acc_l * acc_r
    return out


def evaluate_loglik_reference(
    p: np.ndarray,
    pi: np.ndarray,
    cat_weights: np.ndarray,
    pattern_weights: np.ndarray,
    u_clv: np.ndarray,
    v_clv: np.ndarray,
    scale_counts: np.ndarray,
) -> float:
    """Scalar-loop oracle for ``evaluate()``."""
    n_patterns, n_cats, _ = u_clv.shape
    total = 0.0
    for s in range(n_patterns):
        site = 0.0
        for c in range(n_cats):
            cat = 0.0
            for i in range(NUM_STATES):
                prop = 0.0
                for j in range(NUM_STATES):
                    prop += p[c, i, j] * v_clv[s, c, j]
                cat += pi[i] * u_clv[s, c, i] * prop
            site += cat_weights[c] * cat
        total += pattern_weights[s] * (
            math.log(site) - scale_counts[s] * LOG_SCALE_FACTOR
        )
    return total


# -- FLOP accounting ----------------------------------------------------------
#
# The paper counts 36 double-precision FLOPs per iteration of the small
# transition-matrix loop and 44 per iteration of the large likelihood
# loop (dropping to 24 and 22 after SIMD vectorization).  The trace layer
# uses these constants to convert kernel-call events into paper-equivalent
# FLOP counts.

FLOPS_SMALL_LOOP_SCALAR = 36
FLOPS_SMALL_LOOP_VECTOR = 24
FLOPS_LARGE_LOOP_SCALAR = 44
FLOPS_LARGE_LOOP_VECTOR = 22
