"""Rapid hill-climbing tree search (lazy SPR), after RAxML-VI-HPC.

The search loop mirrors the structure of RAxML's rapid hill climbing:

1. Smooth all branch lengths on the starting tree (``makenewz`` passes).
2. Repeatedly sweep over every subtree: prune it, try re-insertions into
   all branches within a *rearrangement radius* of the pruning point,
   and score each insertion **lazily** — only the three branches around
   the insertion junction are Newton-optimized before evaluating.
3. Commit any move that improves the best log likelihood (first
   improvement, continuing the sweep on the improved tree), otherwise
   revert the move exactly (topology and branch lengths).
4. After a sweep with no improvement, enlarge the radius once; stop when
   the maximal radius also yields nothing.

Every likelihood operation flows through the
:class:`~repro.phylo.likelihood.LikelihoodEngine`, so an attached tracer
observes the realistic ``newview``/``makenewz``/``evaluate`` mix that the
Cell-platform simulation replays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .engine import LikelihoodEngine
from .tree import Branch, Node, Tree

__all__ = ["SearchConfig", "SearchResult", "hill_climb", "spr_neighborhood"]


@dataclass(frozen=True)
class SearchConfig:
    """Tunable effort knobs of the hill-climbing search.

    The defaults are sized for the reproduction's synthetic ``42_SC``
    runs; tests use smaller values.  ``epsilon`` is the minimum log
    likelihood gain for a move to be accepted (RAxML's likelihood
    epsilon).
    """

    initial_radius: int = 3
    max_radius: int = 6
    max_rounds: int = 10
    smoothing_passes: int = 2
    final_smoothing_passes: int = 4
    epsilon: float = 0.01
    local_branch_iterations: int = 8
    #: "spr" (RAxML's rapid hill climbing, the default) or "nni"
    #: (nearest-neighbour interchanges only — the cheaper move set of
    #: PHYML-style searches; radius fields are ignored).
    move_set: str = "spr"
    #: Score each SPR neighborhood with one fused multi-candidate
    #: contraction (:meth:`LikelihoodEngine.score_spr_candidates`)
    #: instead of K apply/score/revert cycles.  Candidates whose preview
    #: score beats the bar are then re-scored with the full three-branch
    #: optimization before acceptance, so committed moves are judged by
    #: the same criterion as the serial path.  The preview is a lower
    #: bound (only the connect branch is optimized), so the batched
    #: search visits a slightly different trajectory; it is therefore
    #: opt-in, and the default keeps the paper-faithful serial kernel
    #: mix that the Cell-simulation traces replay.
    batch_spr: bool = False
    #: Smooth branch lengths with the one-pass full-tree gradient
    #: (:meth:`LikelihoodEngine.branch_gradient_full`): simultaneous
    #: Newton steps on every branch from two traversals per iteration,
    #: finished by the per-branch Newton polish so both modes terminate
    #: at the same fixed point.  Opt-in; the default keeps the
    #: paper-faithful per-branch ``makenewz`` sweeps.
    gradient_smoothing: bool = False

    def __post_init__(self) -> None:
        if self.move_set not in ("spr", "nni"):
            raise ValueError("move_set must be 'spr' or 'nni'")

    @property
    def smoothing_mode(self) -> str:
        """The ``optimize_all_branches`` mode the flag selects."""
        return "gradient" if self.gradient_smoothing else "newton"


@dataclass
class SearchResult:
    """Outcome of one hill-climbing search."""

    log_likelihood: float
    newick: str
    rounds: int
    accepted_moves: int
    evaluated_moves: int


def spr_neighborhood(
    tree: Tree, prune_branch: Branch, keep_side: Node, radius: int
) -> List[Branch]:
    """Regraft targets within *radius* branches of the pruning point.

    Breadth-first over the kept part of the tree, excluding the pruned
    subtree, the pruned branch itself, and the two branches incident to
    the junction (re-inserting there is a no-op).
    """
    moved_root = prune_branch.other(keep_side)
    excluded = tree.subtree_branches(moved_root, prune_branch)
    excluded.add(prune_branch.index)

    targets: List[Branch] = []
    seen = {b.index for b in keep_side.branches} | {prune_branch.index}
    frontier: List[Tuple[Branch, int]] = []
    for b in keep_side.branches:
        if b is prune_branch:
            continue
        far = b.other(keep_side)
        for nxt in far.branches:
            if nxt.index not in seen and nxt.index not in excluded:
                seen.add(nxt.index)
                frontier.append((nxt, 1))
    while frontier:
        branch, depth = frontier.pop(0)
        targets.append(branch)
        if depth >= radius:
            continue
        for endpoint in branch.nodes:
            for nxt in endpoint.branches:
                if nxt.index not in seen and nxt.index not in excluded:
                    seen.add(nxt.index)
                    frontier.append((nxt, depth + 1))
    return targets


@dataclass
class _AppliedMove:
    """Bookkeeping to exactly undo one SPR move.

    ``connect_branch`` is the branch the regraft created; by construction
    (:meth:`Tree.regraft_subtree`) its ``nodes[0]`` is the fresh junction
    and ``nodes[1]`` the moved subtree's root.
    """

    connect_branch: Branch
    origin_x: Node
    origin_y: Node
    length_x: float
    length_y: float
    length_sub: float
    target_x: Node
    target_y: Node
    target_length: float

    @property
    def junction(self) -> Node:
        return self.connect_branch.nodes[0]

    @property
    def subtree_root(self) -> Node:
        return self.connect_branch.nodes[1]


def _apply_spr(tree: Tree, prune_branch: Branch, keep_side: Node,
               target: Branch) -> _AppliedMove:
    """Perform an SPR while recording everything needed to revert it."""
    bx, by = [b for b in keep_side.branches if b is not prune_branch]
    tx, ty = target.nodes
    origin_x = bx.other(keep_side)
    origin_y = by.other(keep_side)
    length_x, length_y = bx.length, by.length
    length_sub = prune_branch.length
    target_length = target.length
    connect = tree.spr(prune_branch, keep_side, target)
    return _AppliedMove(
        connect_branch=connect,
        origin_x=origin_x,
        origin_y=origin_y,
        length_x=length_x,
        length_y=length_y,
        length_sub=length_sub,
        target_x=tx,
        target_y=ty,
        target_length=target_length,
    )


def _revert_spr(tree: Tree, move: _AppliedMove) -> Branch:
    """Move the subtree back and restore every original branch length.

    Returns the recreated prune branch (geometrically identical to the
    one the move consumed, but with a fresh id): ``nodes[0]`` is the
    recreated junction, ``nodes[1]`` the subtree root.
    """
    subtree_root = move.subtree_root
    tree.prune_subtree(move.connect_branch, keep_side=move.junction)
    # The prune re-merged the split target branch; restore its length
    # (the lazy scoring may have optimized the two halves).
    restored_target = _find_branch(tree, move.target_x, move.target_y)
    tree.set_length(restored_target, move.target_length)
    # Re-insert at the original location and restore the three lengths
    # around the re-created junction.
    merged = _find_branch(tree, move.origin_x, move.origin_y)
    new_connect = tree.regraft_subtree(subtree_root, merged, move.length_sub)
    new_junction = new_connect.nodes[0]
    for branch in new_junction.branches:
        far = branch.other(new_junction)
        if far is subtree_root:
            tree.set_length(branch, move.length_sub)
        elif far is move.origin_x:
            tree.set_length(branch, move.length_x)
        elif far is move.origin_y:
            tree.set_length(branch, move.length_y)
    return new_connect


@dataclass
class _AppliedNNI:
    """Bookkeeping to exactly undo one NNI move."""

    branch: Branch  # the central branch (survives the move)
    u: Node
    v: Node
    su: Node  # subtree root swapped away from u
    sv: Node  # subtree root swapped away from v
    length_u: float
    length_v: float
    central_length: float
    bystander_lengths: List[Tuple[int, float]]  # untouched adjacent branches


def _apply_nni(tree: Tree, branch: Branch, variant: int) -> _AppliedNNI:
    """Perform an NNI while recording everything needed to revert it."""
    u, v = branch.nodes
    u_sides = [b for b in u.branches if b is not branch]
    v_sides = [b for b in v.branches if b is not branch]
    bu = u_sides[0]
    bv = v_sides[variant % 2]
    bystanders = [
        (b.index, b.length)
        for b in u_sides + v_sides
        if b is not bu and b is not bv
    ]
    record = _AppliedNNI(
        branch=branch,
        u=u,
        v=v,
        su=bu.other(u),
        sv=bv.other(v),
        length_u=bu.length,
        length_v=bv.length,
        central_length=branch.length,
        bystander_lengths=bystanders,
    )
    tree.nni(branch, variant)
    return record


def _revert_nni(tree: Tree, record: _AppliedNNI) -> None:
    """Swap the subtrees back and restore every original length."""
    b1 = _find_branch(tree, record.u, record.sv)
    b2 = _find_branch(tree, record.v, record.su)
    tree._retire_branch(b1)
    tree._retire_branch(b2)
    tree._new_branch(record.u, record.su, record.length_u)
    tree._new_branch(record.v, record.sv, record.length_v)
    tree.set_length(record.branch, record.central_length)
    for branch_id, length in record.bystander_lengths:
        tree.set_length(tree.branch_by_id(branch_id), length)


def _hill_climb_nni(
    engine: LikelihoodEngine,
    config: SearchConfig,
    rng: np.random.Generator,
    cancel=None,
) -> SearchResult:
    """Hill climbing over nearest-neighbour interchanges only."""
    tree = engine.tree
    best = engine.optimize_all_branches(
        passes=config.smoothing_passes, mode=config.smoothing_mode
    )
    rounds = 0
    accepted = 0
    evaluated = 0
    while rounds < config.max_rounds:
        if cancel is not None:
            cancel.check()
        rounds += 1
        improved = False
        candidate_ids = [
            b.index for b in tree.branches
            if not b.nodes[0].is_tip and not b.nodes[1].is_tip
        ]
        rng.shuffle(candidate_ids)
        for branch_id in candidate_ids:
            if cancel is not None:
                cancel.check()
            try:
                branch = tree.branch_by_id(branch_id)
            except KeyError:
                continue
            for variant in (0, 1):
                record = _apply_nni(tree, branch, variant)
                # Lazy scoring: optimize the five branches around the
                # central edge, then evaluate there.
                seen = set()
                for endpoint in branch.nodes:
                    for local in list(endpoint.branches):
                        if local.index not in seen:
                            seen.add(local.index)
                            engine.makenewz(
                                local,
                                max_iterations=config.local_branch_iterations,
                            )
                evaluated += 1
                lnl = engine.evaluate(branch)
                if lnl > best + config.epsilon:
                    best = lnl
                    accepted += 1
                    improved = True
                    break  # keep; try the next candidate branch
                _revert_nni(tree, record)
        best = engine.optimize_all_branches(
        passes=config.smoothing_passes, mode=config.smoothing_mode
    )
        if not improved:
            break
    best = engine.optimize_all_branches(
        passes=config.final_smoothing_passes, mode=config.smoothing_mode
    )
    return SearchResult(
        log_likelihood=best,
        newick=tree.to_newick(),
        rounds=rounds,
        accepted_moves=accepted,
        evaluated_moves=evaluated,
    )


def _find_branch(tree: Tree, a: Node, b: Node) -> Branch:
    for branch in a.branches:
        if branch.other(a) is b:
            return branch
    raise ValueError("expected a direct branch between the given nodes")


def hill_climb(
    engine: LikelihoodEngine,
    config: Optional[SearchConfig] = None,
    rng: Optional[np.random.Generator] = None,
    cancel=None,
) -> SearchResult:
    """Run hill climbing on the engine's tree (modified in place).

    The default move set is RAxML's lazy SPR; ``move_set="nni"``
    restricts the search to nearest-neighbour interchanges.

    ``cancel`` is an optional cooperative cancellation token (any
    object with a ``check()`` method that raises to unwind, e.g.
    :class:`repro.cluster.cancel.CancelToken`).  It is polled at safe
    points — round boundaries and between candidate prune branches —
    so a deadline or drain never interrupts a kernel mid-operation.
    A cancelled search discards the replicate entirely; partial search
    state is never observable upstream.
    """
    config = config or SearchConfig()
    rng = rng or np.random.default_rng()
    if config.move_set == "nni":
        return _hill_climb_nni(engine, config, rng, cancel=cancel)
    tree = engine.tree

    best = engine.optimize_all_branches(
        passes=config.smoothing_passes, mode=config.smoothing_mode
    )
    radius = config.initial_radius
    rounds = 0
    accepted = 0
    evaluated = 0

    while rounds < config.max_rounds:
        if cancel is not None:
            cancel.check()
        rounds += 1
        improved_this_round = False

        # Snapshot candidate prune branches; accepted moves retire some.
        candidate_ids = [b.index for b in tree.branches]
        rng.shuffle(candidate_ids)
        for branch_id in candidate_ids:
            if cancel is not None:
                cancel.check()
            try:
                prune_branch = tree.branch_by_id(branch_id)
            except KeyError:
                continue  # retired by an earlier accepted move
            accepted_here = False
            for side in (0, 1):
                keep_side = prune_branch.nodes[side]
                if keep_side.is_tip:
                    continue
                targets = spr_neighborhood(tree, prune_branch, keep_side, radius)
                if config.batch_spr and len(targets) > 1:
                    # Fused preview of the whole neighborhood: one
                    # batched contraction ranks the K insertions, then
                    # only promising ones get the full (serial-identical)
                    # apply/optimize/evaluate treatment.
                    scores, _, prune_branch = engine.score_spr_candidates(
                        prune_branch,
                        keep_side,
                        targets,
                        max_iterations=config.local_branch_iterations,
                    )
                    keep_side = prune_branch.nodes[0]
                    evaluated += len(targets)
                    for idx in np.argsort(-scores, kind="stable"):
                        if scores[idx] <= best + config.epsilon:
                            break  # ranked: the rest preview even lower
                        target = targets[idx]
                        if target.retired:
                            continue
                        move = _apply_spr(tree, prune_branch, keep_side, target)
                        for local in list(move.junction.branches):
                            engine.makenewz(
                                local,
                                max_iterations=config.local_branch_iterations,
                            )
                        lnl = engine.evaluate(move.connect_branch)
                        if lnl > best + config.epsilon:
                            best = lnl
                            accepted += 1
                            improved_this_round = True
                            accepted_here = True
                            break
                        prune_branch = _revert_spr(tree, move)
                        keep_side = prune_branch.nodes[0]
                    if accepted_here:
                        break  # prune branch retired by the commit
                    continue
                for target in targets:
                    if target.retired:
                        continue  # consumed by the previous try's revert
                    move = _apply_spr(tree, prune_branch, keep_side, target)
                    # Lazy scoring: optimize only the three branches at
                    # the new junction, then evaluate there.
                    for local in list(move.junction.branches):
                        engine.makenewz(
                            local, max_iterations=config.local_branch_iterations
                        )
                    evaluated += 1
                    lnl = engine.evaluate(move.connect_branch)
                    if lnl > best + config.epsilon:
                        best = lnl
                        accepted += 1
                        improved_this_round = True
                        accepted_here = True
                        break
                    # Rejected: restore the tree; the prune branch comes
                    # back under a fresh id with swapped node order
                    # (junction first), so re-anchor keep_side by index.
                    prune_branch = _revert_spr(tree, move)
                    keep_side = prune_branch.nodes[0]
                if accepted_here:
                    break  # this prune branch was retired by the commit

        best = engine.optimize_all_branches(
        passes=config.smoothing_passes, mode=config.smoothing_mode
    )
        if not improved_this_round:
            if radius < config.max_radius:
                radius = config.max_radius
            else:
                break

    best = engine.optimize_all_branches(
        passes=config.final_smoothing_passes, mode=config.smoothing_mode
    )
    return SearchResult(
        log_likelihood=best,
        newick=tree.to_newick(),
        rounds=rounds,
        accepted_moves=accepted,
        evaluated_moves=evaluated,
    )
