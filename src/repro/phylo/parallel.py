"""Real parallel execution of the master-worker workload.

The paper's MPI layer distributes independent tree searches to worker
ranks (section 3.1).  Inside the reproduction the *simulated* MPI
runtime (:mod:`repro.sched.simmpi`) models that layer's scheduling;
this module is its executable counterpart — and, since the
:mod:`repro.cluster` subsystem landed, a thin compatibility facade over
its fault-tolerant work queue: the same embarrassingly parallel
workload run on real host cores with heartbeats, bounded retry, and
dead-worker requeue underneath.

Determinism: each task derives its RNG from ``(seed, kind, replicate)``
only, so a parallel run produces bit-identical trees and likelihoods to
the serial one — the property the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .alignment import Alignment, PatternAlignment
from .inference import AnalysisResult, InferenceResult, assemble_analysis
from .search import SearchConfig

__all__ = ["parallel_analysis", "TaskSpec"]


@dataclass(frozen=True)
class TaskSpec:
    """One schedulable unit: an inference or a bootstrap replicate.

    Kept as the stable public vocabulary; :mod:`repro.cluster.jobs`
    generalizes it to batched :class:`~repro.cluster.jobs.ClusterTask`
    units with the same ``(seed, kind, replicate)`` derivation.
    """

    kind: str  # "inference" | "bootstrap"
    replicate: int
    seed: int


def _task_list(n_inferences: int, n_bootstraps: int, seed: int
               ) -> List[TaskSpec]:
    tasks = [
        TaskSpec("inference", i, seed) for i in range(n_inferences)
    ]
    tasks += [
        TaskSpec("bootstrap", i, seed) for i in range(n_bootstraps)
    ]
    return tasks


def _run_task(spec: TaskSpec, patterns: PatternAlignment,
              config: Optional[SearchConfig]) -> InferenceResult:
    """Execute one task in-process, surfacing the spec on failure."""
    from ..cluster.aggregate import _to_result
    from ..cluster.queue import (
        ExecutionContext,
        TaskExecutionError,
        execute_replicate,
    )
    from ..cluster.jobs import ClusterTask

    try:
        payload = execute_replicate(
            patterns, ExecutionContext(config=config), spec.kind,
            spec.replicate, spec.seed,
        )
    except Exception as exc:
        task = ClusterTask(f"{spec.kind}/{spec.replicate}", spec.kind,
                           (spec.replicate,), spec.seed)
        raise TaskExecutionError(task, 1, repr(exc)) from exc
    return _to_result(payload)


def parallel_analysis(
    alignment,
    n_inferences: int = 2,
    n_bootstraps: int = 4,
    config: Optional[SearchConfig] = None,
    seed: int = 0,
    n_workers: Optional[int] = None,
) -> AnalysisResult:
    """The section-3.1 workflow on real host cores.

    Matches :func:`repro.phylo.inference.run_full_analysis` result-for-
    result (same seeds, same trees) while running tasks concurrently on
    the :class:`repro.cluster.queue.ClusterQueue`.  Worker failures are
    surfaced as :class:`repro.cluster.queue.TaskExecutionError` naming
    the originating task's kind, replicate, and seed.  With
    ``n_workers=1`` the queue is skipped entirely (serial fallback,
    useful under debuggers and on restricted platforms).
    """
    patterns = (
        alignment.compress() if isinstance(alignment, Alignment) else alignment
    )
    if not isinstance(patterns, PatternAlignment):
        raise TypeError("expected Alignment or PatternAlignment")
    if n_inferences < 1:
        raise ValueError("need at least one inference to pick a best tree")

    if n_workers == 1:
        tasks = _task_list(n_inferences, n_bootstraps, seed)
        results = [_run_task(t, patterns, config) for t in tasks]
        inferences = [r for r in results if not r.is_bootstrap]
        bootstraps = [r for r in results if r.is_bootstrap]
        return assemble_analysis(inferences, bootstraps)

    import os

    from ..cluster.jobs import JobSpec
    from ..cluster.runner import run_job

    spec = JobSpec(
        n_inferences=n_inferences, n_bootstraps=n_bootstraps, seed=seed,
        config=config,
    )
    if n_workers is None:
        n_workers = min(os.cpu_count() or 1,
                        max(1, n_inferences + n_bootstraps))
    return run_job(spec, alignment=patterns, n_workers=n_workers)
