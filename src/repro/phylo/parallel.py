"""Real parallel execution of the master-worker workload.

The paper's MPI layer distributes independent tree searches to worker
ranks (section 3.1).  Inside the reproduction the *simulated* MPI
runtime (:mod:`repro.sched.simmpi`) models that layer's scheduling; this
module is its executable counterpart: the same embarrassingly parallel
workload run on real host cores with :mod:`concurrent.futures`.

Determinism: each task derives its RNG from ``(seed, kind, replicate)``
only, so a parallel run produces bit-identical trees and likelihoods to
the serial one — the property the tests assert.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .alignment import Alignment, PatternAlignment
from .inference import (
    AnalysisResult,
    InferenceResult,
    infer_tree,
    support_values,
)
from .search import SearchConfig
from .tree import Tree

__all__ = ["parallel_analysis", "TaskSpec"]


@dataclass(frozen=True)
class TaskSpec:
    """One schedulable unit: an inference or a bootstrap replicate."""

    kind: str  # "inference" | "bootstrap"
    replicate: int
    seed: int


def _task_list(n_inferences: int, n_bootstraps: int, seed: int
               ) -> List[TaskSpec]:
    tasks = [
        TaskSpec("inference", i, seed) for i in range(n_inferences)
    ]
    tasks += [
        TaskSpec("bootstrap", i, seed) for i in range(n_bootstraps)
    ]
    return tasks


def _run_task(args: Tuple[TaskSpec, PatternAlignment, Optional[SearchConfig]]
              ) -> InferenceResult:
    """Worker entry point (must be top-level for pickling)."""
    import numpy as np

    spec, patterns, config = args
    if spec.kind == "inference":
        return infer_tree(
            patterns, config=config, seed=spec.seed,
            replicate=spec.replicate,
        )
    rng = np.random.default_rng(
        np.random.SeedSequence([spec.seed, 7919, spec.replicate])
    )
    replicate = patterns.bootstrap_replicate(rng)
    return infer_tree(
        replicate, config=config, seed=spec.seed + 1,
        is_bootstrap=True, replicate=spec.replicate,
    )


def parallel_analysis(
    alignment,
    n_inferences: int = 2,
    n_bootstraps: int = 4,
    config: Optional[SearchConfig] = None,
    seed: int = 0,
    n_workers: Optional[int] = None,
) -> AnalysisResult:
    """The section-3.1 workflow on real host cores.

    Matches :func:`repro.phylo.inference.run_full_analysis` result-for-
    result (same seeds, same trees) while running tasks concurrently.
    With ``n_workers=1`` the pool is skipped entirely (serial fallback,
    useful under debuggers and on restricted platforms).
    """
    patterns = (
        alignment.compress() if isinstance(alignment, Alignment) else alignment
    )
    if not isinstance(patterns, PatternAlignment):
        raise TypeError("expected Alignment or PatternAlignment")
    tasks = _task_list(n_inferences, n_bootstraps, seed)
    payloads = [(spec, patterns, config) for spec in tasks]

    if n_workers == 1:
        results = [_run_task(p) for p in payloads]
    else:
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            results = list(pool.map(_run_task, payloads))

    inferences = [r for r in results if not r.is_bootstrap]
    bootstraps = [r for r in results if r.is_bootstrap]
    if not inferences:
        raise ValueError("need at least one inference to pick a best tree")
    best = max(inferences, key=lambda r: r.log_likelihood)
    supports = support_values(
        Tree.from_newick(best.newick),
        [Tree.from_newick(b.newick) for b in bootstraps],
    )
    return AnalysisResult(
        best=best, inferences=inferences, bootstraps=bootstraps,
        supports=supports,
    )
