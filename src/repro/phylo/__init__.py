"""Maximum-likelihood phylogenetic inference (the RAxML-side substrate).

This package is a from-scratch, pure-Python/numpy reimplementation of the
application the paper ports to Cell: RAxML-style maximum-likelihood
phylogenetic tree inference.  It is fully functional on its own — see
``examples/quickstart.py`` — and doubles as the workload generator for
the Cell-platform simulation in :mod:`repro.cell` / :mod:`repro.port`.
"""

from .alignment import Alignment, PatternAlignment, parse_fasta, parse_phylip
from .inference import (
    AnalysisResult,
    InferenceResult,
    assemble_analysis,
    bootstrap_analysis,
    infer_tree,
    multiple_inferences,
    run_full_analysis,
    support_values,
)
from .drawing import ascii_tree, newick_with_support
from .distances import (
    distance_matrix,
    jc69_distance,
    ml_distance,
    neighbor_joining,
)
from .engine import (
    KernelBackend,
    LikelihoodEngine,
    NewviewCase,
    available_backends,
    create_engine,
    estimate_site_rates,
    register_backend,
)
from .models import GTR, HKY85, JC69, K80, SubstitutionModel
from .optimize import (
    ModelOptimizationResult,
    optimize_alpha,
    optimize_exchangeabilities,
    optimize_gamma_inv,
    optimize_model,
)
from .parallel import parallel_analysis
from .protein import (
    AA_STATES,
    PoissonAA,
    ProteinAlignment,
    ProteinPatternAlignment,
    protein_model,
)
from .parsimony import fitch_score, random_starting_trees, stepwise_addition_tree
from .rates import (
    CatRates,
    GammaInvRates,
    GammaRates,
    RateModel,
    UniformRate,
    discrete_gamma_rates,
)
from .search import SearchConfig, SearchResult, hill_climb, spr_neighborhood
from .simulate import default_gtr, evolve_alignment, random_tree, synthetic_dataset
from .tree import Branch, Node, Tree, robinson_foulds

__all__ = [
    "Alignment",
    "PatternAlignment",
    "parse_fasta",
    "parse_phylip",
    "AnalysisResult",
    "InferenceResult",
    "assemble_analysis",
    "bootstrap_analysis",
    "infer_tree",
    "multiple_inferences",
    "run_full_analysis",
    "support_values",
    "KernelBackend",
    "LikelihoodEngine",
    "NewviewCase",
    "available_backends",
    "create_engine",
    "estimate_site_rates",
    "register_backend",
    "ascii_tree",
    "newick_with_support",
    "distance_matrix",
    "jc69_distance",
    "ml_distance",
    "neighbor_joining",
    "ModelOptimizationResult",
    "optimize_alpha",
    "optimize_exchangeabilities",
    "optimize_gamma_inv",
    "optimize_model",
    "GTR",
    "HKY85",
    "JC69",
    "K80",
    "SubstitutionModel",
    "parallel_analysis",
    "AA_STATES",
    "PoissonAA",
    "ProteinAlignment",
    "ProteinPatternAlignment",
    "protein_model",
    "fitch_score",
    "random_starting_trees",
    "stepwise_addition_tree",
    "CatRates",
    "GammaInvRates",
    "GammaRates",
    "RateModel",
    "UniformRate",
    "discrete_gamma_rates",
    "SearchConfig",
    "SearchResult",
    "hill_climb",
    "spr_neighborhood",
    "default_gtr",
    "evolve_alignment",
    "random_tree",
    "synthetic_dataset",
    "Branch",
    "Node",
    "Tree",
    "robinson_foulds",
]
